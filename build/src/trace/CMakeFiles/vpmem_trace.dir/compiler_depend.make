# Empty compiler generated dependencies file for vpmem_trace.
# This may be replaced when dependencies are built.
