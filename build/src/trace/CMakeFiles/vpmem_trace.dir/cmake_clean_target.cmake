file(REMOVE_RECURSE
  "libvpmem_trace.a"
)
