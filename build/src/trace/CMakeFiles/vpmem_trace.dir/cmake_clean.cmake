file(REMOVE_RECURSE
  "CMakeFiles/vpmem_trace.dir/src/timeline.cpp.o"
  "CMakeFiles/vpmem_trace.dir/src/timeline.cpp.o.d"
  "libvpmem_trace.a"
  "libvpmem_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpmem_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
