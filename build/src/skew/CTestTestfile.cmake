# CMake generated Testfile for 
# Source directory: /root/repo/src/skew
# Build directory: /root/repo/build/src/skew
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
