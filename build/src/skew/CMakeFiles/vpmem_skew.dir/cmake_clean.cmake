file(REMOVE_RECURSE
  "CMakeFiles/vpmem_skew.dir/src/analysis.cpp.o"
  "CMakeFiles/vpmem_skew.dir/src/analysis.cpp.o.d"
  "CMakeFiles/vpmem_skew.dir/src/scheme.cpp.o"
  "CMakeFiles/vpmem_skew.dir/src/scheme.cpp.o.d"
  "libvpmem_skew.a"
  "libvpmem_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpmem_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
