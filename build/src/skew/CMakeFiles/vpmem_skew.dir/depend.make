# Empty dependencies file for vpmem_skew.
# This may be replaced when dependencies are built.
