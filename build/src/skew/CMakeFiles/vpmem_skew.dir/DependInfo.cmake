
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skew/src/analysis.cpp" "src/skew/CMakeFiles/vpmem_skew.dir/src/analysis.cpp.o" "gcc" "src/skew/CMakeFiles/vpmem_skew.dir/src/analysis.cpp.o.d"
  "/root/repo/src/skew/src/scheme.cpp" "src/skew/CMakeFiles/vpmem_skew.dir/src/scheme.cpp.o" "gcc" "src/skew/CMakeFiles/vpmem_skew.dir/src/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytic/CMakeFiles/vpmem_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vpmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
