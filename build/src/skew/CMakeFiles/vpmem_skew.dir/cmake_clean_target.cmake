file(REMOVE_RECURSE
  "libvpmem_skew.a"
)
