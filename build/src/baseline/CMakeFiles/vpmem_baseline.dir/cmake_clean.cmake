file(REMOVE_RECURSE
  "CMakeFiles/vpmem_baseline.dir/src/random_traffic.cpp.o"
  "CMakeFiles/vpmem_baseline.dir/src/random_traffic.cpp.o.d"
  "libvpmem_baseline.a"
  "libvpmem_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpmem_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
