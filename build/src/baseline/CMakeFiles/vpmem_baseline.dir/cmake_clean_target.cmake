file(REMOVE_RECURSE
  "libvpmem_baseline.a"
)
