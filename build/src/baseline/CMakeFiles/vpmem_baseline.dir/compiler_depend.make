# Empty compiler generated dependencies file for vpmem_baseline.
# This may be replaced when dependencies are built.
