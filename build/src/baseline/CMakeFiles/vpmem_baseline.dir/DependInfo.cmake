
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/src/random_traffic.cpp" "src/baseline/CMakeFiles/vpmem_baseline.dir/src/random_traffic.cpp.o" "gcc" "src/baseline/CMakeFiles/vpmem_baseline.dir/src/random_traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vpmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vpmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
