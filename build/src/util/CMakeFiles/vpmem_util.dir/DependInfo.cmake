
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/src/chart.cpp" "src/util/CMakeFiles/vpmem_util.dir/src/chart.cpp.o" "gcc" "src/util/CMakeFiles/vpmem_util.dir/src/chart.cpp.o.d"
  "/root/repo/src/util/src/numeric.cpp" "src/util/CMakeFiles/vpmem_util.dir/src/numeric.cpp.o" "gcc" "src/util/CMakeFiles/vpmem_util.dir/src/numeric.cpp.o.d"
  "/root/repo/src/util/src/rational.cpp" "src/util/CMakeFiles/vpmem_util.dir/src/rational.cpp.o" "gcc" "src/util/CMakeFiles/vpmem_util.dir/src/rational.cpp.o.d"
  "/root/repo/src/util/src/table.cpp" "src/util/CMakeFiles/vpmem_util.dir/src/table.cpp.o" "gcc" "src/util/CMakeFiles/vpmem_util.dir/src/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
