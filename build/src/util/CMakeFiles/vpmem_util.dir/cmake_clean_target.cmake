file(REMOVE_RECURSE
  "libvpmem_util.a"
)
