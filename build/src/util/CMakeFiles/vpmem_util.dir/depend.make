# Empty dependencies file for vpmem_util.
# This may be replaced when dependencies are built.
