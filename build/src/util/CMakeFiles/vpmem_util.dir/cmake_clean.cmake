file(REMOVE_RECURSE
  "CMakeFiles/vpmem_util.dir/src/chart.cpp.o"
  "CMakeFiles/vpmem_util.dir/src/chart.cpp.o.d"
  "CMakeFiles/vpmem_util.dir/src/numeric.cpp.o"
  "CMakeFiles/vpmem_util.dir/src/numeric.cpp.o.d"
  "CMakeFiles/vpmem_util.dir/src/rational.cpp.o"
  "CMakeFiles/vpmem_util.dir/src/rational.cpp.o.d"
  "CMakeFiles/vpmem_util.dir/src/table.cpp.o"
  "CMakeFiles/vpmem_util.dir/src/table.cpp.o.d"
  "libvpmem_util.a"
  "libvpmem_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpmem_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
