
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/src/classify.cpp" "src/analytic/CMakeFiles/vpmem_analytic.dir/src/classify.cpp.o" "gcc" "src/analytic/CMakeFiles/vpmem_analytic.dir/src/classify.cpp.o.d"
  "/root/repo/src/analytic/src/fortran.cpp" "src/analytic/CMakeFiles/vpmem_analytic.dir/src/fortran.cpp.o" "gcc" "src/analytic/CMakeFiles/vpmem_analytic.dir/src/fortran.cpp.o.d"
  "/root/repo/src/analytic/src/isomorphism.cpp" "src/analytic/CMakeFiles/vpmem_analytic.dir/src/isomorphism.cpp.o" "gcc" "src/analytic/CMakeFiles/vpmem_analytic.dir/src/isomorphism.cpp.o.d"
  "/root/repo/src/analytic/src/stream.cpp" "src/analytic/CMakeFiles/vpmem_analytic.dir/src/stream.cpp.o" "gcc" "src/analytic/CMakeFiles/vpmem_analytic.dir/src/stream.cpp.o.d"
  "/root/repo/src/analytic/src/theorems.cpp" "src/analytic/CMakeFiles/vpmem_analytic.dir/src/theorems.cpp.o" "gcc" "src/analytic/CMakeFiles/vpmem_analytic.dir/src/theorems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vpmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
