file(REMOVE_RECURSE
  "CMakeFiles/vpmem_analytic.dir/src/classify.cpp.o"
  "CMakeFiles/vpmem_analytic.dir/src/classify.cpp.o.d"
  "CMakeFiles/vpmem_analytic.dir/src/fortran.cpp.o"
  "CMakeFiles/vpmem_analytic.dir/src/fortran.cpp.o.d"
  "CMakeFiles/vpmem_analytic.dir/src/isomorphism.cpp.o"
  "CMakeFiles/vpmem_analytic.dir/src/isomorphism.cpp.o.d"
  "CMakeFiles/vpmem_analytic.dir/src/stream.cpp.o"
  "CMakeFiles/vpmem_analytic.dir/src/stream.cpp.o.d"
  "CMakeFiles/vpmem_analytic.dir/src/theorems.cpp.o"
  "CMakeFiles/vpmem_analytic.dir/src/theorems.cpp.o.d"
  "libvpmem_analytic.a"
  "libvpmem_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpmem_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
