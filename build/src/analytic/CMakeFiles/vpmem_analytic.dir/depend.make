# Empty dependencies file for vpmem_analytic.
# This may be replaced when dependencies are built.
