file(REMOVE_RECURSE
  "libvpmem_analytic.a"
)
