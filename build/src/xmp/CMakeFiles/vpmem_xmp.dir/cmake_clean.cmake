file(REMOVE_RECURSE
  "CMakeFiles/vpmem_xmp.dir/src/kernels.cpp.o"
  "CMakeFiles/vpmem_xmp.dir/src/kernels.cpp.o.d"
  "CMakeFiles/vpmem_xmp.dir/src/machine.cpp.o"
  "CMakeFiles/vpmem_xmp.dir/src/machine.cpp.o.d"
  "libvpmem_xmp.a"
  "libvpmem_xmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpmem_xmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
