# Empty compiler generated dependencies file for vpmem_xmp.
# This may be replaced when dependencies are built.
