
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmp/src/kernels.cpp" "src/xmp/CMakeFiles/vpmem_xmp.dir/src/kernels.cpp.o" "gcc" "src/xmp/CMakeFiles/vpmem_xmp.dir/src/kernels.cpp.o.d"
  "/root/repo/src/xmp/src/machine.cpp" "src/xmp/CMakeFiles/vpmem_xmp.dir/src/machine.cpp.o" "gcc" "src/xmp/CMakeFiles/vpmem_xmp.dir/src/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vpmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/vpmem_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vpmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
