file(REMOVE_RECURSE
  "libvpmem_xmp.a"
)
