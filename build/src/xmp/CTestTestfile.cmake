# CMake generated Testfile for 
# Source directory: /root/repo/src/xmp
# Build directory: /root/repo/build/src/xmp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
