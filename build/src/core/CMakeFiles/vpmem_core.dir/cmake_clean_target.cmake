file(REMOVE_RECURSE
  "libvpmem_core.a"
)
