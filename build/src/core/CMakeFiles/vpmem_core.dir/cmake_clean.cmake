file(REMOVE_RECURSE
  "CMakeFiles/vpmem_core.dir/src/advisor.cpp.o"
  "CMakeFiles/vpmem_core.dir/src/advisor.cpp.o.d"
  "CMakeFiles/vpmem_core.dir/src/bandwidth.cpp.o"
  "CMakeFiles/vpmem_core.dir/src/bandwidth.cpp.o.d"
  "CMakeFiles/vpmem_core.dir/src/diagnose.cpp.o"
  "CMakeFiles/vpmem_core.dir/src/diagnose.cpp.o.d"
  "CMakeFiles/vpmem_core.dir/src/group.cpp.o"
  "CMakeFiles/vpmem_core.dir/src/group.cpp.o.d"
  "CMakeFiles/vpmem_core.dir/src/layout.cpp.o"
  "CMakeFiles/vpmem_core.dir/src/layout.cpp.o.d"
  "CMakeFiles/vpmem_core.dir/src/sweep.cpp.o"
  "CMakeFiles/vpmem_core.dir/src/sweep.cpp.o.d"
  "CMakeFiles/vpmem_core.dir/src/triad_experiment.cpp.o"
  "CMakeFiles/vpmem_core.dir/src/triad_experiment.cpp.o.d"
  "libvpmem_core.a"
  "libvpmem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpmem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
