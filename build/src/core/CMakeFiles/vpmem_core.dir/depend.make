# Empty dependencies file for vpmem_core.
# This may be replaced when dependencies are built.
