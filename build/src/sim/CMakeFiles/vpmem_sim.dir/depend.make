# Empty dependencies file for vpmem_sim.
# This may be replaced when dependencies are built.
