file(REMOVE_RECURSE
  "CMakeFiles/vpmem_sim.dir/src/config.cpp.o"
  "CMakeFiles/vpmem_sim.dir/src/config.cpp.o.d"
  "CMakeFiles/vpmem_sim.dir/src/event.cpp.o"
  "CMakeFiles/vpmem_sim.dir/src/event.cpp.o.d"
  "CMakeFiles/vpmem_sim.dir/src/memory_system.cpp.o"
  "CMakeFiles/vpmem_sim.dir/src/memory_system.cpp.o.d"
  "CMakeFiles/vpmem_sim.dir/src/run.cpp.o"
  "CMakeFiles/vpmem_sim.dir/src/run.cpp.o.d"
  "CMakeFiles/vpmem_sim.dir/src/steady_state.cpp.o"
  "CMakeFiles/vpmem_sim.dir/src/steady_state.cpp.o.d"
  "libvpmem_sim.a"
  "libvpmem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpmem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
