
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/config.cpp" "src/sim/CMakeFiles/vpmem_sim.dir/src/config.cpp.o" "gcc" "src/sim/CMakeFiles/vpmem_sim.dir/src/config.cpp.o.d"
  "/root/repo/src/sim/src/event.cpp" "src/sim/CMakeFiles/vpmem_sim.dir/src/event.cpp.o" "gcc" "src/sim/CMakeFiles/vpmem_sim.dir/src/event.cpp.o.d"
  "/root/repo/src/sim/src/memory_system.cpp" "src/sim/CMakeFiles/vpmem_sim.dir/src/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/vpmem_sim.dir/src/memory_system.cpp.o.d"
  "/root/repo/src/sim/src/run.cpp" "src/sim/CMakeFiles/vpmem_sim.dir/src/run.cpp.o" "gcc" "src/sim/CMakeFiles/vpmem_sim.dir/src/run.cpp.o.d"
  "/root/repo/src/sim/src/steady_state.cpp" "src/sim/CMakeFiles/vpmem_sim.dir/src/steady_state.cpp.o" "gcc" "src/sim/CMakeFiles/vpmem_sim.dir/src/steady_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vpmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
