file(REMOVE_RECURSE
  "libvpmem_sim.a"
)
