# Empty dependencies file for fig04_double_conflict.
# This may be replaced when dependencies are built.
