file(REMOVE_RECURSE
  "../bench/fig04_double_conflict"
  "../bench/fig04_double_conflict.pdb"
  "CMakeFiles/fig04_double_conflict.dir/fig04_double_conflict.cpp.o"
  "CMakeFiles/fig04_double_conflict.dir/fig04_double_conflict.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_double_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
