# Empty dependencies file for fig08_linked_conflict.
# This may be replaced when dependencies are built.
