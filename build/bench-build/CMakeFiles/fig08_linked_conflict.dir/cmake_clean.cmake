file(REMOVE_RECURSE
  "../bench/fig08_linked_conflict"
  "../bench/fig08_linked_conflict.pdb"
  "CMakeFiles/fig08_linked_conflict.dir/fig08_linked_conflict.cpp.o"
  "CMakeFiles/fig08_linked_conflict.dir/fig08_linked_conflict.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_linked_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
