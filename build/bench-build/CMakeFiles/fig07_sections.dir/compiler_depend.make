# Empty compiler generated dependencies file for fig07_sections.
# This may be replaced when dependencies are built.
