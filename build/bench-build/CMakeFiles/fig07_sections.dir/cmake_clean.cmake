file(REMOVE_RECURSE
  "../bench/fig07_sections"
  "../bench/fig07_sections.pdb"
  "CMakeFiles/fig07_sections.dir/fig07_sections.cpp.o"
  "CMakeFiles/fig07_sections.dir/fig07_sections.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
