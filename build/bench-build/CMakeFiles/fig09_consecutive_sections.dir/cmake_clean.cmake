file(REMOVE_RECURSE
  "../bench/fig09_consecutive_sections"
  "../bench/fig09_consecutive_sections.pdb"
  "CMakeFiles/fig09_consecutive_sections.dir/fig09_consecutive_sections.cpp.o"
  "CMakeFiles/fig09_consecutive_sections.dir/fig09_consecutive_sections.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_consecutive_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
