# Empty compiler generated dependencies file for fig09_consecutive_sections.
# This may be replaced when dependencies are built.
