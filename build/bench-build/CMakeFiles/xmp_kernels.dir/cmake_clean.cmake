file(REMOVE_RECURSE
  "../bench/xmp_kernels"
  "../bench/xmp_kernels.pdb"
  "CMakeFiles/xmp_kernels.dir/xmp_kernels.cpp.o"
  "CMakeFiles/xmp_kernels.dir/xmp_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
