# Empty dependencies file for xmp_kernels.
# This may be replaced when dependencies are built.
