file(REMOVE_RECURSE
  "../bench/perf_sim_engine"
  "../bench/perf_sim_engine.pdb"
  "CMakeFiles/perf_sim_engine.dir/perf_sim_engine.cpp.o"
  "CMakeFiles/perf_sim_engine.dir/perf_sim_engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sim_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
