# Empty dependencies file for perf_sim_engine.
# This may be replaced when dependencies are built.
