# Empty dependencies file for fig10_xmp_triad.
# This may be replaced when dependencies are built.
