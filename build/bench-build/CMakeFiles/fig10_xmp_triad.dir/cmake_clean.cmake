file(REMOVE_RECURSE
  "../bench/fig10_xmp_triad"
  "../bench/fig10_xmp_triad.pdb"
  "CMakeFiles/fig10_xmp_triad.dir/fig10_xmp_triad.cpp.o"
  "CMakeFiles/fig10_xmp_triad.dir/fig10_xmp_triad.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_xmp_triad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
