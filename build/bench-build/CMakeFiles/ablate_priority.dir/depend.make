# Empty dependencies file for ablate_priority.
# This may be replaced when dependencies are built.
