file(REMOVE_RECURSE
  "../bench/ablate_priority"
  "../bench/ablate_priority.pdb"
  "CMakeFiles/ablate_priority.dir/ablate_priority.cpp.o"
  "CMakeFiles/ablate_priority.dir/ablate_priority.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
