file(REMOVE_RECURSE
  "../bench/fig05_barrier_small"
  "../bench/fig05_barrier_small.pdb"
  "CMakeFiles/fig05_barrier_small.dir/fig05_barrier_small.cpp.o"
  "CMakeFiles/fig05_barrier_small.dir/fig05_barrier_small.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_barrier_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
