# Empty compiler generated dependencies file for fig05_barrier_small.
# This may be replaced when dependencies are built.
