# Empty compiler generated dependencies file for ablate_skewing.
# This may be replaced when dependencies are built.
