file(REMOVE_RECURSE
  "../bench/ablate_skewing"
  "../bench/ablate_skewing.pdb"
  "CMakeFiles/ablate_skewing.dir/ablate_skewing.cpp.o"
  "CMakeFiles/ablate_skewing.dir/ablate_skewing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_skewing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
