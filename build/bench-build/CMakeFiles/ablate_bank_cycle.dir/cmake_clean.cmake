file(REMOVE_RECURSE
  "../bench/ablate_bank_cycle"
  "../bench/ablate_bank_cycle.pdb"
  "CMakeFiles/ablate_bank_cycle.dir/ablate_bank_cycle.cpp.o"
  "CMakeFiles/ablate_bank_cycle.dir/ablate_bank_cycle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bank_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
