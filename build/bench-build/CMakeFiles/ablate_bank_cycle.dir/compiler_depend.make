# Empty compiler generated dependencies file for ablate_bank_cycle.
# This may be replaced when dependencies are built.
