# Empty dependencies file for ablate_array_spacing.
# This may be replaced when dependencies are built.
