file(REMOVE_RECURSE
  "../bench/ablate_array_spacing"
  "../bench/ablate_array_spacing.pdb"
  "CMakeFiles/ablate_array_spacing.dir/ablate_array_spacing.cpp.o"
  "CMakeFiles/ablate_array_spacing.dir/ablate_array_spacing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_array_spacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
