file(REMOVE_RECURSE
  "../bench/fig03_barrier"
  "../bench/fig03_barrier.pdb"
  "CMakeFiles/fig03_barrier.dir/fig03_barrier.cpp.o"
  "CMakeFiles/fig03_barrier.dir/fig03_barrier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
