# Empty compiler generated dependencies file for fig03_barrier.
# This may be replaced when dependencies are built.
