# Empty compiler generated dependencies file for ablate_port_count.
# This may be replaced when dependencies are built.
