file(REMOVE_RECURSE
  "../bench/ablate_port_count"
  "../bench/ablate_port_count.pdb"
  "CMakeFiles/ablate_port_count.dir/ablate_port_count.cpp.o"
  "CMakeFiles/ablate_port_count.dir/ablate_port_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_port_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
