# Empty dependencies file for ablate_section_mapping.
# This may be replaced when dependencies are built.
