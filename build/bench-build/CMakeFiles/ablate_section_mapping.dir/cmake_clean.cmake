file(REMOVE_RECURSE
  "../bench/ablate_section_mapping"
  "../bench/ablate_section_mapping.pdb"
  "CMakeFiles/ablate_section_mapping.dir/ablate_section_mapping.cpp.o"
  "CMakeFiles/ablate_section_mapping.dir/ablate_section_mapping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_section_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
