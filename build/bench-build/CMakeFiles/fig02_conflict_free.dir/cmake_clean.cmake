file(REMOVE_RECURSE
  "../bench/fig02_conflict_free"
  "../bench/fig02_conflict_free.pdb"
  "CMakeFiles/fig02_conflict_free.dir/fig02_conflict_free.cpp.o"
  "CMakeFiles/fig02_conflict_free.dir/fig02_conflict_free.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_conflict_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
