# Empty dependencies file for fig02_conflict_free.
# This may be replaced when dependencies are built.
