# Empty dependencies file for ablate_bank_count.
# This may be replaced when dependencies are built.
