file(REMOVE_RECURSE
  "../bench/ablate_bank_count"
  "../bench/ablate_bank_count.pdb"
  "CMakeFiles/ablate_bank_count.dir/ablate_bank_count.cpp.o"
  "CMakeFiles/ablate_bank_count.dir/ablate_bank_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bank_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
