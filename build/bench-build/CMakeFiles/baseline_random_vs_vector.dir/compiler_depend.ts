# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for baseline_random_vs_vector.
