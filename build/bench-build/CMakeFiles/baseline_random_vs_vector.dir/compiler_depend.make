# Empty compiler generated dependencies file for baseline_random_vs_vector.
# This may be replaced when dependencies are built.
