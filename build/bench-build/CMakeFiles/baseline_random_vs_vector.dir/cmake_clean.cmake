file(REMOVE_RECURSE
  "../bench/baseline_random_vs_vector"
  "../bench/baseline_random_vs_vector.pdb"
  "CMakeFiles/baseline_random_vs_vector.dir/baseline_random_vs_vector.cpp.o"
  "CMakeFiles/baseline_random_vs_vector.dir/baseline_random_vs_vector.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_random_vs_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
