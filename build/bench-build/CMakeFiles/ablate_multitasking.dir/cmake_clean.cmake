file(REMOVE_RECURSE
  "../bench/ablate_multitasking"
  "../bench/ablate_multitasking.pdb"
  "CMakeFiles/ablate_multitasking.dir/ablate_multitasking.cpp.o"
  "CMakeFiles/ablate_multitasking.dir/ablate_multitasking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_multitasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
