# Empty dependencies file for ablate_multitasking.
# This may be replaced when dependencies are built.
