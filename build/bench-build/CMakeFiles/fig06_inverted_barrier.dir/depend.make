# Empty dependencies file for fig06_inverted_barrier.
# This may be replaced when dependencies are built.
