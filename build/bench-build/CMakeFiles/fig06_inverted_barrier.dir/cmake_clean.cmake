file(REMOVE_RECURSE
  "../bench/fig06_inverted_barrier"
  "../bench/fig06_inverted_barrier.pdb"
  "CMakeFiles/fig06_inverted_barrier.dir/fig06_inverted_barrier.cpp.o"
  "CMakeFiles/fig06_inverted_barrier.dir/fig06_inverted_barrier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_inverted_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
