# Empty compiler generated dependencies file for multi_stream.
# This may be replaced when dependencies are built.
