file(REMOVE_RECURSE
  "CMakeFiles/multi_stream.dir/multi_stream.cpp.o"
  "CMakeFiles/multi_stream.dir/multi_stream.cpp.o.d"
  "multi_stream"
  "multi_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
