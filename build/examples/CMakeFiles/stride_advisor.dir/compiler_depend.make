# Empty compiler generated dependencies file for stride_advisor.
# This may be replaced when dependencies are built.
