file(REMOVE_RECURSE
  "CMakeFiles/stride_advisor.dir/stride_advisor.cpp.o"
  "CMakeFiles/stride_advisor.dir/stride_advisor.cpp.o.d"
  "stride_advisor"
  "stride_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stride_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
