file(REMOVE_RECURSE
  "CMakeFiles/skewing_demo.dir/skewing_demo.cpp.o"
  "CMakeFiles/skewing_demo.dir/skewing_demo.cpp.o.d"
  "skewing_demo"
  "skewing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
