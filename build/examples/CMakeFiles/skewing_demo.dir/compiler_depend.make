# Empty compiler generated dependencies file for skewing_demo.
# This may be replaced when dependencies are built.
