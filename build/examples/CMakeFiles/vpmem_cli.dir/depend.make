# Empty dependencies file for vpmem_cli.
# This may be replaced when dependencies are built.
