file(REMOVE_RECURSE
  "CMakeFiles/vpmem_cli.dir/vpmem_cli.cpp.o"
  "CMakeFiles/vpmem_cli.dir/vpmem_cli.cpp.o.d"
  "vpmem_cli"
  "vpmem_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpmem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
