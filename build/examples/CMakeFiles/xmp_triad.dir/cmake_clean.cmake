file(REMOVE_RECURSE
  "CMakeFiles/xmp_triad.dir/xmp_triad.cpp.o"
  "CMakeFiles/xmp_triad.dir/xmp_triad.cpp.o.d"
  "xmp_triad"
  "xmp_triad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_triad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
