# Empty dependencies file for xmp_triad.
# This may be replaced when dependencies are built.
