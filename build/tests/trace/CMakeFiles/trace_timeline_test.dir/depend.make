# Empty dependencies file for trace_timeline_test.
# This may be replaced when dependencies are built.
