
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/timeline_test.cpp" "tests/trace/CMakeFiles/trace_timeline_test.dir/timeline_test.cpp.o" "gcc" "tests/trace/CMakeFiles/trace_timeline_test.dir/timeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vpmem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vpmem_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/xmp/CMakeFiles/vpmem_xmp.dir/DependInfo.cmake"
  "/root/repo/build/src/skew/CMakeFiles/vpmem_skew.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/vpmem_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/vpmem_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vpmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vpmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
