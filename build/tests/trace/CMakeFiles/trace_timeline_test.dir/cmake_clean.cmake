file(REMOVE_RECURSE
  "CMakeFiles/trace_timeline_test.dir/timeline_test.cpp.o"
  "CMakeFiles/trace_timeline_test.dir/timeline_test.cpp.o.d"
  "trace_timeline_test"
  "trace_timeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
