file(REMOVE_RECURSE
  "CMakeFiles/trace_golden_figures_test.dir/golden_figures_test.cpp.o"
  "CMakeFiles/trace_golden_figures_test.dir/golden_figures_test.cpp.o.d"
  "trace_golden_figures_test"
  "trace_golden_figures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_golden_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
