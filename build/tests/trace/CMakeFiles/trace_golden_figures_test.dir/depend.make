# Empty dependencies file for trace_golden_figures_test.
# This may be replaced when dependencies are built.
