# CMake generated Testfile for 
# Source directory: /root/repo/tests/trace
# Build directory: /root/repo/build/tests/trace
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(trace_timeline_test "/root/repo/build/tests/trace/trace_timeline_test")
set_tests_properties(trace_timeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/trace/CMakeLists.txt;1;vpmem_test;/root/repo/tests/trace/CMakeLists.txt;0;")
add_test(trace_golden_figures_test "/root/repo/build/tests/trace/trace_golden_figures_test")
set_tests_properties(trace_golden_figures_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/trace/CMakeLists.txt;2;vpmem_test;/root/repo/tests/trace/CMakeLists.txt;0;")
