# Empty compiler generated dependencies file for baseline_random_traffic_test.
# This may be replaced when dependencies are built.
