file(REMOVE_RECURSE
  "CMakeFiles/baseline_random_traffic_test.dir/random_traffic_test.cpp.o"
  "CMakeFiles/baseline_random_traffic_test.dir/random_traffic_test.cpp.o.d"
  "baseline_random_traffic_test"
  "baseline_random_traffic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_random_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
