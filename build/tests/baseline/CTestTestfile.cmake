# CMake generated Testfile for 
# Source directory: /root/repo/tests/baseline
# Build directory: /root/repo/build/tests/baseline
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(baseline_random_traffic_test "/root/repo/build/tests/baseline/baseline_random_traffic_test")
set_tests_properties(baseline_random_traffic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/baseline/CMakeLists.txt;1;vpmem_test;/root/repo/tests/baseline/CMakeLists.txt;0;")
