# Empty compiler generated dependencies file for sim_pattern_test.
# This may be replaced when dependencies are built.
