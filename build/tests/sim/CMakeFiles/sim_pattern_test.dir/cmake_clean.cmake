file(REMOVE_RECURSE
  "CMakeFiles/sim_pattern_test.dir/pattern_test.cpp.o"
  "CMakeFiles/sim_pattern_test.dir/pattern_test.cpp.o.d"
  "sim_pattern_test"
  "sim_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
