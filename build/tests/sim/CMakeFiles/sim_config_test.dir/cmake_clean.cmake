file(REMOVE_RECURSE
  "CMakeFiles/sim_config_test.dir/config_test.cpp.o"
  "CMakeFiles/sim_config_test.dir/config_test.cpp.o.d"
  "sim_config_test"
  "sim_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
