# Empty compiler generated dependencies file for sim_steady_state_test.
# This may be replaced when dependencies are built.
