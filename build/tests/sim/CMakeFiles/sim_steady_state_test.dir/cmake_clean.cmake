file(REMOVE_RECURSE
  "CMakeFiles/sim_steady_state_test.dir/steady_state_test.cpp.o"
  "CMakeFiles/sim_steady_state_test.dir/steady_state_test.cpp.o.d"
  "sim_steady_state_test"
  "sim_steady_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_steady_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
