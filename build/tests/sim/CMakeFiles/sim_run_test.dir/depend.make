# Empty dependencies file for sim_run_test.
# This may be replaced when dependencies are built.
