file(REMOVE_RECURSE
  "CMakeFiles/sim_run_test.dir/run_test.cpp.o"
  "CMakeFiles/sim_run_test.dir/run_test.cpp.o.d"
  "sim_run_test"
  "sim_run_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
