# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sim_config_test "/root/repo/build/tests/sim/sim_config_test")
set_tests_properties(sim_config_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/sim/CMakeLists.txt;1;vpmem_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(sim_memory_system_test "/root/repo/build/tests/sim/sim_memory_system_test")
set_tests_properties(sim_memory_system_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/sim/CMakeLists.txt;2;vpmem_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(sim_steady_state_test "/root/repo/build/tests/sim/sim_steady_state_test")
set_tests_properties(sim_steady_state_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/sim/CMakeLists.txt;3;vpmem_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(sim_run_test "/root/repo/build/tests/sim/sim_run_test")
set_tests_properties(sim_run_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/sim/CMakeLists.txt;4;vpmem_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(sim_pattern_test "/root/repo/build/tests/sim/sim_pattern_test")
set_tests_properties(sim_pattern_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/sim/CMakeLists.txt;5;vpmem_test;/root/repo/tests/sim/CMakeLists.txt;0;")
