# CMake generated Testfile for 
# Source directory: /root/repo/tests/xmp
# Build directory: /root/repo/build/tests/xmp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(xmp_machine_test "/root/repo/build/tests/xmp/xmp_machine_test")
set_tests_properties(xmp_machine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/xmp/CMakeLists.txt;1;vpmem_test;/root/repo/tests/xmp/CMakeLists.txt;0;")
add_test(xmp_kernels_test "/root/repo/build/tests/xmp/xmp_kernels_test")
set_tests_properties(xmp_kernels_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/xmp/CMakeLists.txt;2;vpmem_test;/root/repo/tests/xmp/CMakeLists.txt;0;")
add_test(xmp_multitask_test "/root/repo/build/tests/xmp/xmp_multitask_test")
set_tests_properties(xmp_multitask_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/xmp/CMakeLists.txt;3;vpmem_test;/root/repo/tests/xmp/CMakeLists.txt;0;")
