# Empty dependencies file for xmp_machine_test.
# This may be replaced when dependencies are built.
