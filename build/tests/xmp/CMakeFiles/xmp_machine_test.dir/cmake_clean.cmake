file(REMOVE_RECURSE
  "CMakeFiles/xmp_machine_test.dir/machine_test.cpp.o"
  "CMakeFiles/xmp_machine_test.dir/machine_test.cpp.o.d"
  "xmp_machine_test"
  "xmp_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
