file(REMOVE_RECURSE
  "CMakeFiles/xmp_kernels_test.dir/kernels_test.cpp.o"
  "CMakeFiles/xmp_kernels_test.dir/kernels_test.cpp.o.d"
  "xmp_kernels_test"
  "xmp_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
