# Empty dependencies file for xmp_kernels_test.
# This may be replaced when dependencies are built.
