# Empty dependencies file for xmp_multitask_test.
# This may be replaced when dependencies are built.
