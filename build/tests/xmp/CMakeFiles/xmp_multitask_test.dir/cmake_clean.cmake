file(REMOVE_RECURSE
  "CMakeFiles/xmp_multitask_test.dir/multitask_test.cpp.o"
  "CMakeFiles/xmp_multitask_test.dir/multitask_test.cpp.o.d"
  "xmp_multitask_test"
  "xmp_multitask_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_multitask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
