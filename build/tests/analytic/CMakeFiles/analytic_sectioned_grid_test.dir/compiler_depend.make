# Empty compiler generated dependencies file for analytic_sectioned_grid_test.
# This may be replaced when dependencies are built.
