file(REMOVE_RECURSE
  "CMakeFiles/analytic_sectioned_grid_test.dir/sectioned_grid_test.cpp.o"
  "CMakeFiles/analytic_sectioned_grid_test.dir/sectioned_grid_test.cpp.o.d"
  "analytic_sectioned_grid_test"
  "analytic_sectioned_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_sectioned_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
