file(REMOVE_RECURSE
  "CMakeFiles/analytic_fortran_test.dir/fortran_test.cpp.o"
  "CMakeFiles/analytic_fortran_test.dir/fortran_test.cpp.o.d"
  "analytic_fortran_test"
  "analytic_fortran_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_fortran_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
