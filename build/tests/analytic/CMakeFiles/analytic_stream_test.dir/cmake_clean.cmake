file(REMOVE_RECURSE
  "CMakeFiles/analytic_stream_test.dir/stream_test.cpp.o"
  "CMakeFiles/analytic_stream_test.dir/stream_test.cpp.o.d"
  "analytic_stream_test"
  "analytic_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
