# Empty dependencies file for analytic_stream_test.
# This may be replaced when dependencies are built.
