file(REMOVE_RECURSE
  "CMakeFiles/analytic_classify_test.dir/classify_test.cpp.o"
  "CMakeFiles/analytic_classify_test.dir/classify_test.cpp.o.d"
  "analytic_classify_test"
  "analytic_classify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
