# Empty compiler generated dependencies file for analytic_classify_test.
# This may be replaced when dependencies are built.
