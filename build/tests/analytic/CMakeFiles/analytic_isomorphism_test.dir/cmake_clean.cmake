file(REMOVE_RECURSE
  "CMakeFiles/analytic_isomorphism_test.dir/isomorphism_test.cpp.o"
  "CMakeFiles/analytic_isomorphism_test.dir/isomorphism_test.cpp.o.d"
  "analytic_isomorphism_test"
  "analytic_isomorphism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_isomorphism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
