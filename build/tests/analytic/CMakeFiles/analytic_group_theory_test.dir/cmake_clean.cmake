file(REMOVE_RECURSE
  "CMakeFiles/analytic_group_theory_test.dir/group_theory_test.cpp.o"
  "CMakeFiles/analytic_group_theory_test.dir/group_theory_test.cpp.o.d"
  "analytic_group_theory_test"
  "analytic_group_theory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_group_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
