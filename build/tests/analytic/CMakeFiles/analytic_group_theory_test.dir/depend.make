# Empty dependencies file for analytic_group_theory_test.
# This may be replaced when dependencies are built.
