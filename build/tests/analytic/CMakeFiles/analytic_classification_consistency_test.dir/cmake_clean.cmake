file(REMOVE_RECURSE
  "CMakeFiles/analytic_classification_consistency_test.dir/classification_consistency_test.cpp.o"
  "CMakeFiles/analytic_classification_consistency_test.dir/classification_consistency_test.cpp.o.d"
  "analytic_classification_consistency_test"
  "analytic_classification_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_classification_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
