# Empty compiler generated dependencies file for analytic_classification_consistency_test.
# This may be replaced when dependencies are built.
