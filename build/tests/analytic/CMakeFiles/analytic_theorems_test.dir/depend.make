# Empty dependencies file for analytic_theorems_test.
# This may be replaced when dependencies are built.
