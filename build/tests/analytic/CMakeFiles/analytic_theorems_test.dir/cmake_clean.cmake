file(REMOVE_RECURSE
  "CMakeFiles/analytic_theorems_test.dir/theorems_test.cpp.o"
  "CMakeFiles/analytic_theorems_test.dir/theorems_test.cpp.o.d"
  "analytic_theorems_test"
  "analytic_theorems_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_theorems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
