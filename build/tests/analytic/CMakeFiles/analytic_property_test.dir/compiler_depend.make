# Empty compiler generated dependencies file for analytic_property_test.
# This may be replaced when dependencies are built.
