file(REMOVE_RECURSE
  "CMakeFiles/analytic_property_test.dir/property_test.cpp.o"
  "CMakeFiles/analytic_property_test.dir/property_test.cpp.o.d"
  "analytic_property_test"
  "analytic_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
