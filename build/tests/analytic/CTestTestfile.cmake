# CMake generated Testfile for 
# Source directory: /root/repo/tests/analytic
# Build directory: /root/repo/build/tests/analytic
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(analytic_stream_test "/root/repo/build/tests/analytic/analytic_stream_test")
set_tests_properties(analytic_stream_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/analytic/CMakeLists.txt;1;vpmem_test;/root/repo/tests/analytic/CMakeLists.txt;0;")
add_test(analytic_theorems_test "/root/repo/build/tests/analytic/analytic_theorems_test")
set_tests_properties(analytic_theorems_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/analytic/CMakeLists.txt;2;vpmem_test;/root/repo/tests/analytic/CMakeLists.txt;0;")
add_test(analytic_isomorphism_test "/root/repo/build/tests/analytic/analytic_isomorphism_test")
set_tests_properties(analytic_isomorphism_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/analytic/CMakeLists.txt;3;vpmem_test;/root/repo/tests/analytic/CMakeLists.txt;0;")
add_test(analytic_classify_test "/root/repo/build/tests/analytic/analytic_classify_test")
set_tests_properties(analytic_classify_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/analytic/CMakeLists.txt;4;vpmem_test;/root/repo/tests/analytic/CMakeLists.txt;0;")
add_test(analytic_fortran_test "/root/repo/build/tests/analytic/analytic_fortran_test")
set_tests_properties(analytic_fortran_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/analytic/CMakeLists.txt;5;vpmem_test;/root/repo/tests/analytic/CMakeLists.txt;0;")
add_test(analytic_property_test "/root/repo/build/tests/analytic/analytic_property_test")
set_tests_properties(analytic_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/analytic/CMakeLists.txt;6;vpmem_test;/root/repo/tests/analytic/CMakeLists.txt;0;")
add_test(analytic_group_theory_test "/root/repo/build/tests/analytic/analytic_group_theory_test")
set_tests_properties(analytic_group_theory_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/analytic/CMakeLists.txt;7;vpmem_test;/root/repo/tests/analytic/CMakeLists.txt;0;")
add_test(analytic_classification_consistency_test "/root/repo/build/tests/analytic/analytic_classification_consistency_test")
set_tests_properties(analytic_classification_consistency_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/analytic/CMakeLists.txt;8;vpmem_test;/root/repo/tests/analytic/CMakeLists.txt;0;")
add_test(analytic_sectioned_grid_test "/root/repo/build/tests/analytic/analytic_sectioned_grid_test")
set_tests_properties(analytic_sectioned_grid_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/analytic/CMakeLists.txt;9;vpmem_test;/root/repo/tests/analytic/CMakeLists.txt;0;")
