# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core_bandwidth_test "/root/repo/build/tests/core/core_bandwidth_test")
set_tests_properties(core_bandwidth_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/core/CMakeLists.txt;1;vpmem_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(core_sweep_test "/root/repo/build/tests/core/core_sweep_test")
set_tests_properties(core_sweep_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/core/CMakeLists.txt;2;vpmem_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(core_advisor_test "/root/repo/build/tests/core/core_advisor_test")
set_tests_properties(core_advisor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/core/CMakeLists.txt;3;vpmem_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(core_triad_experiment_test "/root/repo/build/tests/core/core_triad_experiment_test")
set_tests_properties(core_triad_experiment_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/core/CMakeLists.txt;4;vpmem_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(core_group_test "/root/repo/build/tests/core/core_group_test")
set_tests_properties(core_group_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/core/CMakeLists.txt;5;vpmem_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(core_layout_test "/root/repo/build/tests/core/core_layout_test")
set_tests_properties(core_layout_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/core/CMakeLists.txt;6;vpmem_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(core_diagnose_test "/root/repo/build/tests/core/core_diagnose_test")
set_tests_properties(core_diagnose_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/core/CMakeLists.txt;7;vpmem_test;/root/repo/tests/core/CMakeLists.txt;0;")
