file(REMOVE_RECURSE
  "CMakeFiles/core_diagnose_test.dir/diagnose_test.cpp.o"
  "CMakeFiles/core_diagnose_test.dir/diagnose_test.cpp.o.d"
  "core_diagnose_test"
  "core_diagnose_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_diagnose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
