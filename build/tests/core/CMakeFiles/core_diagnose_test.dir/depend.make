# Empty dependencies file for core_diagnose_test.
# This may be replaced when dependencies are built.
