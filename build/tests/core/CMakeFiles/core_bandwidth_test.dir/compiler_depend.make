# Empty compiler generated dependencies file for core_bandwidth_test.
# This may be replaced when dependencies are built.
