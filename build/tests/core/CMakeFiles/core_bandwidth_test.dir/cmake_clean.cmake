file(REMOVE_RECURSE
  "CMakeFiles/core_bandwidth_test.dir/bandwidth_test.cpp.o"
  "CMakeFiles/core_bandwidth_test.dir/bandwidth_test.cpp.o.d"
  "core_bandwidth_test"
  "core_bandwidth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bandwidth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
