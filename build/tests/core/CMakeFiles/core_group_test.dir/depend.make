# Empty dependencies file for core_group_test.
# This may be replaced when dependencies are built.
