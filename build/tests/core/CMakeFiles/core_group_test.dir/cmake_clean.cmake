file(REMOVE_RECURSE
  "CMakeFiles/core_group_test.dir/group_test.cpp.o"
  "CMakeFiles/core_group_test.dir/group_test.cpp.o.d"
  "core_group_test"
  "core_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
