# Empty compiler generated dependencies file for core_advisor_test.
# This may be replaced when dependencies are built.
