file(REMOVE_RECURSE
  "CMakeFiles/core_advisor_test.dir/advisor_test.cpp.o"
  "CMakeFiles/core_advisor_test.dir/advisor_test.cpp.o.d"
  "core_advisor_test"
  "core_advisor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
