# Empty dependencies file for core_layout_test.
# This may be replaced when dependencies are built.
