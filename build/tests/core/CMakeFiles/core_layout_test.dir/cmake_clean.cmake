file(REMOVE_RECURSE
  "CMakeFiles/core_layout_test.dir/layout_test.cpp.o"
  "CMakeFiles/core_layout_test.dir/layout_test.cpp.o.d"
  "core_layout_test"
  "core_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
