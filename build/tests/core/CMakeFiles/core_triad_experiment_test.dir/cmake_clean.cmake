file(REMOVE_RECURSE
  "CMakeFiles/core_triad_experiment_test.dir/triad_experiment_test.cpp.o"
  "CMakeFiles/core_triad_experiment_test.dir/triad_experiment_test.cpp.o.d"
  "core_triad_experiment_test"
  "core_triad_experiment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_triad_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
