# Empty dependencies file for integration_paper_figures_test.
# This may be replaced when dependencies are built.
