file(REMOVE_RECURSE
  "CMakeFiles/integration_cross_validation_test.dir/cross_validation_test.cpp.o"
  "CMakeFiles/integration_cross_validation_test.dir/cross_validation_test.cpp.o.d"
  "integration_cross_validation_test"
  "integration_cross_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_cross_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
