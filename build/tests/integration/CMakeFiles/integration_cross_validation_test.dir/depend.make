# Empty dependencies file for integration_cross_validation_test.
# This may be replaced when dependencies are built.
