# Empty dependencies file for integration_fig1_architecture_test.
# This may be replaced when dependencies are built.
