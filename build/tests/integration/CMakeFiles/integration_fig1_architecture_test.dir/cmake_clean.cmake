file(REMOVE_RECURSE
  "CMakeFiles/integration_fig1_architecture_test.dir/fig1_architecture_test.cpp.o"
  "CMakeFiles/integration_fig1_architecture_test.dir/fig1_architecture_test.cpp.o.d"
  "integration_fig1_architecture_test"
  "integration_fig1_architecture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_fig1_architecture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
