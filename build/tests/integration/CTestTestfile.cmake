# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(integration_paper_figures_test "/root/repo/build/tests/integration/integration_paper_figures_test")
set_tests_properties(integration_paper_figures_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/integration/CMakeLists.txt;1;vpmem_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_fig1_architecture_test "/root/repo/build/tests/integration/integration_fig1_architecture_test")
set_tests_properties(integration_fig1_architecture_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/integration/CMakeLists.txt;2;vpmem_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_cross_validation_test "/root/repo/build/tests/integration/integration_cross_validation_test")
set_tests_properties(integration_cross_validation_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/integration/CMakeLists.txt;3;vpmem_test;/root/repo/tests/integration/CMakeLists.txt;0;")
