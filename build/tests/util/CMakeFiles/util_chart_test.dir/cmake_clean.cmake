file(REMOVE_RECURSE
  "CMakeFiles/util_chart_test.dir/chart_test.cpp.o"
  "CMakeFiles/util_chart_test.dir/chart_test.cpp.o.d"
  "util_chart_test"
  "util_chart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_chart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
