file(REMOVE_RECURSE
  "CMakeFiles/util_numeric_test.dir/numeric_test.cpp.o"
  "CMakeFiles/util_numeric_test.dir/numeric_test.cpp.o.d"
  "util_numeric_test"
  "util_numeric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_numeric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
