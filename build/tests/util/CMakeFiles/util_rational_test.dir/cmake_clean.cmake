file(REMOVE_RECURSE
  "CMakeFiles/util_rational_test.dir/rational_test.cpp.o"
  "CMakeFiles/util_rational_test.dir/rational_test.cpp.o.d"
  "util_rational_test"
  "util_rational_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_rational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
