# Empty dependencies file for util_rational_test.
# This may be replaced when dependencies are built.
