# CMake generated Testfile for 
# Source directory: /root/repo/tests/util
# Build directory: /root/repo/build/tests/util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_numeric_test "/root/repo/build/tests/util/util_numeric_test")
set_tests_properties(util_numeric_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/util/CMakeLists.txt;1;vpmem_test;/root/repo/tests/util/CMakeLists.txt;0;")
add_test(util_rational_test "/root/repo/build/tests/util/util_rational_test")
set_tests_properties(util_rational_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/util/CMakeLists.txt;2;vpmem_test;/root/repo/tests/util/CMakeLists.txt;0;")
add_test(util_table_test "/root/repo/build/tests/util/util_table_test")
set_tests_properties(util_table_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/util/CMakeLists.txt;3;vpmem_test;/root/repo/tests/util/CMakeLists.txt;0;")
add_test(util_chart_test "/root/repo/build/tests/util/util_chart_test")
set_tests_properties(util_chart_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/util/CMakeLists.txt;4;vpmem_test;/root/repo/tests/util/CMakeLists.txt;0;")
