# CMake generated Testfile for 
# Source directory: /root/repo/tests/skew
# Build directory: /root/repo/build/tests/skew
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(skew_scheme_test "/root/repo/build/tests/skew/skew_scheme_test")
set_tests_properties(skew_scheme_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/skew/CMakeLists.txt;1;vpmem_test;/root/repo/tests/skew/CMakeLists.txt;0;")
add_test(skew_analysis_test "/root/repo/build/tests/skew/skew_analysis_test")
set_tests_properties(skew_analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/skew/CMakeLists.txt;2;vpmem_test;/root/repo/tests/skew/CMakeLists.txt;0;")
add_test(skew_rectangular_test "/root/repo/build/tests/skew/skew_rectangular_test")
set_tests_properties(skew_rectangular_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/skew/CMakeLists.txt;3;vpmem_test;/root/repo/tests/skew/CMakeLists.txt;0;")
