# Empty dependencies file for skew_scheme_test.
# This may be replaced when dependencies are built.
