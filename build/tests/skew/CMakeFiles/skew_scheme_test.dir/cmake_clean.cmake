file(REMOVE_RECURSE
  "CMakeFiles/skew_scheme_test.dir/scheme_test.cpp.o"
  "CMakeFiles/skew_scheme_test.dir/scheme_test.cpp.o.d"
  "skew_scheme_test"
  "skew_scheme_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
