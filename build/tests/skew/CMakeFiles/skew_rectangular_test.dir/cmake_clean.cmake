file(REMOVE_RECURSE
  "CMakeFiles/skew_rectangular_test.dir/rectangular_test.cpp.o"
  "CMakeFiles/skew_rectangular_test.dir/rectangular_test.cpp.o.d"
  "skew_rectangular_test"
  "skew_rectangular_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_rectangular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
