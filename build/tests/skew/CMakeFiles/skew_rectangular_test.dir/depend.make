# Empty dependencies file for skew_rectangular_test.
# This may be replaced when dependencies are built.
