# Empty dependencies file for skew_analysis_test.
# This may be replaced when dependencies are built.
