file(REMOVE_RECURSE
  "CMakeFiles/skew_analysis_test.dir/analysis_test.cpp.o"
  "CMakeFiles/skew_analysis_test.dir/analysis_test.cpp.o.d"
  "skew_analysis_test"
  "skew_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
