# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("analytic")
subdirs("trace")
subdirs("xmp")
subdirs("core")
subdirs("skew")
subdirs("baseline")
subdirs("integration")
