// Acceptance test for the fault-model differential harness: 5000
// randomized fault plans (both degradation policies, all six event
// kinds) where the simulator and the naive reference model must agree
// event-for-event and stats field-for-field.
#include <gtest/gtest.h>

#include "vpmem/check/differential.hpp"
#include "vpmem/check/fuzzer.hpp"
#include "vpmem/check/replay.hpp"
#include "vpmem/sim/fault.hpp"

namespace vpmem {
namespace {

using check::FuzzOptions;
using check::FuzzSummary;

TEST(FaultPlanFuzz, FiveThousandRandomPlansAgree) {
  FuzzOptions options;
  options.seed = 0x0ed1985;  // fixed: the whole run is deterministic
  options.iterations = 5000;
  options.fault_plans = true;
  const FuzzSummary summary = check::fuzz(options);
  EXPECT_EQ(summary.iterations, 5000);
  for (const auto& f : summary.failures) {
    ADD_FAILURE() << "iteration " << f.iteration << " [" << f.check << "] " << f.message
                  << "\n  replay: " << f.repro;
  }
  EXPECT_GE(summary.checks_run, 5000);
  EXPECT_GT(summary.events_compared, 100'000);
}

TEST(FaultPlanFuzz, PlanCasesExerciseBothPoliciesAndAllKinds) {
  // The sampler must actually cover the fault space: over 200 cases we
  // expect both policies and every event kind to appear.
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 200;
  options.fault_plans = true;
  baseline::SplitMix64 rng{options.seed};
  bool saw_stall = false, saw_remap = false;
  bool saw_kind[6] = {};
  i64 with_plan = 0;
  for (i64 i = 0; i < options.iterations; ++i) {
    const check::FuzzCase fuzz_case = check::sample_case(rng, options);
    if (fuzz_case.plan.empty()) continue;
    ++with_plan;
    saw_stall |= fuzz_case.plan.policy == sim::FaultPolicy::stall;
    saw_remap |= fuzz_case.plan.policy == sim::FaultPolicy::remap_spare;
    for (const auto& e : fuzz_case.plan.events) {
      saw_kind[static_cast<int>(e.kind)] = true;
    }
  }
  EXPECT_GT(with_plan, 100);
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_remap);
  for (int k = 0; k < 6; ++k) EXPECT_TRUE(saw_kind[k]) << "event kind " << k << " never sampled";
}

TEST(FaultPlanFuzz, DirectedPlansAgreeUnderBothPolicies) {
  // A dense, deliberately nasty plan — overlapping stall windows, a slow
  // bank, an outage spanning a recovery, and a path flap — checked
  // event-for-event under both policies on the Fig. 2 machine.
  const sim::MemoryConfig config{.banks = 12, .sections = 3, .bank_cycle = 3};
  const auto streams = sim::two_streams(0, 1, 3, 7);
  for (const sim::FaultPolicy policy :
       {sim::FaultPolicy::stall, sim::FaultPolicy::remap_spare}) {
    sim::FaultPlan plan;
    plan.policy = policy;
    plan.events = {
        sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_stall, .cycle = 5, .bank = 0,
                        .value = 10},
        sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_stall, .cycle = 9, .bank = 0,
                        .value = 3},
        sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_slow, .cycle = 12, .bank = 7,
                        .value = 6},
        sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_offline, .cycle = 20, .bank = 3},
        sim::FaultEvent{.kind = sim::FaultEvent::Kind::path_offline, .cycle = 24, .cpu = 1,
                        .section = 2},
        sim::FaultEvent{.kind = sim::FaultEvent::Kind::path_online, .cycle = 40, .cpu = 1,
                        .section = 2},
        sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_online, .cycle = 60, .bank = 3}};
    const check::DiffResult diff = check::diff_run(config, streams, /*cycles=*/160, plan);
    EXPECT_TRUE(diff.agreed) << to_string(policy) << ": " << diff.message;
    EXPECT_GT(diff.events_compared, 0);
  }
}

TEST(FaultPlanFuzz, DeterministicPerSeed) {
  FuzzOptions options;
  options.iterations = 50;
  options.fault_plans = true;
  const FuzzSummary a = check::fuzz(options);
  const FuzzSummary b = check::fuzz(options);
  EXPECT_EQ(a.events_compared, b.events_compared);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

}  // namespace
}  // namespace vpmem
