// Deterministic replay: a failure's one-line repro must encode the whole
// case, survive a parse round trip, reject malformed input loudly, and
// shrink to a smaller case that still fails the same check.
#include <gtest/gtest.h>

#include "vpmem/check/fuzzer.hpp"
#include "vpmem/check/replay.hpp"
#include "vpmem/sim/fault.hpp"
#include "vpmem/util/error.hpp"

namespace vpmem {
namespace {

using check::FaultKind;
using check::FuzzCase;

FuzzCase sample_mixed_case() {
  FuzzCase fuzz_case;
  fuzz_case.config = sim::MemoryConfig{.banks = 16,
                                       .sections = 4,
                                       .bank_cycle = 3,
                                       .mapping = sim::SectionMapping::consecutive,
                                       .priority = sim::PriorityRule::cyclic};
  fuzz_case.streams = {
      sim::StreamConfig{.start_bank = 3, .distance = -5, .cpu = 1, .length = 40,
                        .start_cycle = 2},
      sim::StreamConfig{.cpu = 2, .bank_pattern = {0, 7, 7, 12}},
      sim::StreamConfig{.start_bank = 0, .distance = 0}};
  fuzz_case.cycles = 96;
  fuzz_case.fault = FaultKind::misclassify_simultaneous;
  return fuzz_case;
}

TEST(Replay, EncodeParseRoundTripPreservesEveryField) {
  const FuzzCase original = sample_mixed_case();
  const std::string line = check::encode_repro(original);
  EXPECT_EQ(line.rfind(check::kReproSchema, 0), 0u) << line;
  const FuzzCase parsed = check::parse_repro(line);
  EXPECT_EQ(parsed.config.banks, original.config.banks);
  EXPECT_EQ(parsed.config.sections, original.config.sections);
  EXPECT_EQ(parsed.config.bank_cycle, original.config.bank_cycle);
  EXPECT_EQ(parsed.config.mapping, original.config.mapping);
  EXPECT_EQ(parsed.config.priority, original.config.priority);
  EXPECT_EQ(parsed.cycles, original.cycles);
  EXPECT_EQ(parsed.fault, original.fault);
  ASSERT_EQ(parsed.streams.size(), original.streams.size());
  for (std::size_t i = 0; i < original.streams.size(); ++i) {
    EXPECT_EQ(parsed.streams[i].start_bank, original.streams[i].start_bank) << i;
    EXPECT_EQ(parsed.streams[i].distance, original.streams[i].distance) << i;
    EXPECT_EQ(parsed.streams[i].cpu, original.streams[i].cpu) << i;
    EXPECT_EQ(parsed.streams[i].length, original.streams[i].length) << i;
    EXPECT_EQ(parsed.streams[i].start_cycle, original.streams[i].start_cycle) << i;
    EXPECT_EQ(parsed.streams[i].bank_pattern, original.streams[i].bank_pattern) << i;
  }
  // And re-encoding the parsed case is byte-identical.
  EXPECT_EQ(check::encode_repro(parsed), line);
}

TEST(Replay, EncodingIsHumanReadable) {
  FuzzCase fuzz_case;
  fuzz_case.config = sim::MemoryConfig{.banks = 13, .sections = 13, .bank_cycle = 4};
  fuzz_case.streams = sim::two_streams(0, 1, 4, 6);
  fuzz_case.cycles = 224;
  EXPECT_EQ(check::encode_repro(fuzz_case),
            "vpmem.fuzz/1 m=13 s=13 nc=4 map=cyclic prio=fixed cycles=224 fault=none "
            "stream=b0,d1,c0,linf,t0 stream=b4,d6,c1,linf,t0");
}

TEST(Replay, ParseRejectsMalformedLines) {
  const auto reject = [](const std::string& line) {
    EXPECT_THROW(static_cast<void>(check::parse_repro(line)), std::invalid_argument) << line;
  };
  reject("");
  reject("not-the-schema m=4 s=4 nc=1");
  reject("vpmem.fuzz/1 m=4 s=4 nc=1 bogus");                    // token without '='
  reject("vpmem.fuzz/1 m=4 s=4 nc=1 color=red");                // unknown key
  reject("vpmem.fuzz/1 m=4x s=4 nc=1");                         // trailing garbage
  reject("vpmem.fuzz/1 m=4 s=4 nc=1 map=diagonal");             // unknown mapping
  reject("vpmem.fuzz/1 m=4 s=4 nc=1 prio=random");              // unknown priority
  reject("vpmem.fuzz/1 m=4 s=4 nc=1 fault=no-such-fault");
  reject("vpmem.fuzz/1 m=4 s=4 nc=1 stream=c0,linf,t0");        // no banks
  reject("vpmem.fuzz/1 m=4 s=4 nc=1 stream=b0,d1,q9");          // unknown field
  reject("vpmem.fuzz/1 m=4 s=4 nc=1 stream=p,c0");              // empty pattern
  // Well-formed lines with semantically invalid content fail config or
  // plan validation and surface as typed vpmem::Error instead.
  const auto reject_typed = [](const std::string& line, vpmem::ErrorCode code) {
    try {
      static_cast<void>(check::parse_repro(line));
      FAIL() << "expected vpmem::Error for: " << line;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), code) << line;
    }
  };
  reject_typed("vpmem.fuzz/1 m=4 s=3 nc=1 stream=b0,d1", ErrorCode::config_invalid);
  reject_typed("vpmem.fuzz/1 m=4 s=4 nc=1 stream=b7,d1", ErrorCode::config_invalid);
  reject_typed("vpmem.fuzz/1 m=4 s=4 nc=1 stream=b0,d1 fplan=nonsense",
               ErrorCode::fault_plan_invalid);
  reject_typed("vpmem.fuzz/1 m=4 s=4 nc=1 stream=b0,d1 fplan=stall;boff@0:b9",
               ErrorCode::fault_plan_invalid);  // bank 9 out of range for m=4
}

TEST(Replay, FaultPlanRoundTripsThroughRepro) {
  FuzzCase fuzz_case;
  fuzz_case.config = sim::MemoryConfig{.banks = 8, .sections = 4, .bank_cycle = 3};
  fuzz_case.streams = {sim::StreamConfig{.start_bank = 1, .distance = 3, .length = 32}};
  fuzz_case.cycles = 64;
  fuzz_case.plan.policy = sim::FaultPolicy::remap_spare;
  fuzz_case.plan.events = {
      sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_offline, .cycle = 8, .bank = 3},
      sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_slow, .cycle = 10, .bank = 5,
                      .value = 6},
      sim::FaultEvent{.kind = sim::FaultEvent::Kind::path_offline, .cycle = 12, .cpu = 0,
                      .section = 2},
      sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_online, .cycle = 20, .bank = 3}};
  const std::string line = check::encode_repro(fuzz_case);
  const std::size_t at = line.find(" fplan=");
  ASSERT_NE(at, std::string::npos) << line;
  // The plan encodes as ONE whitespace-free token so the line still
  // splits on spaces; re-parsing just that token must give the plan back.
  const std::size_t value_begin = at + 7;
  const std::size_t value_end = line.find(' ', value_begin);
  const std::string token = line.substr(value_begin, value_end - value_begin);
  EXPECT_EQ(sim::FaultPlan::parse(token).encode(), fuzz_case.plan.encode());
  const FuzzCase parsed = check::parse_repro(line);
  EXPECT_EQ(parsed.plan.policy, fuzz_case.plan.policy);
  ASSERT_EQ(parsed.plan.events.size(), fuzz_case.plan.events.size());
  for (std::size_t i = 0; i < fuzz_case.plan.events.size(); ++i) {
    EXPECT_EQ(parsed.plan.events[i].kind, fuzz_case.plan.events[i].kind) << i;
    EXPECT_EQ(parsed.plan.events[i].cycle, fuzz_case.plan.events[i].cycle) << i;
    EXPECT_EQ(parsed.plan.events[i].bank, fuzz_case.plan.events[i].bank) << i;
    EXPECT_EQ(parsed.plan.events[i].value, fuzz_case.plan.events[i].value) << i;
    EXPECT_EQ(parsed.plan.events[i].cpu, fuzz_case.plan.events[i].cpu) << i;
    EXPECT_EQ(parsed.plan.events[i].section, fuzz_case.plan.events[i].section) << i;
  }
  EXPECT_EQ(check::encode_repro(parsed), line);
  // A plan-free case must not grow an fplan token.
  fuzz_case.plan = {};
  EXPECT_EQ(check::encode_repro(fuzz_case).find("fplan"), std::string::npos);
}

TEST(Replay, ShrinkDropsIrrelevantFaultPlan) {
  // The reference-model fault (short_bank_busy) fails with or without the
  // sim-side plan, so the shrinker's plan stage must remove it whole.
  FuzzCase fuzz_case;
  fuzz_case.config = sim::MemoryConfig{.banks = 4, .sections = 4, .bank_cycle = 2};
  fuzz_case.streams = {sim::StreamConfig{.start_bank = 2, .distance = 0}};
  fuzz_case.cycles = 32;
  fuzz_case.fault = FaultKind::short_bank_busy;
  fuzz_case.plan.policy = sim::FaultPolicy::stall;
  fuzz_case.plan.events = {
      sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_stall, .cycle = 4, .bank = 1,
                      .value = 3}};
  const auto still_fails = [](const FuzzCase& candidate) {
    return !check::check_case(candidate, {}, /*run_invariants=*/false).ok();
  };
  ASSERT_TRUE(still_fails(fuzz_case));
  const FuzzCase shrunk = check::shrink_case(fuzz_case, still_fails);
  EXPECT_TRUE(shrunk.plan.empty());
  EXPECT_TRUE(still_fails(shrunk));
}

TEST(Replay, ShrinkDropsRedundantStreamsAndCycles) {
  // short_bank_busy diverges with any single self-conflicting stream, so
  // the two extra streams and most of the cycle budget are removable.
  FuzzCase fuzz_case;
  fuzz_case.config = sim::MemoryConfig{.banks = 8, .sections = 8, .bank_cycle = 3};
  fuzz_case.streams = {sim::StreamConfig{.start_bank = 0, .distance = 0, .start_cycle = 4},
                       sim::StreamConfig{.start_bank = 1, .distance = 2, .cpu = 1},
                       sim::StreamConfig{.start_bank = 5, .distance = 4, .cpu = 2}};
  fuzz_case.cycles = 224;
  fuzz_case.fault = FaultKind::short_bank_busy;
  const auto still_fails = [](const FuzzCase& candidate) {
    return !check::check_case(candidate, {}, /*run_invariants=*/false).ok();
  };
  ASSERT_TRUE(still_fails(fuzz_case));
  const FuzzCase shrunk = check::shrink_case(fuzz_case, still_fails);
  EXPECT_TRUE(still_fails(shrunk));
  // A single self-conflicting stream suffices (d=0 and d=4 both are, at
  // m=8, nc=3); which one survives depends on removal order.
  EXPECT_EQ(shrunk.streams.size(), 1u);
  EXPECT_LE(shrunk.cycles, 14);  // 224 halves down until the fault needs the window
  EXPECT_EQ(shrunk.streams[0].start_cycle, 0);
}

TEST(Replay, ShrinkKeepsLoadBearingStreams) {
  // misclassify_simultaneous needs two ports on *different* CPUs hitting
  // the same bank; shrinking must not drop below that pair.
  FuzzCase fuzz_case;
  fuzz_case.config = sim::MemoryConfig{.banks = 8, .sections = 8, .bank_cycle = 2};
  fuzz_case.streams = sim::two_streams(0, 1, 0, 1);
  fuzz_case.cycles = 100;
  fuzz_case.fault = FaultKind::misclassify_simultaneous;
  const auto still_fails = [](const FuzzCase& candidate) {
    return !check::check_case(candidate, {}, /*run_invariants=*/false).ok();
  };
  ASSERT_TRUE(still_fails(fuzz_case));
  const FuzzCase shrunk = check::shrink_case(fuzz_case, still_fails);
  EXPECT_EQ(shrunk.streams.size(), 2u);
  EXPECT_TRUE(still_fails(shrunk));
}

TEST(Replay, ShrunkReproReplaysIdentically) {
  FuzzCase fuzz_case;
  fuzz_case.config = sim::MemoryConfig{.banks = 4, .sections = 4, .bank_cycle = 2};
  fuzz_case.streams = {sim::StreamConfig{.start_bank = 2, .distance = 0}};
  fuzz_case.cycles = 32;
  fuzz_case.fault = FaultKind::short_bank_busy;
  const auto still_fails = [](const FuzzCase& candidate) {
    return !check::check_case(candidate, {}, /*run_invariants=*/false).ok();
  };
  const FuzzCase shrunk = check::shrink_case(fuzz_case, still_fails);
  const FuzzCase replayed = check::parse_repro(check::encode_repro(shrunk));
  EXPECT_EQ(check::encode_repro(replayed), check::encode_repro(shrunk));
  EXPECT_TRUE(still_fails(replayed));
}

}  // namespace
}  // namespace vpmem
