// The headline acceptance tests for the differential harness: 500
// randomized configurations (fixed seed) with zero simulator/reference/
// theorem disagreements, and every deliberately injected arbitration bug
// caught within 100 iterations.
#include <gtest/gtest.h>

#include "vpmem/check/fuzzer.hpp"
#include "vpmem/check/replay.hpp"

namespace vpmem {
namespace {

using check::FaultKind;
using check::FuzzOptions;
using check::FuzzSummary;

TEST(DifferentialFuzz, FiveHundredRandomConfigsAgree) {
  FuzzOptions options;
  options.seed = 0x0ed1985;  // fixed: the whole run is deterministic
  options.iterations = 500;
  const FuzzSummary summary = check::fuzz(options);
  EXPECT_EQ(summary.iterations, 500);
  for (const auto& f : summary.failures) {
    ADD_FAILURE() << "iteration " << f.iteration << " [" << f.check << "] " << f.message
                  << "\n  replay: " << f.repro;
  }
  // Every iteration runs the differential plus applicable invariants.
  EXPECT_GE(summary.checks_run, 500 * 2);
  EXPECT_GT(summary.events_compared, 100'000);
}

TEST(DifferentialFuzz, InjectedArbitrationBugsCaughtWithin100Iterations) {
  for (FaultKind fault : check::all_faults()) {
    FuzzOptions options;
    options.seed = 0x0ed1985;
    options.iterations = 100;
    options.fault = fault;
    options.run_invariants = false;  // isolate the differential oracle
    options.max_failures = 1;
    const FuzzSummary summary = check::fuzz(options);
    ASSERT_FALSE(summary.ok()) << "fault " << check::to_string(fault)
                               << " survived 100 iterations undetected";
    const check::FuzzFailure& f = summary.failures.front();
    EXPECT_EQ(f.check, "differential");
    EXPECT_LT(f.iteration, 100);
    // The shrunk repro must still reproduce the disagreement and must not
    // be larger than the original case.
    ASSERT_FALSE(f.shrunk_repro.empty());
    const check::FuzzCase original = check::parse_repro(f.repro);
    const check::FuzzCase shrunk = check::parse_repro(f.shrunk_repro);
    EXPECT_EQ(shrunk.fault, fault);
    EXPECT_LE(shrunk.streams.size(), original.streams.size());
    EXPECT_LE(shrunk.cycles, original.cycles);
    const check::CaseResult replayed = check::check_case(shrunk, {}, false);
    EXPECT_FALSE(replayed.ok()) << check::to_string(fault) << ": shrunk repro no longer fails";
  }
}

TEST(DifferentialFuzz, SummaryJsonRoundTrips) {
  FuzzOptions options;
  options.iterations = 5;
  options.fault = FaultKind::short_bank_busy;
  options.run_invariants = false;
  const FuzzSummary summary = check::fuzz(options);
  const Json doc = summary.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "vpmem.fuzz_summary/1");
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
  EXPECT_EQ(doc.at("iterations").as_int(), summary.iterations);
  EXPECT_EQ(doc.at("failures").size(), summary.failures.size());
}

TEST(DifferentialFuzz, DeterministicPerSeed) {
  FuzzOptions options;
  options.iterations = 40;
  options.fault = FaultKind::priority_inversion;
  options.run_invariants = false;
  const FuzzSummary a = check::fuzz(options);
  const FuzzSummary b = check::fuzz(options);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].repro, b.failures[i].repro);
    EXPECT_EQ(a.failures[i].shrunk_repro, b.failures[i].shrunk_repro);
  }
  EXPECT_EQ(a.events_compared, b.events_compared);
}

}  // namespace
}  // namespace vpmem
