// Coverage for the perf-telemetry accessors (cycles_per_second and its
// wall_seconds == 0 guard on SteadyState, OffsetSweep and PerfReport) and
// for carrying fuzz results through the RunReport machinery.
#include <gtest/gtest.h>

#include <sstream>

#include "vpmem/check/fuzzer.hpp"
#include "vpmem/check/replay.hpp"
#include "vpmem/obs/report.hpp"
#include "vpmem/sim/steady_state.hpp"

namespace vpmem {
namespace {

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

TEST(PerfTelemetry, CyclesPerSecondGuardsAgainstZeroWallTime) {
  sim::SteadyState ss;
  ss.cycles_simulated = 1000;
  ss.wall_seconds = 0.0;
  EXPECT_EQ(ss.cycles_per_second(), 0.0);
  ss.wall_seconds = 0.25;
  EXPECT_DOUBLE_EQ(ss.cycles_per_second(), 4000.0);

  sim::OffsetSweep sweep;
  sweep.cycles_simulated = 500;
  EXPECT_EQ(sweep.cycles_per_second(), 0.0);
  sweep.wall_seconds = 2.0;
  EXPECT_DOUBLE_EQ(sweep.cycles_per_second(), 250.0);

  obs::PerfReport perf;
  perf.cycles_simulated = 300;
  EXPECT_EQ(perf.cycles_per_second(), 0.0);
  perf.wall_seconds = 3.0;
  EXPECT_DOUBLE_EQ(perf.cycles_per_second(), 100.0);
  perf.wall_seconds = -1.0;  // clock went backwards: still guarded
  EXPECT_EQ(perf.cycles_per_second(), 0.0);
}

TEST(PerfTelemetry, DetectionAndSweepReportPositiveCycleCounts) {
  const sim::SteadyState ss = sim::find_steady_state(flat(13, 4), sim::two_streams(0, 1, 4, 6));
  EXPECT_GT(ss.cycles_simulated, 0);
  EXPECT_GE(ss.wall_seconds, 0.0);
  const sim::OffsetSweep sweep = sim::sweep_start_offsets(flat(8, 2), 1, 3);
  EXPECT_GT(sweep.cycles_simulated, 0);
  EXPECT_GE(sweep.cycles_per_second(), 0.0);
}

TEST(FuzzReporting, FailingCaseRoundTripsThroughRunReport) {
  // A fuzz failure's configuration must be expressible as a RunReport so
  // `vpmem_cli fuzz --json` can attach full run context to each repro.
  check::FuzzOptions options;
  options.iterations = 30;
  options.fault = check::FaultKind::ignore_path_conflict;
  options.run_invariants = false;
  const check::FuzzSummary summary = check::fuzz(options);
  ASSERT_FALSE(summary.ok());
  const check::FuzzCase failing = check::parse_repro(summary.failures.front().repro);

  const obs::RunReport report = obs::report_run(failing.config, failing.streams,
                                                {.cycles = failing.cycles});
  const Json doc = report.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), obs::kRunReportSchema);
  const obs::RunReport back = obs::RunReport::from_json(doc);
  EXPECT_EQ(back.kind, report.kind);
  EXPECT_EQ(back.cycles, report.cycles);
  EXPECT_EQ(back.config.banks, failing.config.banks);
  EXPECT_EQ(back.streams.size(), failing.streams.size());
  EXPECT_EQ(back.to_json(), doc);
}

TEST(FuzzReporting, SummaryJsonCarriesReprosVerbatim) {
  check::FuzzOptions options;
  options.iterations = 40;
  options.fault = check::FaultKind::short_bank_busy;
  options.run_invariants = false;
  const check::FuzzSummary summary = check::fuzz(options);
  ASSERT_FALSE(summary.ok());
  const Json doc = summary.to_json();
  const Json reparsed = Json::parse(doc.dump());
  const auto& failures = reparsed.at("failures");
  ASSERT_EQ(failures.size(), summary.failures.size());
  for (std::size_t i = 0; i < summary.failures.size(); ++i) {
    EXPECT_EQ(failures.at(i).at("repro").as_string(), summary.failures[i].repro);
    // Each repro must parse back into a runnable case.
    EXPECT_NO_THROW(static_cast<void>(
        check::parse_repro(failures.at(i).at("repro").as_string())));
  }
}

}  // namespace
}  // namespace vpmem
