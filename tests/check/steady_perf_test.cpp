// Coverage for the perf-telemetry accessors (cycles_per_second and its
// wall_seconds == 0 guard on SteadyState, OffsetSweep and PerfReport) and
// for carrying fuzz results through the RunReport machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>

#include "vpmem/check/fuzzer.hpp"
#include "vpmem/check/replay.hpp"
#include "vpmem/obs/report.hpp"
#include "vpmem/obs/timer.hpp"
#include "vpmem/obs/tracer.hpp"
#include "vpmem/sim/steady_state.hpp"

namespace vpmem {
namespace {

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

TEST(PerfTelemetry, CyclesPerSecondGuardsAgainstZeroWallTime) {
  sim::SteadyState ss;
  ss.cycles_simulated = 1000;
  ss.wall_seconds = 0.0;
  EXPECT_EQ(ss.cycles_per_second(), 0.0);
  ss.wall_seconds = 0.25;
  EXPECT_DOUBLE_EQ(ss.cycles_per_second(), 4000.0);

  sim::OffsetSweep sweep;
  sweep.cycles_simulated = 500;
  EXPECT_EQ(sweep.cycles_per_second(), 0.0);
  sweep.wall_seconds = 2.0;
  EXPECT_DOUBLE_EQ(sweep.cycles_per_second(), 250.0);

  obs::PerfReport perf;
  perf.cycles_simulated = 300;
  EXPECT_EQ(perf.cycles_per_second(), 0.0);
  perf.wall_seconds = 3.0;
  EXPECT_DOUBLE_EQ(perf.cycles_per_second(), 100.0);
  perf.wall_seconds = -1.0;  // clock went backwards: still guarded
  EXPECT_EQ(perf.cycles_per_second(), 0.0);
}

TEST(PerfTelemetry, DetectionAndSweepReportPositiveCycleCounts) {
  const sim::SteadyState ss = sim::find_steady_state(flat(13, 4), sim::two_streams(0, 1, 4, 6));
  EXPECT_GT(ss.cycles_simulated, 0);
  EXPECT_GE(ss.wall_seconds, 0.0);
  const sim::OffsetSweep sweep = sim::sweep_start_offsets(flat(8, 2), 1, 3);
  EXPECT_GT(sweep.cycles_simulated, 0);
  EXPECT_GE(sweep.cycles_per_second(), 0.0);
}

TEST(PerfTelemetry, TracerOverheadStaysUnderTwoX) {
  // The tracing v2 budget: a fully instrumented run (bounded event buffer
  // + attribution fold on a single hook) must cost less than 2x the plain
  // engine.  Best-of-5 minimum timing on a mid-size workload keeps the
  // comparison stable against scheduler noise.
  const sim::MemoryConfig config{.banks = 64, .sections = 16, .bank_cycle = 4};
  std::vector<sim::StreamConfig> streams;
  for (i64 p = 0; p < 8; ++p) {
    streams.push_back(sim::StreamConfig{
        .start_bank = (p * 3) % 64, .distance = 1 + p % 3, .cpu = p % 2});
  }
  const i64 cycles = 100'000;
  const auto timed_run = [&](bool traced) {
    sim::MemorySystem mem{config, streams};
    std::optional<obs::Tracer> tracer;
    if (traced) tracer.emplace(mem);
    const obs::Stopwatch wall;
    mem.run(cycles, /*stop_when_finished=*/false);
    return wall.seconds();
  };
  // Paired back-to-back runs: a machine-wide slowdown hits both halves of
  // a pair alike, so the minimum per-pair ratio is stable against
  // scheduler noise where min(traced)/min(plain) is not.
  double best_ratio = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const double plain = timed_run(false);
    const double traced = timed_run(true);
    ASSERT_GT(plain, 0.0);
    best_ratio = std::min(best_ratio, traced / plain);
  }
  EXPECT_LT(best_ratio, 2.0) << "tracing overhead " << best_ratio << "x (best of 5 pairs)";
}

TEST(FuzzReporting, FailingCaseRoundTripsThroughRunReport) {
  // A fuzz failure's configuration must be expressible as a RunReport so
  // `vpmem_cli fuzz --json` can attach full run context to each repro.
  check::FuzzOptions options;
  options.iterations = 30;
  options.fault = check::FaultKind::ignore_path_conflict;
  options.run_invariants = false;
  const check::FuzzSummary summary = check::fuzz(options);
  ASSERT_FALSE(summary.ok());
  const check::FuzzCase failing = check::parse_repro(summary.failures.front().repro);

  const obs::RunReport report = obs::report_run(failing.config, failing.streams,
                                                {.cycles = failing.cycles});
  const Json doc = report.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), obs::kRunReportSchema);
  const obs::RunReport back = obs::RunReport::from_json(doc);
  EXPECT_EQ(back.kind, report.kind);
  EXPECT_EQ(back.cycles, report.cycles);
  EXPECT_EQ(back.config.banks, failing.config.banks);
  EXPECT_EQ(back.streams.size(), failing.streams.size());
  EXPECT_EQ(back.to_json(), doc);
}

TEST(FuzzReporting, SummaryJsonCarriesReprosVerbatim) {
  check::FuzzOptions options;
  options.iterations = 40;
  options.fault = check::FaultKind::short_bank_busy;
  options.run_invariants = false;
  const check::FuzzSummary summary = check::fuzz(options);
  ASSERT_FALSE(summary.ok());
  const Json doc = summary.to_json();
  const Json reparsed = Json::parse(doc.dump());
  const auto& failures = reparsed.at("failures");
  ASSERT_EQ(failures.size(), summary.failures.size());
  for (std::size_t i = 0; i < summary.failures.size(); ++i) {
    EXPECT_EQ(failures.at(i).at("repro").as_string(), summary.failures[i].repro);
    // Each repro must parse back into a runnable case.
    EXPECT_NO_THROW(static_cast<void>(
        check::parse_repro(failures.at(i).at("repro").as_string())));
  }
}

}  // namespace
}  // namespace vpmem
