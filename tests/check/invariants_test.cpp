// The invariant checker must (a) fire the right oracles for each
// configuration shape, (b) pass on configurations the property suite has
// already verified, and (c) report readable failures when two PortStats
// disagree.
#include <gtest/gtest.h>

#include "vpmem/check/invariants.hpp"
#include "vpmem/sim/memory_system.hpp"

namespace vpmem {
namespace {

using check::InvariantOptions;
using check::InvariantReport;

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

TEST(Invariants, Theorem3CaseRunsSynchronizationSweepAndPasses) {
  // m=12, nc=3, d1=1, d2=7: eq. 12 holds (theorems_test PaperExampleFig2).
  const InvariantReport report = check::check_invariants(flat(12, 3), sim::two_streams(0, 1, 5, 7));
  EXPECT_TRUE(report.did_run("theorem3_synchronization"));
  EXPECT_TRUE(report.did_run("theorem1_return_number"));
  EXPECT_TRUE(report.did_run("single_stream_bandwidth"));
  EXPECT_TRUE(report.did_run("collector_totals"));
  EXPECT_TRUE(report.did_run("bandwidth_bounds"));
  EXPECT_TRUE(report.did_run("windowed_measurement"));
  EXPECT_TRUE(report.did_run("translation_invariance"));
  EXPECT_TRUE(report.did_run("time_shift_invariance"));
  for (const auto& f : report.failures) ADD_FAILURE() << f.name << ": " << f.detail;
}

TEST(Invariants, UniqueBarrierCaseRunsTheorem5AndEq29SweepsAndPasses) {
  // m=12, nc=2, d1=1, d2=2: eq. 17 barrier, eq. 22 no-double-conflict and
  // eq. 24 uniqueness all hold, so the sweep must see b_eff = 3/2 with no
  // mutual delays from every offset (PairGrid property m12nc2).
  const InvariantReport report = check::check_invariants(flat(12, 2), sim::two_streams(0, 1, 3, 2));
  EXPECT_TRUE(report.did_run("theorem5_no_double_conflict"));
  EXPECT_TRUE(report.did_run("unique_barrier_bandwidth"));
  EXPECT_FALSE(report.did_run("theorem3_synchronization"));
  for (const auto& f : report.failures) ADD_FAILURE() << f.name << ": " << f.detail;
}

TEST(Invariants, SelfConflictingSingleStreamPasses) {
  // m=16, d=8: r = 2 < nc = 7, so b_eff = 2/7 — the single-stream oracle
  // must agree with the detected steady state.
  const std::vector<sim::StreamConfig> streams = {
      sim::StreamConfig{.start_bank = 3, .distance = 8}};
  const InvariantReport report = check::check_invariants(flat(16, 7), streams);
  EXPECT_TRUE(report.did_run("single_stream_bandwidth"));
  EXPECT_TRUE(report.ok()) << report.failures.front().name << ": "
                           << report.failures.front().detail;
}

TEST(Invariants, SectionedConfigWithCyclicPriorityPasses) {
  sim::MemoryConfig cfg{.banks = 16,
                        .sections = 4,
                        .bank_cycle = 3,
                        .mapping = sim::SectionMapping::consecutive,
                        .priority = sim::PriorityRule::cyclic};
  std::vector<sim::StreamConfig> streams = {
      sim::StreamConfig{.start_bank = 0, .distance = 3},
      sim::StreamConfig{.start_bank = 5, .distance = 1, .cpu = 1},
      sim::StreamConfig{.start_bank = 9, .distance = 7, .cpu = 2}};
  const InvariantReport report = check::check_invariants(cfg, streams);
  // Consecutive mapping: translation shifts by whole sections (m/s = 4).
  EXPECT_TRUE(report.did_run("translation_invariance"));
  EXPECT_TRUE(report.did_run("time_shift_invariance"));
  // Three streams: the pair-theorem sweeps must not fire.
  EXPECT_FALSE(report.did_run("theorem5_no_double_conflict"));
  for (const auto& f : report.failures) ADD_FAILURE() << f.name << ": " << f.detail;
}

TEST(Invariants, PatternStreamsSkipAffineOraclesButKeepCollector) {
  const std::vector<sim::StreamConfig> streams = {
      sim::StreamConfig{.bank_pattern = {0, 1, 4, 1}},
      sim::StreamConfig{.cpu = 1, .bank_pattern = {2, 2}}};
  const InvariantReport report = check::check_invariants(flat(8, 2), streams);
  EXPECT_FALSE(report.did_run("theorem1_return_number"));
  EXPECT_FALSE(report.did_run("single_stream_bandwidth"));
  EXPECT_TRUE(report.did_run("collector_totals"));
  EXPECT_TRUE(report.did_run("steady_state_detection"));
  for (const auto& f : report.failures) ADD_FAILURE() << f.name << ": " << f.detail;
}

TEST(Invariants, FiniteStreamsSkipSteadyStateChecks) {
  const std::vector<sim::StreamConfig> streams = {
      sim::StreamConfig{.start_bank = 0, .distance = 1, .length = 20},
      sim::StreamConfig{.start_bank = 1, .distance = 2, .cpu = 1}};
  const InvariantReport report = check::check_invariants(flat(8, 2), streams);
  EXPECT_TRUE(report.did_run("collector_totals"));
  EXPECT_FALSE(report.did_run("steady_state_detection"));
  EXPECT_FALSE(report.did_run("bandwidth_bounds"));
  EXPECT_TRUE(report.ok());
}

TEST(Invariants, EmptyStreamSetRunsNothing) {
  const InvariantReport report = check::check_invariants(flat(8, 2), {});
  EXPECT_TRUE(report.ran.empty());
  EXPECT_TRUE(report.ok());
}

TEST(Invariants, LargeBanksSkipTheoremSweeps) {
  InvariantOptions options;
  options.max_sweep_banks = 8;  // below m = 12
  const InvariantReport report =
      check::check_invariants(flat(12, 3), sim::two_streams(0, 1, 5, 7), options);
  EXPECT_FALSE(report.did_run("theorem3_synchronization"));
  EXPECT_TRUE(report.did_run("bandwidth_bounds"));
  EXPECT_TRUE(report.ok());
}

TEST(Invariants, ComparePortStatsReportsFirstDifferingField) {
  sim::PortStats a;
  a.grants = 10;
  a.bank_conflicts = 3;
  a.longest_stall = 2;
  sim::PortStats b = a;
  EXPECT_EQ(check::compare_port_stats(a, b), "");
  b.bank_conflicts = 4;
  const std::string msg = check::compare_port_stats(a, b);
  EXPECT_NE(msg.find("bank_conflicts"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("4"), std::string::npos) << msg;
  b = a;
  b.longest_stall = 9;
  EXPECT_NE(check::compare_port_stats(a, b).find("longest_stall"), std::string::npos);
}

TEST(Invariants, DidRunMatchesRanList) {
  InvariantReport report;
  report.ran = {"alpha", "beta"};
  EXPECT_TRUE(report.did_run("alpha"));
  EXPECT_FALSE(report.did_run("gamma"));
}

}  // namespace
}  // namespace vpmem
