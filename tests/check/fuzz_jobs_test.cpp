// Sharded fuzzing must be a pure function of the seed, independent of
// the worker count: a --jobs 8 campaign reports byte-for-byte the same
// summary as the sequential run.  Exercised both on a healthy run (no
// failures, counters only) and under reference-model fault injection
// with shrinking and the max_failures early stop — the paths where
// shard order could most plausibly leak into the output.
#include <gtest/gtest.h>

#include <string>

#include "vpmem/check/fuzzer.hpp"

namespace vpmem {
namespace {

check::FuzzSummary run_fuzz(int jobs, check::FaultKind fault, i64 iterations) {
  check::FuzzOptions options;
  options.seed = 0xfeed5eed;
  options.iterations = iterations;
  options.jobs = jobs;
  options.fault = fault;
  return check::fuzz(options);
}

std::string dump(const check::FuzzSummary& summary) { return summary.to_json().dump(2); }

TEST(FuzzJobs, HealthyRunIsIdenticalAcrossWorkerCounts) {
  const check::FuzzSummary sequential = run_fuzz(1, check::FaultKind::none, 96);
  ASSERT_TRUE(sequential.ok()) << dump(sequential);
  EXPECT_EQ(sequential.iterations, 96);

  for (int jobs : {2, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const check::FuzzSummary sharded = run_fuzz(jobs, check::FaultKind::none, 96);
    EXPECT_EQ(dump(sequential), dump(sharded));
  }
}

TEST(FuzzJobs, FaultInjectionFindsTheSameFailuresAcrossWorkerCounts) {
  // short-bank-busy is a high-hit-rate mutation: the sequential run trips
  // max_failures (8) well before the iteration budget, so this also pins
  // down the early-stop boundary under sharding.
  const check::FuzzSummary sequential =
      run_fuzz(1, check::FaultKind::short_bank_busy, 400);
  ASSERT_FALSE(sequential.failures.empty()) << "fault injection found nothing";
  for (const auto& f : sequential.failures) {
    EXPECT_FALSE(f.repro.empty());
    EXPECT_FALSE(f.shrunk_repro.empty());  // shrinking ran and is deterministic
  }

  const check::FuzzSummary sharded = run_fuzz(8, check::FaultKind::short_bank_busy, 400);
  EXPECT_EQ(dump(sequential), dump(sharded));
}

}  // namespace
}  // namespace vpmem
