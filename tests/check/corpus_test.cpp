// Replays the recorded fuzz corpus: every line under tests/check/corpus/
// is a one-line repro (see replay.hpp).  Lines with an injected fault
// must still be caught by the differential harness; lines with
// fault=none are regression seeds that must pass all checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "vpmem/check/fuzzer.hpp"
#include "vpmem/check/replay.hpp"

namespace vpmem {
namespace {

struct CorpusLine {
  std::string file;
  int line_number = 0;
  std::string text;
};

std::vector<CorpusLine> load_corpus() {
  std::vector<CorpusLine> lines;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator{VPMEM_CHECK_CORPUS_DIR}) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in{path};
    std::string text;
    int number = 0;
    while (std::getline(in, text)) {
      ++number;
      if (text.empty() || text[0] == '#') continue;
      lines.push_back({path.filename().string(), number, text});
    }
  }
  return lines;
}

TEST(Corpus, HasRecordedSeeds) {
  const auto corpus = load_corpus();
  EXPECT_FALSE(corpus.empty()) << "no repro lines under " << VPMEM_CHECK_CORPUS_DIR;
}

TEST(Corpus, EveryLineReplaysWithItsExpectedVerdict) {
  for (const auto& entry : load_corpus()) {
    SCOPED_TRACE(entry.file + ":" + std::to_string(entry.line_number) + ": " + entry.text);
    check::FuzzCase fuzz_case;
    ASSERT_NO_THROW(fuzz_case = check::parse_repro(entry.text));
    const check::CaseResult result =
        check::check_case(fuzz_case, {}, /*run_invariants=*/fuzz_case.fault ==
                                             check::FaultKind::none);
    if (fuzz_case.fault == check::FaultKind::none) {
      for (const auto& f : result.failures) {
        ADD_FAILURE() << "[" << f.check << "] " << f.message;
      }
    } else {
      EXPECT_FALSE(result.ok()) << "injected fault no longer caught";
    }
  }
}

TEST(Corpus, LinesAreCanonicallyEncoded) {
  // Each recorded line must round-trip byte-for-byte, so the corpus stays
  // greppable and diffs cleanly.
  for (const auto& entry : load_corpus()) {
    EXPECT_EQ(check::encode_repro(check::parse_repro(entry.text)), entry.text)
        << entry.file << ":" << entry.line_number;
  }
}

}  // namespace
}  // namespace vpmem
