// Regression: the legacy set_event_hook shim and the hook multiplexer
// must coexist — attaching a Collector never drops a legacy hook and vice
// versa, and removing the legacy hook leaves the Collector attached.
#include <gtest/gtest.h>

#include "vpmem/obs/collector.hpp"
#include "vpmem/sim/memory_system.hpp"

namespace vpmem {
namespace {

sim::MemorySystem make_system() {
  return sim::MemorySystem{sim::MemoryConfig{.banks = 13, .sections = 13, .bank_cycle = 4},
                           sim::two_streams(0, 1, 4, 6)};
}

TEST(EventHookShim, LegacyHookAndCollectorBothFire) {
  sim::MemorySystem mem = make_system();
  i64 legacy_events = 0;
  mem.set_event_hook([&legacy_events](const sim::Event&) { ++legacy_events; });
  EXPECT_EQ(mem.event_hook_count(), 1u);

  obs::Collector collector{mem};
  EXPECT_EQ(mem.event_hook_count(), 2u);

  mem.run(100, /*stop_when_finished=*/false);
  collector.finish();

  EXPECT_GT(legacy_events, 0);
  i64 collector_events = 0;
  for (const auto& stats : collector.port_stats()) {
    collector_events += stats.grants + stats.total_conflicts();
  }
  // Both observers saw the same stream of events.
  EXPECT_EQ(collector_events, legacy_events);
}

TEST(EventHookShim, ReplacingLegacyHookKeepsCollector) {
  sim::MemorySystem mem = make_system();
  obs::Collector collector{mem};
  i64 first = 0;
  i64 second = 0;
  mem.set_event_hook([&first](const sim::Event&) { ++first; });
  mem.run(50, /*stop_when_finished=*/false);
  // Replacing the legacy hook must not disturb the Collector's slot.
  mem.set_event_hook([&second](const sim::Event&) { ++second; });
  EXPECT_EQ(mem.event_hook_count(), 2u);
  mem.run(50, /*stop_when_finished=*/false);
  EXPECT_GT(first, 0);
  EXPECT_GT(second, 0);

  // Removing the legacy hook leaves only the Collector attached.
  mem.set_event_hook(nullptr);
  EXPECT_EQ(mem.event_hook_count(), 1u);
  mem.run(50, /*stop_when_finished=*/false);
  collector.finish();

  // The Collector observed all 150 cycles: its totals still reconcile
  // with the simulator's own counters.
  const auto expected = mem.all_stats();
  const auto actual = collector.port_stats();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t p = 0; p < expected.size(); ++p) {
    EXPECT_EQ(actual[p].grants, expected[p].grants) << p;
    EXPECT_EQ(actual[p].total_conflicts(), expected[p].total_conflicts()) << p;
  }
}

TEST(EventHookShim, RemovingCollectorKeepsLegacyHook) {
  sim::MemorySystem mem = make_system();
  i64 legacy_events = 0;
  mem.set_event_hook([&legacy_events](const sim::Event&) { ++legacy_events; });
  {
    obs::Collector collector{mem};
    mem.run(50, /*stop_when_finished=*/false);
  }  // Collector detaches on destruction.
  EXPECT_EQ(mem.event_hook_count(), 1u);
  const i64 before = legacy_events;
  mem.run(50, /*stop_when_finished=*/false);
  EXPECT_GT(legacy_events, before);
}

}  // namespace
}  // namespace vpmem
