// The naive reference model must agree event-for-event with the
// production simulator on hand-picked configurations covering every
// arbitration feature, and each FaultKind mutation must visibly diverge
// on a scenario crafted to trigger the rule it breaks.
#include <gtest/gtest.h>

#include "vpmem/check/differential.hpp"
#include "vpmem/check/reference_model.hpp"
#include "vpmem/sim/memory_system.hpp"

namespace vpmem {
namespace {

using check::DiffResult;
using check::FaultKind;

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

TEST(ReferenceModel, AgreesOnPaperFigureConfigurations) {
  // Fig. 2 conflict-free, Fig. 3 barrier, Fig. 4 double conflict shapes.
  for (auto [d1, d2] : {std::pair<i64, i64>{1, 7}, {1, 6}, {2, 3}}) {
    const DiffResult r = check::diff_run(flat(13, 4), sim::two_streams(0, d1, 4, d2), 300);
    EXPECT_TRUE(r.agreed) << "d1=" << d1 << " d2=" << d2 << ": " << r.message;
    EXPECT_GT(r.grants, 0);
  }
}

TEST(ReferenceModel, AgreesWithSectionsAndBothMappings) {
  for (const auto mapping : {sim::SectionMapping::cyclic, sim::SectionMapping::consecutive}) {
    sim::MemoryConfig cfg{.banks = 16, .sections = 4, .bank_cycle = 3, .mapping = mapping};
    // Three ports on one CPU plus one on a second CPU: exercises section,
    // simultaneous and bank conflicts together.
    std::vector<sim::StreamConfig> streams = {
        sim::StreamConfig{.start_bank = 0, .distance = 1},
        sim::StreamConfig{.start_bank = 4, .distance = 1},
        sim::StreamConfig{.start_bank = 8, .distance = 2},
        sim::StreamConfig{.start_bank = 1, .distance = 3, .cpu = 1}};
    const DiffResult r = check::diff_run(cfg, streams, 300);
    EXPECT_TRUE(r.agreed) << sim::to_string(mapping) << ": " << r.message;
  }
}

TEST(ReferenceModel, AgreesUnderCyclicPriority) {
  sim::MemoryConfig cfg = flat(8, 2);
  cfg.priority = sim::PriorityRule::cyclic;
  // The linked-conflict shape of Fig. 8(b): cyclic priority resolves it.
  const DiffResult r = check::diff_run(cfg, sim::two_streams(0, 1, 0, 1, /*same_cpu=*/true),
                                       250);
  EXPECT_TRUE(r.agreed) << r.message;
}

TEST(ReferenceModel, AgreesOnPatternFiniteAndDelayedStreams) {
  sim::MemoryConfig cfg{.banks = 12, .sections = 6, .bank_cycle = 4};
  std::vector<sim::StreamConfig> streams = {
      sim::StreamConfig{.start_bank = 0, .distance = -5, .length = 40},
      sim::StreamConfig{.cpu = 1, .start_cycle = 7, .bank_pattern = {0, 3, 3, 7}},
      sim::StreamConfig{.start_bank = 11, .distance = 0, .cpu = 2, .length = 9}};
  const DiffResult r = check::diff_run(cfg, streams, 300);
  EXPECT_TRUE(r.agreed) << r.message;
}

TEST(ReferenceModel, AgreesOnDegenerateShapes) {
  // m = 1: every request hits the single bank.
  EXPECT_TRUE(check::diff_run(flat(1, 3), sim::two_streams(0, 1, 0, 1), 100).agreed);
  // No ports at all.
  EXPECT_TRUE(check::diff_run(flat(4, 2), {}, 50).agreed);
  // Port that never starts inside the window.
  EXPECT_TRUE(
      check::diff_run(flat(4, 2), {sim::StreamConfig{.start_cycle = 1000}}, 100).agreed);
}

TEST(ReferenceModel, StatsMatchSimulatorFieldForField) {
  const auto cfg = flat(13, 6);
  const auto streams = sim::two_streams(0, 1, 7, 6);
  sim::MemorySystem mem{cfg, streams};
  mem.run(400, false);
  check::ReferenceModel ref{cfg, streams};
  ref.run(400);
  const auto expected = mem.all_stats();
  const auto actual = ref.stats();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t p = 0; p < expected.size(); ++p) {
    EXPECT_EQ(actual[p].grants, expected[p].grants) << p;
    EXPECT_EQ(actual[p].bank_conflicts, expected[p].bank_conflicts) << p;
    EXPECT_EQ(actual[p].simultaneous_conflicts, expected[p].simultaneous_conflicts) << p;
    EXPECT_EQ(actual[p].section_conflicts, expected[p].section_conflicts) << p;
    EXPECT_EQ(actual[p].first_grant_cycle, expected[p].first_grant_cycle) << p;
    EXPECT_EQ(actual[p].last_grant_cycle, expected[p].last_grant_cycle) << p;
    EXPECT_EQ(actual[p].longest_stall, expected[p].longest_stall) << p;
  }
}

TEST(ReferenceModelFaults, EachMutationDivergesOnItsTriggerScenario) {
  // ignore_path_conflict: two same-CPU ports hit distinct inactive banks
  // of the same section in the same period.
  {
    sim::MemoryConfig cfg{.banks = 8, .sections = 2, .bank_cycle = 1};
    std::vector<sim::StreamConfig> streams = {
        sim::StreamConfig{.start_bank = 0, .distance = 2},
        sim::StreamConfig{.start_bank = 2, .distance = 2}};
    EXPECT_FALSE(check::diff_run(cfg, streams, 50, FaultKind::ignore_path_conflict).agreed);
    EXPECT_TRUE(check::diff_run(cfg, streams, 50).agreed);
  }
  // short_bank_busy: a self-conflicting stream is paced by nc.
  {
    const std::vector<sim::StreamConfig> streams = {sim::StreamConfig{.distance = 0}};
    EXPECT_FALSE(check::diff_run(flat(4, 2), streams, 50, FaultKind::short_bank_busy).agreed);
    EXPECT_TRUE(check::diff_run(flat(4, 2), streams, 50).agreed);
  }
  // priority_inversion / misclassify_simultaneous: two CPUs collide on
  // one bank in the same period.
  {
    const auto streams = sim::two_streams(0, 1, 0, 1);
    EXPECT_FALSE(check::diff_run(flat(8, 2), streams, 50, FaultKind::priority_inversion).agreed);
    EXPECT_FALSE(
        check::diff_run(flat(8, 2), streams, 50, FaultKind::misclassify_simultaneous).agreed);
    EXPECT_TRUE(check::diff_run(flat(8, 2), streams, 50).agreed);
  }
  // drop_rotation: under cyclic priority two ports fight for one bank;
  // the rotation decides who wins each period.
  {
    sim::MemoryConfig cfg = flat(4, 1);
    cfg.priority = sim::PriorityRule::cyclic;
    const auto streams = sim::two_streams(0, 0, 0, 0);
    EXPECT_FALSE(check::diff_run(cfg, streams, 50, FaultKind::drop_rotation).agreed);
    EXPECT_TRUE(check::diff_run(cfg, streams, 50).agreed);
  }
}

TEST(ReferenceModelFaults, NamesRoundTrip) {
  EXPECT_EQ(check::fault_from_string("none"), FaultKind::none);
  for (FaultKind f : check::all_faults()) {
    EXPECT_EQ(check::fault_from_string(check::to_string(f)), f);
  }
  EXPECT_THROW(static_cast<void>(check::fault_from_string("no-such-fault")),
               std::invalid_argument);
}

}  // namespace
}  // namespace vpmem
