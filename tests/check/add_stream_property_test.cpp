// Property: under fixed priority, injecting a port mid-run with
// add_stream is indistinguishable from declaring the same port upfront
// with the same start_cycle.  (Under cyclic priority the rotation modulus
// changes when the port count does, so the equivalence is deliberately
// restricted to the fixed rule.)
#include <gtest/gtest.h>

#include "vpmem/baseline/rng.hpp"
#include "vpmem/sim/memory_system.hpp"

namespace vpmem {
namespace {

void expect_same_outcome(const sim::MemoryConfig& cfg,
                         const std::vector<sim::StreamConfig>& initial,
                         const sim::StreamConfig& late, i64 inject_at, i64 total_cycles,
                         const std::string& label) {
  // Upfront: all ports declared at construction.
  std::vector<sim::StreamConfig> upfront = initial;
  upfront.push_back(late);
  sim::MemorySystem reference{cfg, upfront};
  reference.run(total_cycles, /*stop_when_finished=*/false);

  // Injected: run to inject_at, then add the port and continue.
  sim::MemorySystem injected{cfg, initial};
  injected.run(inject_at, /*stop_when_finished=*/false);
  const std::size_t port = injected.add_stream(late);
  EXPECT_EQ(port, initial.size()) << label;
  injected.run(total_cycles - inject_at, /*stop_when_finished=*/false);

  const auto expected = reference.all_stats();
  const auto actual = injected.all_stats();
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t p = 0; p < expected.size(); ++p) {
    EXPECT_EQ(actual[p].grants, expected[p].grants) << label << " port " << p;
    EXPECT_EQ(actual[p].bank_conflicts, expected[p].bank_conflicts) << label << " port " << p;
    EXPECT_EQ(actual[p].simultaneous_conflicts, expected[p].simultaneous_conflicts)
        << label << " port " << p;
    EXPECT_EQ(actual[p].section_conflicts, expected[p].section_conflicts)
        << label << " port " << p;
    EXPECT_EQ(actual[p].first_grant_cycle, expected[p].first_grant_cycle)
        << label << " port " << p;
    EXPECT_EQ(actual[p].last_grant_cycle, expected[p].last_grant_cycle)
        << label << " port " << p;
  }
  for (i64 bank = 0; bank < cfg.banks; ++bank) {
    EXPECT_EQ(injected.bank_grants(bank), reference.bank_grants(bank)) << label << " bank "
                                                                       << bank;
  }
}

TEST(AddStreamProperty, MidRunInjectionMatchesUpfrontDeclaration) {
  const sim::MemoryConfig cfg{.banks = 13, .sections = 13, .bank_cycle = 4};
  const std::vector<sim::StreamConfig> initial = {
      sim::StreamConfig{.start_bank = 0, .distance = 1}};
  const sim::StreamConfig late{.start_bank = 4, .distance = 6, .cpu = 1, .start_cycle = 50};
  expect_same_outcome(cfg, initial, late, 50, 300, "paper pair");
  // Injecting earlier than the port's own start is also equivalent.
  expect_same_outcome(cfg, initial, late, 20, 300, "early injection");
}

TEST(AddStreamProperty, RandomizedTrialsAgree) {
  baseline::SplitMix64 rng{0xadd5723u};
  const auto pick = [&rng](i64 bound) {
    return static_cast<i64>(rng.next_below(static_cast<std::uint64_t>(bound)));
  };
  for (int trial = 0; trial < 10; ++trial) {
    const i64 m = 4 + pick(13);  // 4..16
    sim::MemoryConfig cfg{.banks = m, .sections = m, .bank_cycle = 1 + pick(5)};
    std::vector<sim::StreamConfig> initial;
    const i64 ports = 1 + pick(2);
    for (i64 i = 0; i < ports; ++i) {
      initial.push_back(
          sim::StreamConfig{.start_bank = pick(m), .distance = 1 + pick(m - 1), .cpu = i});
    }
    const i64 inject_at = 10 + pick(40);
    const sim::StreamConfig late{.start_bank = pick(m),
                                 .distance = 1 + pick(m - 1),
                                 .cpu = 2,
                                 .start_cycle = inject_at + pick(8)};
    expect_same_outcome(cfg, initial, late, inject_at, 260,
                        "trial " + std::to_string(trial));
  }
}

TEST(AddStreamProperty, RejectsStartCycleInThePast) {
  sim::MemorySystem mem{sim::MemoryConfig{.banks = 8, .sections = 8, .bank_cycle = 2},
                        {sim::StreamConfig{.start_bank = 0, .distance = 1}}};
  mem.run(20, /*stop_when_finished=*/false);
  EXPECT_THROW(static_cast<void>(
                   mem.add_stream(sim::StreamConfig{.start_bank = 1, .distance = 1,
                                                    .start_cycle = 5})),
               std::invalid_argument);
}

}  // namespace
}  // namespace vpmem
