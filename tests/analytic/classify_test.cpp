#include "vpmem/analytic/classify.hpp"

#include <gtest/gtest.h>

namespace vpmem::analytic {
namespace {

TEST(Classify, SelfConflictingDominates) {
  // m=16, nc=4, d=8 -> r=2 < nc.
  const PairPrediction p = classify_pair(16, 4, 8, 1);
  EXPECT_EQ(p.cls, PairClass::self_conflicting);
  EXPECT_FALSE(p.bandwidth.has_value());
}

TEST(Classify, Fig2IsConflictFree) {
  const PairPrediction p = classify_pair(12, 3, 1, 7);
  EXPECT_EQ(p.cls, PairClass::conflict_free_synchronized);
  EXPECT_EQ(p.bandwidth, std::optional<Rational>{Rational{2}});
}

TEST(Classify, DisjointPossible) {
  // m=16, nc=4, d1=2, d2=6: f=2 > 1; eq. 12: m'=8, diff'=2, gcd(8,2)=2 < 8.
  const PairPrediction p = classify_pair(16, 4, 2, 6);
  EXPECT_EQ(p.cls, PairClass::disjoint_possible);
  EXPECT_EQ(p.bandwidth, std::optional<Rational>{Rational{2}});
}

TEST(Classify, UniqueBarrier) {
  // m=26, nc=3, d1=1, d2=3: Theorem 6 applies (checked in theorems_test).
  const PairPrediction p = classify_pair(26, 3, 1, 3);
  EXPECT_EQ(p.cls, PairClass::unique_barrier);
  EXPECT_EQ(p.bandwidth, std::optional<Rational>{(Rational{4, 3})});
}

TEST(Classify, Fig3PairIsStartDependent) {
  // m=13, nc=6, d1=1, d2=6: barrier at b2=0 (Fig. 3) but double conflict
  // at b2=1 (Fig. 4) -> outcome depends on starts.
  const PairPrediction p = classify_pair(13, 6, 1, 6);
  EXPECT_EQ(p.cls, PairClass::start_dependent);
  EXPECT_FALSE(p.bandwidth.has_value());
}

TEST(Classify, Fig5PairIsStartDependent) {
  // m=13, nc=4, d1=1, d2=3: Fig. 5 barrier vs Fig. 6 inverted barrier.
  const PairPrediction p = classify_pair(13, 4, 1, 3);
  EXPECT_EQ(p.cls, PairClass::start_dependent);
}

TEST(Classify, NormalizesBeforeBarrierCheck) {
  // 3 (+) 9 on m=26 is isomorphic to 1 (+) 3 (multiply by 9: 27 mod 26 = 1,
  // 81 mod 26 = 3), so it must classify identically to (1, 3).
  const PairPrediction direct = classify_pair(26, 3, 1, 3);
  const PairPrediction iso = classify_pair(26, 3, 3, 9);
  EXPECT_EQ(iso.cls, direct.cls);
  EXPECT_EQ(iso.bandwidth, direct.bandwidth);
}

TEST(Classify, ToStringCoversAllClasses) {
  EXPECT_EQ(to_string(PairClass::self_conflicting), "self-conflicting");
  EXPECT_EQ(to_string(PairClass::disjoint_possible), "disjoint-possible");
  EXPECT_EQ(to_string(PairClass::conflict_free_synchronized), "conflict-free");
  EXPECT_EQ(to_string(PairClass::unique_barrier), "unique-barrier");
  EXPECT_EQ(to_string(PairClass::start_dependent), "start-dependent");
}

}  // namespace
}  // namespace vpmem::analytic
