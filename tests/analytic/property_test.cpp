// Property suite: every theorem of Section III is checked against the
// exact cycle-level simulator over parameter grids.  These are the
// strongest correctness guarantees in the repository — the analytic model
// and the machine model are implemented independently and must agree.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "vpmem/analytic/isomorphism.hpp"
#include "vpmem/analytic/stream.hpp"
#include "vpmem/analytic/theorems.hpp"
#include "vpmem/sim/steady_state.hpp"

namespace vpmem {
namespace {

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

using GridParams = std::tuple<i64, i64>;  // m, nc

class PairGrid : public ::testing::TestWithParam<GridParams> {
 protected:
  [[nodiscard]] i64 m() const { return std::get<0>(GetParam()); }
  [[nodiscard]] i64 nc() const { return std::get<1>(GetParam()); }
  [[nodiscard]] bool both_self_free(i64 d1, i64 d2) const {
    return analytic::self_conflict_free(m(), d1, nc()) &&
           analytic::self_conflict_free(m(), d2, nc());
  }
};

// Theorem 3 + synchronization: when eq. 12 holds (and neither stream
// self-conflicts), *every* relative start position converges to a
// conflict-free cycle with b_eff = 2.
TEST_P(PairGrid, Theorem3SynchronizationHolds) {
  for (i64 d1 = 1; d1 < m(); ++d1) {
    for (i64 d2 = 1; d2 < m(); ++d2) {
      if (!both_self_free(d1, d2)) continue;
      if (!analytic::conflict_free_achievable(m(), nc(), d1, d2)) continue;
      const sim::OffsetSweep sweep = sim::sweep_start_offsets(flat(m(), nc()), d1, d2);
      EXPECT_EQ(sweep.min_bandwidth, Rational{2})
          << "m=" << m() << " nc=" << nc() << " d1=" << d1 << " d2=" << d2;
    }
  }
}

// Theorem 3, only-if direction: when eq. 12 fails, no start position can
// make two streams with *intersecting* access sets conflict-free — the
// maximum over offsets with intersecting sets stays below 2.
TEST_P(PairGrid, Theorem3ConverseNoConflictFreePlacement) {
  for (i64 d1 = 1; d1 < m(); ++d1) {
    for (i64 d2 = 1; d2 < m(); ++d2) {
      if (!both_self_free(d1, d2)) continue;
      if (analytic::conflict_free_achievable(m(), nc(), d1, d2)) continue;
      for (i64 b2 = 0; b2 < m(); ++b2) {
        if (analytic::access_sets_disjoint(m(), 0, d1, b2, d2)) continue;
        const sim::SteadyState ss =
            sim::find_steady_state(flat(m(), nc()), sim::two_streams(0, d1, b2, d2));
        EXPECT_LT(ss.bandwidth, Rational{2})
            << "m=" << m() << " nc=" << nc() << " d1=" << d1 << " d2=" << d2 << " b2=" << b2;
      }
    }
  }
}

// Theorem 2: gcd(m, d1, d2) > 1 makes consecutive start banks disjoint,
// and disjoint placements run at full bandwidth.
TEST_P(PairGrid, Theorem2DisjointPlacementRunsAtFullBandwidth) {
  for (i64 d1 = 1; d1 < m(); ++d1) {
    for (i64 d2 = 1; d2 < m(); ++d2) {
      if (!both_self_free(d1, d2)) continue;
      if (!analytic::disjoint_access_sets_achievable(m(), d1, d2)) continue;
      ASSERT_TRUE(analytic::access_sets_disjoint(m(), 0, d1, 1, d2));
      const sim::SteadyState ss =
          sim::find_steady_state(flat(m(), nc()), sim::two_streams(0, d1, 1, d2));
      EXPECT_EQ(ss.bandwidth, Rational{2})
          << "m=" << m() << " nc=" << nc() << " d1=" << d1 << " d2=" << d2;
      EXPECT_TRUE(ss.conflict_free());
    }
  }
}

// Theorems 6/7 + eq. 29: a unique barrier-situation yields
// b_eff = 1 + d1/d2 from *every* relative start position.
TEST_P(PairGrid, UniqueBarrierBandwidthIsEq29ForAllOffsets) {
  for (i64 d1 = 1; d1 < m(); ++d1) {
    if (m() % d1 != 0) continue;
    for (i64 d2 = d1 + 1; d2 < m(); ++d2) {
      if (!both_self_free(d1, d2)) continue;
      if (analytic::conflict_free_achievable(m(), nc(), d1, d2)) continue;
      if (analytic::disjoint_access_sets_achievable(m(), d1, d2)) continue;
      if (!analytic::unique_barrier(m(), nc(), d1, d2, /*stream1_priority=*/true)) continue;
      const Rational expected = analytic::barrier_bandwidth(d1, d2);
      const sim::OffsetSweep sweep = sim::sweep_start_offsets(flat(m(), nc()), d1, d2);
      EXPECT_EQ(sweep.min_bandwidth, expected)
          << "m=" << m() << " nc=" << nc() << " d1=" << d1 << " d2=" << d2;
      EXPECT_EQ(sweep.max_bandwidth, expected)
          << "m=" << m() << " nc=" << nc() << " d1=" << d1 << " d2=" << d2;
    }
  }
}

// Theorem 5: within the eq. 17 barrier context, when (nc-1)(d2+d1) < m no
// start position leads to a double conflict — in every steady cycle at
// most one of the two streams is ever delayed.  (The eq. 17 scoping is
// required: see Theorem5NeedsBarrierContext below.)
TEST_P(PairGrid, Theorem5NoDoubleConflict) {
  for (i64 d1 = 1; d1 < m(); ++d1) {
    if (m() % d1 != 0) continue;
    for (i64 d2 = d1 + 1; d2 < m(); ++d2) {
      if (!both_self_free(d1, d2)) continue;
      if (!analytic::barrier_possible(m(), nc(), d1, d2)) continue;
      if (!analytic::double_conflict_impossible(m(), nc(), d1, d2)) continue;
      for (i64 b2 = 0; b2 < m(); ++b2) {
        const sim::SteadyState ss =
            sim::find_steady_state(flat(m(), nc()), sim::two_streams(0, d1, b2, d2));
        const bool port0_delayed = !ss.port_conflict_free(0);
        const bool port1_delayed = !ss.port_conflict_free(1);
        EXPECT_FALSE(port0_delayed && port1_delayed)
            << "double conflict at m=" << m() << " nc=" << nc() << " d1=" << d1
            << " d2=" << d2 << " b2=" << b2;
      }
    }
  }
}

// Effective bandwidth never exceeds the port count and never drops below
// the worst single stream (sanity envelope for every pair).
TEST_P(PairGrid, BandwidthEnvelope) {
  for (i64 d1 = 1; d1 < m(); ++d1) {
    for (i64 d2 = 1; d2 < m(); ++d2) {
      const sim::SteadyState ss =
          sim::find_steady_state(flat(m(), nc()), sim::two_streams(0, d1, 2 % m(), d2));
      EXPECT_LE(ss.bandwidth, Rational{2});
      EXPECT_GT(ss.bandwidth, Rational{0});
      // Each port individually can at best stream one element per period.
      for (const auto& bw : ss.per_port) EXPECT_LE(bw, Rational{1});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PairGrid,
                         ::testing::Values(GridParams{8, 2}, GridParams{12, 2},
                                           GridParams{12, 3}, GridParams{13, 4},
                                           GridParams{13, 6}, GridParams{16, 4},
                                           GridParams{16, 2}, GridParams{24, 3}),
                         [](const ::testing::TestParamInfo<GridParams>& param_info) {
                           std::string name = "m";
                           name += std::to_string(std::get<0>(param_info.param));
                           name += "_nc";
                           name += std::to_string(std::get<1>(param_info.param));
                           return name;
                         });

// Reproduction findings (documented in EXPERIMENTS.md): two boundary cases
// where the theorems' stated side conditions are not quite sufficient.
TEST(ReproductionFindings, Theorem5NeedsBarrierContext) {
  // m=12, nc=2, d1=1, d2=4 satisfies eq. 22 ((nc-1)(d1+d2) = 5 < 12) and
  // all of Theorem 5's listed side conditions, yet every start offset
  // yields a mutual-delay cycle at b_eff = 8/5 — eq. 17 fails (c = 3 >=
  // nc), so the pair is outside the barrier context the proof assumes.
  EXPECT_TRUE(analytic::double_conflict_impossible(12, 2, 1, 4));
  EXPECT_TRUE(analytic::barrier_preconditions_hold(12, 2, 1, 4));
  EXPECT_FALSE(analytic::barrier_possible(12, 2, 1, 4));
  const sim::SteadyState ss = sim::find_steady_state(flat(12, 2), sim::two_streams(0, 1, 0, 4));
  EXPECT_EQ(ss.bandwidth, (Rational{8, 5}));
  EXPECT_FALSE(ss.port_conflict_free(0));
  EXPECT_FALSE(ss.port_conflict_free(1));
}

TEST(ReproductionFindings, Theorem4DegeneratesWhenProductDividesM) {
  // m=12, nc=2, d1=3, d2=8: eq. 17's inequality holds, but the proof's
  // "first common address after 0 is d1*d2 mod m" degenerates because
  // 3*8 = 24 == 0 (mod 12).  No barrier placement exists: every offset
  // runs the same mutual-delay cycle at 7/4 (not 1 + 3/8 = 11/8).
  EXPECT_FALSE(analytic::barrier_possible(12, 2, 3, 8));
  const sim::OffsetSweep sweep = sim::sweep_start_offsets(flat(12, 2), 3, 8);
  EXPECT_EQ(sweep.min_bandwidth, (Rational{7, 4}));
  EXPECT_EQ(sweep.max_bandwidth, (Rational{7, 4}));
}

// Appendix: isomorphic distance pairs produce the same multiset of
// steady-state bandwidths over all relative start positions (the
// renumbering k permutes offsets b2 -> k*b2).
TEST(IsomorphismProperty, OffsetProfileInvariant) {
  const i64 m = 16;
  const i64 nc = 4;
  const std::vector<std::pair<i64, i64>> pairs{{1, 3}, {2, 3}, {1, 6}, {2, 5}};
  for (auto [d1, d2] : pairs) {
    const sim::OffsetSweep base = sim::sweep_start_offsets(flat(m, nc), d1, d2);
    auto base_sorted = base.by_offset;
    std::sort(base_sorted.begin(), base_sorted.end());
    for (i64 k = 3; k <= 13; k += 2) {
      if (!coprime(k, m)) continue;
      const auto mapped = analytic::apply_multiplier(m, d1, d2, k);
      ASSERT_TRUE(mapped.has_value());
      const sim::OffsetSweep iso = sim::sweep_start_offsets(flat(m, nc), mapped->d1, mapped->d2);
      auto iso_sorted = iso.by_offset;
      std::sort(iso_sorted.begin(), iso_sorted.end());
      EXPECT_EQ(base_sorted, iso_sorted)
          << "d1=" << d1 << " d2=" << d2 << " k=" << k;
    }
  }
}

// Equal-distance group generalization: p streams of distance d started
// nc*d apart are conflict-free iff r >= p*nc; the simulator confirms both
// the schedule and the failure just past the threshold.
TEST(GroupProperty, EqualDistanceGroupScheduleIsExact) {
  for (i64 m : {8, 12, 16, 24}) {
    for (i64 nc : {2, 3, 4}) {
      for (i64 d = 1; d < m; ++d) {
        for (i64 p = 2; p <= 4; ++p) {
          const auto offsets = analytic::equal_distance_group_offsets(m, d, nc, p);
          std::vector<sim::StreamConfig> streams;
          for (i64 i = 0; i < p; ++i) {
            sim::StreamConfig s;
            s.start_bank = offsets[static_cast<std::size_t>(i)];
            s.distance = d;
            s.cpu = i;
            streams.push_back(s);
          }
          const sim::SteadyState ss =
              sim::find_steady_state(flat(m, nc), streams);
          if (analytic::equal_distance_group_conflict_free(m, d, nc, p)) {
            EXPECT_EQ(ss.bandwidth, Rational{p})
                << "m=" << m << " nc=" << nc << " d=" << d << " p=" << p;
            EXPECT_TRUE(ss.conflict_free());
          } else {
            // r < p*nc: the banks cannot serve p requests per period.
            EXPECT_LT(ss.bandwidth, Rational{p})
                << "m=" << m << " nc=" << nc << " d=" << d << " p=" << p;
          }
        }
      }
    }
  }
}

// Theorem 8 (eq. 30): with s < m sections, *disjoint access sets* whose
// section sets overlap are conflict-free iff gcd(s, d2 - d1) >= 2 — the
// consecutive-start-bank construction of Theorem 2 validates against the
// simulator in both directions.
TEST(SectionProperty, Theorem8DisjointSetsAcrossSections) {
  const i64 nc = 2;
  for (i64 m : {8, 12, 16}) {
    for (i64 s : {2, 4}) {
      if (m % s != 0) continue;
      const sim::MemoryConfig cfg{.banks = m, .sections = s, .bank_cycle = nc};
      for (i64 d1 = 1; d1 < m; ++d1) {
        for (i64 d2 = 1; d2 < m; ++d2) {
          if (gcd(m, d1, d2) <= 1) continue;  // need disjoint sets
          if (!analytic::self_conflict_free(m, d1, nc) ||
              !analytic::self_conflict_free(m, d2, nc)) {
            continue;
          }
          // Theorem 2's construction: b1 = 0, b2 = 1 gives disjoint sets.
          ASSERT_TRUE(analytic::access_sets_disjoint(m, 0, d1, 1, d2));
          const sim::SteadyState ss =
              sim::find_steady_state(cfg, sim::two_streams(0, d1, 1, d2, /*same_cpu=*/true));
          if (analytic::section_conflict_free_disjoint(s, d1, d2)) {
            // gcd(s, d2-d1) >= 2: simultaneous requests never share a path.
            EXPECT_EQ(ss.bandwidth, Rational{2})
                << "m=" << m << " s=" << s << " d1=" << d1 << " d2=" << d2;
          }
          // Either way, only section conflicts are possible for disjoint
          // access sets.
          EXPECT_EQ(ss.conflicts_in_period.bank, 0)
              << "m=" << m << " s=" << s << " d1=" << d1 << " d2=" << d2;
          EXPECT_EQ(ss.conflicts_in_period.simultaneous, 0);
        }
      }
    }
  }
}

// Theorem 9 / eq. 31-32: the sectioned-memory conflict-free placements
// verified in simulation (same-CPU ports share access paths).
TEST(SectionProperty, OffsetFromTheoremIsConflictFree) {
  struct Case {
    i64 m, s, nc, d1, d2;
  };
  const std::vector<Case> cases{
      {12, 2, 2, 1, 1},   // Fig. 7 (eq. 32 offset 3)
      {12, 3, 2, 1, 7},   // Thm 9 offset nc*d1 = 2
      {12, 3, 3, 1, 1},   // eq. 32 offset 4
      {16, 4, 2, 1, 9},   // gcd(16,8)=8 >= 4; nc*d1 = 2 not mult of 4
  };
  for (const auto& c : cases) {
    i64 offset = -1;
    ASSERT_TRUE(analytic::conflict_free_with_sections(c.m, c.s, c.nc, c.d1, c.d2, &offset))
        << "m=" << c.m << " s=" << c.s;
    const sim::MemoryConfig cfg{.banks = c.m, .sections = c.s, .bank_cycle = c.nc};
    const sim::SteadyState ss =
        sim::find_steady_state(cfg, sim::two_streams(0, c.d1, offset, c.d2, /*same_cpu=*/true));
    EXPECT_EQ(ss.bandwidth, Rational{2}) << "m=" << c.m << " s=" << c.s << " offset=" << offset;
    EXPECT_TRUE(ss.conflict_free());
  }
}

}  // namespace
}  // namespace vpmem
