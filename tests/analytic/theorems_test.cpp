#include "vpmem/analytic/theorems.hpp"

#include <gtest/gtest.h>

#include "vpmem/analytic/stream.hpp"

namespace vpmem::analytic {
namespace {

// ----------------------------------------------------------------- Thm 2 --

TEST(Theorem2, DisjointIffCommonFactor) {
  EXPECT_TRUE(disjoint_access_sets_achievable(16, 2, 4));   // gcd = 2
  EXPECT_TRUE(disjoint_access_sets_achievable(12, 3, 9));   // gcd = 3
  EXPECT_FALSE(disjoint_access_sets_achievable(16, 1, 4));  // gcd = 1
  EXPECT_FALSE(disjoint_access_sets_achievable(13, 2, 6));  // m prime
}

TEST(Theorem2, ConstructionFromProof) {
  // f = gcd(m, d1, d2) > 1 and consecutive start banks give disjoint sets.
  for (i64 m : {8, 12, 16, 24}) {
    for (i64 d1 = 1; d1 < m; ++d1) {
      for (i64 d2 = 1; d2 < m; ++d2) {
        if (gcd(m, d1, d2) <= 1) continue;
        EXPECT_TRUE(access_sets_disjoint(m, 0, d1, 1, d2))
            << "m=" << m << " d1=" << d1 << " d2=" << d2;
      }
    }
  }
}

TEST(Theorem2, NoDisjointPlacementWhenCoprime) {
  // Converse direction: gcd(m,d1,d2) = 1 -> no pair of start banks keeps
  // the access sets apart.
  for (i64 m : {8, 12, 13}) {
    for (i64 d1 = 1; d1 < m; ++d1) {
      for (i64 d2 = 1; d2 < m; ++d2) {
        if (gcd(m, d1, d2) != 1) continue;
        for (i64 b2 = 0; b2 < m; ++b2) {
          EXPECT_FALSE(access_sets_disjoint(m, 0, d1, b2, d2))
              << "m=" << m << " d1=" << d1 << " d2=" << d2 << " b2=" << b2;
        }
      }
    }
  }
}

TEST(AccessSetsDisjoint, PlacementSensitive) {
  // m=8, d1=d2=2: same parity collides, opposite parity is disjoint.
  EXPECT_FALSE(access_sets_disjoint(8, 0, 2, 2, 2));
  EXPECT_TRUE(access_sets_disjoint(8, 0, 2, 1, 2));
}

// ----------------------------------------------------------------- Thm 3 --

TEST(Theorem3, PaperExampleFig2) {
  // m=12, nc=3, d1=1, d2=7: gcd(12, 6) = 6 >= 2*3.
  EXPECT_TRUE(conflict_free_achievable(12, 3, 1, 7));
}

TEST(Theorem3, EqualDistances) {
  // gcd(m, 0) = m: equal distances conflict-free iff r >= 2*nc.
  EXPECT_TRUE(conflict_free_achievable(16, 4, 1, 1));   // r = 16 >= 8
  EXPECT_TRUE(conflict_free_achievable(16, 4, 2, 2));   // r = 8 >= 8
  EXPECT_FALSE(conflict_free_achievable(12, 4, 2, 2));  // gcd=2: m/f=6 < 8
}

TEST(Theorem3, EqualDistanceBoundaryIsExact) {
  // m=16, d=2: f=2, m/f=8, gcd(8,0)=8 >= 2*4 -> conflict-free at nc=4,
  // not at nc=5.
  EXPECT_TRUE(conflict_free_achievable(16, 4, 2, 2));
  EXPECT_FALSE(conflict_free_achievable(16, 5, 2, 2));
}

TEST(Theorem3, FactoredCase) {
  // f = 2: m=24, d1=2, d2=14 -> m'=12, diff'=6, gcd(12,6)=6 >= 2*nc for nc<=3.
  EXPECT_TRUE(conflict_free_achievable(24, 3, 2, 14));
  EXPECT_FALSE(conflict_free_achievable(24, 4, 2, 14));
}

TEST(Theorem3, OffsetFormula) {
  EXPECT_EQ(conflict_free_offset(12, 3, 1), 3);
  EXPECT_EQ(conflict_free_offset(12, 3, 7), 9);  // 21 mod 12
}

// -------------------------------------------------------------- Thm 4-7 --

TEST(BarrierPreconditions, SideConditions) {
  // Fig. 3 pair: m=13, nc=6, d1=1, d2=6.
  EXPECT_TRUE(barrier_preconditions_hold(13, 6, 1, 6));
  // d1 must divide m.
  EXPECT_FALSE(barrier_preconditions_hold(13, 2, 2, 6));
  // d2 > d1 required.
  EXPECT_FALSE(barrier_preconditions_hold(13, 6, 6, 1));
  EXPECT_FALSE(barrier_preconditions_hold(13, 6, 1, 1));
  // r1 >= 2nc: m=12, d1=1 -> r1=12 >= 12 ok at nc=6, fails at nc=7.
  EXPECT_FALSE(barrier_preconditions_hold(12, 7, 1, 6));
}

TEST(Theorem4, PaperExamples) {
  // Fig. 3: m=13, nc=6, d1=1, d2=6: (6 mod 13) - 1 = 5 < 6.
  EXPECT_TRUE(barrier_possible(13, 6, 1, 6));
  // Fig. 5: m=13, nc=4, d1=1, d2=3: (3 mod 13) - 1 = 2 < 4.
  EXPECT_TRUE(barrier_possible(13, 4, 1, 3));
  // m=13, nc=4, d2=6: c = 5 >= nc -> no barrier placement.
  EXPECT_FALSE(barrier_possible(13, 4, 1, 6));
}

TEST(Theorem5, PaperExamples) {
  // Fig. 4 pair (m=13, nc=6, d1=1, d2=6): (6-1)*7 = 35 >= 13, double
  // conflict possible (and Fig. 4 exhibits it).
  EXPECT_FALSE(double_conflict_impossible(13, 6, 1, 6));
  // Fig. 5 pair (m=13, nc=4, d1=1, d2=3): 3*4 = 12 < 13: never.
  EXPECT_TRUE(double_conflict_impossible(13, 4, 1, 3));
}

TEST(Theorem6, Bound) {
  // Needs (2nc-1)*d2 <= m on top of eq. 17.
  // m=26, nc=2, d1=1, d2=3: c=(3-1) mod 26=2 >= nc -> no barrier.
  EXPECT_FALSE(barrier_possible(26, 2, 1, 3));
  // m=26, nc=3, d1=1, d2=3: c=2 < 3 barrier; (5)*3=15 <= 26 -> unique.
  EXPECT_TRUE(unique_barrier_thm6(26, 3, 1, 3));
  // Fig. 5: (2*4-1)*3 = 21 > 13 -> Theorem 6 does not apply.
  EXPECT_FALSE(unique_barrier_thm6(13, 4, 1, 3));
}

TEST(Theorem7, Fig5IsNotUnique) {
  // The paper shows Fig. 5's barrier is not unique (Fig. 6 inverts it):
  // k = ceil(13/3)*1 = 5 < 8, but 5*3 mod 13 = 2 >= (5-4)*1 = 1.
  EXPECT_FALSE(unique_barrier_thm7(13, 4, 1, 3));
  // Equality case with priority: k*d2 == (k-nc)*d1 (eq. 28).
  EXPECT_FALSE(unique_barrier_thm7(13, 4, 1, 3, /*stream1_priority=*/true));
}

TEST(BarrierBandwidth, Eq29) {
  EXPECT_EQ(barrier_bandwidth(1, 6), (Rational{7, 6}));  // Fig. 3
  EXPECT_EQ(barrier_bandwidth(1, 3), (Rational{4, 3}));  // Fig. 5
  EXPECT_EQ(barrier_bandwidth(2, 5), (Rational{7, 5}));
  EXPECT_THROW(static_cast<void>(barrier_bandwidth(1, 0)), std::invalid_argument);
}

// ------------------------------------------------------------- Thm 8/9 --

TEST(Theorem8, SectionGcdBound) {
  EXPECT_TRUE(section_conflict_free_disjoint(4, 2, 4));   // gcd(4,2)=2
  EXPECT_FALSE(section_conflict_free_disjoint(4, 2, 5));  // gcd(4,3)=1
  EXPECT_TRUE(section_conflict_free_disjoint(4, 3, 3));   // gcd(4,0)=4
}

TEST(Theorem9, SectionAlignment) {
  // nc*d1 must not be a multiple of s.
  EXPECT_TRUE(section_condition_thm9(3, 2, 1));   // 2 not mult of 3
  EXPECT_FALSE(section_condition_thm9(2, 2, 1));  // 2 is mult of 2 (Fig. 7 case)
  EXPECT_FALSE(section_condition_thm9(4, 2, 2));  // 4 mult of 4
}

TEST(Eq32, Fig7Example) {
  // Fig. 7: m=12, s=2, nc=2, d1=d2=1.  Eq. 31 fails (nc*d1 = 2 = s) but
  // eq. 32 holds: gcd(12, 0) = 12 >= 2*(2+1).
  EXPECT_FALSE(section_condition_thm9(2, 2, 1));
  EXPECT_TRUE(conflict_free_achievable_ext(12, 2, 1, 1));
  EXPECT_EQ(conflict_free_offset_ext(12, 2, 1), 3);  // (nc+1)*d1
  i64 offset = -1;
  EXPECT_TRUE(conflict_free_with_sections(12, 2, 2, 1, 1, &offset));
  EXPECT_EQ(offset, 3);
}

TEST(ConflictFreeWithSections, PrefersThm9Offset) {
  // m=12, s=3, nc=2, d1=1, d2=7: eq. 12 holds (gcd(12,6)=6 >= 4) and
  // nc*d1 = 2 is not a multiple of 3.
  i64 offset = -1;
  EXPECT_TRUE(conflict_free_with_sections(12, 3, 2, 1, 7, &offset));
  EXPECT_EQ(offset, 2);
}

TEST(ConflictFreeWithSections, FailsWhenNeitherApplies) {
  // m=12, s=3, nc=3, d1=d2=1: nc*d1 = 3 = s fails eq. 31 and
  // gcd(12,0)=12 < 2*(3+1)=8?  12 >= 8 -> ext applies but offset
  // (nc+1)*d1 = 4 is not a multiple of 3, so it succeeds.
  i64 offset = -1;
  EXPECT_TRUE(conflict_free_with_sections(12, 3, 3, 1, 1, &offset));
  EXPECT_EQ(offset, 4);
  // m=12, s=2, nc=3, d1=2, d2=2: f=2, m/f=6, gcd(6,0)=6 < 2*nc=6? equal ->
  // eq.12 holds at boundary; nc*d1 = 6 multiple of 2 fails; ext needs
  // gcd >= 8, fails.
  EXPECT_FALSE(conflict_free_with_sections(12, 2, 3, 2, 2));
}

TEST(Validation, ArgumentChecks) {
  EXPECT_THROW(static_cast<void>(conflict_free_achievable(0, 1, 1, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(conflict_free_achievable(8, 0, 1, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(section_conflict_free_disjoint(0, 1, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(conflict_free_with_sections(12, 5, 2, 1, 1)), std::invalid_argument);
}

}  // namespace
}  // namespace vpmem::analytic
