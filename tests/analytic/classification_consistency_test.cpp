// Classification consistency: whatever classify_pair() promises must be
// what the exhaustive offset sweep of the simulator delivers, for every
// pair in the grid.
#include <gtest/gtest.h>

#include <tuple>

#include "vpmem/analytic/classify.hpp"
#include "vpmem/analytic/stream.hpp"
#include "vpmem/sim/steady_state.hpp"

namespace vpmem {
namespace {

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

using GridParams = std::tuple<i64, i64>;  // m, nc

class ClassificationGrid : public ::testing::TestWithParam<GridParams> {};

TEST_P(ClassificationGrid, EveryVerdictMatchesSimulation) {
  const auto [m, nc] = GetParam();
  for (i64 d1 = 1; d1 < m; ++d1) {
    for (i64 d2 = 1; d2 < m; ++d2) {
      const analytic::PairPrediction p =
          analytic::classify_pair(m, nc, d1, d2, /*stream1_priority=*/true);
      const sim::OffsetSweep sweep = sim::sweep_start_offsets(flat(m, nc), d1, d2);
      switch (p.cls) {
        case analytic::PairClass::self_conflicting: {
          // At least one stream alone runs below full speed; the pair can
          // never reach 2.
          const bool slow1 = !analytic::self_conflict_free(m, d1, nc);
          const bool slow2 = !analytic::self_conflict_free(m, d2, nc);
          EXPECT_TRUE(slow1 || slow2);
          EXPECT_LT(sweep.max_bandwidth, Rational{2})
              << "m=" << m << " nc=" << nc << " d1=" << d1 << " d2=" << d2;
          break;
        }
        case analytic::PairClass::conflict_free_synchronized:
          // Guaranteed: every offset reaches 2.
          EXPECT_EQ(sweep.min_bandwidth, Rational{2})
              << "m=" << m << " nc=" << nc << " d1=" << d1 << " d2=" << d2;
          break;
        case analytic::PairClass::disjoint_possible:
          // Achievable: some offset reaches 2 (the consecutive-bank one).
          EXPECT_EQ(sweep.max_bandwidth, Rational{2})
              << "m=" << m << " nc=" << nc << " d1=" << d1 << " d2=" << d2;
          break;
        case analytic::PairClass::unique_barrier:
          ASSERT_TRUE(p.bandwidth.has_value());
          EXPECT_EQ(sweep.min_bandwidth, *p.bandwidth)
              << "m=" << m << " nc=" << nc << " d1=" << d1 << " d2=" << d2;
          EXPECT_EQ(sweep.max_bandwidth, *p.bandwidth)
              << "m=" << m << " nc=" << nc << " d1=" << d1 << " d2=" << d2;
          break;
        case analytic::PairClass::start_dependent:
          // No promise made; only the envelope applies.
          EXPECT_LE(sweep.max_bandwidth, Rational{2});
          EXPECT_GT(sweep.min_bandwidth, Rational{0});
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ClassificationGrid,
                         ::testing::Values(GridParams{8, 2}, GridParams{12, 3},
                                           GridParams{13, 4}, GridParams{16, 4},
                                           GridParams{24, 3}, GridParams{13, 6}),
                         [](const ::testing::TestParamInfo<GridParams>& param_info) {
                           std::string name = "m";
                           name += std::to_string(std::get<0>(param_info.param));
                           name += "_nc";
                           name += std::to_string(std::get<1>(param_info.param));
                           return name;
                         });

}  // namespace
}  // namespace vpmem
