#include "vpmem/analytic/isomorphism.hpp"

#include <gtest/gtest.h>

#include "vpmem/analytic/stream.hpp"

namespace vpmem::analytic {
namespace {

TEST(ApplyMultiplier, RequiresCoprime) {
  EXPECT_FALSE(apply_multiplier(16, 1, 3, 2).has_value());
  EXPECT_FALSE(apply_multiplier(16, 1, 3, 4).has_value());
  ASSERT_TRUE(apply_multiplier(16, 1, 3, 5).has_value());
}

TEST(ApplyMultiplier, PaperExampleM16) {
  // Appendix: 1 (+) 3 == 5 (+) 15 == 11 (+) 1 (mod 16).
  const auto by5 = apply_multiplier(16, 1, 3, 5);
  ASSERT_TRUE(by5);
  EXPECT_EQ(by5->d1, 5);
  EXPECT_EQ(by5->d2, 15);
  const auto by11 = apply_multiplier(16, 1, 3, 11);
  ASSERT_TRUE(by11);
  EXPECT_EQ(by11->d1, 11);
  EXPECT_EQ(by11->d2, 1);  // 33 mod 16
}

TEST(ApplyMultiplier, PaperExampleSecondPair) {
  // 2 (+) 3 == 6 (+) 9 == 6 (+) 1 (mod 16): multiply by 3, then 6*9 with
  // k=9 gives (6*... ) — verify the chain via isomorphic().
  EXPECT_TRUE(isomorphic(16, 2, 3, 6, 9));
  EXPECT_TRUE(isomorphic(16, 2, 3, 6, 1));
  EXPECT_TRUE(isomorphic(16, 6, 9, 6, 1));
}

TEST(Isomorphic, PaperChain) {
  EXPECT_TRUE(isomorphic(16, 1, 3, 5, 15));
  EXPECT_TRUE(isomorphic(16, 1, 3, 11, 1));
  EXPECT_FALSE(isomorphic(16, 1, 3, 2, 6));  // different gcd structure
}

TEST(Isomorphic, SwapIsIsomorphic) {
  EXPECT_TRUE(isomorphic(16, 1, 3, 3, 1));
  EXPECT_TRUE(isomorphic(13, 2, 5, 5, 2));
}

TEST(NormalizePair, FirstDistanceDividesM) {
  for (i64 m : {8, 12, 13, 16, 24}) {
    for (i64 d1 = 0; d1 < m; ++d1) {
      for (i64 d2 = 0; d2 < m; ++d2) {
        const NormalizedPair n = normalize_pair(m, d1, d2);
        EXPECT_TRUE(coprime(n.k, m));
        if (n.d1 != 0) {
          EXPECT_EQ(m % n.d1, 0) << "m=" << m << " d1=" << d1;
        } else {
          EXPECT_EQ(mod_norm(d1, m), 0);
        }
        // The multiplier actually maps the inputs onto the outputs.
        EXPECT_EQ(mod_norm(n.k * d1, m), n.d1);
        EXPECT_EQ(mod_norm(n.k * d2, m), n.d2);
      }
    }
  }
}

TEST(NormalizePair, PreservesReturnNumbers) {
  // Renumbering banks cannot change how often a stream returns.
  for (i64 m : {12, 16}) {
    for (i64 d1 = 1; d1 < m; ++d1) {
      for (i64 d2 = 1; d2 < m; ++d2) {
        const NormalizedPair n = normalize_pair(m, d1, d2);
        EXPECT_EQ(return_number(m, n.d1), return_number(m, d1));
        EXPECT_EQ(return_number(m, n.d2), return_number(m, d2));
      }
    }
  }
}

TEST(NormalizePairOrdered, PrefersTheoremShape) {
  // 6 (+) 1 on m=16 should come back as (canonical d1 | m, d2 > d1) via swap.
  const NormalizedPair n = normalize_pair_ordered(16, 6, 1);
  EXPECT_GE(n.d1, 1);
  EXPECT_EQ(16 % n.d1, 0);
  EXPECT_GT(n.d2, n.d1);
}

TEST(Isomorphic, InvalidArguments) {
  EXPECT_THROW(static_cast<void>(isomorphic(0, 1, 1, 1, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(normalize_pair(0, 1, 1)), std::invalid_argument);
}

}  // namespace
}  // namespace vpmem::analytic
