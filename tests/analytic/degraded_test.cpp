// Degraded-mode Theorem 1: under remap_spare the machine with m' = m - f
// surviving banks behaves exactly like a healthy m'-bank interleave, so
// b_eff = min(1, r'/nc) with r' = m'/gcd(m', d).  Validated as an
// EQUALITY against the cycle-accurate simulator across (m, d, nc,
// failed-bank) and as a bound for multi-stream and recovery scenarios.
#include "vpmem/analytic/degraded.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "vpmem/analytic/stream.hpp"
#include "vpmem/sim/fault.hpp"
#include "vpmem/sim/run.hpp"

namespace vpmem::analytic {
namespace {

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

sim::FaultPlan remap_outage(const std::vector<i64>& banks) {
  sim::FaultPlan plan;
  plan.policy = sim::FaultPolicy::remap_spare;
  for (const i64 b : banks) {
    plan.events.push_back(
        sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_offline, .cycle = 0, .bank = b});
  }
  return plan;
}

TEST(Degraded, ReturnNumberMatchesHealthyFormulaOnSurvivors) {
  EXPECT_EQ(degraded_return_number(11, 1), 11);
  EXPECT_EQ(degraded_return_number(12, 4), 3);
  EXPECT_EQ(degraded_return_number(9, 6), 3);
  EXPECT_EQ(degraded_return_number(7, 0), 1);  // d=0 hammers one slot
  EXPECT_THROW(static_cast<void>(degraded_return_number(0, 1)), std::invalid_argument);
}

TEST(Degraded, SingleStreamBandwidthFormula) {
  // m=12, one bank down, d=1: r' = 11 >= nc=3 -> full bandwidth.
  EXPECT_EQ(degraded_single_stream_bandwidth(11, 1, 3), (Rational{1, 1}));
  // m=12, one bank down, d=11: gcd(11,11)=11 -> r'=1 -> 1/3.
  EXPECT_EQ(degraded_single_stream_bandwidth(11, 11, 3), (Rational{1, 3}));
  // Zero survivors: no grants at all.
  EXPECT_EQ(degraded_single_stream_bandwidth(0, 1, 3), (Rational{0, 1}));
  EXPECT_THROW(static_cast<void>(degraded_single_stream_bandwidth(-1, 1, 3)),
               std::invalid_argument);
}

TEST(Degraded, CapacityIsMinOfBanksAndPorts) {
  EXPECT_EQ(degraded_capacity(12, 3, 2), (Rational{2, 1}));  // port-bound
  EXPECT_EQ(degraded_capacity(4, 3, 2), (Rational{4, 3}));   // bank-bound
  EXPECT_EQ(degraded_capacity(0, 3, 2), (Rational{0, 1}));
}

/// Exact steady-state bandwidth of one affine stream under a permanent
/// remap outage, measured over a window that is a whole number of r'·nc
/// periods so the grant count divides evenly.
Rational measured_degraded_bandwidth(i64 m, i64 nc, i64 d, const std::vector<i64>& dead) {
  const sim::FaultPlan plan = remap_outage(dead);
  const i64 survivors = m - static_cast<i64>(dead.size());
  const i64 period = degraded_return_number(survivors, d) * nc;
  const i64 warmup = 8 * period;
  const i64 window = 64 * period;
  const sim::BandwidthMeasurement bw = sim::measure_bandwidth_guarded(
      flat(m, nc), {sim::StreamConfig{.start_bank = 0, .distance = d}}, warmup, window, plan);
  EXPECT_EQ(bw.status, sim::RunStatus::completed);
  EXPECT_EQ(bw.cycles, window);
  return Rational{bw.grants, bw.cycles};
}

TEST(Degraded, BoundIsExactAcrossSweep) {
  // (m, nc) grid crossed with every distance 0..m and every single
  // failed bank — the simulated steady bandwidth must EQUAL
  // min(1, r'/nc) in every cell.
  const std::vector<std::pair<i64, i64>> machines = {{4, 2}, {8, 3}, {12, 3}, {13, 6}, {16, 4}};
  for (const auto& [m, nc] : machines) {
    for (i64 d = 0; d <= m; ++d) {
      for (i64 dead = 0; dead < m; dead += (m > 8 ? 3 : 1)) {
        SCOPED_TRACE("m=" + std::to_string(m) + " nc=" + std::to_string(nc) +
                     " d=" + std::to_string(d) + " dead=" + std::to_string(dead));
        const Rational expected = degraded_single_stream_bandwidth(m - 1, d, nc);
        EXPECT_EQ(measured_degraded_bandwidth(m, nc, d, {dead}), expected);
      }
    }
  }
}

TEST(Degraded, MultipleFailuresStillExact) {
  // m=12 down to m'=9 survivors: r' over 9 banks.
  for (const i64 d : {1, 2, 3, 6, 9}) {
    SCOPED_TRACE("d=" + std::to_string(d));
    const Rational expected = degraded_single_stream_bandwidth(9, d, 3);
    EXPECT_EQ(measured_degraded_bandwidth(12, 3, d, {1, 5, 10}), expected);
  }
}

TEST(Degraded, HealthyMachineReducesToTheorem1) {
  // With zero failures the degraded formula IS Theorem 1.
  for (const i64 m : {8, 12, 13}) {
    for (i64 d = 1; d <= m; ++d) {
      EXPECT_EQ(degraded_single_stream_bandwidth(m, d, 3), single_stream_bandwidth(m, d, 3))
          << "m=" << m << " d=" << d;
    }
  }
}

TEST(Degraded, CapacityBoundsTwoStreamWorkloadDuringOutage) {
  // Two d=1 streams on m=8, nc=4, two banks down: total b_eff can never
  // exceed min(p, m'/nc) = min(2, 6/4) = 3/2.
  const sim::FaultPlan plan = remap_outage({2, 7});
  const sim::BandwidthMeasurement bw = sim::measure_bandwidth_guarded(
      flat(8, 4), sim::two_streams(0, 1, 4, 1), /*warmup=*/96, /*window=*/960, plan);
  ASSERT_TRUE(bw.ok());
  const Rational measured{bw.grants, bw.cycles};
  const Rational cap = degraded_capacity(6, 4, 2);
  EXPECT_EQ(cap, (Rational{3, 2}));
  EXPECT_LE(measured.to_double(), cap.to_double() + 1e-12);
}

}  // namespace
}  // namespace vpmem::analytic
