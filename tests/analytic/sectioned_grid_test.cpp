// Sectioned-memory achievability grid: wherever conflict_free_with_sections
// promises an offset, the simulator must run conflict-free from it — over
// every (m, s, nc, d1, d2) in the grid.
#include <gtest/gtest.h>

#include <tuple>

#include "vpmem/analytic/stream.hpp"
#include "vpmem/analytic/theorems.hpp"
#include "vpmem/sim/steady_state.hpp"

namespace vpmem {
namespace {

using GridParams = std::tuple<i64, i64, i64>;  // m, s, nc

class SectionedGrid : public ::testing::TestWithParam<GridParams> {};

TEST_P(SectionedGrid, PromisedOffsetsAreConflictFree) {
  const auto [m, s, nc] = GetParam();
  const sim::MemoryConfig cfg{.banks = m, .sections = s, .bank_cycle = nc};
  i64 promised = 0;
  for (i64 d1 = 1; d1 < m; ++d1) {
    for (i64 d2 = 1; d2 < m; ++d2) {
      if (!analytic::self_conflict_free(m, d1, nc) ||
          !analytic::self_conflict_free(m, d2, nc)) {
        continue;
      }
      i64 offset = -1;
      if (!analytic::conflict_free_with_sections(m, s, nc, d1, d2, &offset)) continue;
      ++promised;
      const sim::SteadyState ss =
          sim::find_steady_state(cfg, sim::two_streams(0, d1, offset, d2, /*same_cpu=*/true));
      EXPECT_EQ(ss.bandwidth, Rational{2})
          << "m=" << m << " s=" << s << " nc=" << nc << " d1=" << d1 << " d2=" << d2
          << " offset=" << offset;
      EXPECT_TRUE(ss.conflict_free())
          << "m=" << m << " s=" << s << " nc=" << nc << " d1=" << d1 << " d2=" << d2;
    }
  }
  // The grids are chosen so the claim is not vacuous.
  EXPECT_GT(promised, 0) << "m=" << m << " s=" << s << " nc=" << nc;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SectionedGrid,
    ::testing::Values(GridParams{12, 2, 2}, GridParams{12, 3, 2}, GridParams{12, 4, 2},
                      GridParams{16, 2, 2}, GridParams{16, 4, 2}, GridParams{16, 4, 3},
                      GridParams{24, 3, 3}, GridParams{24, 4, 2}),
    [](const ::testing::TestParamInfo<GridParams>& param_info) {
      std::string name = "m";
      name += std::to_string(std::get<0>(param_info.param));
      name += "_s";
      name += std::to_string(std::get<1>(param_info.param));
      name += "_nc";
      name += std::to_string(std::get<2>(param_info.param));
      return name;
    });

}  // namespace
}  // namespace vpmem
