#include <gtest/gtest.h>

#include "vpmem/analytic/stream.hpp"

namespace vpmem::analytic {
namespace {

TEST(EqualDistanceGroup, ThresholdIsExact) {
  // m=16, d=1: r=16.  p*nc <= 16 passes, beyond fails.
  EXPECT_TRUE(equal_distance_group_conflict_free(16, 1, 4, 4));
  EXPECT_FALSE(equal_distance_group_conflict_free(16, 1, 4, 5));
  EXPECT_TRUE(equal_distance_group_conflict_free(16, 1, 2, 8));
  // d=2: r=8.
  EXPECT_TRUE(equal_distance_group_conflict_free(16, 2, 4, 2));
  EXPECT_FALSE(equal_distance_group_conflict_free(16, 2, 4, 3));
}

TEST(EqualDistanceGroup, SingleStreamReducesToSelfConflictFree) {
  for (i64 m : {8, 13, 16}) {
    for (i64 nc : {2, 4}) {
      for (i64 d = 0; d < m; ++d) {
        EXPECT_EQ(equal_distance_group_conflict_free(m, d, nc, 1),
                  self_conflict_free(m, d, nc))
            << m << "," << nc << "," << d;
      }
    }
  }
}

TEST(EqualDistanceGroup, OffsetsAreNcDApart) {
  const auto offsets = equal_distance_group_offsets(16, 3, 4, 4);
  EXPECT_EQ(offsets, (std::vector<i64>{0, 12, 8, 4}));  // i*12 mod 16
  EXPECT_EQ(equal_distance_group_offsets(13, 1, 6, 2), (std::vector<i64>{0, 6}));
}

TEST(EqualDistanceGroup, Validation) {
  EXPECT_THROW(static_cast<void>(equal_distance_group_conflict_free(0, 1, 4, 2)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(equal_distance_group_conflict_free(16, 1, 0, 2)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(equal_distance_group_conflict_free(16, 1, 4, 0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(equal_distance_group_offsets(16, 1, 4, 0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace vpmem::analytic
