#include "vpmem/analytic/stream.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vpmem::analytic {
namespace {

TEST(ReturnNumber, Theorem1Examples) {
  EXPECT_EQ(return_number(16, 1), 16);
  EXPECT_EQ(return_number(16, 2), 8);
  EXPECT_EQ(return_number(16, 4), 4);
  EXPECT_EQ(return_number(16, 8), 2);
  EXPECT_EQ(return_number(16, 3), 16);   // coprime stride visits all banks
  EXPECT_EQ(return_number(16, 6), 8);    // gcd(16,6)=2
  EXPECT_EQ(return_number(13, 6), 13);   // prime bank count
  EXPECT_EQ(return_number(12, 7), 12);
}

TEST(ReturnNumber, ZeroAndMultipleOfM) {
  // d = 0 (mod m): every access hits the start bank, r = 1.
  EXPECT_EQ(return_number(16, 0), 1);
  EXPECT_EQ(return_number(16, 16), 1);
  EXPECT_EQ(return_number(16, 32), 1);
}

TEST(ReturnNumber, FormulaSweep) {
  for (i64 m : {2, 3, 4, 8, 12, 13, 16, 24, 60}) {
    for (i64 d = 0; d < 2 * m; ++d) {
      const i64 g = std::gcd(m, mod_norm(d, m));
      EXPECT_EQ(return_number(m, d), m / (g == 0 ? m : g)) << m << "," << d;
    }
  }
}

TEST(ReturnNumber, RejectsBadM) {
  EXPECT_THROW(static_cast<void>(return_number(0, 1)), std::invalid_argument);
}

TEST(AccessSet, HasReturnNumberDistinctBanks) {
  for (i64 m : {8, 12, 13, 16}) {
    for (i64 d = 0; d < m; ++d) {
      const auto z = access_set(m, 3 % m, d);
      EXPECT_EQ(static_cast<i64>(z.size()), return_number(m, d));
      const std::set<i64> uniq(z.begin(), z.end());
      EXPECT_EQ(uniq.size(), z.size()) << "banks must be distinct";
      for (i64 bank : z) {
        EXPECT_GE(bank, 0);
        EXPECT_LT(bank, m);
      }
    }
  }
}

TEST(AccessSet, VisitOrder) {
  EXPECT_EQ(access_set(8, 1, 3), (std::vector<i64>{1, 4, 7, 2, 5, 0, 3, 6}));
  EXPECT_EQ(access_set(8, 0, 2), (std::vector<i64>{0, 2, 4, 6}));
}

TEST(SectionSet, CyclicMapping) {
  // m=12, s=3: stream with d=3 visits banks {0,3,6,9}, all in section 0.
  EXPECT_EQ(section_set(12, 3, 0, 3), (std::vector<i64>{0}));
  // d=1 visits all sections.
  EXPECT_EQ(section_set(12, 3, 0, 1), (std::vector<i64>{0, 1, 2}));
  // d=2 from bank 1: banks 1,3,5,... -> sections 1,0,2,...
  EXPECT_EQ(section_set(12, 3, 1, 2), (std::vector<i64>{1, 0, 2}));
}

TEST(SectionSet, RejectsBadSections) {
  EXPECT_THROW(static_cast<void>(section_set(12, 5, 0, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(section_set(12, 0, 0, 1)), std::invalid_argument);
}

TEST(SingleStreamBandwidth, SectionIIIA) {
  // r >= nc: full speed.
  EXPECT_EQ(single_stream_bandwidth(16, 1, 4), Rational{1});
  EXPECT_EQ(single_stream_bandwidth(16, 4, 4), Rational{1});  // r = 4 = nc
  // r < nc: throttled to r/nc.
  EXPECT_EQ(single_stream_bandwidth(16, 8, 4), (Rational{2, 4}));
  EXPECT_EQ(single_stream_bandwidth(16, 0, 4), (Rational{1, 4}));
  EXPECT_EQ(single_stream_bandwidth(8, 4, 5), (Rational{2, 5}));
}

TEST(SelfConflictFree, Threshold) {
  EXPECT_TRUE(self_conflict_free(16, 4, 4));
  EXPECT_FALSE(self_conflict_free(16, 8, 4));
  EXPECT_TRUE(self_conflict_free(16, 8, 2));
}

}  // namespace
}  // namespace vpmem::analytic
