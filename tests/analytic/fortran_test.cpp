#include "vpmem/analytic/fortran.hpp"

#include <gtest/gtest.h>

#include <array>

namespace vpmem::analytic {
namespace {

TEST(ArrayDistance, FirstDimensionIsPlainStride) {
  const std::array<i64, 1> dims{1024};
  EXPECT_EQ(array_distance(dims, 0, 1, 16), 1);
  EXPECT_EQ(array_distance(dims, 0, 5, 16), 5);
  EXPECT_EQ(array_distance(dims, 0, 17, 16), 1);
}

TEST(ArrayDistance, Eq33HigherDimensions) {
  // d = INC * prod J_i mod m.  Fortran column-major: accessing a row of a
  // 64x64 array steps by 64 elements.
  const std::array<i64, 2> dims{64, 64};
  EXPECT_EQ(array_distance(dims, 1, 1, 16), 0);  // 64 mod 16
  const std::array<i64, 2> padded{65, 64};
  EXPECT_EQ(array_distance(padded, 1, 1, 16), 1);  // 65 mod 16
  const std::array<i64, 3> dims3{8, 10, 4};
  EXPECT_EQ(array_stride_elements(dims3, 2, 3), 3 * 80);
  EXPECT_EQ(array_distance(dims3, 2, 3, 16), (3 * 80) % 16);
}

TEST(ArrayDistance, Validation) {
  const std::array<i64, 2> dims{8, 8};
  EXPECT_THROW(static_cast<void>(array_distance(dims, 2, 1, 16)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(array_distance(dims, 0, 1, 0)), std::invalid_argument);
  const std::array<i64, 2> bad{0, 8};
  EXPECT_THROW(static_cast<void>(array_distance(bad, 1, 1, 16)), std::invalid_argument);
}

TEST(SafeLeadingDimension, SkipsSharedFactors) {
  EXPECT_EQ(safe_leading_dimension(64, 16), 65);
  EXPECT_EQ(safe_leading_dimension(65, 16), 65);
  EXPECT_EQ(safe_leading_dimension(16, 16), 17);
  EXPECT_EQ(safe_leading_dimension(9, 16), 9);   // already coprime
  EXPECT_EQ(safe_leading_dimension(12, 13), 12); // prime bank count: all safe
}

TEST(SafeLeadingDimension, Validation) {
  EXPECT_THROW(static_cast<void>(safe_leading_dimension(0, 16)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(safe_leading_dimension(4, 0)), std::invalid_argument);
}

TEST(CommonBlockStartBanks, PaperLayout) {
  // Section IV: IDIM = 16*1024 + 1 puts A, B, C, D one bank apart.
  const auto banks = common_block_start_banks(0, 16 * 1024 + 1, 4, 16);
  EXPECT_EQ(banks, (std::vector<i64>{0, 1, 2, 3}));
}

TEST(CommonBlockStartBanks, UnpaddedLayoutAliases) {
  // IDIM = 16*1024: every array starts in the same bank — the conflicting
  // layout the paper's choice avoids.
  const auto banks = common_block_start_banks(5, 16 * 1024, 4, 16);
  EXPECT_EQ(banks, (std::vector<i64>{5, 5, 5, 5}));
}

TEST(CommonBlockStartBanks, Validation) {
  EXPECT_THROW(static_cast<void>(common_block_start_banks(0, 0, 4, 16)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(common_block_start_banks(0, 5, 4, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace vpmem::analytic
