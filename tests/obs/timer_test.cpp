#include "vpmem/obs/timer.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "vpmem/core/diagnose.hpp"
#include "vpmem/core/triad_experiment.hpp"

namespace vpmem::obs {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  const Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  const double first = watch.seconds();
  EXPECT_GT(first, 0.0);
  EXPECT_GE(watch.seconds(), first);  // monotone
}

TEST(ScopeTimer, ReportsOnDestruction) {
  double reported = -1.0;
  {
    const ScopeTimer timer{[&](double s) { reported = s; }};
    EXPECT_EQ(reported, -1.0);  // nothing until scope exit
  }
  EXPECT_GE(reported, 0.0);
}

TEST(SweepTelemetry, Accumulates) {
  SweepTelemetry telemetry;
  telemetry.record_point(0.5, 100);
  telemetry.record_point(1.5, 300);
  telemetry.add_cycles(600);
  EXPECT_EQ(telemetry.points(), 2);
  EXPECT_DOUBLE_EQ(telemetry.total_seconds(), 2.0);
  EXPECT_EQ(telemetry.simulated_cycles(), 1000);
  EXPECT_DOUBLE_EQ(telemetry.mean_point_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(telemetry.max_point_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(telemetry.cycles_per_second(), 500.0);
  const Json j = telemetry.to_json();
  EXPECT_EQ(j.at("points").as_int(), 2);
  EXPECT_EQ(j.at("simulated_cycles").as_int(), 1000);
  EXPECT_FALSE(telemetry.summary().empty());
}

TEST(SweepTelemetry, EmptyIsSafe) {
  const SweepTelemetry telemetry;
  EXPECT_EQ(telemetry.points(), 0);
  EXPECT_DOUBLE_EQ(telemetry.mean_point_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(telemetry.cycles_per_second(), 0.0);
}

TEST(SweepTelemetry, ThreadSafeRecording) {
  SweepTelemetry telemetry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 250; ++i) telemetry.record_point(0.001, 10);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(telemetry.points(), 1000);
  EXPECT_EQ(telemetry.simulated_cycles(), 10000);
}

TEST(SweepTelemetry, DoesNotChangeSweepResults) {
  // Acceptance: telemetry is purely observational — the sweep's results
  // must be identical with and without it.
  const sim::MemoryConfig config{.banks = 13, .sections = 13, .bank_cycle = 6};
  const core::RegimeSweep plain = core::sweep_regimes(config, 1, 6);
  SweepTelemetry telemetry;
  const core::RegimeSweep timed = core::sweep_regimes(config, 1, 6, false, &telemetry);
  ASSERT_EQ(timed.by_offset.size(), plain.by_offset.size());
  for (std::size_t b2 = 0; b2 < plain.by_offset.size(); ++b2) {
    EXPECT_EQ(timed.by_offset[b2].regime, plain.by_offset[b2].regime) << "offset " << b2;
    EXPECT_EQ(timed.by_offset[b2].bandwidth, plain.by_offset[b2].bandwidth) << "offset " << b2;
    EXPECT_EQ(timed.by_offset[b2].period, plain.by_offset[b2].period) << "offset " << b2;
  }
  EXPECT_EQ(telemetry.points(), static_cast<i64>(config.banks));
  EXPECT_GT(telemetry.simulated_cycles(), 0);
}

TEST(SweepTelemetry, TriadExperimentRecordsCycles) {
  core::TriadExperiment experiment;
  experiment.setup.n = 64;  // keep the test quick
  experiment.inc_min = 1;
  experiment.inc_max = 4;
  SweepTelemetry telemetry;
  const auto timed = core::run_triad_experiment(experiment, 2, &telemetry);
  const auto plain = core::run_triad_experiment(experiment, 2);
  ASSERT_EQ(timed.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(timed[i].cycles_contended, plain[i].cycles_contended) << "row " << i;
    EXPECT_EQ(timed[i].cycles_dedicated, plain[i].cycles_dedicated) << "row " << i;
  }
  EXPECT_EQ(telemetry.points(), 4);
  i64 expected_cycles = 0;
  for (const auto& row : plain) expected_cycles += row.cycles_contended + row.cycles_dedicated;
  EXPECT_EQ(telemetry.simulated_cycles(), expected_cycles);
}

}  // namespace
}  // namespace vpmem::obs
