#include "vpmem/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vpmem::obs {
namespace {

TEST(Counter, IncAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(5);
  EXPECT_EQ(c.value(), 6);
  EXPECT_EQ(c.to_json().as_int(), 6);
}

TEST(Gauge, SetAndValue) {
  Gauge g;
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  EXPECT_DOUBLE_EQ(g.to_json().as_double(), 0.75);
}

TEST(Histogram, BucketOfEdgeCases) {
  // Bucket 0 = {0}; bucket b >= 1 covers [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of((i64{1} << 40) - 1), 40u);
  EXPECT_EQ(Histogram::bucket_of(i64{1} << 40), 41u);
  // Negative samples clamp into bucket 0.
  EXPECT_EQ(Histogram::bucket_of(-3), 0u);
}

TEST(Histogram, BucketBoundsAreConsistent) {
  for (std::size_t b = 0; b < 20; ++b) {
    const i64 lo = Histogram::bucket_floor(b);
    const i64 hi = Histogram::bucket_ceil(b);
    EXPECT_LE(lo, hi) << "bucket " << b;
    EXPECT_EQ(Histogram::bucket_of(lo), b) << "floor of bucket " << b;
    EXPECT_EQ(Histogram::bucket_of(hi), b) << "ceil of bucket " << b;
    if (b > 0) {
      EXPECT_EQ(Histogram::bucket_of(lo - 1), b - 1);
    }
  }
}

TEST(Histogram, EmptyStats) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.buckets().empty());
  EXPECT_EQ(h.quantile_ceil(0.5), 0);
}

TEST(Histogram, RecordAndAggregates) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(3);
  h.record(3);
  h.record(9);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 16);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 9);
  EXPECT_DOUBLE_EQ(h.mean(), 16.0 / 5.0);
  // buckets: [0]=1 (value 0), [1]=1 (value 1), [2]=2 (the 3s), [3]=0,
  // [4]=1 (value 9, range 8..15)
  ASSERT_EQ(h.buckets().size(), 5u);
  EXPECT_EQ(h.buckets()[0], 1);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[2], 2);
  EXPECT_EQ(h.buckets()[3], 0);
  EXPECT_EQ(h.buckets()[4], 1);
}

TEST(Histogram, NegativeSamplesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.max(), 0);
  ASSERT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.buckets()[0], 1);
}

TEST(Histogram, QuantileCeil) {
  Histogram h;
  for (i64 v = 0; v < 8; ++v) h.record(v);  // buckets 0..3
  EXPECT_EQ(h.quantile_ceil(0.0), 0);
  // First sample alone satisfies 1/8 of the mass.
  EXPECT_EQ(h.quantile_ceil(0.125), Histogram::bucket_ceil(0));
  // Everything is <= ceil of the last non-empty bucket.
  EXPECT_EQ(h.quantile_ceil(1.0), Histogram::bucket_ceil(3));
  EXPECT_GE(h.quantile_ceil(0.5), 1);
}

TEST(Histogram, ToJsonOmitsEmptyBuckets) {
  Histogram h;
  h.record(1);
  h.record(9);  // leaves buckets 2 and 3 empty between the samples
  const Json j = h.to_json();
  EXPECT_EQ(j.at("count").as_int(), 2);
  EXPECT_EQ(j.at("sum").as_int(), 10);
  const auto& buckets = j.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].at("le").as_int(), Histogram::bucket_ceil(1));
  EXPECT_EQ(buckets[0].at("count").as_int(), 1);
  EXPECT_EQ(buckets[1].at("le").as_int(), Histogram::bucket_ceil(4));
  EXPECT_EQ(buckets[1].at("count").as_int(), 1);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("grants");
  a.inc(3);
  Counter& b = reg.counter("grants");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains("grants"));
  EXPECT_FALSE(reg.contains("gauges"));
}

TEST(MetricsRegistry, ReferencesSurviveLaterRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("first");
  for (int i = 0; i < 100; ++i) reg.counter("extra." + std::to_string(i));
  c.inc();
  EXPECT_EQ(reg.counter("first").value(), 1);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x"), std::invalid_argument);
  reg.histogram("h");
  EXPECT_THROW(reg.counter("h"), std::invalid_argument);
}

TEST(MetricsRegistry, ToJsonPreservesRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("z").inc(1);
  reg.gauge("a").set(2.0);
  reg.histogram("m").record(4);
  const Json j = reg.to_json();
  const auto& members = j.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
  EXPECT_EQ(members[0].second.as_int(), 1);
  EXPECT_DOUBLE_EQ(members[1].second.as_double(), 2.0);
  EXPECT_EQ(members[2].second.at("count").as_int(), 1);
}

}  // namespace
}  // namespace vpmem::obs
