// Tracer: Chrome trace-event export (schema vpmem.trace/1), buffer/
// Collector reconciliation, and the shared-buffer path into Timeline.
#include "vpmem/obs/tracer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "vpmem/obs/collector.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/trace/timeline.hpp"

namespace vpmem::obs {
namespace {

// Fig. 3 of the paper: m = 13, nc = 6, streams (0,1) and (0,6) — the
// barrier-situation with b_eff = 7/6, rich in both grants and conflicts.
const sim::MemoryConfig kFig3{.banks = 13, .sections = 13, .bank_cycle = 6};

std::vector<sim::StreamConfig> fig3_streams() { return sim::two_streams(0, 1, 0, 6); }

TEST(Tracer, EventCountsMatchCollector) {
  sim::MemorySystem mem{kFig3, fig3_streams()};
  Collector collector{mem};
  Tracer tracer{mem};
  mem.run(156, /*stop_when_finished=*/false);
  collector.finish();
  tracer.finish();

  i64 grants = 0;
  i64 conflicts = 0;
  for (const auto& p : collector.port_stats()) {
    grants += p.grants;
    conflicts += p.total_conflicts();
  }
  EXPECT_EQ(tracer.buffer().recorded(), grants + conflicts);
  EXPECT_EQ(tracer.buffer().dropped(), 0);

  i64 buffer_grants = 0;
  i64 buffer_conflicts = 0;
  tracer.buffer().for_each([&](const sim::Event& e) {
    (e.type == sim::Event::Type::grant ? buffer_grants : buffer_conflicts) += 1;
  });
  EXPECT_EQ(buffer_grants, grants);
  EXPECT_EQ(buffer_conflicts, conflicts);
}

TEST(Tracer, AttributionMatchesAllStats) {
  sim::MemorySystem mem{kFig3, fig3_streams()};
  Tracer tracer{mem};
  mem.run(156, /*stop_when_finished=*/false);
  tracer.finish();

  const ConflictAttribution* a = tracer.attribution();
  ASSERT_NE(a, nullptr);
  const auto stats = mem.all_stats();
  for (std::size_t p = 0; p < stats.size(); ++p) {
    const sim::ConflictTotals t = a->totals(p);
    EXPECT_EQ(t.bank, stats[p].bank_conflicts);
    EXPECT_EQ(t.simultaneous, stats[p].simultaneous_conflicts);
    EXPECT_EQ(t.section, stats[p].section_conflicts);
  }
}

TEST(Tracer, ChromeTraceRoundTripsThroughJson) {
  sim::MemorySystem mem{kFig3, fig3_streams()};
  Tracer tracer{mem};
  mem.run(84, /*stop_when_finished=*/false);

  std::ostringstream os;
  tracer.write_chrome_trace(os);  // implies finish()
  const Json doc = Json::parse(os.str());
  EXPECT_EQ(doc, tracer.chrome_trace());

  EXPECT_EQ(doc.at("schema").as_string(), kTraceSchema);
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  // Track metadata: both synthetic processes are named, and every bank /
  // port has a thread_name row.
  i64 process_names = 0;
  i64 thread_names = 0;
  i64 grant_slices = 0;
  i64 service_slices = 0;
  i64 conflict_instants = 0;
  i64 counter_samples = 0;
  for (const Json& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      (e.at("name").as_string() == "process_name" ? process_names : thread_names) += 1;
      continue;
    }
    if (ph == "C") {
      ++counter_samples;
      continue;
    }
    if (ph == "i") {
      ++conflict_instants;
      const Json& args = e.at("args");
      EXPECT_TRUE(args.contains("kind"));
      EXPECT_TRUE(args.contains("blocker"));
      EXPECT_TRUE(args.contains("element"));
      continue;
    }
    ASSERT_EQ(ph, "X");
    if (e.at("pid").as_int() == 1) {
      ++service_slices;
      EXPECT_EQ(e.at("dur").as_int(), kFig3.bank_cycle);
    } else {
      ++grant_slices;
      EXPECT_EQ(e.at("dur").as_int(), 1);
    }
  }
  EXPECT_EQ(process_names, 2);
  EXPECT_EQ(thread_names, kFig3.banks + static_cast<i64>(mem.port_count()));

  // One service slice + one transfer slice per grant, one instant per
  // conflict, one counter sample per b_eff window.
  const auto stats = mem.all_stats();
  i64 grants = 0;
  i64 conflicts = 0;
  for (const auto& p : stats) {
    grants += p.grants;
    conflicts += p.total_conflicts();
  }
  EXPECT_EQ(service_slices, grants);
  EXPECT_EQ(grant_slices, grants);
  EXPECT_EQ(conflict_instants, conflicts);
  ASSERT_NE(tracer.attribution(), nullptr);
  EXPECT_EQ(counter_samples,
            static_cast<i64>(tracer.attribution()->bandwidth_series().size()));

  // The embedded attribution summary reconciles with the engine counters.
  const Json& attr = doc.at("otherData").at("attribution");
  EXPECT_EQ(attr.at("schema").as_string(), kAttributionSchema);
  EXPECT_EQ(attr.at("grants").as_int(), grants);
  EXPECT_EQ(attr.at("lost_cycles").at("total").as_int(), conflicts);
}

TEST(Tracer, SaveWritesAParseableFile) {
  sim::MemorySystem mem{kFig3, fig3_streams()};
  Tracer tracer{mem};
  mem.run(30, /*stop_when_finished=*/false);
  const std::string path = ::testing::TempDir() + "vpmem_tracer_test_trace.json";
  tracer.save_chrome_trace(path);
  std::ifstream in{path};
  ASSERT_TRUE(in.is_open());
  std::stringstream content;
  content << in.rdbuf();
  const Json doc = Json::parse(content.str());
  EXPECT_EQ(doc.at("schema").as_string(), kTraceSchema);
  std::remove(path.c_str());
  EXPECT_THROW(tracer.save_chrome_trace("/nonexistent-dir/trace.json"), std::runtime_error);
}

TEST(Tracer, FinishDetachesAndIsIdempotent) {
  sim::MemorySystem mem{kFig3, fig3_streams()};
  Tracer tracer{mem};
  EXPECT_EQ(mem.event_hook_count(), 1u);
  mem.run(20, /*stop_when_finished=*/false);
  tracer.finish();
  tracer.finish();
  EXPECT_EQ(mem.event_hook_count(), 0u);
  const i64 recorded = tracer.buffer().recorded();
  mem.run(20, /*stop_when_finished=*/false);
  EXPECT_EQ(tracer.buffer().recorded(), recorded);
}

TEST(Tracer, AttributionCanBeDisabled) {
  sim::MemorySystem mem{kFig3, fig3_streams()};
  Tracer tracer{mem, TracerOptions{.attribution = false}};
  mem.run(40, /*stop_when_finished=*/false);
  EXPECT_EQ(tracer.attribution(), nullptr);
  const Json doc = tracer.chrome_trace();
  for (const Json& e : doc.at("traceEvents").as_array()) {
    EXPECT_NE(e.at("ph").as_string(), "C");
  }
  EXPECT_TRUE(doc.at("otherData").at("attribution").is_null());
}

TEST(Tracer, BoundedCapacityEvictsButAttributionStaysExact) {
  sim::MemorySystem mem{kFig3, fig3_streams()};
  // Tiny buffer: one chunk. The run emits ~2 events/cycle, so 3000 cycles
  // overflow 4096 retained events — attribution must not notice.
  Tracer tracer{mem, TracerOptions{.capacity = 1}};
  mem.run(3000, /*stop_when_finished=*/false);
  tracer.finish();
  EXPECT_GT(tracer.buffer().dropped(), 0);
  const auto stats = mem.all_stats();
  ASSERT_NE(tracer.attribution(), nullptr);
  for (std::size_t p = 0; p < stats.size(); ++p) {
    EXPECT_EQ(tracer.attribution()->totals(p).total(), stats[p].total_conflicts());
  }
}

TEST(Tracer, SharesBufferWithTimeline) {
  sim::MemorySystem mem{kFig3, fig3_streams()};
  Tracer tracer{mem};
  trace::Timeline timeline{mem, tracer.share_buffer()};
  mem.run(26, /*stop_when_finished=*/false);
  // Only the tracer's hook is attached; the Timeline reads the same
  // buffer without recording the stream twice.
  EXPECT_EQ(mem.event_hook_count(), 1u);
  const auto grid = timeline.grid(0, 26);
  ASSERT_EQ(grid.size(), static_cast<std::size_t>(kFig3.banks));
  // Fig. 3's opening pattern on bank 0: stream 1 is granted at cycle 0
  // and stream 2 waits on the active bank ("1<<<<<").
  EXPECT_EQ(grid[0].substr(0, 6), "1<<<<<");
  EXPECT_EQ(timeline.events().size(), static_cast<std::size_t>(tracer.buffer().size()));
}

}  // namespace
}  // namespace vpmem::obs
