// RunReport: schema round-trip, golden serialization, and the acceptance
// invariant that reported per-port counters exactly equal what a reference
// MemorySystem run reports via all_stats().
#include "vpmem/obs/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "vpmem/sim/fault.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/sim/steady_state.hpp"
#include "vpmem/util/error.hpp"
#include "vpmem/xmp/machine.hpp"

namespace vpmem::obs {
namespace {

/// Reference: rebuild the same run with a bare MemorySystem and return
/// its all_stats() over `cycles` periods.
std::vector<sim::PortStats> reference_stats(const sim::MemoryConfig& config,
                                            const std::vector<sim::StreamConfig>& streams,
                                            i64 cycles) {
  sim::MemorySystem mem{config, streams};
  mem.run(cycles, /*stop_when_finished=*/false);
  return mem.all_stats();
}

void expect_report_matches_all_stats(const sim::MemoryConfig& config,
                                     const std::vector<sim::StreamConfig>& streams) {
  const RunReport report = report_run(config, streams);
  const auto truth = reference_stats(config, streams, report.cycles);
  ASSERT_EQ(report.ports.size(), truth.size());
  for (std::size_t p = 0; p < truth.size(); ++p) {
    SCOPED_TRACE("port " + std::to_string(p));
    EXPECT_EQ(report.ports[p].grants, truth[p].grants);
    EXPECT_EQ(report.ports[p].bank_conflicts, truth[p].bank_conflicts);
    EXPECT_EQ(report.ports[p].simultaneous_conflicts, truth[p].simultaneous_conflicts);
    EXPECT_EQ(report.ports[p].section_conflicts, truth[p].section_conflicts);
  }
  const sim::ConflictTotals truth_totals = sim::totals(truth);
  EXPECT_EQ(report.conflicts.bank, truth_totals.bank);
  EXPECT_EQ(report.conflicts.simultaneous, truth_totals.simultaneous);
  EXPECT_EQ(report.conflicts.section, truth_totals.section);
}

TEST(RunReport, CountersMatchAllStatsOnFig2) {
  const sim::MemoryConfig config{.banks = 12, .sections = 12, .bank_cycle = 3};
  expect_report_matches_all_stats(config, sim::two_streams(0, 1, 3, 7));
}

TEST(RunReport, CountersMatchAllStatsOnFig3) {
  const sim::MemoryConfig config{.banks = 13, .sections = 13, .bank_cycle = 6};
  expect_report_matches_all_stats(config, sim::two_streams(0, 1, 0, 6));
}

TEST(RunReport, CountersMatchAllStatsOnFig10Geometry) {
  const xmp::XmpConfig machine;
  std::vector<sim::StreamConfig> streams;
  for (i64 p = 0; p < 3; ++p) {
    streams.push_back(sim::StreamConfig{.start_bank = p * 4, .distance = 5, .cpu = 0});
  }
  for (const i64 b : machine.background_start_banks) {
    streams.push_back(sim::StreamConfig{.start_bank = b, .distance = 1, .cpu = 1});
  }
  expect_report_matches_all_stats(machine.memory, streams);
}

TEST(RunReport, SteadyStateSectionMatchesDetector) {
  const sim::MemoryConfig config{.banks = 13, .sections = 13, .bank_cycle = 6};
  const auto streams = sim::two_streams(0, 1, 0, 6);
  const RunReport report = report_run(config, streams);
  EXPECT_EQ(report.kind, "steady_state");
  ASSERT_TRUE(report.steady_state.has_value());
  const sim::SteadyState ss = sim::find_steady_state(config, streams);
  EXPECT_EQ(report.steady_state->b_eff, ss.bandwidth);
  EXPECT_EQ(report.steady_state->period, ss.period);
  EXPECT_EQ(report.steady_state->transient_cycles, ss.transient_cycles);
  EXPECT_EQ(report.steady_state->grants_in_period, ss.grants_in_period);
  // Default window = transient + one full period.
  EXPECT_EQ(report.cycles, ss.transient_cycles + ss.period);
  EXPECT_GT(report.perf.cycles_simulated, 0);
}

TEST(RunReport, FiniteRun) {
  const sim::MemoryConfig config{.banks = 8, .sections = 8, .bank_cycle = 4};
  auto streams = sim::two_streams(0, 1, 4, 3);
  for (auto& s : streams) s.length = 32;
  const RunReport report = report_run(config, streams);
  EXPECT_EQ(report.kind, "finite_run");
  EXPECT_FALSE(report.steady_state.has_value());
  EXPECT_GT(report.cycles, 0);
  i64 grants = 0;
  for (const auto& p : report.ports) grants += p.grants;
  EXPECT_EQ(grants, 64);  // both streams completed
  EXPECT_GT(report.window_bandwidth, 0.0);
}

TEST(RunReport, MixedWorkloadRejected) {
  const sim::MemoryConfig config{.banks = 8, .sections = 8, .bank_cycle = 4};
  auto streams = sim::two_streams(0, 1, 4, 3);
  streams[0].length = 32;  // stream 1 stays infinite
  try {
    (void)report_run(config, streams);
    FAIL() << "expected vpmem::Error";
  } catch (const vpmem::Error& e) {
    EXPECT_EQ(e.code(), vpmem::ErrorCode::config_invalid);
  }
}

TEST(RunReport, GuardedRunCompletesWithFaultPlan) {
  const sim::MemoryConfig config{.banks = 12, .sections = 3, .bank_cycle = 3};
  auto streams = sim::two_streams(0, 1, 3, 7);
  for (auto& s : streams) s.length = 64;
  sim::FaultPlan plan;
  plan.policy = sim::FaultPolicy::remap_spare;
  plan.events = {
      sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_offline, .cycle = 16, .bank = 5},
      sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_online, .cycle = 96, .bank = 5}};
  const RunReport report = report_run_guarded(config, streams, plan);
  EXPECT_EQ(report.kind, "guarded_run");
  EXPECT_EQ(report.status, "completed");
  EXPECT_TRUE(report.status_detail.empty());
  ASSERT_EQ(report.fault_plan.events.size(), 2u);

  // Counters must reconcile with a bare MemorySystem run under the same
  // plan (the acceptance invariant, now including fault conflicts).
  sim::MemorySystem mem{config, streams, plan};
  mem.run(report.cycles, /*stop_when_finished=*/false);
  const auto truth = mem.all_stats();
  ASSERT_EQ(report.ports.size(), truth.size());
  for (std::size_t p = 0; p < truth.size(); ++p) {
    SCOPED_TRACE("port " + std::to_string(p));
    EXPECT_EQ(report.ports[p].grants, truth[p].grants);
    EXPECT_EQ(report.ports[p].bank_conflicts, truth[p].bank_conflicts);
    EXPECT_EQ(report.ports[p].simultaneous_conflicts, truth[p].simultaneous_conflicts);
    EXPECT_EQ(report.ports[p].section_conflicts, truth[p].section_conflicts);
    EXPECT_EQ(report.ports[p].fault_conflicts, truth[p].fault_conflicts);
  }

  // Attribution rides along and reconciles cycle-for-cycle.
  ASSERT_FALSE(report.attribution.is_null());
  const Json json = report.to_json();
  EXPECT_EQ(json.at("status").as_string(), "completed");
  EXPECT_FALSE(json.at("fault_plan").is_null());
  const RunReport back = RunReport::from_json(json);
  EXPECT_EQ(back.status, report.status);
  EXPECT_EQ(back.fault_plan.events.size(), report.fault_plan.events.size());
  EXPECT_EQ(back.to_json(), json);
}

TEST(RunReport, GuardedRunReportsDeadlineAsPartialReport) {
  const sim::MemoryConfig config{.banks = 8, .sections = 8, .bank_cycle = 4};
  std::vector<sim::StreamConfig> streams{
      sim::StreamConfig{.start_bank = 0, .distance = 4, .length = 1000}};
  const sim::Watchdog dog{.max_cycles = 50};
  const RunReport report = report_run_guarded(config, streams, {}, {}, dog);
  EXPECT_EQ(report.status, "deadline_exceeded");
  EXPECT_FALSE(report.status_detail.empty());
  EXPECT_EQ(report.cycles, 50);
  EXPECT_GT(report.ports.at(0).grants, 0);  // partial progress, not a throw
}

TEST(RunReport, GuardedRunLivelockUnderPermanentOutage) {
  const sim::MemoryConfig config{.banks = 8, .sections = 8, .bank_cycle = 2};
  std::vector<sim::StreamConfig> streams{
      sim::StreamConfig{.start_bank = 0, .distance = 1, .length = 64}};
  sim::FaultPlan plan;
  plan.policy = sim::FaultPolicy::stall;
  plan.events = {
      sim::FaultEvent{.kind = sim::FaultEvent::Kind::bank_offline, .cycle = 4, .bank = 4}};
  const RunReport report = report_run_guarded(config, streams, plan);
  EXPECT_EQ(report.status, "livelock");
  EXPECT_FALSE(report.status_detail.empty());
  EXPECT_EQ(report.ports.at(0).grants, 4);
  EXPECT_GT(report.conflicts.fault, 0);
}

TEST(RunReport, GuardedRunInfiniteStreamsNeedExplicitHorizon) {
  const sim::MemoryConfig config{.banks = 8, .sections = 8, .bank_cycle = 2};
  const std::vector<sim::StreamConfig> streams{sim::StreamConfig{.distance = 1}};
  try {
    (void)report_run_guarded(config, streams);
    FAIL() << "expected vpmem::Error";
  } catch (const vpmem::Error& e) {
    EXPECT_EQ(e.code(), vpmem::ErrorCode::config_invalid);
  }
  ReportOptions options;
  options.cycles = 96;
  const RunReport report = report_run_guarded(config, streams, {}, options);
  EXPECT_EQ(report.status, "completed");
  EXPECT_EQ(report.cycles, 96);
  EXPECT_EQ(report.ports.at(0).grants, 96);
}

TEST(RunReport, PreFaultDocumentsParseAsCompleted) {
  // Reports serialized before the fault model carry neither "status" nor
  // "fault_plan"; from_json must default them instead of throwing.
  RunReport report;
  report.kind = "finite_run";
  report.config = sim::MemoryConfig{.banks = 2, .sections = 2, .bank_cycle = 1};
  std::string text = report.to_json().dump();
  const auto drop = [&text](const std::string& member) {
    const std::size_t at = text.find(member);
    ASSERT_NE(at, std::string::npos) << member;
    text.erase(at, member.size());
  };
  drop("\"status\":\"completed\",");
  drop("\"fault_plan\":null,");
  const RunReport back = RunReport::from_json(Json::parse(text));
  EXPECT_EQ(back.status, "completed");
  EXPECT_TRUE(back.fault_plan.empty());
}

TEST(RunReport, JsonRoundTrip) {
  const sim::MemoryConfig config{.banks = 13, .sections = 13, .bank_cycle = 6};
  const RunReport report = report_run(config, sim::two_streams(0, 1, 0, 6));
  const Json first = report.to_json();
  const RunReport reparsed = RunReport::from_json(Json::parse(first.dump(2)));
  // A full round trip must reproduce the document bit-for-bit (shortest
  // round-trip double formatting makes this exact).
  EXPECT_EQ(reparsed.to_json(), first);
  EXPECT_EQ(reparsed.kind, report.kind);
  EXPECT_EQ(reparsed.streams.size(), report.streams.size());
  ASSERT_TRUE(reparsed.steady_state.has_value());
  EXPECT_EQ(reparsed.steady_state->b_eff, report.steady_state->b_eff);
}

TEST(RunReport, FromJsonRejectsWrongSchema) {
  Json doc = Json::object();
  doc["schema"] = "vpmem.run_report/999";
  EXPECT_THROW((void)RunReport::from_json(doc), std::runtime_error);
  EXPECT_THROW((void)RunReport::from_json(Json::object()), std::runtime_error);
}

TEST(RunReport, GoldenJson) {
  // Hand-built report with every field pinned: the serialized form is
  // the documented schema, so any change here is a schema change.
  RunReport report;
  report.kind = "finite_run";
  report.config = sim::MemoryConfig{.banks = 4, .sections = 2, .bank_cycle = 3};
  sim::StreamConfig stream;
  stream.start_bank = 1;
  stream.distance = 2;
  stream.length = 8;
  report.streams.push_back(stream);
  report.cycles = 10;
  sim::PortStats port;
  port.grants = 8;
  port.bank_conflicts = 2;
  port.first_grant_cycle = 0;
  port.last_grant_cycle = 9;
  port.longest_stall = 2;
  report.ports.push_back(port);
  report.conflicts.bank = 2;
  report.window_bandwidth = 0.8;
  report.bank_grants = {4, 0, 4, 0};
  report.bank_utilization = 0.5;
  report.hottest_bank = 0;
  report.metrics = Json{nullptr};
  report.perf.wall_seconds = 0.5;
  report.perf.cycles_simulated = 10;

  const std::string golden =
      "{\"schema\":\"vpmem.run_report/1\",\"kind\":\"finite_run\","
      "\"status\":\"completed\","
      "\"config\":{\"banks\":4,\"sections\":2,\"bank_cycle\":3,"
      "\"mapping\":\"cyclic\",\"priority\":\"fixed\"},"
      "\"streams\":[{\"start_bank\":1,\"distance\":2,\"cpu\":0,\"length\":8,"
      "\"start_cycle\":0,\"bank_pattern\":[]}],"
      "\"fault_plan\":null,"
      "\"window\":{\"cycles\":10,\"bandwidth\":0.8,"
      "\"conflicts\":{\"bank\":2,\"simultaneous\":0,\"section\":0,\"fault\":0,"
      "\"total\":2},"
      "\"bank_utilization\":0.5,\"hottest_bank\":0,\"bank_grants\":[4,0,4,0]},"
      "\"ports\":[{\"grants\":8,\"bank_conflicts\":2,\"simultaneous_conflicts\":0,"
      "\"section_conflicts\":0,\"fault_conflicts\":0,"
      "\"first_grant_cycle\":0,\"last_grant_cycle\":9,"
      "\"longest_stall\":2}],"
      "\"steady_state\":null,\"metrics\":null,\"attribution\":null,"
      "\"perf\":{\"wall_seconds\":0.5,\"cycles_simulated\":10,"
      "\"cycles_per_second\":20.0}}";
  EXPECT_EQ(report.to_json().dump(), golden);

  // And the golden text parses back into an equal report.
  const RunReport back = RunReport::from_json(Json::parse(golden));
  EXPECT_EQ(back.to_json().dump(), golden);
}

TEST(RunReport, WriteHelpers) {
  RunReport report;
  report.kind = "finite_run";
  report.config = sim::MemoryConfig{.banks = 2, .sections = 2, .bank_cycle = 1};
  std::ostringstream pretty;
  report.write_json(pretty);
  EXPECT_EQ(pretty.str().back(), '\n');
  EXPECT_NE(pretty.str().find("\"schema\": \"vpmem.run_report/1\""), std::string::npos);
  std::ostringstream lines;
  report.append_jsonl(lines);
  report.append_jsonl(lines);
  // Two self-contained lines.
  const std::string text = lines.str();
  const std::size_t first_newline = text.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  EXPECT_EQ(text.substr(0, first_newline),
            text.substr(first_newline + 1, text.size() - first_newline - 2));
  EXPECT_EQ(Json::parse(text.substr(0, first_newline)).at("kind").as_string(), "finite_run");
}

}  // namespace
}  // namespace vpmem::obs
