// The Collector recounts statistics from the event stream alone; these
// tests pit it against MemorySystem's own counters on the paper's
// configurations (Figs. 2, 3 and the Fig. 10 X-MP geometry).
#include "vpmem/obs/collector.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/trace/timeline.hpp"
#include "vpmem/xmp/machine.hpp"

namespace vpmem::obs {
namespace {

void expect_ports_equal(const std::vector<sim::PortStats>& collected,
                        const std::vector<sim::PortStats>& truth) {
  ASSERT_EQ(collected.size(), truth.size());
  for (std::size_t p = 0; p < truth.size(); ++p) {
    SCOPED_TRACE("port " + std::to_string(p));
    EXPECT_EQ(collected[p].grants, truth[p].grants);
    EXPECT_EQ(collected[p].bank_conflicts, truth[p].bank_conflicts);
    EXPECT_EQ(collected[p].simultaneous_conflicts, truth[p].simultaneous_conflicts);
    EXPECT_EQ(collected[p].section_conflicts, truth[p].section_conflicts);
    EXPECT_EQ(collected[p].first_grant_cycle, truth[p].first_grant_cycle);
    EXPECT_EQ(collected[p].last_grant_cycle, truth[p].last_grant_cycle);
    EXPECT_EQ(collected[p].longest_stall, truth[p].longest_stall);
    EXPECT_EQ(collected[p].current_stall, truth[p].current_stall);
  }
}

/// Run `cycles` periods with a Collector attached and check every
/// recounted statistic against the simulator's own.
void check_collector_matches(const sim::MemoryConfig& config,
                             const std::vector<sim::StreamConfig>& streams, i64 cycles) {
  sim::MemorySystem mem{config, streams};
  Collector collector{mem};
  for (i64 c = 0; c < cycles; ++c) mem.step();
  collector.finish();

  expect_ports_equal(collector.port_stats(), mem.all_stats());

  ASSERT_EQ(collector.bank_grants().size(), static_cast<std::size_t>(config.banks));
  for (i64 b = 0; b < config.banks; ++b) {
    EXPECT_EQ(collector.bank_grants()[static_cast<std::size_t>(b)], mem.bank_grants(b))
        << "bank " << b;
  }

  // Registry counters agree with the port totals.
  const sim::ConflictTotals totals = sim::totals(mem.all_stats());
  MetricsRegistry& reg = collector.registry();
  i64 grants = 0;
  for (const auto& p : mem.all_stats()) grants += p.grants;
  EXPECT_EQ(reg.counter("grants").value(), grants);
  EXPECT_EQ(reg.counter("conflicts.bank").value(), totals.bank);
  EXPECT_EQ(reg.counter("conflicts.simultaneous").value(), totals.simultaneous);
  EXPECT_EQ(reg.counter("conflicts.section").value(), totals.section);

  // Every delayed period belongs to exactly one stall run, so the
  // histogram's mass equals the total conflict count.
  EXPECT_EQ(collector.stall_lengths().sum(), totals.total());
}

TEST(Collector, MatchesAllStatsOnFig2ConflictFree) {
  // Fig. 2: m = 12, nc = 3, distances 1 and 7 from banks 0 and 3 —
  // the paper's conflict-free showcase.
  const sim::MemoryConfig config{.banks = 12, .sections = 12, .bank_cycle = 3};
  check_collector_matches(config, sim::two_streams(0, 1, 3, 7), 600);
}

TEST(Collector, MatchesAllStatsOnFig3Barrier) {
  // Fig. 3: m = 13, nc = 6, both streams from bank 0 with distances 1
  // and 6 — forms the barrier, so real stalls flow through the hook.
  const sim::MemoryConfig config{.banks = 13, .sections = 13, .bank_cycle = 6};
  check_collector_matches(config, sim::two_streams(0, 1, 0, 6), 600);
}

TEST(Collector, MatchesAllStatsOnFig10XmpGeometry) {
  // Fig. 10 machine: 16 banks, 4 sections, nc = 4 — exercises section
  // and simultaneous conflicts across two CPUs.
  const xmp::XmpConfig machine;
  std::vector<sim::StreamConfig> streams;
  // CPU 0: the triad's three operand streams at stride 5.
  for (i64 p = 0; p < 3; ++p) {
    streams.push_back(sim::StreamConfig{.start_bank = p * 4, .distance = 5, .cpu = 0});
  }
  // CPU 1: the competing stride-1 background streams.
  for (const i64 b : machine.background_start_banks) {
    streams.push_back(sim::StreamConfig{.start_bank = b, .distance = 1, .cpu = 1});
  }
  check_collector_matches(machine.memory, streams, 800);
}

TEST(Collector, MatchesFiniteStreams) {
  const sim::MemoryConfig config{.banks = 8, .sections = 4, .bank_cycle = 4};
  auto streams = sim::two_streams(0, 1, 0, 4, /*same_cpu=*/true);
  for (auto& s : streams) s.length = 37;
  check_collector_matches(config, streams, 400);
}

TEST(Collector, FinishIsIdempotentAndDetaches) {
  const sim::MemoryConfig config{.banks = 13, .sections = 13, .bank_cycle = 6};
  sim::MemorySystem mem{config, sim::two_streams(0, 1, 0, 6)};
  Collector collector{mem};
  for (i64 c = 0; c < 100; ++c) mem.step();
  collector.finish();
  const auto frozen = collector.port_stats();
  const i64 frozen_count = collector.stall_lengths().count();
  // Events after finish() must not be collected.
  for (i64 c = 0; c < 100; ++c) mem.step();
  collector.finish();
  expect_ports_equal(collector.port_stats(), frozen);
  EXPECT_EQ(collector.stall_lengths().count(), frozen_count);
  EXPECT_EQ(mem.event_hook_count(), 0u);
}

TEST(Collector, CoexistsWithTimeline) {
  // Both observers attach through the hook multiplexer; each must see
  // the full event stream.
  const sim::MemoryConfig config{.banks = 13, .sections = 13, .bank_cycle = 6};
  sim::MemorySystem mem{config, sim::two_streams(0, 1, 0, 6)};
  trace::Timeline timeline{mem};
  Collector collector{mem};
  EXPECT_EQ(mem.event_hook_count(), 2u);
  for (i64 c = 0; c < 200; ++c) mem.step();
  collector.finish();
  EXPECT_EQ(mem.event_hook_count(), 1u);  // Timeline still attached

  expect_ports_equal(collector.port_stats(), mem.all_stats());
  i64 timeline_grants = 0;
  i64 timeline_conflicts = 0;
  for (const auto& e : timeline.events()) {
    (e.type == sim::Event::Type::grant ? timeline_grants : timeline_conflicts)++;
  }
  const sim::ConflictTotals totals = sim::totals(mem.all_stats());
  i64 grants = 0;
  for (const auto& p : mem.all_stats()) grants += p.grants;
  EXPECT_EQ(timeline_grants, grants);
  EXPECT_EQ(timeline_conflicts, totals.total());
}

TEST(Collector, StallHistogramOnBarrier) {
  // The Fig. 3 barrier produces real delay runs; the longest recorded
  // run must agree with the simulator's longest_stall.
  const sim::MemoryConfig config{.banks = 13, .sections = 13, .bank_cycle = 6};
  sim::MemorySystem mem{config, sim::two_streams(0, 1, 0, 6)};
  Collector collector{mem};
  for (i64 c = 0; c < 600; ++c) mem.step();
  collector.finish();
  ASSERT_GT(collector.stall_lengths().count(), 0);
  i64 longest = 0;
  for (const auto& p : mem.all_stats()) longest = std::max(longest, p.longest_stall);
  EXPECT_EQ(collector.stall_lengths().max(), longest);
}

TEST(MemorySystem, HookMultiplexerAddRemove) {
  const sim::MemoryConfig config{.banks = 8, .sections = 8, .bank_cycle = 4};
  sim::MemorySystem mem{config, sim::two_streams(0, 1, 1, 1)};
  i64 a = 0;
  i64 b = 0;
  const std::size_t ha = mem.add_event_hook([&](const sim::Event&) { ++a; });
  const std::size_t hb = mem.add_event_hook([&](const sim::Event&) { ++b; });
  EXPECT_EQ(mem.event_hook_count(), 2u);
  for (i64 c = 0; c < 50; ++c) mem.step();
  EXPECT_GT(a, 0);
  EXPECT_EQ(a, b);
  mem.remove_event_hook(ha);
  EXPECT_EQ(mem.event_hook_count(), 1u);
  const i64 a_frozen = a;
  for (i64 c = 0; c < 50; ++c) mem.step();
  EXPECT_EQ(a, a_frozen);
  EXPECT_GT(b, a_frozen);
  // Legacy single-hook setter still works and replaces itself.
  mem.set_event_hook([&](const sim::Event&) { ++a; });
  mem.set_event_hook([&](const sim::Event&) { ++a; });
  EXPECT_EQ(mem.event_hook_count(), 2u);
  mem.set_event_hook(nullptr);
  EXPECT_EQ(mem.event_hook_count(), 1u);
  mem.remove_event_hook(hb);
  EXPECT_EQ(mem.event_hook_count(), 0u);
}

}  // namespace
}  // namespace vpmem::obs
