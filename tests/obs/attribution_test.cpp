// ConflictAttribution: the lost-cycle matrices must reconcile exactly
// with the simulator's own counters, and barrier-episode detection must
// agree with the analytic theorems on the paper's figures.
#include "vpmem/obs/attribution.hpp"

#include <gtest/gtest.h>

#include "vpmem/analytic/theorems.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::obs {
namespace {

/// Run `streams` for `cycles` with an attribution attached; returns the
/// finalized analyzer and leaves the simulator's stats in `stats`.
ConflictAttribution attribute_run(const sim::MemoryConfig& config,
                                  const std::vector<sim::StreamConfig>& streams, i64 cycles,
                                  std::vector<sim::PortStats>& stats,
                                  AttributionOptions options = {}) {
  sim::MemorySystem mem{config, streams};
  ConflictAttribution attribution{config, options};
  const std::size_t hook =
      mem.add_event_hook([&](const sim::Event& e) { attribution.observe(e); });
  mem.run(cycles, /*stop_when_finished=*/false);
  mem.remove_event_hook(hook);
  attribution.finalize(mem.now());
  stats = mem.all_stats();
  return attribution;
}

void expect_matches_stats(const sim::MemoryConfig& config, const ConflictAttribution& a,
                          const std::vector<sim::PortStats>& stats) {
  i64 expected_grants = 0;
  for (std::size_t p = 0; p < stats.size(); ++p) {
    expected_grants += stats[p].grants;
    // The per-kind totals equal the stream's delay counters field-for-field.
    const sim::ConflictTotals t = a.totals(p);
    EXPECT_EQ(t.bank, stats[p].bank_conflicts) << "port " << p;
    EXPECT_EQ(t.simultaneous, stats[p].simultaneous_conflicts) << "port " << p;
    EXPECT_EQ(t.section, stats[p].section_conflicts) << "port " << p;
    // Row sums over banks reproduce the per-kind totals: the matrix never
    // loses or double-counts a delayed period.
    sim::ConflictTotals rows;
    for (i64 bank = 0; bank < config.banks; ++bank) {
      rows.bank += a.lost_cycles(p, bank, sim::ConflictKind::bank);
      rows.simultaneous += a.lost_cycles(p, bank, sim::ConflictKind::simultaneous);
      rows.section += a.lost_cycles(p, bank, sim::ConflictKind::section);
    }
    EXPECT_EQ(rows.bank, t.bank) << "port " << p;
    EXPECT_EQ(rows.simultaneous, t.simultaneous) << "port " << p;
    EXPECT_EQ(rows.section, t.section) << "port " << p;
    // Blame decomposition: every lost period is charged to some blocker.
    i64 blamed = 0;
    for (std::size_t b = 0; b < stats.size(); ++b) blamed += a.blocked_by(p, b);
    EXPECT_EQ(blamed, t.total()) << "port " << p;
  }
  EXPECT_EQ(a.total_grants(), expected_grants);
}

TEST(ConflictAttribution, MatchesAllStatsOnFig2) {
  // Fig. 2: m = 12, nc = 3, streams (0,1) and (3,7) — conflict-free.
  const sim::MemoryConfig config{.banks = 12, .sections = 12, .bank_cycle = 3};
  std::vector<sim::PortStats> stats;
  const ConflictAttribution a =
      attribute_run(config, sim::two_streams(0, 1, 3, 7), 240, stats);
  expect_matches_stats(config, a, stats);
  EXPECT_TRUE(a.episodes().empty());
  EXPECT_EQ(a.totals(0).total(), 0);
  EXPECT_EQ(a.totals(1).total(), 0);
}

TEST(ConflictAttribution, MatchesAllStatsOnFig3) {
  // Fig. 3: m = 13, nc = 6, streams (0,1) and (0,6) — barrier-situation.
  const sim::MemoryConfig config{.banks = 13, .sections = 13, .bank_cycle = 6};
  std::vector<sim::PortStats> stats;
  const ConflictAttribution a =
      attribute_run(config, sim::two_streams(0, 1, 0, 6), 312, stats);
  expect_matches_stats(config, a, stats);
}

TEST(ConflictAttribution, MatchesAllStatsOnFig7) {
  // Fig. 7 setting: m = 12, s = 2, nc = 2, both streams on one CPU.  The
  // eq. 31 offset nc*d1 = 2 (the figure's counterexample to eq. 32's
  // conflict-free offset 3) alternates section conflicts on the shared
  // access path, so both kinds of lost cycle show up in the matrices.
  const sim::MemoryConfig config{.banks = 12, .sections = 2, .bank_cycle = 2};
  std::vector<sim::PortStats> stats;
  const ConflictAttribution a =
      attribute_run(config, sim::two_streams(0, 1, 2, 1, /*same_cpu=*/true), 240, stats);
  expect_matches_stats(config, a, stats);
  EXPECT_GT(a.totals(1).section, 0);
}

TEST(ConflictAttribution, Fig3YieldsOneEpisodeAtPredictedOnset) {
  const i64 m = 13;
  const i64 nc = 6;
  const i64 d1 = 1;
  const i64 d2 = 6;
  // Theorem 4 predicts the barrier-situation with b_eff = 1 + d1/d2.
  // (Theorems 6/7 do not certify uniqueness here — eq. 24 needs
  // (2nc-1)*d2 <= m and eq. 25 presumes eq. 22, both of which fail for
  // this figure — but the observed single episode below shows the
  // barrier is reached from the figure's start position regardless.)
  ASSERT_TRUE(analytic::barrier_possible(m, nc, d1, d2));
  EXPECT_FALSE(analytic::unique_barrier(m, nc, d1, d2));
  EXPECT_EQ(analytic::barrier_bandwidth(d1, d2), Rational(7, 6));

  const sim::MemoryConfig config{.banks = m, .sections = m, .bank_cycle = nc};
  std::vector<sim::PortStats> stats;
  const ConflictAttribution a =
      attribute_run(config, sim::two_streams(0, d1, 0, d2), 312, stats);

  // Both streams start at bank 0, so stream 2 is delayed from its very
  // first request, and in steady state it re-enters the barrier within nc
  // periods of every grant: one merged episode, onset 0, stream 2.
  ASSERT_EQ(a.episodes().size(), 1u);
  const BarrierEpisode& ep = a.episodes().front();
  EXPECT_EQ(ep.port, 1u);
  EXPECT_EQ(ep.onset, 0);
  EXPECT_EQ(ep.lost_cycles, stats[1].total_conflicts());
  EXPECT_EQ(ep.kinds.bank, stats[1].bank_conflicts);
  EXPECT_EQ(ep.kinds.simultaneous, stats[1].simultaneous_conflicts);

  // The window b_eff converges to the predicted 7/6 once past startup.
  const auto& series = a.bandwidth_series();
  ASSERT_FALSE(series.empty());
  const BandwidthSample& tail = series[series.size() - 2];  // last full window
  EXPECT_NEAR(tail.b_eff(), 7.0 / 6.0, 0.15);
}

TEST(ConflictAttribution, EpisodeGapSplitsDistantStalls) {
  // Two stalls farther apart than the merge gap become two episodes.
  const sim::MemoryConfig config{.banks = 4, .sections = 4, .bank_cycle = 2};
  ConflictAttribution a{config, AttributionOptions{.episode_gap = 1}};
  sim::Event e;
  e.type = sim::Event::Type::conflict;
  e.port = 0;
  e.bank = 1;
  e.conflict = sim::ConflictKind::bank;
  e.cycle = 5;
  a.observe(e);
  e.cycle = 6;
  a.observe(e);
  e.cycle = 20;  // > gap away: new episode
  e.bank = 2;
  a.observe(e);
  a.finalize(30);
  ASSERT_EQ(a.episodes().size(), 2u);
  EXPECT_EQ(a.episodes()[0].onset, 5);
  EXPECT_EQ(a.episodes()[0].last, 6);
  EXPECT_EQ(a.episodes()[0].lost_cycles, 2);
  EXPECT_EQ(a.episodes()[0].banks, std::vector<i64>{1});
  EXPECT_EQ(a.episodes()[1].onset, 20);
  EXPECT_EQ(a.episodes()[1].banks, std::vector<i64>{2});
}

TEST(ConflictAttribution, BandwidthSeriesCoversTheWholeWindow) {
  const sim::MemoryConfig config{.banks = 8, .sections = 8, .bank_cycle = 4};
  sim::MemorySystem mem{config, sim::two_streams(0, 1, 0, 4)};
  ConflictAttribution a{config, AttributionOptions{.window = 10}};
  const std::size_t hook = mem.add_event_hook([&](const sim::Event& e) { a.observe(e); });
  mem.run(95, /*stop_when_finished=*/false);
  mem.remove_event_hook(hook);
  a.finalize(mem.now());

  const auto& series = a.bandwidth_series();
  ASSERT_EQ(series.size(), 10u);  // ceil(95 / 10)
  i64 cycles = 0;
  i64 grants = 0;
  for (const BandwidthSample& s : series) {
    EXPECT_GE(s.grants, 0);
    EXPECT_LE(s.b_eff(), static_cast<double>(mem.port_count()));
    cycles += s.cycles;
    grants += s.grants;
  }
  EXPECT_EQ(cycles, 95);
  EXPECT_EQ(series.back().cycles, 5);  // partial final window
  EXPECT_EQ(grants, a.total_grants());
}

TEST(ConflictAttribution, ObserveAfterFinalizeThrows) {
  const sim::MemoryConfig config{.banks = 4, .sections = 4, .bank_cycle = 2};
  ConflictAttribution a{config};
  a.finalize(10);
  sim::Event e;
  EXPECT_THROW(a.observe(e), std::logic_error);
  EXPECT_THROW((ConflictAttribution{config, AttributionOptions{.window = 0}}),
               std::invalid_argument);
}

TEST(ConflictAttribution, JsonSummaryReconcilesWithCounters) {
  const sim::MemoryConfig config{.banks = 13, .sections = 13, .bank_cycle = 6};
  std::vector<sim::PortStats> stats;
  const ConflictAttribution a =
      attribute_run(config, sim::two_streams(0, 1, 0, 6), 200, stats);
  const Json doc = a.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), kAttributionSchema);
  EXPECT_EQ(doc.at("grants").as_int(), a.total_grants());
  i64 total_lost = 0;
  for (const auto& s : stats) total_lost += s.total_conflicts();
  EXPECT_EQ(doc.at("lost_cycles").at("total").as_int(), total_lost);
  // Per-port sparse matrix rows sum back to the port's counters.
  for (const Json& entry : doc.at("per_port").as_array()) {
    const auto p = static_cast<std::size_t>(entry.at("port").as_int());
    i64 bank_sum = 0;
    for (const Json& cell : entry.at("by_bank").as_array()) {
      bank_sum += cell.at("bank_conflicts").as_int();
    }
    EXPECT_EQ(bank_sum, stats[p].bank_conflicts);
  }
  // Round-trips through the strict parser.
  EXPECT_EQ(Json::parse(doc.dump()), doc);
}

}  // namespace
}  // namespace vpmem::obs
