// End-to-end reproduction of every qualitative claim in Figs. 2-9 of the
// paper, asserted on exact steady-state bandwidths.  (Fig. 10 is covered
// by xmp_machine_test and the fig10 bench.)
#include <gtest/gtest.h>

#include "vpmem/vpmem.hpp"

namespace vpmem {
namespace {

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

TEST(PaperFigures, Fig2ConflictFreeAccess) {
  // 12-way memory, nc = 3, d1 = 1, d2 = 7: no conflicts, b_eff = 2.
  const auto ss = sim::find_steady_state(flat(12, 3), sim::two_streams(0, 1, 3, 7));
  EXPECT_EQ(ss.bandwidth, Rational{2});
  EXPECT_TRUE(ss.conflict_free());
  // Theorem 3 predicts it: gcd(12, 6) = 6 >= 2*3.
  EXPECT_TRUE(analytic::conflict_free_achievable(12, 3, 1, 7));
}

TEST(PaperFigures, Fig3BarrierSituation) {
  // 13-way memory, nc = 6, d1 = 1, d2 = 6: stream 1 free, stream 2 at 1/6.
  const auto ss = sim::find_steady_state(flat(13, 6), sim::two_streams(0, 1, 0, 6));
  EXPECT_EQ(ss.bandwidth, (Rational{7, 6}));
  EXPECT_EQ(ss.per_port[0], Rational{1});
  EXPECT_EQ(ss.per_port[1], (Rational{1, 6}));
  EXPECT_TRUE(ss.port_conflict_free(0));
  EXPECT_FALSE(ss.port_conflict_free(1));
  EXPECT_TRUE(analytic::barrier_possible(13, 6, 1, 6));
  EXPECT_EQ(analytic::barrier_bandwidth(1, 6), ss.bandwidth);
}

TEST(PaperFigures, Fig4DoubleConflict) {
  // Same pair, b2 = 1: the barrier is not reached; mutual delays appear.
  const auto ss = sim::find_steady_state(flat(13, 6), sim::two_streams(0, 1, 1, 6));
  EXPECT_LT(ss.bandwidth, (Rational{7, 6}));
  EXPECT_FALSE(ss.port_conflict_free(0));
  EXPECT_FALSE(ss.port_conflict_free(1));
  // Theorem 5's guard indeed fails here: (nc-1)(d2+d1) = 35 >= 13.
  EXPECT_FALSE(analytic::double_conflict_impossible(13, 6, 1, 6));
}

TEST(PaperFigures, Fig5BarrierSituation) {
  // m = 13, nc = 4, d1 = 1, d2 = 3, b1 = 0, b2 = 7: b_eff = 4/3.
  const auto ss = sim::find_steady_state(flat(13, 4), sim::two_streams(0, 1, 7, 3));
  EXPECT_EQ(ss.bandwidth, (Rational{4, 3}));
  EXPECT_EQ(ss.per_port[0], Rational{1});
  EXPECT_EQ(ss.per_port[1], (Rational{1, 3}));
  EXPECT_TRUE(analytic::barrier_possible(13, 4, 1, 3));
  EXPECT_TRUE(analytic::double_conflict_impossible(13, 4, 1, 3));
}

TEST(PaperFigures, Fig6InvertedBarrier) {
  // Same pair with b2 = 1: the barrier inverts, stream 2 runs freely and
  // stream 1 is delayed — hence not a *unique* barrier.
  const auto ss = sim::find_steady_state(flat(13, 4), sim::two_streams(0, 1, 1, 3));
  EXPECT_TRUE(ss.port_conflict_free(1));
  EXPECT_FALSE(ss.port_conflict_free(0));
  EXPECT_EQ(ss.per_port[1], Rational{1});
  EXPECT_FALSE(analytic::unique_barrier(13, 4, 1, 3, /*stream1_priority=*/true));
}

TEST(PaperFigures, Fig7SectionsConflictFree) {
  // 12-way, 2 sections, nc = 2, d1 = d2 = 1, same CPU, offset (nc+1)*d1=3
  // (eq. 32, since nc*d1 = 2 is a multiple of s = 2).
  sim::MemoryConfig cfg{.banks = 12, .sections = 2, .bank_cycle = 2};
  const auto ss = sim::find_steady_state(cfg, sim::two_streams(0, 1, 3, 1, /*same_cpu=*/true));
  EXPECT_EQ(ss.bandwidth, Rational{2});
  EXPECT_TRUE(ss.conflict_free());
  i64 offset = -1;
  ASSERT_TRUE(analytic::conflict_free_with_sections(12, 2, 2, 1, 1, &offset));
  EXPECT_EQ(offset, 3);
}

TEST(PaperFigures, Fig8aLinkedConflictUnderFixedPriority) {
  // 12-way, 3 sections, nc = 3, d1 = d2 = 1, starts (0, 1): alternating
  // bank and section conflicts, b_eff = 3/2.
  sim::MemoryConfig cfg{.banks = 12, .sections = 3, .bank_cycle = 3};
  const auto ss = sim::find_steady_state(cfg, sim::two_streams(0, 1, 1, 1, /*same_cpu=*/true));
  EXPECT_EQ(ss.bandwidth, (Rational{3, 2}));
  EXPECT_GT(ss.conflicts_in_period.section, 0);
  EXPECT_GT(ss.conflicts_in_period.bank, 0);
}

TEST(PaperFigures, Fig8bCyclicPriorityResolvesLinkedConflict) {
  sim::MemoryConfig cfg{.banks = 12,
                        .sections = 3,
                        .bank_cycle = 3,
                        .priority = sim::PriorityRule::cyclic};
  const auto ss = sim::find_steady_state(cfg, sim::two_streams(0, 1, 1, 1, /*same_cpu=*/true));
  EXPECT_EQ(ss.bandwidth, Rational{2});
}

TEST(PaperFigures, Fig9ConsecutiveSectionsResolveLinkedConflict) {
  // Cheung & Smith's fix: m/s consecutive banks per section, fixed
  // priority, same starts -> b_eff = 2.
  sim::MemoryConfig cfg{.banks = 12,
                        .sections = 3,
                        .bank_cycle = 3,
                        .mapping = sim::SectionMapping::consecutive};
  const auto ss = sim::find_steady_state(cfg, sim::two_streams(0, 1, 1, 1, /*same_cpu=*/true));
  EXPECT_EQ(ss.bandwidth, Rational{2});
}

TEST(PaperFigures, SectionIIIASingleStream) {
  // b_eff = 1 for r >= nc and r/nc otherwise.
  EXPECT_EQ(sim::find_steady_state(flat(16, 4), {sim::StreamConfig{.distance = 1}}).bandwidth,
            Rational{1});
  EXPECT_EQ(sim::find_steady_state(flat(16, 4), {sim::StreamConfig{.distance = 8}}).bandwidth,
            (Rational{1, 2}));
  EXPECT_EQ(sim::find_steady_state(flat(16, 4), {sim::StreamConfig{.distance = 0}}).bandwidth,
            (Rational{1, 4}));
}

TEST(PaperFigures, TimelinesMatchPaperNotation) {
  // Fig. 2's diagram has no conflict markers; Fig. 3's has '<' delays.
  const std::string fig2 = trace::render_run(flat(12, 3), sim::two_streams(0, 1, 3, 7), 36);
  EXPECT_EQ(fig2.find('<'), std::string::npos);
  const std::string fig3 = trace::render_run(flat(13, 6), sim::two_streams(0, 1, 0, 6), 36);
  EXPECT_NE(fig3.find("1<<<<<222222"), std::string::npos);
}

}  // namespace
}  // namespace vpmem
