// Cross-validation sweeps: independent paths through the library must
// agree — exact steady states vs windowed measurement, event hooks vs
// aggregate counters, stall lengths vs the barrier theory.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "vpmem/vpmem.hpp"

namespace vpmem {
namespace {

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

TEST(CrossValidation, EventHookAgreesWithAggregateCounters) {
  // Count every event through the hook and compare with PortStats.
  for (auto [d1, d2] : {std::pair<i64, i64>{1, 6}, {2, 5}, {1, 1}}) {
    sim::MemorySystem mem{flat(13, 4), sim::two_streams(0, d1, 1, d2, /*same_cpu=*/true)};
    std::map<std::size_t, sim::PortStats> counted;
    mem.add_event_hook([&](const sim::Event& e) {
      sim::PortStats& c = counted[e.port];
      if (e.type == sim::Event::Type::grant) {
        ++c.grants;
      } else if (e.conflict == sim::ConflictKind::bank) {
        ++c.bank_conflicts;
      } else if (e.conflict == sim::ConflictKind::simultaneous) {
        ++c.simultaneous_conflicts;
      } else {
        ++c.section_conflicts;
      }
    });
    mem.run(500, /*stop_when_finished=*/false);
    for (std::size_t p = 0; p < mem.port_count(); ++p) {
      const sim::PortStats& st = mem.port_stats(p);
      EXPECT_EQ(counted[p].grants, st.grants) << "d=" << d1 << "," << d2;
      EXPECT_EQ(counted[p].bank_conflicts, st.bank_conflicts);
      EXPECT_EQ(counted[p].simultaneous_conflicts, st.simultaneous_conflicts);
      EXPECT_EQ(counted[p].section_conflicts, st.section_conflicts);
    }
  }
}

TEST(CrossValidation, WindowedMeasurementConvergesToExactSteadyState) {
  baseline::SplitMix64 rng{2024};
  for (int trial = 0; trial < 20; ++trial) {
    const i64 m = 8 + static_cast<i64>(rng.next_below(3)) * 4;  // 8, 12, 16
    const i64 nc = 2 + static_cast<i64>(rng.next_below(4));     // 2..5
    const i64 d1 = 1 + static_cast<i64>(rng.next_below(static_cast<std::uint64_t>(m - 1)));
    const i64 d2 = 1 + static_cast<i64>(rng.next_below(static_cast<std::uint64_t>(m - 1)));
    const i64 b2 = static_cast<i64>(rng.next_below(static_cast<std::uint64_t>(m)));
    const auto cfg = flat(m, nc);
    const auto streams = sim::two_streams(0, d1, b2, d2);
    const auto ss = sim::find_steady_state(cfg, streams);
    // Measure over an exact multiple of the detected period: must match
    // the rational value exactly.
    const i64 window = ss.period * 100;
    const double measured = sim::measure_bandwidth(cfg, streams, ss.transient_cycles, window);
    EXPECT_DOUBLE_EQ(measured, ss.bandwidth.to_double())
        << "m=" << m << " nc=" << nc << " d1=" << d1 << " d2=" << d2 << " b2=" << b2;
  }
}

TEST(CrossValidation, BarrierStallLengthMatchesEq29Derivation) {
  // In a barrier-situation the delayed stream's stall lasts (d2 - d1)/f
  // periods (the eq. 29 derivation).  Fig. 3: 5; Fig. 5: 2.
  {
    // b2 = 7 avoids the t=0 simultaneous collision (which would add one
    // startup delay period on top of the steady 5-period stall).
    sim::MemorySystem mem{flat(13, 6), sim::two_streams(0, 1, 7, 6)};
    mem.run(200, false);
    EXPECT_EQ(mem.port_stats(1).longest_stall, 5);
    EXPECT_EQ(mem.port_stats(0).longest_stall, 0);
  }
  {
    sim::MemorySystem mem{flat(13, 4), sim::two_streams(0, 1, 7, 3)};
    mem.run(200, false);
    EXPECT_EQ(mem.port_stats(1).longest_stall, 2);
    EXPECT_EQ(mem.port_stats(0).longest_stall, 0);
  }
}

TEST(CrossValidation, SelfConflictStallIsNcMinusR) {
  // A lone stream with r < nc stalls exactly nc - r periods per return.
  for (i64 d : {8, 4}) {
    sim::MemorySystem mem{flat(16, 7), {sim::StreamConfig{.distance = d}}};
    mem.run(300, false);
    const i64 r = analytic::return_number(16, d);
    EXPECT_EQ(mem.port_stats(0).longest_stall, 7 - r) << "d=" << d;
  }
}

TEST(CrossValidation, EventsCsvRoundTrip) {
  sim::MemorySystem mem{flat(8, 2), sim::two_streams(0, 1, 0, 1)};
  trace::Timeline tl{mem};
  mem.run(20, false);
  std::ostringstream os;
  tl.events_csv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("cycle,type,port,bank,element,conflict,blocker\n", 0), 0u);
  // One line per event plus header.
  const auto lines = static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, tl.events().size() + 1);
  EXPECT_NE(csv.find("simultaneous"), std::string::npos);
}

TEST(CrossValidation, AnalyzePairConsistentWithDiagnose) {
  // When the pair report says conflict-free for every offset, diagnose
  // must agree at each offset.
  const auto cfg = flat(12, 3);
  const core::PairReport pair = core::analyze_pair(cfg, 1, 7);
  ASSERT_EQ(pair.sim_min, Rational{2});
  for (i64 b2 = 0; b2 < 12; ++b2) {
    const core::Diagnosis d = core::diagnose(cfg, sim::two_streams(0, 1, b2, 7));
    EXPECT_EQ(d.regime, core::RunRegime::conflict_free) << b2;
  }
}

}  // namespace
}  // namespace vpmem
