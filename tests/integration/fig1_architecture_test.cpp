// The exact machine of the paper's Fig. 1: a four-way interleaved memory
// with two sections and two access paths from each of two CPUs.  "A
// simultaneous bank conflict can only occur among ports of different
// CPUs, while a section conflict can only occur among ports within a
// CPU" — this suite pins that down on the concrete architecture.
#include <gtest/gtest.h>

#include "vpmem/vpmem.hpp"

namespace vpmem {
namespace {

sim::MemoryConfig fig1(i64 nc = 2) {
  return sim::MemoryConfig{.banks = 4, .sections = 2, .bank_cycle = nc};
}

sim::StreamConfig port(i64 cpu, std::vector<i64> pattern) {
  sim::StreamConfig s;
  s.cpu = cpu;
  s.bank_pattern = std::move(pattern);
  return s;
}

TEST(Fig1Architecture, BankToSectionWiring) {
  // Section 0 holds banks 0 and 2; section 1 holds banks 1 and 3.
  const auto cfg = fig1();
  EXPECT_EQ(cfg.section_of(0), 0);
  EXPECT_EQ(cfg.section_of(2), 0);
  EXPECT_EQ(cfg.section_of(1), 1);
  EXPECT_EQ(cfg.section_of(3), 1);
}

TEST(Fig1Architecture, TwoPortsOfOneCpuInOneSectionConflict) {
  // CPU 0's two ports request banks 0 and 2 — same section, one path.
  sim::MemorySystem mem{fig1(), {port(0, {0}), port(0, {2})}};
  mem.step();
  EXPECT_EQ(mem.port_stats(0).grants, 1);
  EXPECT_EQ(mem.port_stats(1).section_conflicts, 1);
  EXPECT_EQ(mem.port_stats(1).simultaneous_conflicts, 0);
}

TEST(Fig1Architecture, PortsOfDifferentCpusInOneSectionProceed) {
  // Each CPU has its own path into section 0: both granted.
  sim::MemorySystem mem{fig1(), {port(0, {0}), port(1, {2})}};
  mem.step();
  EXPECT_EQ(mem.port_stats(0).grants, 1);
  EXPECT_EQ(mem.port_stats(1).grants, 1);
}

TEST(Fig1Architecture, SameBankAcrossCpusIsSimultaneous) {
  sim::MemorySystem mem{fig1(), {port(0, {1}), port(1, {1})}};
  mem.step();
  EXPECT_EQ(mem.port_stats(0).grants, 1);
  EXPECT_EQ(mem.port_stats(1).simultaneous_conflicts, 1);
  EXPECT_EQ(mem.port_stats(1).section_conflicts, 0);
}

TEST(Fig1Architecture, FourPortsPeakBandwidth) {
  // One port per (CPU, section) with disjoint banks: all four ports
  // stream every period with nc = 1 — bw = p = 4.
  sim::MemoryConfig cfg = fig1(1);
  const auto ss = sim::find_steady_state(
      cfg, {port(0, {0}), port(0, {1}), port(1, {2}), port(1, {3})});
  EXPECT_EQ(ss.bandwidth, Rational{4});
  EXPECT_TRUE(ss.conflict_free());
}

TEST(Fig1Architecture, PathBottleneckCapsEachCpuAtSectionCount) {
  // Four ports of ONE CPU on disjoint banks: only s = 2 paths exist, so
  // b_eff <= 2 no matter how the banks are spread.
  sim::MemoryConfig cfg = fig1(1);
  const auto ss = sim::find_steady_state(
      cfg, {port(0, {0}), port(0, {1}), port(0, {2}), port(0, {3})});
  EXPECT_EQ(ss.bandwidth, Rational{2});
  EXPECT_GT(ss.conflicts_in_period.section, 0);
}

TEST(Fig1Architecture, AllThreeConflictTypesCanCoexist) {
  // CPU0 ports fight for section 0's path; CPU1 port fights CPU0 for bank
  // 0; a later CPU1 port self-collides on an active bank.
  sim::MemoryConfig cfg = fig1(3);
  sim::MemorySystem mem{cfg, {port(0, {0, 2}), port(0, {2, 0}), port(1, {0, 0}), port(1, {3, 3})}};
  mem.run(12, /*stop_when_finished=*/false);
  sim::ConflictTotals t = sim::totals(mem.all_stats());
  EXPECT_GT(t.bank, 0);
  EXPECT_GT(t.simultaneous, 0);
  EXPECT_GT(t.section, 0);
}

}  // namespace
}  // namespace vpmem
