#include "vpmem/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vpmem {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(static_cast<void>(Table({})), std::invalid_argument);
}

TEST(Table, RowWidthMustMatch) {
  Table t{{"a", "b"}};
  EXPECT_THROW(static_cast<void>(t.add_row({"1"})), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(t.add_row({"1", "2", "3"})), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PrintAlignsColumns) {
  Table t{{"INC", "cycles"}};
  t.add_row({"1", "596"});
  t.add_row({"16", "4096"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("INC"), std::string::npos);
  EXPECT_NE(out.find("cycles"), std::string::npos);
  EXPECT_NE(out.find("4096"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, TitlePrinted) {
  Table t{{"x"}, "Fig. 10"};
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().rfind("Fig. 10", 0), 0u);
}

TEST(Table, CsvBasic) {
  Table t{{"a", "b"}};
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t{{"name"}};
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Table, RowAccess) {
  Table t{{"a"}};
  t.add_row({"x"});
  EXPECT_EQ(t.row(0).at(0), "x");
  EXPECT_THROW(static_cast<void>(t.row(1)), std::out_of_range);
}

TEST(Cell, Formats) {
  EXPECT_EQ(cell("abc"), "abc");
  EXPECT_EQ(cell(42), "42");
  EXPECT_EQ(cell(static_cast<long long>(-7)), "-7");
  EXPECT_EQ(cell(1.5, 2), "1.50");
  EXPECT_EQ(cell(0.33333333, 3), "0.333");
}

}  // namespace
}  // namespace vpmem
