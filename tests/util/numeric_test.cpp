#include "vpmem/util/numeric.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace vpmem {
namespace {

TEST(Gcd, BasicValues) {
  EXPECT_EQ(gcd(12, 8), 4);
  EXPECT_EQ(gcd(8, 12), 4);
  EXPECT_EQ(gcd(13, 6), 1);
  EXPECT_EQ(gcd(0, 0), 0);
}

TEST(Gcd, ZeroConvention) {
  // The paper uses gcd(m, 0) = m right after Theorem 3.
  EXPECT_EQ(gcd(16, 0), 16);
  EXPECT_EQ(gcd(0, 16), 16);
}

TEST(Gcd, ThreeArgsIsPaperF) {
  EXPECT_EQ(gcd(12, 4, 6), 2);
  EXPECT_EQ(gcd(12, 3, 5), 1);
  EXPECT_EQ(gcd(16, 8, 12), 4);
}

TEST(Lcm, BasicValues) {
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(1, 9), 9);
  EXPECT_EQ(lcm(0, 5), 0);
}

TEST(Egcd, ProducesBezoutIdentity) {
  for (i64 a = -20; a <= 20; ++a) {
    for (i64 b = -20; b <= 20; ++b) {
      const Egcd e = egcd(a, b);
      EXPECT_EQ(e.g, std::gcd(a, b)) << a << "," << b;
      EXPECT_EQ(a * e.x + b * e.y, e.g) << a << "," << b;
    }
  }
}

TEST(ModNorm, CanonicalRange) {
  EXPECT_EQ(mod_norm(7, 5), 2);
  EXPECT_EQ(mod_norm(-1, 5), 4);
  EXPECT_EQ(mod_norm(-10, 5), 0);
  EXPECT_EQ(mod_norm(0, 1), 0);
}

TEST(ModNorm, RejectsNonPositiveModulus) {
  EXPECT_THROW(static_cast<void>(mod_norm(1, 0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(mod_norm(1, -3)), std::invalid_argument);
}

TEST(ModInverse, InverseProperty) {
  for (i64 m : {2, 5, 12, 13, 16, 97}) {
    for (i64 a = 1; a < m; ++a) {
      if (!coprime(a, m)) continue;
      const i64 inv = mod_inverse(a, m);
      EXPECT_EQ(mod_norm(a * inv, m), 1) << a << " mod " << m;
      EXPECT_GE(inv, 0);
      EXPECT_LT(inv, m);
    }
  }
}

TEST(ModInverse, RejectsNonCoprime) {
  EXPECT_THROW(static_cast<void>(mod_inverse(4, 12)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(mod_inverse(0, 7)), std::invalid_argument);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 64), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(-7, 2), -3);
}

TEST(CeilDiv, RejectsNonPositiveDivisor) {
  EXPECT_THROW(static_cast<void>(ceil_div(4, 0)), std::invalid_argument);
}

TEST(Divides, Basics) {
  EXPECT_TRUE(divides(4, 12));
  EXPECT_FALSE(divides(5, 12));
  EXPECT_FALSE(divides(0, 12));
  EXPECT_TRUE(divides(12, 0));
}

TEST(Divisors, KnownSets) {
  EXPECT_EQ(divisors(1), (std::vector<i64>{1}));
  EXPECT_EQ(divisors(12), (std::vector<i64>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(13), (std::vector<i64>{1, 13}));
  EXPECT_EQ(divisors(16), (std::vector<i64>{1, 2, 4, 8, 16}));
}

TEST(Divisors, EveryElementDivides) {
  for (i64 n : {6, 36, 100, 97}) {
    for (i64 d : divisors(n)) EXPECT_EQ(n % d, 0);
  }
}

TEST(Divisors, RejectsNonPositive) {
  EXPECT_THROW(static_cast<void>(divisors(0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(divisors(-4)), std::invalid_argument);
}

}  // namespace
}  // namespace vpmem
