// BackoffPolicy: deterministic jittered exponential delays.  The policy
// never sleeps itself, so everything here is pure arithmetic on
// (seed, attempt) — the properties the executor's retry loop relies on.
#include <gtest/gtest.h>

#include "vpmem/util/backoff.hpp"

namespace vpmem {
namespace {

TEST(Backoff, FirstAttemptHasNoDelay) {
  const BackoffPolicy policy;
  EXPECT_EQ(policy.delay_ms(1, 123), 0.0);
  EXPECT_EQ(policy.delay_ms(0, 123), 0.0);
}

TEST(Backoff, DeterministicPerSeedAndAttempt) {
  const BackoffPolicy policy;
  for (int attempt = 2; attempt <= 6; ++attempt) {
    EXPECT_EQ(policy.delay_ms(attempt, 42), policy.delay_ms(attempt, 42));
  }
  // Different seeds draw different jitter (overwhelmingly likely).
  EXPECT_NE(policy.delay_ms(2, 1), policy.delay_ms(2, 2));
}

TEST(Backoff, NoJitterIsExactExponential) {
  BackoffPolicy policy;
  policy.base_ms = 10.0;
  policy.multiplier = 2.0;
  policy.cap_ms = 1000.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(policy.delay_ms(2, 7), 10.0);   // base * 2^0
  EXPECT_DOUBLE_EQ(policy.delay_ms(3, 7), 20.0);   // base * 2^1
  EXPECT_DOUBLE_EQ(policy.delay_ms(4, 7), 40.0);   // base * 2^2
}

TEST(Backoff, JitterStaysWithinFactorBounds) {
  BackoffPolicy policy;
  policy.base_ms = 100.0;
  policy.multiplier = 1.0;  // raw delay constant at base_ms
  policy.jitter = 0.5;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const double d = policy.delay_ms(2, seed);
    EXPECT_GE(d, 50.0) << "seed " << seed;
    EXPECT_LE(d, 150.0) << "seed " << seed;
  }
}

TEST(Backoff, CapBoundsTheRawDelay) {
  BackoffPolicy policy;
  policy.base_ms = 25.0;
  policy.multiplier = 2.0;
  policy.cap_ms = 200.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(policy.delay_ms(20, 3), 200.0);
}

TEST(Backoff, RetryableFollowsMaxAttempts) {
  BackoffPolicy policy;
  policy.max_attempts = 3;
  EXPECT_TRUE(policy.retryable(1));
  EXPECT_TRUE(policy.retryable(2));
  EXPECT_FALSE(policy.retryable(3));
  EXPECT_FALSE(policy.retryable(4));
}

TEST(Backoff, ZeroBaseDisablesDelays) {
  BackoffPolicy policy;
  policy.base_ms = 0.0;
  EXPECT_EQ(policy.delay_ms(5, 9), 0.0);
}

}  // namespace
}  // namespace vpmem
