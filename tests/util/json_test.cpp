#include "vpmem/util/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>

namespace vpmem {
namespace {

TEST(Json, DefaultIsNull) {
  const Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json{true}.dump(), "true");
  EXPECT_EQ(Json{false}.dump(), "false");
  EXPECT_EQ(Json{i64{42}}.dump(), "42");
  EXPECT_EQ(Json{-7}.dump(), "-7");
  EXPECT_EQ(Json{"hi"}.dump(), "\"hi\"");
  EXPECT_EQ(Json{std::size_t{3}}.dump(), "3");
}

TEST(Json, IntegralDoubleKeepsDecimalPoint) {
  // A double that happens to be integral must not round-trip into an int.
  EXPECT_EQ(Json{2.0}.dump(), "2.0");
  const Json back = Json::parse(Json{2.0}.dump());
  EXPECT_TRUE(back.is_double());
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(Json{std::numeric_limits<double>::infinity()}.dump(), "null");
  EXPECT_EQ(Json{std::numeric_limits<double>::quiet_NaN()}.dump(), "null");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["alpha"] = 2;
  j["mid"] = 3;
  EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  j["alpha"] = 9;  // update in place, order unchanged
  EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(Json, ArrayAndNestedAccess) {
  Json j = Json::object();
  j["rows"] = Json::array();
  j["rows"].push_back(1);
  j["rows"].push_back("two");
  EXPECT_EQ(j.at("rows").size(), 2u);
  EXPECT_EQ(j.at("rows").at(0).as_int(), 1);
  EXPECT_EQ(j.at("rows").at(1).as_string(), "two");
  EXPECT_TRUE(j.contains("rows"));
  EXPECT_FALSE(j.contains("cols"));
  EXPECT_THROW((void)j.at("cols"), std::out_of_range);
  EXPECT_THROW((void)j.at("rows").at(2), std::out_of_range);
}

TEST(Json, TypeMismatchThrows) {
  const Json j{i64{1}};
  EXPECT_THROW((void)j.as_string(), std::runtime_error);
  EXPECT_THROW((void)j.as_array(), std::runtime_error);
  EXPECT_THROW((void)j.as_bool(), std::runtime_error);
  // as_double accepts ints (common for metrics).
  EXPECT_DOUBLE_EQ(j.as_double(), 1.0);
}

TEST(Json, StringEscaping) {
  const Json j{std::string{"a\"b\\c\n\t\x01"}};
  EXPECT_EQ(j.dump(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  EXPECT_EQ(Json::parse(j.dump()), j);
}

TEST(Json, ParseWhitespaceAndLiterals) {
  const Json j = Json::parse("  { \"a\" : [ true , false , null ] }  ");
  EXPECT_EQ(j.at("a").size(), 3u);
  EXPECT_TRUE(j.at("a").at(2).is_null());
}

TEST(Json, ParseNumbers) {
  EXPECT_EQ(Json::parse("123").as_int(), 123);
  EXPECT_EQ(Json::parse("-9223372036854775808").as_int(),
            std::numeric_limits<i64>::min());
  EXPECT_TRUE(Json::parse("1e3").is_double());
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("-0.5").as_double(), -0.5);
  // Past-i64 integers degrade to double instead of failing.
  EXPECT_TRUE(Json::parse("9223372036854775808").is_double());
}

TEST(Json, ParseUnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse("\"\\uD83D\\uDE00\"").as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW(Json::parse("\"\\uD83D\""), std::runtime_error);   // unpaired high
  EXPECT_THROW(Json::parse("\"\\uDE00\""), std::runtime_error);   // unpaired low
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("truee"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("-"), std::runtime_error);
}

TEST(Json, ParseErrorsCarryBytePosition) {
  // Positioned diagnostics: a truncated report should say *where* it
  // broke, not just that it did.
  try {
    static_cast<void>(Json::parse("{\"a\": 1, \"b\": }"));
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("at offset 14"), std::string::npos) << e.what();
  }
}

TEST(Json, ParseRejectsDeepNestingWithoutOverflow) {
  // kMaxDepth guards the recursive descent: 10k brackets must fail
  // cleanly instead of overflowing the stack (UB reachable from any
  // attacker-supplied --plan / --replay file).
  const std::string deep_arrays(10'000, '[');
  EXPECT_THROW(Json::parse(deep_arrays), std::runtime_error);
  std::string deep_objects;
  for (int i = 0; i < 10'000; ++i) deep_objects += "{\"k\":";
  EXPECT_THROW(Json::parse(deep_objects), std::runtime_error);
  // Exactly at the limit still parses (127 nested arrays < kMaxDepth=128).
  std::string ok(127, '[');
  ok += "1";
  ok += std::string(127, ']');
  EXPECT_NO_THROW(static_cast<void>(Json::parse(ok)));
}

TEST(Json, ParseRejectsTruncatedDocuments) {
  // Every prefix of a valid document must fail loudly, never read out
  // of bounds, and never parse as something else.
  const std::string doc =
      "{\"schema\":\"vpmem.run_report/1\",\"window\":{\"cycles\":10,"
      "\"bandwidth\":0.8},\"bank_grants\":[4,0,4,0],\"ok\":true}";
  ASSERT_NO_THROW(Json::parse(doc));
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_THROW(Json::parse(doc.substr(0, len)), std::runtime_error) << "prefix length " << len;
  }
}

TEST(Json, ParseRejectsControlCharactersAndBadEscapes) {
  EXPECT_THROW(Json::parse(std::string{"\"a\x01b\""}), std::runtime_error);
  EXPECT_THROW(Json::parse("\"a\\q\""), std::runtime_error);   // unknown escape
  EXPECT_THROW(Json::parse("\"\\u12\""), std::runtime_error);  // short \u escape
  EXPECT_THROW(Json::parse("\"\\uZZZZ\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"trailing backslash\\"), std::runtime_error);
}

TEST(Json, ParseRejectsMalformedNumbers) {
  EXPECT_THROW(Json::parse("01"), std::runtime_error);  // leading zero... or trailing garbage
  EXPECT_THROW(Json::parse("1e"), std::runtime_error);
  EXPECT_THROW(Json::parse("+1"), std::runtime_error);
  EXPECT_THROW(Json::parse("0x10"), std::runtime_error);
  EXPECT_THROW(Json::parse("--1"), std::runtime_error);
  EXPECT_THROW(Json::parse("1."), std::runtime_error);
}

TEST(Json, PrettyPrint) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = Json::array();
  j["b"].push_back(2);
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
  EXPECT_EQ(Json::parse(j.dump(2)), j);
}

TEST(Json, RoundTripComplexDocument) {
  Json doc = Json::object();
  doc["name"] = "vpmem";
  doc["pi"] = 3.141592653589793;
  doc["counts"] = Json::array();
  for (int i = 0; i < 5; ++i) doc["counts"].push_back(i * i);
  doc["nested"] = Json::object();
  doc["nested"]["deep"] = Json::array();
  doc["nested"]["deep"].push_back(Json{nullptr});
  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back, doc);
  EXPECT_DOUBLE_EQ(back.at("pi").as_double(), 3.141592653589793);
}

TEST(Json, AppendJsonl) {
  std::ostringstream out;
  Json a = Json::object();
  a["x"] = 1;
  append_jsonl(out, a);
  append_jsonl(out, Json{i64{2}});
  EXPECT_EQ(out.str(), "{\"x\":1}\n2\n");
}

}  // namespace
}  // namespace vpmem
