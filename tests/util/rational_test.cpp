#include "vpmem/util/rational.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vpmem {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, NormalizesOnConstruction) {
  Rational r{6, 4};
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalizesSign) {
  Rational r{3, -6};
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
  Rational s{-3, -6};
  EXPECT_EQ(s.num(), 1);
  EXPECT_EQ(s.den(), 2);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(static_cast<void>((Rational{1, 0})), std::domain_error);
}

TEST(Rational, Arithmetic) {
  const Rational a{1, 6};
  const Rational b{1, 3};
  EXPECT_EQ(a + b, (Rational{1, 2}));
  EXPECT_EQ(b - a, (Rational{1, 6}));
  EXPECT_EQ(a * b, (Rational{1, 18}));
  EXPECT_EQ(a / b, (Rational{1, 2}));
  EXPECT_EQ(-a, (Rational{-1, 6}));
}

TEST(Rational, BarrierBandwidthExample) {
  // Eq. 29 with d1 = 1, d2 = 6 (Fig. 3): b_eff = 1 + 1/6 = 7/6.
  EXPECT_EQ(Rational{1} + Rational(1, 6), (Rational{7, 6}));
}

TEST(Rational, CompoundAssignment) {
  Rational r{1, 2};
  r += Rational{1, 3};
  EXPECT_EQ(r, (Rational{5, 6}));
  r -= Rational{1, 6};
  EXPECT_EQ(r, (Rational{2, 3}));
  r *= Rational{3, 2};
  EXPECT_EQ(r, Rational{1});
  r /= Rational{1, 4};
  EXPECT_EQ(r, Rational{4});
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(static_cast<void>(Rational{1} / Rational{0}), std::domain_error);
}

TEST(Rational, Ordering) {
  EXPECT_LT((Rational{1, 3}), (Rational{1, 2}));
  EXPECT_GT((Rational{7, 6}), Rational{1});
  EXPECT_LE((Rational{2, 4}), (Rational{1, 2}));
  EXPECT_LT((Rational{-1, 2}), (Rational{1, 3}));
}

TEST(Rational, ImplicitFromInteger) {
  Rational r = 3;
  EXPECT_EQ(r, (Rational{3, 1}));
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ((Rational{3, 2}).to_double(), 1.5);
  EXPECT_DOUBLE_EQ((Rational{-1, 4}).to_double(), -0.25);
}

TEST(Rational, Str) {
  EXPECT_EQ((Rational{7, 6}).str(), "7/6");
  EXPECT_EQ(Rational{2}.str(), "2");
  EXPECT_EQ((Rational{-3, 9}).str(), "-1/3");
}

TEST(Rational, StreamOutput) {
  std::ostringstream os;
  os << Rational{3, 2};
  EXPECT_EQ(os.str(), "3/2");
}

TEST(Rational, ExactnessOverManyOps) {
  // Sum of 1/k(k+1) telescopes to 1 - 1/(n+1); exact arithmetic must hit it.
  Rational sum{0};
  const i64 n = 50;
  for (i64 k = 1; k <= n; ++k) sum += Rational{1, k * (k + 1)};
  EXPECT_EQ(sum, (Rational{n, n + 1}));
}

}  // namespace
}  // namespace vpmem
