// vpmem.journal/1 writer/reader: append-order round trips, crash-torn
// tails, the resume view (latest record per config hash), and the
// corruption rules the resume contract depends on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "vpmem/util/hash.hpp"
#include "vpmem/util/journal.hpp"

namespace vpmem {
namespace {

/// Fresh path under the test temp dir, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_{(std::filesystem::temp_directory_path() /
               ("vpmem_journal_test_" + name + "_" + std::to_string(::getpid()) + ".jsonl"))
                  .string()} {
    std::filesystem::remove(path_);
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

JournalRecord make_record(const std::string& job, const std::string& hash, int attempt,
                          const std::string& status) {
  JournalRecord r;
  r.job = job;
  r.hash = hash;
  r.attempt = attempt;
  r.status = status;
  r.worker = 2;
  r.wall_ms = 1.5;
  if (status == "ok") {
    Json result = Json::object();
    result["value"] = 42;
    r.result = std::move(result);
  }
  return r;
}

TEST(Journal, MissingFileReadsEmpty) {
  const JournalScan scan = read_journal("/nonexistent/path/to/journal.jsonl");
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.truncated_tail);
}

TEST(Journal, AppendAndReadBackRoundTrips) {
  TempFile file{"roundtrip"};
  {
    JournalWriter writer{file.path()};
    writer.append(make_record("a", "h1", 1, "retry"));
    writer.append(make_record("a", "h1", 2, "ok"));
    writer.append(make_record("b", "h2", 1, "ok"));
  }
  const JournalScan scan = read_journal(file.path());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_FALSE(scan.truncated_tail);
  const JournalRecord& r = scan.records[1];
  EXPECT_EQ(r.job, "a");
  EXPECT_EQ(r.hash, "h1");
  EXPECT_EQ(r.attempt, 2);
  EXPECT_EQ(r.status, "ok");
  EXPECT_EQ(r.worker, 2);
  EXPECT_DOUBLE_EQ(r.wall_ms, 1.5);
  EXPECT_EQ(r.result.at("value").as_int(), 42);
}

TEST(Journal, ReopeningAppendsInsteadOfTruncating) {
  TempFile file{"reopen"};
  {
    JournalWriter writer{file.path()};
    writer.append(make_record("a", "h1", 1, "ok"));
  }
  {
    JournalWriter writer{file.path()};
    writer.append(make_record("b", "h2", 1, "ok"));
  }
  const JournalScan scan = read_journal(file.path());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].job, "a");
  EXPECT_EQ(scan.records[1].job, "b");
}

TEST(Journal, TornFinalLineIsDroppedAndFlagged) {
  TempFile file{"torn"};
  {
    JournalWriter writer{file.path()};
    writer.append(make_record("a", "h1", 1, "ok"));
  }
  {
    // Simulate a writer killed mid-append: a half-written final line.
    std::ofstream out{file.path(), std::ios::app};
    out << R"({"schema":"vpmem.journal/1","job":"b","hash":"h2","att)";
  }
  const JournalScan scan = read_journal(file.path());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].job, "a");
  EXPECT_TRUE(scan.truncated_tail);
}

TEST(Journal, ReopeningAfterATornTailHealsBeforeAppending) {
  TempFile file{"torn_append"};
  {
    JournalWriter writer{file.path()};
    writer.append(make_record("a", "h1", 1, "ok"));
  }
  {
    // A SIGKILLed writer leaves a half-written final line behind.
    std::ofstream out{file.path(), std::ios::app};
    out << R"({"schema":"vpmem.journal/1","job":"b","hash":"h2","att)";
  }
  {
    // The resumed writer must not weld its first record onto the torn
    // fragment — that would be mid-file corruption the reader rejects.
    JournalWriter writer{file.path()};
    writer.append(make_record("c", "h3", 1, "ok"));
  }
  const JournalScan scan = read_journal(file.path());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_EQ(scan.records[0].job, "a");
  EXPECT_EQ(scan.records[1].job, "c");
}

TEST(Journal, CorruptionBeforeTheTailThrows) {
  TempFile file{"corrupt"};
  {
    std::ofstream out{file.path()};
    out << "this is not json\n";
    out << make_record("a", "h1", 1, "ok").to_json().dump() << '\n';
  }
  EXPECT_THROW((void)read_journal(file.path()), std::runtime_error);
}

TEST(Journal, SchemaMismatchThrows) {
  Json doc = make_record("a", "h1", 1, "ok").to_json();
  doc["schema"] = "vpmem.journal/999";
  EXPECT_THROW((void)JournalRecord::from_json(doc), std::runtime_error);
}

TEST(Journal, LatestPerHashKeepsTheFinalRecordInFirstSeenOrder) {
  JournalScan scan;
  scan.records.push_back(make_record("a", "h1", 1, "retry"));
  scan.records.push_back(make_record("b", "h2", 1, "ok"));
  scan.records.push_back(make_record("a", "h1", 2, "ok"));
  scan.records.push_back(make_record("c", "h3", 1, "crashed"));
  scan.records.push_back(make_record("c", "h3", 2, "quarantined"));
  const auto latest = scan.latest_per_hash();
  ASSERT_EQ(latest.size(), 3u);
  EXPECT_EQ(latest[0].hash, "h1");
  EXPECT_EQ(latest[0].attempt, 2);
  EXPECT_EQ(latest[0].status, "ok");
  EXPECT_EQ(latest[1].hash, "h2");
  EXPECT_EQ(latest[2].hash, "h3");
  EXPECT_EQ(latest[2].status, "quarantined");
}

// The resume key: stable_hash must match the published FNV-1a vectors
// forever — journals written by one build must resume under any other.
TEST(StableHash, MatchesKnownFnv1aVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(stable_hash(""), "cbf29ce484222325");
  EXPECT_EQ(stable_hash("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(stable_hash("vpmem"), stable_hash("vpmem"));
  EXPECT_NE(stable_hash("vpmem"), stable_hash("vpmen"));
}

}  // namespace
}  // namespace vpmem
