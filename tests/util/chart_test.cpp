#include "vpmem/util/chart.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vpmem {
namespace {

TEST(BarChart, ScalesToMaximum) {
  BarChart chart{"", 10};
  chart.add("a", 10.0);
  chart.add("b", 5.0);
  chart.add("c", 0.0);
  std::ostringstream os;
  chart.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a |##########| 10"), std::string::npos);
  EXPECT_NE(out.find("b |#####     | 5"), std::string::npos);
  EXPECT_NE(out.find("c |          | 0"), std::string::npos);
}

TEST(BarChart, TitleAndLabelAlignment) {
  BarChart chart{"Fig. 10(a)", 4};
  chart.add("INC=1", 1.0);
  chart.add("2", 2.0);
  std::ostringstream os;
  chart.print(os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("Fig. 10(a)\n", 0), 0u);
  // Labels right-aligned to the widest.
  EXPECT_NE(out.find("INC=1 |"), std::string::npos);
  EXPECT_NE(out.find("    2 |"), std::string::npos);
}

TEST(BarChart, AllZerosRendersEmptyBars) {
  BarChart chart{"", 6};
  chart.add("x", 0.0);
  std::ostringstream os;
  chart.print(os);
  EXPECT_NE(os.str().find("x |      | 0"), std::string::npos);
}

TEST(BarChart, Validation) {
  EXPECT_THROW(BarChart("", 0), std::invalid_argument);
  BarChart chart;
  EXPECT_THROW(chart.add("neg", -1.0), std::invalid_argument);
  EXPECT_EQ(chart.size(), 0u);
}

}  // namespace
}  // namespace vpmem
