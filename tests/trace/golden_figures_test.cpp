// Golden diagrams: the rendered grids of two stable figures, pinned
// character by character.  Any engine or renderer change that alters the
// paper's pictures fails here first.
#include <gtest/gtest.h>

#include "vpmem/trace/timeline.hpp"

namespace vpmem::trace {
namespace {

TEST(GoldenFigures, Fig2ConflictFreeGrid) {
  // m=12, nc=3, d1=1 (stream "1"), d2=7 (stream "2"), b2=3: the paper's
  // Fig. 2 pattern — every bank serves "111" then "222" back to back,
  // no idle gaps between the paired services, period 12.
  sim::MemorySystem mem{{.banks = 12, .sections = 12, .bank_cycle = 3},
                        sim::two_streams(0, 1, 3, 7)};
  Timeline tl{mem};
  mem.run(24, false);
  const std::vector<std::string> expected{
      "111222......111222......",
      ".111......222111......22",
      "..111222......111222....",
      "222111......222111......",
      "....111222......111222..",
      "..222111......222111....",
      "......111222......111222",
      "....222111......222111..",
      "........111222......1112",
      "......222111......222111",
      ".222......111222......11",
      "........222111......2221",
  };
  EXPECT_EQ(tl.grid(0, 24), expected);
}

TEST(GoldenFigures, Fig9ConsecutiveSectionsGrid) {
  // m=12, s=3 (consecutive banks per section), nc=3, d1=d2=1, starts
  // (0,1): after a two-conflict transient the streams settle into the
  // paper's "111.222" conflict-free cadence.
  sim::MemoryConfig cfg{.banks = 12,
                        .sections = 3,
                        .bank_cycle = 3,
                        .mapping = sim::SectionMapping::consecutive};
  sim::MemorySystem mem{cfg, sim::two_streams(0, 1, 1, 1, /*same_cpu=*/true)};
  Timeline tl{mem};
  mem.run(24, false);
  const std::vector<std::string> expected{
      "111.........111.222.....",
      "*1<<222......111.222....",
      "..111222......111.222...",
      "...111222......111.222..",
      "....111*222.....111.222.",
      ".....111.222.....111.222",
      "......111.222.....111.22",
      ".......111.222.....111.2",
      "........111.222.....111.",
      ".........111.222.....111",
      "..........111.222.....11",
      "...........111.222.....1",
  };
  EXPECT_EQ(tl.grid(0, 24), expected);
}

}  // namespace
}  // namespace vpmem::trace
