#include "vpmem/trace/timeline.hpp"

#include <gtest/gtest.h>

#include <string>

namespace vpmem::trace {
namespace {

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

TEST(Timeline, SingleStreamServiceBlocks) {
  sim::MemorySystem mem{flat(4, 2), {sim::StreamConfig{.start_bank = 0, .distance = 1, .length = 3}}};
  Timeline tl{mem};
  mem.run(100);
  const auto g = tl.grid(0, 5);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_EQ(g[0], "11...");
  EXPECT_EQ(g[1], ".11..");
  EXPECT_EQ(g[2], "..11.");
  EXPECT_EQ(g[3], ".....");
}

TEST(Timeline, DelayMarkersForBankConflict) {
  // Fig. 3 pattern: stream 2 (d=6) waits '<' on the bank stream 1 holds.
  sim::MemorySystem mem{flat(13, 6), sim::two_streams(0, 1, 0, 6)};
  Timeline tl{mem};
  mem.run(40, false);
  const std::string diagram = tl.render(0, 40);
  EXPECT_NE(diagram.find('<'), std::string::npos);
  EXPECT_NE(diagram.find("222222"), std::string::npos);
  EXPECT_NE(diagram.find("111111"), std::string::npos);
  // Row for bank 0 starts with stream 1's grant then stream 2's delays.
  const auto g = tl.grid(0, 13);
  EXPECT_EQ(g[0].substr(0, 12), "1<<<<<222222");
}

TEST(Timeline, SectionConflictMarker) {
  // Fig. 8(a) linked conflict shows '*' section-conflict markers.
  sim::MemoryConfig cfg{.banks = 12, .sections = 3, .bank_cycle = 3};
  sim::MemorySystem mem{cfg, sim::two_streams(0, 1, 1, 1, /*same_cpu=*/true)};
  Timeline tl{mem};
  mem.run(40, false);
  const std::string diagram = tl.render(0, 40, /*show_sections=*/true);
  EXPECT_NE(diagram.find('*'), std::string::npos);
  // Section labels "0 - 0", "1 - 1" appear when requested.
  EXPECT_NE(diagram.find("0 - 0"), std::string::npos);
  EXPECT_NE(diagram.find("2 - 11"), std::string::npos);
}

TEST(Timeline, InvertedBarrierUsesGreaterMarker) {
  // Fig. 6: stream 2 delays stream 1 -> '>' markers.
  sim::MemorySystem mem{flat(13, 4), sim::two_streams(0, 1, 1, 3)};
  Timeline tl{mem};
  mem.run(60, false);
  const std::string diagram = tl.render(0, 60);
  EXPECT_NE(diagram.find('>'), std::string::npos);
}

TEST(Timeline, WindowValidation) {
  sim::MemorySystem mem{flat(4, 2), {sim::StreamConfig{.length = 1}}};
  Timeline tl{mem};
  EXPECT_THROW(static_cast<void>(tl.grid(-1, 4)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(tl.grid(5, 4)), std::invalid_argument);
  EXPECT_NO_THROW(static_cast<void>(tl.grid(0, 0)));
}

TEST(Timeline, EventsRecorded) {
  sim::MemorySystem mem{flat(4, 2), {sim::StreamConfig{.start_bank = 0, .distance = 1, .length = 2}}};
  Timeline tl{mem};
  mem.run(10);
  ASSERT_EQ(tl.events().size(), 2u);
  EXPECT_EQ(tl.events()[0].type, sim::Event::Type::grant);
}

TEST(RenderRun, OneShotHelper) {
  const std::string out =
      render_run(flat(12, 3), sim::two_streams(0, 1, 3, 7), 24);
  EXPECT_NE(out.find("clock-period"), std::string::npos);
  EXPECT_NE(out.find("111"), std::string::npos);
  EXPECT_NE(out.find("222"), std::string::npos);
  // Conflict-free: no delay markers anywhere.
  EXPECT_EQ(out.find('<'), std::string::npos);
  EXPECT_EQ(out.find('>'), std::string::npos);
  EXPECT_EQ(out.find('*'), std::string::npos);
}

TEST(Timeline, WindowClipsServiceAcrossBoundary) {
  sim::MemorySystem mem{flat(4, 3), {sim::StreamConfig{.start_bank = 0, .distance = 1, .length = 4}}};
  Timeline tl{mem};
  mem.run(100);
  // Grant on bank 1 at t=1 runs t=1..3; window [2,5) sees its tail.
  const auto g = tl.grid(2, 5);
  EXPECT_EQ(g[1], "11.");
}

}  // namespace
}  // namespace vpmem::trace
