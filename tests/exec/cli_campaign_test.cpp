// End-to-end campaign tests against the real vpmem_cli binary (path via
// VPMEM_CLI_PATH): a journaled 500-point sweep is SIGKILLed mid-flight
// and resumed to byte-identical results, a sandboxed campaign quarantines
// a deliberately crashing point while every other point completes, and
// SIGINT drains into a valid "interrupted" envelope with exit code 7.
// This file forks and execs, so it carries the "fork" ctest label and is
// excluded from the ThreadSanitizer pass.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "vpmem/util/json.hpp"

namespace vpmem {
namespace {

namespace fs = std::filesystem;

/// Scratch directory for one test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_{fs::temp_directory_path() /
              ("vpmem_cli_campaign_" + name + "_" + std::to_string(::getpid()))} {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

/// Fork/exec vpmem_cli with stdout/stderr routed to /dev/null.  Returns
/// the child pid; the caller waits (or kills) as the test demands.
pid_t spawn_cli(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    ::close(devnull);
  }
  std::vector<char*> argv;
  static const std::string cli = VPMEM_CLI_PATH;
  argv.push_back(const_cast<char*>(cli.c_str()));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(cli.c_str(), argv.data());
  ::_exit(127);
}

/// Run to completion; returns the exit code (-signal if killed).
int run_cli(const std::vector<std::string>& args) {
  const pid_t pid = spawn_cli(args);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

std::size_t journal_lines(const std::string& path) {
  std::ifstream in{path};
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) ++n;
  return n;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Wait until the journal reaches `lines` records; false on timeout.
bool wait_for_journal(const std::string& path, std::size_t lines, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (journal_lines(path) >= lines) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

/// The 500-point acceptance grid: d1 in 1..20, d2 in 1..25, m=16 nc=3.
std::vector<std::string> grid_args(const std::vector<std::string>& extra) {
  std::vector<std::string> args{"sweep", "16", "3", "--d1", "1:20", "--d2", "1:25"};
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

TEST(CliCampaign, KilledSweepResumesToByteIdenticalResults) {
  TempDir dir{"kill_resume"};
  const std::string ref = dir.file("ref.json");
  const std::string out = dir.file("resumed.json");
  const std::string journal = dir.file("journal.jsonl");

  // The uninterrupted reference run.
  ASSERT_EQ(run_cli(grid_args({"--jobs", "2", "--out", ref})), 0);

  // Hard-stop a throttled run once the journal passes the halfway mark.
  const pid_t pid = spawn_cli(grid_args(
      {"--jobs", "2", "--throttle-ms", "2", "--journal", journal, "--out", out}));
  ASSERT_TRUE(wait_for_journal(journal, 250, 30000)) << "campaign never reached 250 journal lines";
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status)) << "expected the campaign to die by SIGKILL";
  const std::size_t lines_at_death = journal_lines(journal);
  EXPECT_GE(lines_at_death, 250u);
  EXPECT_LT(lines_at_death, 500u) << "campaign finished before the kill landed";
  EXPECT_FALSE(fs::exists(out)) << "--out must not exist for a killed campaign";

  // Resume from the journal the kill left behind.
  ASSERT_EQ(run_cli(grid_args({"--jobs", "2", "--journal", journal, "--resume", "--out", out})),
            0);
  const std::string resumed_doc = slurp(out);
  ASSERT_FALSE(resumed_doc.empty());
  EXPECT_EQ(slurp(ref), resumed_doc) << "resumed results differ from the uninterrupted run";

  // Every point is settled now: a second resume re-runs nothing new and
  // still reproduces the same bytes.
  const std::size_t settled_lines = journal_lines(journal);
  ASSERT_EQ(run_cli(grid_args({"--journal", journal, "--resume", "--out", out})), 0);
  EXPECT_EQ(journal_lines(journal), settled_lines);
  EXPECT_EQ(slurp(ref), slurp(out));
}

TEST(CliCampaign, SandboxQuarantinesTheCrashingPointAndCompletesTheRest) {
  TempDir dir{"quarantine"};
  const std::string out = dir.file("results.json");
  const int rc = run_cli(grid_args(
      {"--jobs", "4", "--sandbox", "--test-crash", "d1=3/d2=7", "--out", out}));
  EXPECT_EQ(rc, 8);  // degraded campaign

  const Json doc = Json::parse(slurp(out));
  EXPECT_EQ(doc.at("schema").as_string(), "vpmem.sweep_results/1");
  const Json& points = doc.at("points");
  ASSERT_EQ(points.size(), 500u);
  std::size_t ok = 0;
  std::size_t quarantined = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Json& p = points.at(i);
    if (p.at("status").as_string() == "ok") {
      ++ok;
      continue;
    }
    ++quarantined;
    EXPECT_EQ(p.at("id").as_string(), "d1=3/d2=7");
    EXPECT_EQ(p.at("status").as_string(), "quarantined");
    EXPECT_EQ(p.at("error_code").as_string(), "SIGSEGV");
    // The repro token replays the dead point in isolation.
    EXPECT_NE(p.at("repro").as_string().find("--d1 3:3"), std::string::npos);
  }
  EXPECT_EQ(ok, 499u);
  EXPECT_EQ(quarantined, 1u);
}

TEST(CliCampaign, SigintDrainsIntoAValidInterruptedEnvelope) {
  TempDir dir{"sigint"};
  const std::string journal = dir.file("journal.jsonl");
  const std::string envelope = dir.file("envelope.json");

  const pid_t pid = spawn_cli(grid_args(
      {"--throttle-ms", "5", "--journal", journal, "--json", envelope}));
  ASSERT_TRUE(wait_for_journal(journal, 50, 30000));
  ::kill(pid, SIGINT);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status)) << "SIGINT should drain, not kill";
  EXPECT_EQ(WEXITSTATUS(status), 7);

  const Json doc = Json::parse(slurp(envelope));  // valid JSON, not torn
  EXPECT_EQ(doc.at("schema").as_string(), "vpmem.cli/1");
  EXPECT_EQ(doc.at("status").as_string(), "interrupted");
  EXPECT_EQ(doc.at("campaign").at("status").as_string(), "partial");
}

}  // namespace
}  // namespace vpmem
