// Kill-and-resume: a journaled campaign stopped mid-flight must, once
// resumed, end with results field-for-field identical to a run that was
// never interrupted.  The "kill" is simulated by truncating the journal
// to a prefix (plus a torn half-line) — exactly the file a SIGKILLed
// writer leaves behind, since every record is flushed whole before the
// next is begun.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vpmem/exec/executor.hpp"
#include "vpmem/util/error.hpp"
#include "vpmem/util/hash.hpp"
#include "vpmem/util/journal.hpp"

namespace vpmem {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_{(std::filesystem::temp_directory_path() /
               ("vpmem_resume_test_" + name + "_" + std::to_string(::getpid()) + ".jsonl"))
                  .string()} {
    std::filesystem::remove(path_);
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Deterministic job payload: a pure function of the job index.
std::vector<exec::JobSpec> campaign_jobs(i64 count) {
  std::vector<exec::JobSpec> jobs;
  for (i64 i = 0; i < count; ++i) {
    exec::JobSpec job;
    job.id = "point-" + std::to_string(i);
    job.hash = stable_hash("resume_test point=" + std::to_string(i));
    job.run = [i] {
      Json doc = Json::object();
      doc["index"] = i;
      doc["square"] = i * i;
      doc["parity"] = i % 2 == 0 ? "even" : "odd";
      return doc;
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Copy the first `lines` journal lines to `dst`, then append a torn
/// half-line as a crashed writer would.
void truncate_journal(const std::string& src, const std::string& dst, std::size_t lines) {
  std::ifstream in{src};
  std::ofstream out{dst};
  std::string line;
  std::size_t n = 0;
  while (n < lines && std::getline(in, line)) {
    out << line << '\n';
    ++n;
  }
  out << R"({"schema":"vpmem.journal/1","job":"torn","ha)";  // died mid-write
}

void expect_identical(const exec::CampaignSummary& a, const exec::CampaignSummary& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    SCOPED_TRACE("job " + a.results[i].id);
    EXPECT_EQ(a.results[i].id, b.results[i].id);
    EXPECT_EQ(a.results[i].hash, b.results[i].hash);
    EXPECT_EQ(a.results[i].status, b.results[i].status);
    EXPECT_EQ(a.results[i].error_code, b.results[i].error_code);
    EXPECT_EQ(a.results[i].result, b.results[i].result);
    EXPECT_EQ(a.results[i].result.dump(), b.results[i].result.dump());  // byte-level
  }
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.status, b.status);
}

TEST(Resume, KilledCampaignResumesToIdenticalResults) {
  constexpr i64 kJobs = 24;
  TempFile full{"full"};
  TempFile killed{"killed"};

  // The uninterrupted reference run.
  exec::ExecutorOptions options;
  options.jobs = 3;
  options.sleep_on_backoff = false;
  options.journal_path = full.path();
  const exec::CampaignSummary reference = exec::run_campaign(campaign_jobs(kJobs), options);
  ASSERT_EQ(reference.completed, kJobs);

  // "Kill" it at ~half the journal and resume from the remains.
  truncate_journal(full.path(), killed.path(), kJobs / 2);
  options.journal_path = killed.path();
  options.resume = true;
  const exec::CampaignSummary resumed = exec::run_campaign(campaign_jobs(kJobs), options);

  EXPECT_EQ(resumed.resumed, kJobs / 2);
  EXPECT_EQ(resumed.completed, kJobs);
  expect_identical(reference, resumed);

  // The merged journal now settles every job; a third run re-runs nothing.
  const exec::CampaignSummary settled = exec::run_campaign(campaign_jobs(kJobs), options);
  EXPECT_EQ(settled.resumed, kJobs);
  expect_identical(reference, settled);
}

TEST(Resume, QuarantinedJobsStaySettledAcrossResume) {
  TempFile journal{"quarantine"};
  auto jobs = campaign_jobs(4);
  exec::JobSpec bad;
  bad.id = "bad";
  bad.hash = stable_hash("resume_test bad");
  bad.repro = "replay bad";
  bad.run = []() -> Json { throw Error{ErrorCode::config_invalid, "always broken"}; };
  jobs.push_back(std::move(bad));

  exec::ExecutorOptions options;
  options.sleep_on_backoff = false;
  options.journal_path = journal.path();
  const exec::CampaignSummary first = exec::run_campaign(jobs, options);
  EXPECT_EQ(first.quarantined, 1);
  EXPECT_EQ(first.status, "degraded");

  options.resume = true;
  const exec::CampaignSummary second = exec::run_campaign(jobs, options);
  EXPECT_EQ(second.resumed, 5);  // the quarantine verdict is settled too
  EXPECT_EQ(second.quarantined, 1);
  EXPECT_EQ(second.status, "degraded");
  EXPECT_EQ(second.results[4].status, exec::JobStatus::quarantined);
  EXPECT_EQ(second.results[4].repro, "replay bad");
  expect_identical(first, second);
}

}  // namespace
}  // namespace vpmem
