// Fork-based crash isolation: results marshal back through the pipe,
// typed errors keep their codes, and a child death by signal becomes a
// structured outcome instead of killing the test binary.  This file
// forks, so it is excluded from the ThreadSanitizer pass (fork + TSan's
// interceptors do not mix); the executor and pool get their TSan
// coverage from executor_test.cpp.
#include <gtest/gtest.h>

#include <csignal>

#include "vpmem/exec/executor.hpp"
#include "vpmem/exec/sandbox.hpp"
#include "vpmem/util/error.hpp"
#include "vpmem/util/hash.hpp"

namespace vpmem {
namespace {

TEST(Sandbox, SupportedOnThisPlatform) {
  // The whole suite runs on POSIX; if this ever fails the executor is
  // silently running campaigns without crash isolation.
  EXPECT_TRUE(exec::sandbox_supported());
}

TEST(Sandbox, ResultRoundTripsThroughThePipe) {
  const exec::SandboxOutcome outcome = exec::run_sandboxed([] {
    Json doc = Json::object();
    doc["text"] = "with \"quotes\" and \n newlines";
    doc["number"] = 123456789;
    doc["nested"] = Json::array();
    return doc;
  });
  ASSERT_EQ(outcome.kind, exec::SandboxOutcome::Kind::ok);
  EXPECT_EQ(outcome.result.at("text").as_string(), "with \"quotes\" and \n newlines");
  EXPECT_EQ(outcome.result.at("number").as_int(), 123456789);
}

TEST(Sandbox, TypedErrorKeepsItsCode) {
  const exec::SandboxOutcome outcome = exec::run_sandboxed(
      []() -> Json { throw Error{ErrorCode::deadline_exceeded, "over budget"}; });
  ASSERT_EQ(outcome.kind, exec::SandboxOutcome::Kind::error);
  EXPECT_EQ(outcome.error_code, "deadline_exceeded");
  EXPECT_EQ(outcome.error_message, "over budget");
}

TEST(Sandbox, SegfaultBecomesAStructuredCrash) {
  const exec::SandboxOutcome outcome = exec::run_sandboxed([]() -> Json {
    std::raise(SIGSEGV);
    return Json{nullptr};
  });
  ASSERT_EQ(outcome.kind, exec::SandboxOutcome::Kind::crashed);
  EXPECT_EQ(outcome.signal, SIGSEGV);
  EXPECT_EQ(outcome.signal_name(), "SIGSEGV");
}

TEST(Sandbox, AbortBecomesAStructuredCrash) {
  const exec::SandboxOutcome outcome = exec::run_sandboxed([]() -> Json {
    std::raise(SIGABRT);
    return Json{nullptr};
  });
  ASSERT_EQ(outcome.kind, exec::SandboxOutcome::Kind::crashed);
  EXPECT_EQ(outcome.signal, SIGABRT);
}

TEST(Sandbox, ExecutorQuarantinesACrashingJobWhileOthersComplete) {
  std::vector<exec::JobSpec> jobs;
  for (int i = 0; i < 8; ++i) {
    exec::JobSpec job;
    job.id = "ok-" + std::to_string(i);
    job.hash = stable_hash("sandbox_test ok " + std::to_string(i));
    job.run = [i] {
      Json doc = Json::object();
      doc["i"] = i;
      return doc;
    };
    jobs.push_back(std::move(job));
  }
  exec::JobSpec crasher;
  crasher.id = "crasher";
  crasher.hash = stable_hash("sandbox_test crasher");
  crasher.repro = "replay crasher";
  crasher.run = []() -> Json {
    std::raise(SIGSEGV);
    return Json{nullptr};
  };
  jobs.insert(jobs.begin() + 3, std::move(crasher));

  exec::ExecutorOptions options;
  options.jobs = 4;
  options.sandbox = true;
  options.sleep_on_backoff = false;
  const exec::CampaignSummary summary = exec::run_campaign(jobs, options);
  EXPECT_EQ(summary.completed, 8);
  EXPECT_EQ(summary.quarantined, 1);
  EXPECT_EQ(summary.status, "degraded");
  const auto& r = summary.results[3];
  EXPECT_EQ(r.status, exec::JobStatus::quarantined);
  EXPECT_EQ(r.error_code, "SIGSEGV");
  EXPECT_EQ(r.signal, SIGSEGV);
  EXPECT_EQ(r.repro, "replay crasher");
  EXPECT_EQ(r.attempts, 2);  // crash + one confirmation retry
}

}  // namespace
}  // namespace vpmem
