// Campaign executor: worker pool dispatch, the retry/quarantine state
// machine, journaling, metrics aggregation, and cooperative cancellation.
// Everything here runs in-process (no fork) so the whole file is also
// part of the ThreadSanitizer pass.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "vpmem/exec/executor.hpp"
#include "vpmem/exec/pool.hpp"
#include "vpmem/util/error.hpp"
#include "vpmem/util/hash.hpp"
#include "vpmem/util/journal.hpp"

namespace vpmem {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_{(std::filesystem::temp_directory_path() /
               ("vpmem_executor_test_" + name + "_" + std::to_string(::getpid()) + ".jsonl"))
                  .string()} {
    std::filesystem::remove(path_);
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

Json payload(i64 value) {
  Json doc = Json::object();
  doc["value"] = value;
  return doc;
}

std::vector<exec::JobSpec> simple_jobs(i64 count) {
  std::vector<exec::JobSpec> jobs;
  for (i64 i = 0; i < count; ++i) {
    exec::JobSpec job;
    job.id = "job-" + std::to_string(i);
    job.hash = stable_hash("executor_test " + std::to_string(i));
    job.run = [i] { return payload(i * i); };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

exec::ExecutorOptions fast_options() {
  exec::ExecutorOptions options;
  options.sleep_on_backoff = false;  // keep retry tests instant
  return options;
}

TEST(ParallelFor, CoversEveryIndexOnEveryWorkerCount) {
  for (int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(64);
    const i64 executed = exec::parallel_for(
        64, jobs, [&](i64 index, int /*worker*/) { hits[static_cast<std::size_t>(index)]++; });
    EXPECT_EQ(executed, 64);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, CancellationStopsDispatch) {
  exec::CancelToken token;
  token.cancel();
  std::atomic<i64> ran{0};
  const i64 executed =
      exec::parallel_for(1000, 4, [&](i64, int) { ran++; }, &token);
  EXPECT_EQ(executed, 0);
  EXPECT_EQ(ran.load(), 0);
}

TEST(Executor, AllJobsCompleteInInputOrder) {
  auto options = fast_options();
  options.jobs = 4;
  const exec::CampaignSummary summary = exec::run_campaign(simple_jobs(16), options);
  EXPECT_EQ(summary.status, "ok");
  EXPECT_TRUE(summary.ok());
  EXPECT_EQ(summary.completed, 16);
  EXPECT_EQ(summary.failed, 0);
  ASSERT_EQ(summary.results.size(), 16u);
  for (i64 i = 0; i < 16; ++i) {
    const auto& r = summary.results[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.id, "job-" + std::to_string(i));  // input order, not finish order
    EXPECT_EQ(r.status, exec::JobStatus::ok);
    EXPECT_EQ(r.result.at("value").as_int(), i * i);
    EXPECT_EQ(r.attempts, 1);
  }
}

TEST(Executor, TransientErrorIsRetriedUntilItSucceeds) {
  auto counter = std::make_shared<std::atomic<int>>(0);
  exec::JobSpec job;
  job.id = "flaky";
  job.hash = stable_hash("flaky");
  job.run = [counter] {
    if (counter->fetch_add(1) < 2) {
      throw Error{ErrorCode::deadline_exceeded, "transient"};
    }
    return payload(7);
  };
  auto options = fast_options();
  options.retry.max_attempts = 4;
  const exec::CampaignSummary summary = exec::run_campaign({job}, options);
  EXPECT_EQ(summary.status, "ok");
  EXPECT_EQ(summary.completed, 1);
  EXPECT_EQ(summary.retries, 2);
  EXPECT_EQ(summary.results[0].attempts, 3);
  EXPECT_EQ(summary.results[0].result.at("value").as_int(), 7);
}

TEST(Executor, TransientErrorExhaustsIntoFailed) {
  exec::JobSpec job;
  job.id = "always-slow";
  job.hash = stable_hash("always-slow");
  job.run = []() -> Json { throw Error{ErrorCode::livelock, "stuck"}; };
  auto options = fast_options();
  options.retry.max_attempts = 3;
  const exec::CampaignSummary summary = exec::run_campaign({job}, options);
  EXPECT_EQ(summary.status, "degraded");
  EXPECT_FALSE(summary.ok());
  EXPECT_EQ(summary.failed, 1);
  EXPECT_EQ(summary.results[0].status, exec::JobStatus::failed);
  EXPECT_EQ(summary.results[0].attempts, 3);
  EXPECT_EQ(summary.results[0].error_code, "livelock");
}

TEST(Executor, DeterministicErrorIsQuarantinedAfterOneConfirmationRetry) {
  exec::JobSpec job;
  job.id = "broken";
  job.hash = stable_hash("broken");
  job.repro = "replay-token-xyz";
  job.run = []() -> Json { throw Error{ErrorCode::config_invalid, "bad config"}; };
  auto options = fast_options();
  options.retry.max_attempts = 5;  // deterministic errors ignore the budget
  const exec::CampaignSummary summary = exec::run_campaign({job}, options);
  EXPECT_EQ(summary.status, "degraded");
  EXPECT_EQ(summary.quarantined, 1);
  const auto& r = summary.results[0];
  EXPECT_EQ(r.status, exec::JobStatus::quarantined);
  EXPECT_EQ(r.attempts, 2);  // first failure + one confirmation retry
  EXPECT_EQ(r.error_code, "config_invalid");
  EXPECT_EQ(r.repro, "replay-token-xyz");
}

TEST(Executor, DuplicateHashesThrow) {
  auto jobs = simple_jobs(2);
  jobs[1].hash = jobs[0].hash;
  EXPECT_THROW((void)exec::run_campaign(jobs, fast_options()), std::runtime_error);
}

TEST(Executor, PreCancelledCampaignIsPartial) {
  exec::CancelToken token;
  token.cancel();
  auto options = fast_options();
  options.cancel = &token;
  const exec::CampaignSummary summary = exec::run_campaign(simple_jobs(8), options);
  EXPECT_EQ(summary.status, "partial");
  EXPECT_TRUE(summary.interrupted);
  EXPECT_EQ(summary.cancelled, 8);
  for (const auto& r : summary.results) EXPECT_EQ(r.status, exec::JobStatus::cancelled);
}

TEST(Executor, JournalRecordsEveryAttemptAndResumeSkipsSettledJobs) {
  TempFile journal{"resume"};
  auto options = fast_options();
  options.jobs = 2;
  options.journal_path = journal.path();
  const exec::CampaignSummary first = exec::run_campaign(simple_jobs(6), options);
  EXPECT_EQ(first.completed, 6);
  const JournalScan scan = read_journal(journal.path());
  EXPECT_EQ(scan.records.size(), 6u);
  for (const auto& r : scan.records) EXPECT_EQ(r.status, "ok");

  // Resume over the same journal: every job is already settled.
  options.resume = true;
  const exec::CampaignSummary second = exec::run_campaign(simple_jobs(6), options);
  EXPECT_EQ(second.completed, 6);
  EXPECT_EQ(second.resumed, 6);
  EXPECT_EQ(second.status, "ok");
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(second.results[i].resumed);
    EXPECT_EQ(second.results[i].attempts, 0);
    EXPECT_EQ(second.results[i].result, first.results[i].result);
  }
}

TEST(Executor, MetricsCountCompletionsAndRetries) {
  auto counter = std::make_shared<std::atomic<int>>(0);
  auto jobs = simple_jobs(4);
  exec::JobSpec flaky;
  flaky.id = "flaky";
  flaky.hash = stable_hash("metrics-flaky");
  flaky.run = [counter] {
    if (counter->fetch_add(1) == 0) throw Error{ErrorCode::deadline_exceeded, "transient"};
    return payload(1);
  };
  jobs.push_back(std::move(flaky));
  auto options = fast_options();
  options.jobs = 3;
  const exec::CampaignSummary summary = exec::run_campaign(jobs, options);
  EXPECT_EQ(summary.completed, 5);
  EXPECT_EQ(summary.retries, 1);
  ASSERT_TRUE(summary.metrics.is_object());
  EXPECT_EQ(summary.metrics.at("jobs.completed").as_int(), 5);
  EXPECT_EQ(summary.metrics.at("jobs.retried").as_int(), 1);
  EXPECT_EQ(summary.metrics.at("job.wall_ms").at("count").as_int(), 6);  // 5 jobs + 1 retry
}

}  // namespace
}  // namespace vpmem
