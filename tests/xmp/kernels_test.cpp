#include "vpmem/xmp/kernels.hpp"

#include <gtest/gtest.h>

namespace vpmem::xmp {
namespace {

i64 total_grants(const TriadResult& r) {
  i64 g = 0;
  for (const auto& p : r.triad_ports) g += p.grants;
  return g;
}

TEST(KernelSpec, Validation) {
  EXPECT_NO_THROW(triad_kernel().validate());
  KernelSpec bad{.name = "bad", .loads = -1, .store = true};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  KernelSpec empty{.name = "empty", .loads = 0, .store = false};
  EXPECT_THROW(empty.validate(), std::invalid_argument);
}

TEST(Kernels, CatalogShapes) {
  EXPECT_EQ(copy_kernel().loads, 1);
  EXPECT_TRUE(copy_kernel().store);
  EXPECT_EQ(sum_kernel().loads, 1);
  EXPECT_FALSE(sum_kernel().store);
  EXPECT_EQ(daxpy_kernel().loads, 2);
  EXPECT_EQ(triad_kernel().loads, 3);
  EXPECT_TRUE(gather_kernel().gather);
  EXPECT_TRUE(scatter_kernel().scatter);
  EXPECT_EQ(all_kernels().size(), 7u);
}

TEST(RunKernel, GrantCountsMatchShape) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 200;
  for (const auto& spec : all_kernels()) {
    const TriadResult r = run_kernel(cfg, spec, setup, false);
    const i64 arrays = spec.loads + (spec.store ? 1 : 0);
    EXPECT_EQ(total_grants(r), arrays * setup.n) << spec.name;
    EXPECT_GT(r.cycles, 0) << spec.name;
  }
}

TEST(RunKernel, TriadMatchesRunTriad) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 256;
  setup.inc = 3;
  const TriadResult a = run_kernel(cfg, triad_kernel(), setup, true);
  const TriadResult b = run_triad(cfg, setup, true);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.conflicts.total(), b.conflicts.total());
}

TEST(RunKernel, MoreOperandsTakeLonger) {
  // copy (2 arrays) < daxpy (3) < triad (4) in memory traffic, hence time,
  // at equal stride and length.
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 512;
  const i64 t_copy = run_kernel(cfg, copy_kernel(), setup, false).cycles;
  const i64 t_daxpy = run_kernel(cfg, daxpy_kernel(), setup, false).cycles;
  const i64 t_triad = run_kernel(cfg, triad_kernel(), setup, false).cycles;
  EXPECT_LT(t_copy, t_daxpy);
  EXPECT_LE(t_daxpy, t_triad);
}

TEST(RunKernel, SumUsesOnlyLoadPort) {
  // A reduction issues no store; one load port streams the whole array.
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 256;
  const TriadResult r = run_kernel(cfg, sum_kernel(), setup, false);
  EXPECT_EQ(total_grants(r), setup.n);
  // At stride 1 the lone stream is conflict-free: n grants, port busy
  // n cycles + issue gaps between strips.
  EXPECT_LT(r.cycles, setup.n + 4 * (cfg.issue_gap + 1) + 8);
}

TEST(RunKernel, SelfConflictingStrideHurtsEveryKernel) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 256;
  for (const auto& spec : all_kernels()) {
    setup.inc = 1;
    const i64 good = run_kernel(cfg, spec, setup, false).cycles;
    setup.inc = 8;
    const i64 bad = run_kernel(cfg, spec, setup, false).cycles;
    EXPECT_GT(bad, good) << spec.name;
  }
}

TEST(RunKernel, GatherValidation) {
  KernelSpec bad = gather_kernel();
  bad.loads = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(RunKernel, GatherTransfersEveryElement) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 200;
  const TriadResult r = run_kernel(cfg, gather_kernel(), setup, false);
  EXPECT_EQ(total_grants(r), 3 * setup.n);  // IX, B(IX), A
}

TEST(RunKernel, GatherIsDeterministic) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 256;
  const TriadResult a = run_kernel(cfg, gather_kernel(), setup, true);
  const TriadResult b = run_kernel(cfg, gather_kernel(), setup, true);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.conflicts.total(), b.conflicts.total());
}

TEST(RunKernel, GatherPaysRandomTrafficTax) {
  // The indexed operand hits random banks: at stride 1, gather must be
  // slower than daxpy (same operand count, all affine) and insensitive to
  // the stride cure that fixes affine kernels.
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 512;
  setup.inc = 1;
  const i64 affine = run_kernel(cfg, daxpy_kernel(), setup, false).cycles;
  const TriadResult gathered = run_kernel(cfg, gather_kernel(), setup, false);
  EXPECT_GT(gathered.cycles, affine);
  EXPECT_GT(gathered.conflicts.bank, 0);
}

TEST(RunKernel, ContentionSlowsKernels) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 192;
  setup.inc = 2;
  for (const auto& spec : all_kernels()) {
    const i64 dedicated = run_kernel(cfg, spec, setup, false).cycles;
    const i64 contended = run_kernel(cfg, spec, setup, true).cycles;
    EXPECT_GE(contended, dedicated) << spec.name;
  }
}

}  // namespace
}  // namespace vpmem::xmp
