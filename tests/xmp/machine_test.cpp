#include "vpmem/xmp/machine.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace vpmem::xmp {
namespace {

TEST(TriadStartBanks, PaperCommonLayout) {
  const XmpConfig cfg;
  TriadSetup setup;  // IDIM = 16*1024 + 1
  EXPECT_EQ(triad_start_banks(cfg, setup), (std::vector<i64>{0, 1, 2, 3}));
  setup.base_bank = 5;
  EXPECT_EQ(triad_start_banks(cfg, setup), (std::vector<i64>{5, 6, 7, 8}));
  setup.base_bank = 0;
  setup.idim = 16 * 1024;  // unpadded: all arrays alias to one bank
  EXPECT_EQ(triad_start_banks(cfg, setup), (std::vector<i64>{0, 0, 0, 0}));
}

TEST(RunTriad, TransfersEveryElement) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 200;  // not a multiple of VL: exercises the short last strip
  const TriadResult r = run_triad(cfg, setup, /*other_cpu_active=*/false);
  // 4 streams (B, C, D loads + A store) of n elements each.
  i64 grants = 0;
  for (const auto& p : r.triad_ports) grants += p.grants;
  EXPECT_EQ(grants, 4 * setup.n);
  EXPECT_GT(r.cycles, setup.n);  // loads alone need >= 2n/2 port-cycles
}

TEST(RunTriad, DedicatedStrideOneHasFewConflicts) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 256;
  setup.inc = 1;
  const TriadResult r = run_triad(cfg, setup, false);
  // Four streams, distance 1, start banks 0..3: occasional collisions
  // where strips overlap, but far fewer than a self-conflicting stride.
  EXPECT_LT(r.conflicts.total(), setup.n / 2);
  setup.inc = 8;  // r = 2 < nc: conflicts on nearly every element
  const TriadResult bad = run_triad(cfg, setup, false);
  EXPECT_GT(bad.conflicts.total(), 4 * r.conflicts.total());
}

TEST(RunTriad, SelfConflictingStrideIsSlower) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 256;
  setup.inc = 1;
  const i64 fast = run_triad(cfg, setup, false).cycles;
  setup.inc = 8;  // d = 8, r = 2 < nc = 4: severe self-conflict
  const TriadResult slow = run_triad(cfg, setup, false);
  EXPECT_GT(slow.cycles, fast * 3 / 2);
  EXPECT_GT(slow.conflicts.bank, 0);
  setup.inc = 16;  // d = 0: every access to the same bank, r = 1
  const TriadResult worst = run_triad(cfg, setup, false);
  EXPECT_GT(worst.cycles, slow.cycles);
}

TEST(RunTriad, ContentionNeverSpeedsUp) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 128;
  for (i64 inc : {1, 2, 3, 5, 8}) {
    setup.inc = inc;
    const i64 dedicated = run_triad(cfg, setup, false).cycles;
    const i64 contended = run_triad(cfg, setup, true).cycles;
    EXPECT_GE(contended, dedicated) << "inc=" << inc;
  }
}

TEST(RunTriad, ContendedRunSeesCrossCpuConflicts) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 256;
  setup.inc = 2;  // the paper's barrier victim
  const TriadResult r = run_triad(cfg, setup, true);
  EXPECT_GT(r.conflicts.bank, 0);
}

TEST(RunTriad, StrideModuloBanksEquivalence) {
  // d = INC mod m: INC = 17 behaves like INC = 1 for bank conflicts
  // (instruction scheduling is identical too).
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 128;
  setup.inc = 1;
  const TriadResult a = run_triad(cfg, setup, false);
  setup.inc = 17;
  const TriadResult b = run_triad(cfg, setup, false);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.conflicts.total(), b.conflicts.total());
}

TEST(RunTriad, CyclesPerElement) {
  TriadResult r;
  r.cycles = 512;
  EXPECT_DOUBLE_EQ(r.cycles_per_element(256), 2.0);
  EXPECT_DOUBLE_EQ(r.cycles_per_element(0), 0.0);
}

TEST(RunTriad, Validation) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 0;
  EXPECT_THROW(static_cast<void>(run_triad(cfg, setup, false)), std::invalid_argument);
  setup.n = 64;
  setup.inc = 0;
  EXPECT_THROW(static_cast<void>(run_triad(cfg, setup, false)), std::invalid_argument);
  setup.inc = 1;
  setup.idim = 0;
  EXPECT_THROW(static_cast<void>(run_triad(cfg, setup, false)), std::invalid_argument);
  setup.idim = 1;
  cfg.vector_length = 0;
  EXPECT_THROW(static_cast<void>(run_triad(cfg, setup, false)), std::invalid_argument);
  cfg.vector_length = 64;
  cfg.background_start_banks = {99};
  EXPECT_THROW(static_cast<void>(run_triad(cfg, setup, true)), std::invalid_argument);
}

TEST(RunTriad, SmallVectorLengthStillCorrect) {
  XmpConfig cfg;
  cfg.vector_length = 8;  // many strips
  TriadSetup setup;
  setup.n = 50;
  const TriadResult r = run_triad(cfg, setup, false);
  i64 grants = 0;
  for (const auto& p : r.triad_ports) grants += p.grants;
  EXPECT_EQ(grants, 4 * setup.n);
}

TEST(RunTriad, BarrierFormerStridesDelayTheOtherCpu) {
  // Section IV: for INC = 6 (isomorphic to 2 (+) 3 against the stride-1
  // environment) the triad's requests are "fairly undisturbed while the
  // access requests of the other CPU are greatly delayed".
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 1024;  // full paper length: the INC=11 (eq. 28) barrier needs
                   // the triad's ports to hold priority; see EXPERIMENTS.md
  setup.inc = 1;
  const TriadResult friendly = run_triad(cfg, setup, true);
  setup.inc = 11;
  const TriadResult barrier = run_triad(cfg, setup, true);
  EXPECT_LT(barrier.background_goodput(), 0.6 * friendly.background_goodput());
  ASSERT_EQ(barrier.background_ports.size(), 3u);
  // And the triad itself is nearly undisturbed.
  const i64 dedicated = run_triad(cfg, setup, false).cycles;
  EXPECT_LT(barrier.cycles, dedicated * 11 / 10);
}

TEST(RunTriad, DedicatedRunHasNoBackgroundStats) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 64;
  const TriadResult r = run_triad(cfg, setup, false);
  EXPECT_TRUE(r.background_ports.empty());
  EXPECT_DOUBLE_EQ(r.background_goodput(), 0.0);
}

TEST(RunTriad, BestStridesBeatBarrierVictimsUnderContention) {
  // The paper's headline (Fig. 10a): INC = 2 and 3 suffer badly from the
  // other CPU's stride-1 streams; INC = 1 and 6 do not.
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 512;
  auto contended = [&](i64 inc) {
    setup.inc = inc;
    return run_triad(cfg, setup, true).cycles;
  };
  const i64 t1 = contended(1);
  const i64 t2 = contended(2);
  const i64 t3 = contended(3);
  const i64 t6 = contended(6);
  EXPECT_GT(t2, t1 * 5 / 4);  // paper: roughly +50 %
  EXPECT_GT(t3, t1 * 3 / 2);  // paper: roughly +100 %
  EXPECT_LE(t6, t1 * 11 / 10);
}

}  // namespace
}  // namespace vpmem::xmp
