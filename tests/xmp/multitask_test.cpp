#include <gtest/gtest.h>

#include "vpmem/xmp/kernels.hpp"

namespace vpmem::xmp {
namespace {

i64 grants(const std::vector<sim::PortStats>& ports) {
  i64 g = 0;
  for (const auto& p : ports) g += p.grants;
  return g;
}

TEST(Multitask, SplitsWorkAcrossCpus) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 200;
  const MultitaskResult r = run_kernel_multitasked(cfg, triad_kernel(), setup);
  // Four arrays, n elements total, split across the CPUs.
  EXPECT_EQ(grants(r.cpu0_ports) + grants(r.cpu1_ports), 4 * setup.n);
  EXPECT_EQ(grants(r.cpu0_ports), 4 * 100);
  EXPECT_EQ(grants(r.cpu1_ports), 4 * 100);
}

TEST(Multitask, SpeedsUpTheTriad) {
  // The whole point of multitasking: two cooperating CPUs with uniform
  // streams finish the loop much faster than one CPU does alone.
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 1024;
  for (i64 inc : {i64{1}, i64{2}, i64{3}}) {
    setup.inc = inc;
    const i64 single = run_kernel(cfg, triad_kernel(), setup, false).cycles;
    const MultitaskResult multi = run_kernel_multitasked(cfg, triad_kernel(), setup);
    EXPECT_GT(multi.speedup(single), 1.5) << "inc=" << inc;
    EXPECT_LE(multi.speedup(single), 2.05) << "inc=" << inc;
  }
}

TEST(Multitask, BeatsTheHostileEnvironment) {
  // Section IV/V: INC = 2 under a foreign stride-1 CPU suffers ~+50 %; the
  // same loop multitasked across both CPUs runs uniform streams and is
  // faster than even the dedicated single-CPU run.
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 1024;
  setup.inc = 2;
  const i64 contended = run_kernel(cfg, triad_kernel(), setup, true).cycles;
  const MultitaskResult multi = run_kernel_multitasked(cfg, triad_kernel(), setup);
  EXPECT_LT(multi.cycles, contended / 2);
}

TEST(Multitask, SingleElementLoop) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 1;
  const MultitaskResult r = run_kernel_multitasked(cfg, triad_kernel(), setup);
  EXPECT_EQ(grants(r.cpu0_ports), 4);
  EXPECT_TRUE(r.cpu1_ports.empty());
}

TEST(Multitask, WorksForEveryKernel) {
  XmpConfig cfg;
  TriadSetup setup;
  setup.n = 130;
  for (const auto& spec : all_kernels()) {
    const MultitaskResult r = run_kernel_multitasked(cfg, spec, setup);
    const i64 arrays = spec.loads + (spec.store ? 1 : 0);
    EXPECT_EQ(grants(r.cpu0_ports) + grants(r.cpu1_ports), arrays * setup.n) << spec.name;
  }
}

TEST(Multitask, SpeedupHelper) {
  MultitaskResult r;
  r.cycles = 500;
  EXPECT_DOUBLE_EQ(r.speedup(1000), 2.0);
  MultitaskResult zero;
  EXPECT_DOUBLE_EQ(zero.speedup(1000), 0.0);
}

}  // namespace
}  // namespace vpmem::xmp
