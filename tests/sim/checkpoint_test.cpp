// SystemState checkpoint/restore: a restored machine must continue
// cycle-for-cycle identically, including mid-flight fault state.
#include "vpmem/sim/memory_system.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "vpmem/sim/fault.hpp"
#include "vpmem/util/error.hpp"

namespace vpmem::sim {
namespace {

MemoryConfig flat(i64 m, i64 nc) { return MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}; }

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.policy = FaultPolicy::remap_spare;
  plan.events = {
      FaultEvent{.kind = FaultEvent::Kind::bank_offline, .cycle = 6, .bank = 2},
      FaultEvent{.kind = FaultEvent::Kind::bank_slow, .cycle = 10, .bank = 0, .value = 4},
      FaultEvent{.kind = FaultEvent::Kind::bank_stall, .cycle = 14, .bank = 1, .value = 6},
      FaultEvent{.kind = FaultEvent::Kind::path_offline, .cycle = 18, .cpu = 1, .section = 3},
      FaultEvent{.kind = FaultEvent::Kind::bank_online, .cycle = 30, .bank = 2}};
  return plan;
}

std::vector<StreamConfig> sample_streams() {
  return {StreamConfig{.start_bank = 0, .distance = 3, .cpu = 0, .length = 48},
          StreamConfig{.start_bank = 1, .distance = 5, .cpu = 1, .length = 48,
                       .start_cycle = 2}};
}

/// Grant/conflict trail of `mem` over the next `cycles` periods.
std::vector<Event> trail(MemorySystem& mem, i64 cycles) {
  std::vector<Event> events;
  static_cast<void>(mem.add_event_hook([&events](const Event& e) { events.push_back(e); }));
  mem.run(cycles, /*stop_when_finished=*/false);
  return events;
}

void expect_same_trail(const std::vector<Event>& a, const std::vector<Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].port, b[i].port);
    EXPECT_EQ(a[i].bank, b[i].bank);
    EXPECT_EQ(a[i].conflict, b[i].conflict);
    EXPECT_EQ(a[i].blocker, b[i].blocker);
  }
}

TEST(Checkpoint, RestoredRunContinuesIdentically) {
  const MemoryConfig cfg{.banks = 8, .sections = 4, .bank_cycle = 3,
                         .priority = PriorityRule::cyclic};
  // Uninterrupted reference run.
  MemorySystem whole{cfg, sample_streams(), sample_plan()};
  whole.run(12, /*stop_when_finished=*/false);
  const auto expected = trail(whole, 28);

  // Same run, checkpointed in the middle of the fault window.
  MemorySystem first_half{cfg, sample_streams(), sample_plan()};
  first_half.run(12, /*stop_when_finished=*/false);
  const SystemState state = first_half.checkpoint();
  EXPECT_EQ(state.now, 12);
  MemorySystem second_half{state};
  EXPECT_EQ(second_half.now(), 12);
  expect_same_trail(expected, trail(second_half, 28));

  // And final counters agree with the uninterrupted machine.
  const auto a = whole.all_stats();
  const auto b = second_half.all_stats();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].grants, b[p].grants) << p;
    EXPECT_EQ(a[p].bank_conflicts, b[p].bank_conflicts) << p;
    EXPECT_EQ(a[p].fault_conflicts, b[p].fault_conflicts) << p;
  }
}

TEST(Checkpoint, JsonRoundTripPreservesTheMachine) {
  const MemoryConfig cfg{.banks = 8, .sections = 4, .bank_cycle = 3};
  MemorySystem mem{cfg, sample_streams(), sample_plan()};
  mem.run(16, /*stop_when_finished=*/false);
  const SystemState state = mem.checkpoint();
  const Json json = state.to_json();
  EXPECT_EQ(json.at("schema").as_string(), kCheckpointSchema);
  const SystemState back = SystemState::from_json(json);
  EXPECT_EQ(back.to_json(), json);

  // The deserialized machine continues exactly like the original.
  MemorySystem original{state};
  MemorySystem restored{back};
  expect_same_trail(trail(original, 24), trail(restored, 24));
}

TEST(Checkpoint, FromJsonRejectsWrongSchema) {
  Json doc = Json::object();
  doc["schema"] = "vpmem.checkpoint/999";
  EXPECT_THROW((void)SystemState::from_json(doc), vpmem::Error);
  EXPECT_THROW((void)SystemState::from_json(Json::object()), vpmem::Error);
}

TEST(Checkpoint, HealthyMachineStateHasEmptyFaultVectors) {
  MemorySystem mem{flat(4, 2), {StreamConfig{.distance = 1}}};
  mem.run(8, /*stop_when_finished=*/false);
  const SystemState state = mem.checkpoint();
  EXPECT_TRUE(state.plan.empty());
  EXPECT_TRUE(state.bank_online.empty());
  EXPECT_TRUE(state.bank_nc.empty());
  EXPECT_TRUE(state.paths_down.empty());
  MemorySystem restored{state};
  EXPECT_EQ(restored.surviving_banks(), 4);
}

}  // namespace
}  // namespace vpmem::sim
