// Fault model: FaultPlan validation/serialization and the MemorySystem
// semantics of every event kind under both degradation policies.
#include "vpmem/sim/fault.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "vpmem/sim/memory_system.hpp"
#include "vpmem/sim/run.hpp"
#include "vpmem/util/error.hpp"

namespace vpmem::sim {
namespace {

MemoryConfig flat(i64 m, i64 nc) { return MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}; }

FaultEvent boff(i64 cycle, i64 bank) {
  return FaultEvent{.kind = FaultEvent::Kind::bank_offline, .cycle = cycle, .bank = bank};
}
FaultEvent bon(i64 cycle, i64 bank) {
  return FaultEvent{.kind = FaultEvent::Kind::bank_online, .cycle = cycle, .bank = bank};
}

// ---- plan validation and serialization ------------------------------------

TEST(FaultPlan, EmptyPlanIsValidAnywhere) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_NO_THROW(plan.validate(flat(4, 2)));
}

TEST(FaultPlan, ValidateRejectsOutOfRangeFields) {
  const MemoryConfig cfg = flat(4, 2);
  const auto expect_invalid = [&cfg](FaultPlan plan) {
    try {
      plan.validate(cfg);
      FAIL() << "expected vpmem::Error";
    } catch (const vpmem::Error& e) {
      EXPECT_EQ(e.code(), vpmem::ErrorCode::fault_plan_invalid);
    }
  };
  FaultPlan plan;
  plan.events = {boff(0, 4)};  // bank out of range
  expect_invalid(plan);
  plan.events = {boff(-1, 0)};  // negative cycle
  expect_invalid(plan);
  plan.events = {boff(8, 0), boff(4, 1)};  // cycles must be non-decreasing
  expect_invalid(plan);
  plan.events = {FaultEvent{.kind = FaultEvent::Kind::bank_slow, .cycle = 0, .bank = 0,
                            .value = 0}};  // nc must be >= 1
  expect_invalid(plan);
  plan.events = {FaultEvent{.kind = FaultEvent::Kind::bank_stall, .cycle = 0, .bank = 0,
                            .value = 0}};  // window length must be >= 1
  expect_invalid(plan);
  plan.events = {FaultEvent{.kind = FaultEvent::Kind::path_offline, .cycle = 0, .cpu = 0,
                            .section = 4}};  // section out of range
  expect_invalid(plan);
}

TEST(FaultPlan, JsonAndCompactEncodingsRoundTrip) {
  FaultPlan plan;
  plan.policy = FaultPolicy::remap_spare;
  plan.events = {
      boff(4, 1),
      FaultEvent{.kind = FaultEvent::Kind::bank_slow, .cycle = 6, .bank = 2, .value = 5},
      FaultEvent{.kind = FaultEvent::Kind::bank_stall, .cycle = 8, .bank = 0, .value = 12},
      FaultEvent{.kind = FaultEvent::Kind::path_offline, .cycle = 9, .cpu = 1, .section = 3},
      FaultEvent{.kind = FaultEvent::Kind::path_online, .cycle = 11, .cpu = 1, .section = 3},
      bon(16, 1)};
  const Json json = plan.to_json();
  EXPECT_EQ(json.at("schema").as_string(), kFaultPlanSchema);
  const FaultPlan from_json = FaultPlan::from_json(json);
  EXPECT_EQ(from_json.to_json(), json);

  const std::string spec = plan.encode();
  EXPECT_EQ(spec.find(' '), std::string::npos) << spec;  // single token
  const FaultPlan parsed = FaultPlan::parse(spec);
  EXPECT_EQ(parsed.encode(), spec);
  EXPECT_EQ(parsed.to_json(), json);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  for (const char* spec :
       {"", "bogus_policy", "stall;", "stall;xyz@0:b1", "stall;boff@x:b1", "stall;boff@0",
        "stall;boff@0:b1:v9", "stall;slow@0:b1", "stall;poff@0:b1", "stall;boff@0:b1;extra@"}) {
    try {
      static_cast<void>(FaultPlan::parse(spec));
      FAIL() << "expected vpmem::Error for: '" << spec << "'";
    } catch (const vpmem::Error& e) {
      EXPECT_EQ(e.code(), vpmem::ErrorCode::fault_plan_invalid) << spec;
    }
  }
}

TEST(FaultPolicy, ToStringRoundTrip) {
  EXPECT_EQ(fault_policy_from_string(to_string(FaultPolicy::stall)), FaultPolicy::stall);
  EXPECT_EQ(fault_policy_from_string(to_string(FaultPolicy::remap_spare)),
            FaultPolicy::remap_spare);
  EXPECT_THROW(static_cast<void>(fault_policy_from_string("bogus")), vpmem::Error);
}

// ---- MemorySystem semantics ----------------------------------------------

TEST(FaultModel, OfflineBankUnderStallBlocksAndRecovers) {
  // One stream walking d=1 over m=4: with bank 2 down in [4, 12), the
  // stream parks on bank 2 and accrues fault conflicts until recovery.
  FaultPlan plan;
  plan.events = {boff(4, 2), bon(12, 2)};
  MemorySystem mem{flat(4, 1), {StreamConfig{.start_bank = 0, .distance = 1, .length = 16}},
                   plan};
  mem.run(40);
  const auto stats = mem.all_stats();
  EXPECT_EQ(stats.at(0).grants, 16);
  EXPECT_GT(stats.at(0).fault_conflicts, 0);
  EXPECT_EQ(mem.surviving_banks(), 4);  // back online at the end
}

TEST(FaultModel, OfflineBankCountsAsFaultNotBankConflict) {
  FaultPlan plan;
  plan.events = {boff(0, 0)};
  MemorySystem mem{flat(4, 1), {StreamConfig{.start_bank = 0, .distance = 0}}, plan};
  mem.run(10);
  const auto stats = mem.all_stats();
  EXPECT_EQ(stats.at(0).grants, 0);
  EXPECT_EQ(stats.at(0).fault_conflicts, 10);
  EXPECT_EQ(stats.at(0).bank_conflicts, 0);
  EXPECT_FALSE(mem.bank_online(0));
  EXPECT_EQ(mem.surviving_banks(), 3);
}

TEST(FaultModel, RemapSpareRoutesAroundDeadBank) {
  // Under remap_spare the d=1 stream re-addresses over the m'=3
  // survivors and keeps granting every cycle — no fault conflicts.
  FaultPlan plan;
  plan.policy = FaultPolicy::remap_spare;
  plan.events = {boff(0, 2)};
  std::vector<i64> banks;
  MemorySystem mem{flat(4, 1), {StreamConfig{.start_bank = 0, .distance = 1, .length = 9}},
                   plan};
  static_cast<void>(mem.add_event_hook([&banks](const Event& e) {
    if (e.type == Event::Type::grant) banks.push_back(e.bank);
  }));
  mem.run(20);
  // Survivors ascending = {0, 1, 3}; slot k = (0 + k) mod 3.
  EXPECT_EQ(banks, (std::vector<i64>{0, 1, 3, 0, 1, 3, 0, 1, 3}));
  EXPECT_EQ(mem.all_stats().at(0).fault_conflicts, 0);
}

TEST(FaultModel, SlowBankStretchesItsServiceTime) {
  // d=0 hammers bank 0; nc=2 gives a grant every 2nd cycle, but after
  // slow@8 sets nc=4 the cadence drops to every 4th cycle.
  FaultPlan plan;
  plan.events = {
      FaultEvent{.kind = FaultEvent::Kind::bank_slow, .cycle = 8, .bank = 0, .value = 4}};
  MemorySystem mem{flat(4, 2), {StreamConfig{.start_bank = 0, .distance = 0}}, plan};
  mem.run(8);
  const i64 before = mem.all_stats().at(0).grants;
  EXPECT_EQ(before, 4);  // one grant per nc=2
  mem.run(16);
  EXPECT_EQ(mem.all_stats().at(0).grants, before + 4);  // one per nc=4 now
}

TEST(FaultModel, TransientStallWindowBlocksExactly) {
  // bstall@5 for 3 cycles: grants at t=0..4 and t>=8, faults at t=5..7.
  FaultPlan plan;
  plan.events = {
      FaultEvent{.kind = FaultEvent::Kind::bank_stall, .cycle = 5, .bank = 0, .value = 3}};
  MemorySystem mem{flat(4, 1), {StreamConfig{.start_bank = 0, .distance = 0}}, plan};
  mem.run(12);
  const auto stats = mem.all_stats();
  EXPECT_EQ(stats.at(0).fault_conflicts, 3);
  EXPECT_EQ(stats.at(0).grants, 9);
}

TEST(FaultModel, PathOutageBlocksOnlyTheAffectedCpu) {
  // Two CPUs on disjoint banks; CPU 0 loses its path to section 0 (bank
  // 0 at s=m) while CPU 1 is untouched.
  FaultPlan plan;
  plan.events = {
      FaultEvent{.kind = FaultEvent::Kind::path_offline, .cycle = 0, .cpu = 0, .section = 0},
      FaultEvent{.kind = FaultEvent::Kind::path_online, .cycle = 6, .cpu = 0, .section = 0}};
  MemorySystem mem{flat(4, 1),
                   {StreamConfig{.start_bank = 0, .distance = 0, .cpu = 0},
                    StreamConfig{.start_bank = 1, .distance = 0, .cpu = 1}},
                   plan};
  mem.run(10);
  const auto stats = mem.all_stats();
  EXPECT_EQ(stats.at(0).fault_conflicts, 6);
  EXPECT_EQ(stats.at(0).grants, 4);
  EXPECT_EQ(stats.at(1).fault_conflicts, 0);
  EXPECT_EQ(stats.at(1).grants, 10);
}

TEST(FaultModel, FaultEventsReachHooksWithKindFault) {
  FaultPlan plan;
  plan.events = {boff(0, 0)};
  MemorySystem mem{flat(4, 1), {StreamConfig{.start_bank = 0, .distance = 0}}, plan};
  i64 fault_events = 0;
  static_cast<void>(mem.add_event_hook([&fault_events](const Event& e) {
    if (e.type == Event::Type::conflict && e.conflict == ConflictKind::fault) ++fault_events;
  }));
  mem.run(5);
  EXPECT_EQ(fault_events, 5);
}

TEST(FaultModel, ConstructorValidatesPlanAgainstConfig) {
  FaultPlan plan;
  plan.events = {boff(0, 99)};
  try {
    MemorySystem mem{flat(4, 1), {StreamConfig{.distance = 1}}, plan};
    FAIL() << "expected vpmem::Error";
  } catch (const vpmem::Error& e) {
    EXPECT_EQ(e.code(), vpmem::ErrorCode::fault_plan_invalid);
  }
}

TEST(FaultModel, AllBanksOfflineGrantsNothing) {
  const MemoryConfig cfg = flat(4, 1);
  for (const FaultPolicy policy : {FaultPolicy::stall, FaultPolicy::remap_spare}) {
    FaultPlan plan;
    plan.policy = policy;
    for (i64 b = 0; b < cfg.banks; ++b) plan.events.push_back(boff(0, b));
    MemorySystem mem{cfg, {StreamConfig{.start_bank = 0, .distance = 1}}, plan};
    mem.run(8);
    EXPECT_EQ(mem.all_stats().at(0).grants, 0) << to_string(policy);
    EXPECT_EQ(mem.surviving_banks(), 0) << to_string(policy);
  }
}

}  // namespace
}  // namespace vpmem::sim
