// Tests for the bounded chunked event store behind tracing v2.
#include "vpmem/sim/event_buffer.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "vpmem/sim/memory_system.hpp"

namespace vpmem::sim {
namespace {

Event make_event(i64 cycle, Event::Type type, std::size_t port, i64 bank,
                 ConflictKind kind = ConflictKind::bank, std::size_t blocker = 0) {
  Event e;
  e.type = type;
  e.cycle = cycle;
  e.port = port;
  e.bank = bank;
  e.element = cycle * 7 + bank;
  e.conflict = kind;
  e.blocker = blocker;
  return e;
}

TEST(PackedEvent, RoundTripsEveryKind) {
  for (const ConflictKind kind :
       {ConflictKind::bank, ConflictKind::simultaneous, ConflictKind::section}) {
    for (const Event::Type type : {Event::Type::grant, Event::Type::conflict}) {
      const Event in = make_event(123456789, type, 11, 4095, kind, 7);
      EventBuffer buf;
      buf.push(in);
      const Event out = buf.events().front();
      EXPECT_EQ(out.type, in.type);
      EXPECT_EQ(out.cycle, in.cycle);
      EXPECT_EQ(out.port, in.port);
      EXPECT_EQ(out.bank, in.bank);
      EXPECT_EQ(out.element, in.element);
      EXPECT_EQ(out.blocker, in.blocker);
      if (type == Event::Type::conflict) {
        EXPECT_EQ(out.conflict, in.conflict);
      }
    }
  }
}

TEST(EventBuffer, CapacityRoundsUpToWholeChunks) {
  EventBuffer buf{1};
  EXPECT_EQ(buf.capacity(), EventBuffer::kChunkEvents);
  EventBuffer two{EventBuffer::kChunkEvents + 1};
  EXPECT_EQ(two.capacity(), 2 * EventBuffer::kChunkEvents);
  EventBuffer dflt{0};
  EXPECT_EQ(dflt.capacity(), EventBuffer::kDefaultCapacity);
}

TEST(EventBuffer, EvictsOldestChunkAndCountsDrops) {
  EventBuffer buf{EventBuffer::kChunkEvents};  // one-chunk ring
  const auto n = static_cast<i64>(EventBuffer::kChunkEvents);
  for (i64 c = 0; c < n + 5; ++c) {
    buf.push(make_event(c, Event::Type::grant, 0, c % 7));
  }
  EXPECT_EQ(buf.recorded(), n + 5);
  EXPECT_EQ(buf.dropped(), n);  // the full first chunk went away at once
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.first_cycle(), n);  // retained window starts after the evicted chunk
  i64 seen = 0;
  i64 prev = -1;
  buf.for_each([&](const Event& e) {
    EXPECT_GT(e.cycle, prev);
    prev = e.cycle;
    ++seen;
  });
  EXPECT_EQ(seen, 5);
}

TEST(EventBuffer, RejectsOutOfRangeFields) {
  EventBuffer buf;
  Event wide = make_event(0, Event::Type::grant, 0, 0);
  wide.port = std::numeric_limits<std::uint16_t>::max() + 1u;
  EXPECT_THROW(buf.push(wide), std::invalid_argument);
  wide = make_event(0, Event::Type::grant, 0, 0);
  wide.blocker = std::numeric_limits<std::uint16_t>::max() + 1u;
  EXPECT_THROW(buf.push(wide), std::invalid_argument);
  wide = make_event(0, Event::Type::grant, 0, 0);
  wide.bank = static_cast<i64>(std::numeric_limits<std::int32_t>::max()) + 1;
  EXPECT_THROW(buf.push(wide), std::invalid_argument);
}

TEST(EventBuffer, ClearResetsCounters) {
  EventBuffer buf;
  buf.push(make_event(0, Event::Type::grant, 0, 0));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.recorded(), 0);
  EXPECT_EQ(buf.dropped(), 0);
  EXPECT_EQ(buf.first_cycle(), 0);
}

TEST(EventRecorder, RecordsARunAndDetaches) {
  const MemoryConfig config{.banks = 8, .sections = 8, .bank_cycle = 3};
  MemorySystem mem{config, two_streams(0, 1, 0, 2)};
  EventRecorder rec{mem};
  mem.run(40, /*stop_when_finished=*/false);
  const i64 recorded = rec.buffer().recorded();
  EXPECT_GT(recorded, 0);
  // Every event of the run is in the buffer: grants + conflicts equal the
  // simulator's own counters.
  i64 expected = 0;
  for (const auto& s : mem.all_stats()) expected += s.grants + s.total_conflicts();
  EXPECT_EQ(recorded, expected);
  rec.detach();
  mem.run(10, /*stop_when_finished=*/false);
  EXPECT_EQ(rec.buffer().recorded(), recorded);
  EXPECT_EQ(mem.event_hook_count(), 0u);
}

TEST(EventRecorder, SharesOneBufferBetweenObservers) {
  const MemoryConfig config{.banks = 8, .sections = 8, .bank_cycle = 3};
  MemorySystem mem{config, two_streams(0, 1, 0, 2)};
  EventRecorder rec{mem};
  {
    // A second recorder on the same buffer would double-record; sharing
    // means handing the buffer to a *reader*, so only verify the pointer
    // identity contract here.
    const std::shared_ptr<EventBuffer> shared = rec.share();
    EXPECT_EQ(shared.get(), &rec.buffer());
  }
  mem.run(10, /*stop_when_finished=*/false);
  EXPECT_GT(rec.buffer().recorded(), 0);
}

}  // namespace
}  // namespace vpmem::sim
