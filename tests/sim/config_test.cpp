#include "vpmem/sim/config.hpp"

#include "vpmem/util/error.hpp"

#include <gtest/gtest.h>

namespace vpmem::sim {
namespace {

TEST(MemoryConfig, DefaultsValid) {
  MemoryConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(MemoryConfig, RejectsBadBankCounts) {
  MemoryConfig cfg;
  cfg.banks = 0;
  EXPECT_THROW(static_cast<void>(cfg.validate()), vpmem::Error);
  cfg.banks = -4;
  EXPECT_THROW(static_cast<void>(cfg.validate()), vpmem::Error);
}

TEST(MemoryConfig, RejectsSectionsNotDividingBanks) {
  MemoryConfig cfg{.banks = 12, .sections = 5};
  EXPECT_THROW(static_cast<void>(cfg.validate()), vpmem::Error);
  cfg.sections = 13;
  EXPECT_THROW(static_cast<void>(cfg.validate()), vpmem::Error);
  cfg.sections = 0;
  EXPECT_THROW(static_cast<void>(cfg.validate()), vpmem::Error);
  cfg.sections = 3;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(MemoryConfig, RejectsBadBankCycle) {
  MemoryConfig cfg;
  cfg.bank_cycle = 0;
  EXPECT_THROW(static_cast<void>(cfg.validate()), vpmem::Error);
}

TEST(MemoryConfig, ValidationErrorsCarryStableCode) {
  MemoryConfig cfg;
  cfg.banks = 0;
  try {
    cfg.validate();
    FAIL() << "expected vpmem::Error";
  } catch (const vpmem::Error& e) {
    EXPECT_EQ(e.code(), vpmem::ErrorCode::config_invalid);
    EXPECT_EQ(to_string(e.code()), "config_invalid");
  }
}

TEST(MemoryConfig, CyclicSectionMapping) {
  // The paper's k = j mod s.
  MemoryConfig cfg{.banks = 12, .sections = 3};
  EXPECT_EQ(cfg.section_of(0), 0);
  EXPECT_EQ(cfg.section_of(1), 1);
  EXPECT_EQ(cfg.section_of(2), 2);
  EXPECT_EQ(cfg.section_of(3), 0);
  EXPECT_EQ(cfg.section_of(11), 2);
}

TEST(MemoryConfig, ConsecutiveSectionMapping) {
  // Cheung & Smith: m/s consecutive banks per section (Fig. 9).
  MemoryConfig cfg{.banks = 12, .sections = 3, .mapping = SectionMapping::consecutive};
  EXPECT_EQ(cfg.section_of(0), 0);
  EXPECT_EQ(cfg.section_of(3), 0);
  EXPECT_EQ(cfg.section_of(4), 1);
  EXPECT_EQ(cfg.section_of(7), 1);
  EXPECT_EQ(cfg.section_of(8), 2);
  EXPECT_EQ(cfg.section_of(11), 2);
}

TEST(MemoryConfig, SectionOfRejectsOutOfRange) {
  MemoryConfig cfg{.banks = 12, .sections = 3};
  EXPECT_THROW(static_cast<void>(cfg.section_of(-1)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(cfg.section_of(12)), std::out_of_range);
}

TEST(StreamConfig, Validation) {
  MemoryConfig cfg{.banks = 8, .sections = 8};
  StreamConfig s;
  EXPECT_NO_THROW(s.validate(cfg));
  s.start_bank = 8;
  EXPECT_THROW(static_cast<void>(s.validate(cfg)), vpmem::Error);
  s.start_bank = -1;
  EXPECT_THROW(static_cast<void>(s.validate(cfg)), vpmem::Error);
  s.start_bank = 0;
  s.distance = -1;  // negative strides are legal (reduced mod m)
  EXPECT_NO_THROW(s.validate(cfg));
  s.distance = 1;
  s.length = -2;
  EXPECT_THROW(static_cast<void>(s.validate(cfg)), vpmem::Error);
  s.length = 10;
  s.start_cycle = -1;
  EXPECT_THROW(static_cast<void>(s.validate(cfg)), vpmem::Error);
  s.cpu = -1;
  EXPECT_THROW(static_cast<void>(s.validate(cfg)), vpmem::Error);
}

TEST(TwoStreams, CpuAssignment) {
  const auto other = two_streams(0, 1, 3, 7, /*same_cpu=*/false);
  ASSERT_EQ(other.size(), 2u);
  EXPECT_EQ(other[0].cpu, 0);
  EXPECT_EQ(other[1].cpu, 1);
  EXPECT_EQ(other[1].start_bank, 3);
  EXPECT_EQ(other[1].distance, 7);
  const auto same = two_streams(0, 1, 3, 7, /*same_cpu=*/true);
  EXPECT_EQ(same[1].cpu, 0);
}

TEST(Enums, ToString) {
  EXPECT_EQ(to_string(SectionMapping::cyclic), "cyclic");
  EXPECT_EQ(to_string(SectionMapping::consecutive), "consecutive");
  EXPECT_EQ(to_string(PriorityRule::fixed), "fixed");
  EXPECT_EQ(to_string(PriorityRule::cyclic), "cyclic");
}

}  // namespace
}  // namespace vpmem::sim
