// Periodic bank-pattern streams (the engine generalization that enables
// skewed storage, diagonals and synthetic random traffic).
#include <gtest/gtest.h>

#include "vpmem/sim/memory_system.hpp"
#include "vpmem/util/error.hpp"
#include "vpmem/sim/steady_state.hpp"

namespace vpmem::sim {
namespace {

MemoryConfig flat(i64 m, i64 nc) { return MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}; }

TEST(PatternStream, FollowsExplicitSequence) {
  StreamConfig s;
  s.bank_pattern = {3, 1, 4, 1, 5};
  s.length = 7;  // wraps around the period
  MemorySystem mem{flat(8, 1), {s}};
  std::vector<i64> banks;
  mem.add_event_hook([&](const Event& e) {
    if (e.type == Event::Type::grant) banks.push_back(e.bank);
  });
  mem.run(100);
  EXPECT_EQ(banks, (std::vector<i64>{3, 1, 4, 1, 5, 3, 1}));
}

TEST(PatternStream, ValidatesEntries) {
  StreamConfig s;
  s.bank_pattern = {0, 8};
  EXPECT_THROW(MemorySystem(flat(8, 2), {s}), vpmem::Error);
  s.bank_pattern = {-1};
  EXPECT_THROW(MemorySystem(flat(8, 2), {s}), vpmem::Error);
}

TEST(PatternStream, EquivalentToAffineStreamWhenPatternIsAffine) {
  // A pattern spelling out (b + k*d) mod m must behave identically to the
  // affine stream, including its exact steady state.
  const i64 m = 12;
  const i64 d = 5;
  StreamConfig affine;
  affine.start_bank = 2;
  affine.distance = d;
  StreamConfig pattern;
  for (i64 k = 0; k < 12; ++k) pattern.bank_pattern.push_back(mod_norm(2 + k * d, m));
  const auto a = find_steady_state(flat(m, 4), {affine});
  const auto b = find_steady_state(flat(m, 4), {pattern});
  EXPECT_EQ(a.bandwidth, b.bandwidth);
  EXPECT_EQ(a.period, b.period);
}

TEST(PatternStream, SelfConflictFromRepeatedBank) {
  StreamConfig s;
  s.bank_pattern = {0, 0};  // consecutive hits on one bank
  const auto ss = find_steady_state(flat(8, 3), {s});
  EXPECT_EQ(ss.bandwidth, (Rational{1, 3}));  // every access waits out nc
}

TEST(PatternStream, SteadyStateWithMixedStreams) {
  // One affine stream plus one pattern stream reach an exact cycle.
  StreamConfig affine;
  affine.distance = 1;
  StreamConfig pattern;
  pattern.cpu = 1;
  pattern.bank_pattern = {0, 2, 4, 6};
  const auto ss = find_steady_state(flat(8, 2), {affine, pattern});
  EXPECT_GT(ss.bandwidth, Rational{1});
  EXPECT_LE(ss.bandwidth, Rational{2});
  EXPECT_EQ(ss.per_port.size(), 2u);
}

TEST(PatternStream, NextBankReportsPatternTarget) {
  StreamConfig s;
  s.bank_pattern = {5, 2};
  MemorySystem mem{flat(8, 1), {s}};
  EXPECT_EQ(mem.next_bank(0), std::optional<i64>{5});
  mem.step();
  EXPECT_EQ(mem.next_bank(0), std::optional<i64>{2});
}

}  // namespace
}  // namespace vpmem::sim
