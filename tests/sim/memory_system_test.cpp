#include "vpmem/sim/memory_system.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vpmem::sim {
namespace {

MemoryConfig flat(i64 m, i64 nc) { return MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}; }

TEST(MemorySystem, EmptyConstructionAllowsLaterInjection) {
  MemorySystem mem{flat(8, 2), {}};
  EXPECT_TRUE(mem.finished());
  mem.step();  // clock advances even with no ports
  EXPECT_EQ(mem.now(), 1);
  mem.add_stream(StreamConfig{.start_bank = 0, .distance = 1, .length = 2, .start_cycle = 1});
  mem.run(100);
  EXPECT_EQ(mem.port_stats(0).grants, 2);
}

TEST(MemorySystem, SingleStreamStridesThroughBanks) {
  MemorySystem mem{flat(8, 2), {StreamConfig{.start_bank = 3, .distance = 2, .length = 6}}};
  std::vector<i64> banks;
  mem.add_event_hook([&](const Event& e) {
    if (e.type == Event::Type::grant) banks.push_back(e.bank);
  });
  mem.run(100);
  EXPECT_TRUE(mem.finished());
  EXPECT_EQ(banks, (std::vector<i64>{3, 5, 7, 1, 3, 5}));
}

TEST(MemorySystem, GrantsOnePerCycleWhenConflictFree) {
  // r = 8 >= nc = 4: no self conflict, one grant per clock period.
  MemorySystem mem{flat(8, 4), {StreamConfig{.start_bank = 0, .distance = 1, .length = 20}}};
  mem.run(1000);
  const PortStats& st = mem.port_stats(0);
  EXPECT_EQ(st.grants, 20);
  EXPECT_EQ(st.first_grant_cycle, 0);
  EXPECT_EQ(st.last_grant_cycle, 19);
  EXPECT_EQ(st.total_conflicts(), 0);
}

TEST(MemorySystem, SelfBankConflictDelaysAtStartBank) {
  // m = 4, d = 2 -> r = 2 < nc = 4: returns to the start bank too early.
  MemorySystem mem{flat(4, 4), {StreamConfig{.start_bank = 0, .distance = 2, .length = 4}}};
  std::vector<Event> conflicts;
  mem.add_event_hook([&](const Event& e) {
    if (e.type == Event::Type::conflict) conflicts.push_back(e);
  });
  mem.run(1000);
  EXPECT_TRUE(mem.finished());
  ASSERT_FALSE(conflicts.empty());
  for (const auto& c : conflicts) {
    EXPECT_EQ(c.conflict, ConflictKind::bank);
    // Section III-A: the conflict always occurs at the start bank.
    EXPECT_EQ(c.bank, 0);
  }
  // Elements visit banks 0,2,0,2: only the return to bank 0 (element 2)
  // is early, by nc - r = 2 periods; the final return to bank 2 arrives
  // exactly as it frees.
  EXPECT_EQ(mem.port_stats(0).bank_conflicts, 2);
}

TEST(MemorySystem, BankBusyCountsDown) {
  MemorySystem mem{flat(8, 3), {StreamConfig{.start_bank = 2, .distance = 1, .length = 1}}};
  EXPECT_EQ(mem.bank_busy(2), 0);
  mem.step();
  EXPECT_EQ(mem.bank_busy(2), 2);  // granted at t=0, busy until t=3; now()==1
  mem.step();
  EXPECT_EQ(mem.bank_busy(2), 1);
  mem.step();
  EXPECT_EQ(mem.bank_busy(2), 0);
  EXPECT_THROW(static_cast<void>(mem.bank_busy(8)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(mem.bank_busy(-1)), std::out_of_range);
}

TEST(MemorySystem, SimultaneousBankConflictAcrossCpus) {
  // Two ports on different CPUs request the same inactive bank in the same
  // period; fixed priority: port 0 wins, port 1 records a simultaneous
  // bank conflict.
  MemorySystem mem{flat(8, 2), two_streams(0, 1, 0, 1, /*same_cpu=*/false)};
  std::vector<Event> events;
  mem.add_event_hook([&](const Event& e) { events.push_back(e); });
  mem.step();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, Event::Type::grant);
  EXPECT_EQ(events[0].port, 0u);
  EXPECT_EQ(events[1].type, Event::Type::conflict);
  EXPECT_EQ(events[1].port, 1u);
  EXPECT_EQ(events[1].conflict, ConflictKind::simultaneous);
  EXPECT_EQ(events[1].blocker, 0u);
}

TEST(MemorySystem, SameBankSameCpuIsSectionConflict) {
  // Within one CPU the two ports share the access path: classified as a
  // section conflict (the paper's Fig. 1 discussion).
  MemorySystem mem{flat(8, 2), two_streams(0, 1, 0, 1, /*same_cpu=*/true)};
  mem.step();
  EXPECT_EQ(mem.port_stats(1).section_conflicts, 1);
  EXPECT_EQ(mem.port_stats(1).simultaneous_conflicts, 0);
}

TEST(MemorySystem, SectionConflictOnSharedPath) {
  // s = 2 < m = 8: banks 0 and 2 share section 0.  Two ports of one CPU
  // request them in the same period -> section conflict for the loser.
  MemoryConfig cfg{.banks = 8, .sections = 2, .bank_cycle = 2};
  MemorySystem mem{cfg, two_streams(0, 1, 2, 1, /*same_cpu=*/true)};
  mem.step();
  EXPECT_EQ(mem.port_stats(0).grants, 1);
  EXPECT_EQ(mem.port_stats(1).grants, 0);
  EXPECT_EQ(mem.port_stats(1).section_conflicts, 1);
}

TEST(MemorySystem, DifferentCpusDoNotShareAccessPaths) {
  // Same banks, but ports on different CPUs have their own paths into the
  // section: both proceed.
  MemoryConfig cfg{.banks = 8, .sections = 2, .bank_cycle = 2};
  MemorySystem mem{cfg, two_streams(0, 1, 2, 1, /*same_cpu=*/false)};
  mem.step();
  EXPECT_EQ(mem.port_stats(0).grants, 1);
  EXPECT_EQ(mem.port_stats(1).grants, 1);
}

TEST(MemorySystem, BankConflictAgainstActiveBank) {
  // Port 1 starts one period later and requests the bank port 0 holds.
  MemoryConfig cfg = flat(8, 4);
  std::vector<StreamConfig> streams{
      StreamConfig{.start_bank = 0, .distance = 1, .cpu = 0, .length = 1},
      StreamConfig{.start_bank = 0, .distance = 1, .cpu = 1, .length = 1, .start_cycle = 1}};
  MemorySystem mem{cfg, streams};
  mem.run(100);
  EXPECT_EQ(mem.port_stats(1).bank_conflicts, 3);  // waits t=1,2,3; granted t=4
  EXPECT_EQ(mem.port_stats(1).first_grant_cycle, 4);
}

TEST(MemorySystem, DelayedPortRetainsElementOrder) {
  // Dynamic conflict resolution: a delayed request delays all subsequent
  // requests of that port; elements are still transferred in order.
  MemoryConfig cfg = flat(4, 4);
  MemorySystem mem{cfg, {StreamConfig{.start_bank = 0, .distance = 2, .length = 8}}};
  std::vector<i64> elements;
  mem.add_event_hook([&](const Event& e) {
    if (e.type == Event::Type::grant) elements.push_back(e.element);
  });
  mem.run(1000);
  for (std::size_t i = 0; i < elements.size(); ++i) {
    EXPECT_EQ(elements[i], static_cast<i64>(i));
  }
}

TEST(MemorySystem, StartCycleDefersFirstRequest) {
  MemorySystem mem{flat(8, 2),
                   {StreamConfig{.start_bank = 0, .distance = 1, .length = 2, .start_cycle = 5}}};
  mem.run(100);
  EXPECT_EQ(mem.port_stats(0).first_grant_cycle, 5);
}

TEST(MemorySystem, AddStreamMidRun) {
  MemorySystem mem{flat(8, 2), {StreamConfig{.start_bank = 0, .distance = 1, .length = 4}}};
  mem.run(2, /*stop_when_finished=*/false);
  const std::size_t port = mem.add_stream(
      StreamConfig{.start_bank = 4, .distance = 1, .cpu = 1, .length = 3, .start_cycle = 2});
  EXPECT_EQ(port, 1u);
  mem.run(100);
  EXPECT_TRUE(mem.finished());
  EXPECT_EQ(mem.port_stats(1).grants, 3);
  EXPECT_EQ(mem.port_stats(1).first_grant_cycle, 2);
}

TEST(MemorySystem, AddStreamRejectsPastStart) {
  MemorySystem mem{flat(8, 2), {StreamConfig{.length = 1}}};
  mem.run(3, /*stop_when_finished=*/false);
  EXPECT_THROW(static_cast<void>(
      mem.add_stream(StreamConfig{.start_bank = 1, .length = 1, .start_cycle = 1})),
      std::invalid_argument);
}

TEST(MemorySystem, CyclicPriorityRotates) {
  // Both ports on different CPUs contend for bank 0 forever (d = 0,
  // nc = 1 so the bank is always free again).  Fixed priority starves
  // port 1; cyclic priority alternates.
  MemoryConfig cfg = flat(8, 1);
  auto streams = two_streams(0, 0, 0, 0, /*same_cpu=*/false);
  {
    MemorySystem mem{cfg, streams};
    mem.run(10, false);
    EXPECT_EQ(mem.port_stats(0).grants, 10);
    EXPECT_EQ(mem.port_stats(1).grants, 0);
  }
  {
    cfg.priority = PriorityRule::cyclic;
    MemorySystem mem{cfg, streams};
    mem.run(10, false);
    EXPECT_EQ(mem.port_stats(0).grants, 5);
    EXPECT_EQ(mem.port_stats(1).grants, 5);
  }
}

TEST(MemorySystem, NextBankAndElementsDone) {
  MemorySystem mem{flat(8, 2), {StreamConfig{.start_bank = 1, .distance = 3, .length = 3}}};
  EXPECT_EQ(mem.next_bank(0), std::optional<i64>{1});
  mem.step();
  EXPECT_EQ(mem.elements_done(0), 1);
  EXPECT_EQ(mem.next_bank(0), std::optional<i64>{4});
  mem.run(100);
  EXPECT_EQ(mem.next_bank(0), std::nullopt);
  EXPECT_TRUE(mem.port_done(0));
}

TEST(MemorySystem, StateKeyRepeatsWithCyclicBehaviour) {
  // A single conflict-free infinite stream has period r = m once past the
  // cold start (the t = 0 state has no residually busy banks, so it never
  // recurs).
  MemorySystem mem{flat(8, 2), {StreamConfig{.start_bank = 0, .distance = 1}}};
  const auto cold = mem.state_key();
  for (int i = 0; i < 8; ++i) mem.step();
  const auto warm = mem.state_key();
  EXPECT_NE(warm, cold);
  for (int i = 0; i < 8; ++i) mem.step();
  EXPECT_EQ(mem.state_key(), warm);
  mem.step();
  EXPECT_NE(mem.state_key(), warm);
}

TEST(MemorySystem, DistanceLargerThanBanksWrap) {
  // distance is taken mod m for bank addressing.
  MemorySystem mem{flat(8, 2), {StreamConfig{.start_bank = 0, .distance = 9, .length = 3}}};
  std::vector<i64> banks;
  mem.add_event_hook([&](const Event& e) {
    if (e.type == Event::Type::grant) banks.push_back(e.bank);
  });
  mem.run(100);
  EXPECT_EQ(banks, (std::vector<i64>{0, 1, 2}));
}

TEST(MemorySystem, BankGrantStatistics) {
  // Stream over banks 0,2,0,2 on m=4.
  MemorySystem mem{flat(4, 1), {StreamConfig{.start_bank = 0, .distance = 2, .length = 4}}};
  mem.run(100);
  EXPECT_EQ(mem.bank_grants(0), 2);
  EXPECT_EQ(mem.bank_grants(2), 2);
  EXPECT_EQ(mem.bank_grants(1), 0);
  EXPECT_EQ(mem.hottest_bank(), 0);  // tie between 0 and 2: lowest wins
  EXPECT_THROW(static_cast<void>(mem.bank_grants(4)), std::out_of_range);
}

TEST(MemorySystem, BankUtilizationBounds) {
  // A saturating schedule: 4 nc-spaced stride-1 streams on m=16, nc=4
  // keep every bank busy every period -> utilization -> 1.
  std::vector<StreamConfig> streams;
  for (i64 p = 0; p < 4; ++p) {
    StreamConfig s;
    s.start_bank = p * 4;
    s.distance = 1;
    s.cpu = p;
    streams.push_back(s);
  }
  MemorySystem mem{flat(16, 4), streams};
  EXPECT_DOUBLE_EQ(mem.bank_utilization(), 0.0);  // before the first step
  mem.run(160, false);
  EXPECT_GT(mem.bank_utilization(), 0.95);
  EXPECT_LE(mem.bank_utilization(), 1.0);
  // A lone self-conflicting stream (d=0): only one bank ever active,
  // utilization ~ 1/m.
  MemorySystem lone{flat(16, 4), {StreamConfig{.distance = 0}}};
  lone.run(160, false);
  EXPECT_NEAR(lone.bank_utilization(), 1.0 / 16.0, 0.01);
}

TEST(MemorySystem, ZeroLengthStreamIsImmediatelyDone) {
  MemorySystem mem{flat(8, 2), {StreamConfig{.start_bank = 0, .distance = 1, .length = 0}}};
  EXPECT_TRUE(mem.finished());
  EXPECT_EQ(mem.run(10), 0);
}

}  // namespace
}  // namespace vpmem::sim
