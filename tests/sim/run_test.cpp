#include "vpmem/sim/run.hpp"

#include <gtest/gtest.h>

#include "vpmem/sim/fault.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/util/error.hpp"

namespace vpmem::sim {
namespace {

MemoryConfig flat(i64 m, i64 nc) { return MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}; }

TEST(RunToCompletion, RejectsInfiniteStreams) {
  try {
    static_cast<void>(run_to_completion(flat(8, 2), {StreamConfig{.distance = 1}}));
    FAIL() << "expected vpmem::Error";
  } catch (const vpmem::Error& e) {
    EXPECT_EQ(e.code(), vpmem::ErrorCode::config_invalid);
  }
}

TEST(RunToCompletion, SingleStreamTakesExactlyLengthCycles) {
  const RunResult r = run_to_completion(
      flat(8, 4), {StreamConfig{.start_bank = 0, .distance = 1, .length = 64}});
  EXPECT_EQ(r.cycles, 64);
  EXPECT_EQ(r.total_grants(), 64);
  EXPECT_DOUBLE_EQ(r.bandwidth(), 1.0);
  EXPECT_EQ(r.conflicts.total(), 0);
}

TEST(RunToCompletion, SelfConflictingStreamIsSlower) {
  // m=8, d=4, nc=4: r=2 < nc -> b_eff = 1/2 in steady state.
  const RunResult r = run_to_completion(
      flat(8, 4), {StreamConfig{.start_bank = 0, .distance = 4, .length = 64}});
  EXPECT_GT(r.cycles, 120);  // ~2 cycles per element
  EXPECT_EQ(r.total_grants(), 64);
  EXPECT_GT(r.conflicts.bank, 0);
}

TEST(RunToCompletion, TwoDisjointStreamsFullBandwidth) {
  // Theorem 2: m=8, d1=d2=2, b1=0, b2=1 -> disjoint sets, b_eff = 2.
  auto streams = two_streams(0, 2, 1, 2);
  streams[0].length = 32;
  streams[1].length = 32;
  const RunResult r = run_to_completion(flat(8, 4), streams);
  EXPECT_EQ(r.cycles, 32);
  EXPECT_EQ(r.total_grants(), 64);
  EXPECT_EQ(r.conflicts.total(), 0);
}

TEST(RunToCompletion, GuardThrowsDeadlineExceeded) {
  try {
    static_cast<void>(run_to_completion(
        flat(8, 4), {StreamConfig{.start_bank = 0, .distance = 1, .length = 100}},
        /*max_cycles=*/10));
    FAIL() << "expected vpmem::Error";
  } catch (const vpmem::Error& e) {
    EXPECT_EQ(e.code(), vpmem::ErrorCode::deadline_exceeded);
  }
}

TEST(MeasureBandwidth, ValidatesArguments) {
  EXPECT_THROW(
      static_cast<void>(measure_bandwidth(flat(8, 2), {StreamConfig{.distance = 1}}, -1, 10)),
      vpmem::Error);
  EXPECT_THROW(
      static_cast<void>(measure_bandwidth(flat(8, 2), {StreamConfig{.distance = 1}}, 0, 0)),
      vpmem::Error);
  try {
    static_cast<void>(measure_bandwidth(flat(8, 2), {StreamConfig{.distance = 1}}, 0, 0));
    FAIL() << "expected vpmem::Error";
  } catch (const vpmem::Error& e) {
    EXPECT_EQ(e.code(), vpmem::ErrorCode::config_invalid);
  }
}

TEST(MeasureBandwidth, ConflictFreeSingleStreamIsOne) {
  const double bw = measure_bandwidth(flat(8, 2), {StreamConfig{.distance = 1}}, 100, 1000);
  EXPECT_DOUBLE_EQ(bw, 1.0);
}

TEST(RunResult, EmptyBandwidthIsZero) {
  RunResult r;
  EXPECT_DOUBLE_EQ(r.bandwidth(), 0.0);
}

// ---- guarded driver -------------------------------------------------------

TEST(RunGuarded, CompletesLikeRunToCompletion) {
  const std::vector<StreamConfig> streams{
      StreamConfig{.start_bank = 0, .distance = 4, .length = 64}};
  const RunResult plain = run_to_completion(flat(8, 4), streams);
  const GuardedRun guarded = run_guarded(flat(8, 4), streams);
  EXPECT_TRUE(guarded.ok());
  EXPECT_EQ(guarded.status, RunStatus::completed);
  EXPECT_EQ(guarded.result.cycles, plain.cycles);
  EXPECT_EQ(guarded.result.total_grants(), plain.total_grants());
  EXPECT_EQ(guarded.result.conflicts.bank, plain.conflicts.bank);
  EXPECT_EQ(guarded.last_grant_cycle, plain.cycles - 1);
}

TEST(RunGuarded, DeadlineReturnsPartialResultInsteadOfThrowing) {
  const Watchdog dog{.max_cycles = 10};
  const GuardedRun run = run_guarded(
      flat(8, 4), {StreamConfig{.start_bank = 0, .distance = 1, .length = 100}}, {}, dog);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status, RunStatus::deadline_exceeded);
  EXPECT_EQ(run.result.cycles, 10);
  EXPECT_EQ(run.result.total_grants(), 10);  // partial progress is reported
  EXPECT_FALSE(run.detail.empty());
}

TEST(RunGuarded, PermanentBankOutageUnderStallIsLivelock) {
  // The stream parks on the dead bank forever; no grant can ever happen
  // again, so the watchdog must flag livelock within its documented
  // window (factor * nc * m cycles past the last grant).
  FaultPlan plan;
  plan.policy = FaultPolicy::stall;
  plan.events.push_back(FaultEvent{.kind = FaultEvent::Kind::bank_offline, .cycle = 4, .bank = 4});
  const MemoryConfig cfg = flat(8, 2);
  const Watchdog dog{.max_cycles = 100'000, .livelock_factor = 4};
  const GuardedRun run =
      run_guarded(cfg, {StreamConfig{.start_bank = 0, .distance = 1, .length = 64}}, plan, dog);
  EXPECT_EQ(run.status, RunStatus::livelock);
  EXPECT_EQ(run.last_grant_cycle, 3);  // banks 0..3 granted, then stuck on bank 4
  // Detected within the documented bound, well before the cycle budget.
  EXPECT_LE(run.result.cycles, run.last_grant_cycle + 1 + dog.livelock_window(cfg) + 1);
  EXPECT_FALSE(run.detail.empty());
}

TEST(RunGuarded, RejectsInfiniteStreams) {
  try {
    static_cast<void>(run_guarded(flat(8, 2), {StreamConfig{.distance = 1}}));
    FAIL() << "expected vpmem::Error";
  } catch (const vpmem::Error& e) {
    EXPECT_EQ(e.code(), vpmem::ErrorCode::config_invalid);
  }
}

TEST(RunGuardedOn, DelayedStartDoesNotTriggerLivelock) {
  // A stream that starts late must not be mistaken for a livelock even
  // though no grant happens before its start cycle.
  const MemoryConfig cfg = flat(4, 2);
  const i64 late = 4 * Watchdog{}.livelock_window(cfg);
  MemorySystem mem{cfg,
                   {StreamConfig{.start_bank = 0, .distance = 1, .length = 8, .start_cycle = late}}};
  const GuardedRun run = run_guarded_on(mem);
  EXPECT_EQ(run.status, RunStatus::completed);
  EXPECT_EQ(run.result.total_grants(), 8);
}

TEST(MeasureBandwidthGuarded, MatchesPlainMeasurementWhenHealthy) {
  const std::vector<StreamConfig> streams{StreamConfig{.distance = 3}};
  const double plain = measure_bandwidth(flat(8, 2), streams, 64, 512);
  const BandwidthMeasurement guarded = measure_bandwidth_guarded(flat(8, 2), streams, 64, 512);
  EXPECT_TRUE(guarded.ok());
  EXPECT_EQ(guarded.cycles, 512);
  EXPECT_DOUBLE_EQ(guarded.bandwidth(), plain);
}

TEST(MeasureBandwidthGuarded, LivelockedWindowReportsZeroGrantsNotHang) {
  FaultPlan plan;
  plan.policy = FaultPolicy::stall;
  plan.events.push_back(FaultEvent{.kind = FaultEvent::Kind::bank_offline, .cycle = 0, .bank = 0});
  const BandwidthMeasurement bw =
      measure_bandwidth_guarded(flat(8, 2), {StreamConfig{.start_bank = 0, .distance = 0}},
                                /*warmup=*/16, /*window=*/1000, plan);
  EXPECT_FALSE(bw.ok());
  EXPECT_EQ(bw.status, RunStatus::livelock);
  EXPECT_EQ(bw.grants, 0);
  EXPECT_DOUBLE_EQ(bw.bandwidth(), 0.0);
}

TEST(MeasureBandwidthGuarded, ZeroCycleMeasurementHasZeroBandwidth) {
  // A run cut down before the window opens must divide by zero nowhere.
  FaultPlan plan;
  plan.policy = FaultPolicy::stall;
  plan.events.push_back(FaultEvent{.kind = FaultEvent::Kind::bank_offline, .cycle = 0, .bank = 0});
  const Watchdog dog{.max_cycles = 8, .livelock_factor = 0};  // factor 0 disables livelock check
  const BandwidthMeasurement bw = measure_bandwidth_guarded(
      flat(8, 2), {StreamConfig{.start_bank = 0, .distance = 0}}, /*warmup=*/64,
      /*window=*/1000, plan, dog);
  EXPECT_EQ(bw.status, RunStatus::deadline_exceeded);
  EXPECT_EQ(bw.cycles, 0);
  EXPECT_DOUBLE_EQ(bw.bandwidth(), 0.0);
}

TEST(RunStatus, ToString) {
  EXPECT_EQ(to_string(RunStatus::completed), "completed");
  EXPECT_EQ(to_string(RunStatus::deadline_exceeded), "deadline_exceeded");
  EXPECT_EQ(to_string(RunStatus::livelock), "livelock");
}

}  // namespace
}  // namespace vpmem::sim
