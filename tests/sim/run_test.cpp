#include "vpmem/sim/run.hpp"

#include <gtest/gtest.h>

namespace vpmem::sim {
namespace {

MemoryConfig flat(i64 m, i64 nc) { return MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}; }

TEST(RunToCompletion, RejectsInfiniteStreams) {
  EXPECT_THROW(static_cast<void>(run_to_completion(flat(8, 2), {StreamConfig{.distance = 1}})),
               std::invalid_argument);
}

TEST(RunToCompletion, SingleStreamTakesExactlyLengthCycles) {
  const RunResult r = run_to_completion(
      flat(8, 4), {StreamConfig{.start_bank = 0, .distance = 1, .length = 64}});
  EXPECT_EQ(r.cycles, 64);
  EXPECT_EQ(r.total_grants(), 64);
  EXPECT_DOUBLE_EQ(r.bandwidth(), 1.0);
  EXPECT_EQ(r.conflicts.total(), 0);
}

TEST(RunToCompletion, SelfConflictingStreamIsSlower) {
  // m=8, d=4, nc=4: r=2 < nc -> b_eff = 1/2 in steady state.
  const RunResult r = run_to_completion(
      flat(8, 4), {StreamConfig{.start_bank = 0, .distance = 4, .length = 64}});
  EXPECT_GT(r.cycles, 120);  // ~2 cycles per element
  EXPECT_EQ(r.total_grants(), 64);
  EXPECT_GT(r.conflicts.bank, 0);
}

TEST(RunToCompletion, TwoDisjointStreamsFullBandwidth) {
  // Theorem 2: m=8, d1=d2=2, b1=0, b2=1 -> disjoint sets, b_eff = 2.
  auto streams = two_streams(0, 2, 1, 2);
  streams[0].length = 32;
  streams[1].length = 32;
  const RunResult r = run_to_completion(flat(8, 4), streams);
  EXPECT_EQ(r.cycles, 32);
  EXPECT_EQ(r.total_grants(), 64);
  EXPECT_EQ(r.conflicts.total(), 0);
}

TEST(RunToCompletion, GuardThrows) {
  EXPECT_THROW(static_cast<void>(run_to_completion(flat(8, 4),
                                 {StreamConfig{.start_bank = 0, .distance = 1, .length = 100}},
                                 /*max_cycles=*/10)),
               std::runtime_error);
}

TEST(MeasureBandwidth, ValidatesArguments) {
  EXPECT_THROW(static_cast<void>(measure_bandwidth(flat(8, 2), {StreamConfig{.distance = 1}}, -1, 10)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(measure_bandwidth(flat(8, 2), {StreamConfig{.distance = 1}}, 0, 0)), std::invalid_argument);
}

TEST(MeasureBandwidth, ConflictFreeSingleStreamIsOne) {
  const double bw = measure_bandwidth(flat(8, 2), {StreamConfig{.distance = 1}}, 100, 1000);
  EXPECT_DOUBLE_EQ(bw, 1.0);
}

TEST(RunResult, EmptyBandwidthIsZero) {
  RunResult r;
  EXPECT_DOUBLE_EQ(r.bandwidth(), 0.0);
}

}  // namespace
}  // namespace vpmem::sim
