#include "vpmem/sim/steady_state.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "vpmem/analytic/stream.hpp"
#include "vpmem/sim/run.hpp"

namespace vpmem::sim {
namespace {

MemoryConfig flat(i64 m, i64 nc) { return MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}; }

TEST(SteadyState, RejectsFiniteStreams) {
  EXPECT_THROW(static_cast<void>(
      find_steady_state(flat(8, 2), {StreamConfig{.start_bank = 0, .distance = 1, .length = 5}})),
      std::invalid_argument);
}

TEST(SteadyState, SingleConflictFreeStream) {
  const SteadyState ss = find_steady_state(flat(8, 4), {StreamConfig{.distance = 1}});
  EXPECT_EQ(ss.bandwidth, Rational{1});
  EXPECT_TRUE(ss.conflict_free());
  EXPECT_EQ(ss.per_port.size(), 1u);
  EXPECT_EQ(ss.per_port[0], Rational{1});
}

TEST(SteadyState, SingleSelfConflictingStream) {
  // m = 8, d = 4 -> r = 2, nc = 5 -> b_eff = 2/5.
  const SteadyState ss = find_steady_state(flat(8, 5), {StreamConfig{.distance = 4}});
  EXPECT_EQ(ss.bandwidth, (Rational{2, 5}));
  EXPECT_FALSE(ss.conflict_free());
  EXPECT_GT(ss.conflicts_in_period.bank, 0);
}

TEST(SteadyState, PeriodOfConflictFreePairDividesLcmStructure) {
  // Fig. 2: m=12, nc=3, d1=1, d2=7, conflict-free.
  const SteadyState ss = find_steady_state(flat(12, 3), two_streams(0, 1, 3, 7));
  EXPECT_EQ(ss.bandwidth, Rational{2});
  EXPECT_TRUE(ss.conflict_free());
  EXPECT_EQ(ss.grants_in_period[0], ss.period);
  EXPECT_EQ(ss.grants_in_period[1], ss.period);
}

TEST(SteadyState, BarrierBandwidthFig3) {
  // Fig. 3: m=13, nc=6, d1=1, d2=6, b2=0 -> b_eff = 1 + 1/6.
  const SteadyState ss = find_steady_state(flat(13, 6), two_streams(0, 1, 0, 6));
  EXPECT_EQ(ss.bandwidth, (Rational{7, 6}));
  EXPECT_EQ(ss.per_port[0], Rational{1});     // barrier stream runs freely
  EXPECT_EQ(ss.per_port[1], (Rational{1, 6}));  // delayed stream
}

TEST(SteadyState, TransientBeforeCycleIsReported) {
  // Streams that synchronize first have a non-trivial transient.
  const SteadyState ss = find_steady_state(flat(12, 3), two_streams(0, 1, 0, 7));
  EXPECT_EQ(ss.bandwidth, Rational{2});  // synchronization (Theorem 3)
  EXPECT_GE(ss.transient_cycles, 0);
  EXPECT_GT(ss.period, 0);
}

TEST(SteadyState, MatchesWindowedMeasurement) {
  for (auto [d1, d2] : {std::pair<i64, i64>{1, 6}, {1, 7}, {2, 5}, {3, 3}}) {
    const MemoryConfig cfg = flat(12, 3);
    const auto streams = two_streams(0, d1, 5, d2);
    const SteadyState ss = find_steady_state(cfg, streams);
    const double measured = measure_bandwidth(cfg, streams, 2'000, 24'000);
    EXPECT_NEAR(ss.bandwidth.to_double(), measured, 0.01) << d1 << "," << d2;
  }
}

TEST(SteadyState, GuardTriggersOnTinyBudget) {
  EXPECT_THROW(static_cast<void>(find_steady_state(flat(12, 3), two_streams(0, 1, 0, 7), 2)), std::runtime_error);
}

TEST(OffsetSweep, SynchronizedPairIsOffsetIndependent) {
  // Theorem 3 + synchronization: every offset reaches b_eff = 2.
  const OffsetSweep sweep = sweep_start_offsets(flat(12, 3), 1, 7);
  EXPECT_EQ(sweep.min_bandwidth, Rational{2});
  EXPECT_EQ(sweep.max_bandwidth, Rational{2});
  EXPECT_EQ(sweep.by_offset.size(), 12u);
}

TEST(OffsetSweep, StartDependentPairHasSpread) {
  // m=13, nc=6, d1=1, d2=6: Fig. 3 (barrier, 7/6) vs Fig. 4 (double
  // conflict) depending on b2.
  const OffsetSweep sweep = sweep_start_offsets(flat(13, 6), 1, 6);
  EXPECT_LT(sweep.min_bandwidth, sweep.max_bandwidth);
  EXPECT_EQ(sweep.by_offset[0], (Rational{7, 6}));
}

// ---- Parameterized: single-stream steady state equals the Section III-A
// formula for every (m, nc, d).
using SingleParams = std::tuple<i64, i64>;  // m, nc

class SingleStreamSweep : public ::testing::TestWithParam<SingleParams> {};

TEST_P(SingleStreamSweep, MatchesAnalyticFormula) {
  const auto [m, nc] = GetParam();
  for (i64 d = 0; d < m; ++d) {
    for (i64 b : {i64{0}, m / 2}) {
      const SteadyState ss = find_steady_state(
          flat(m, nc), {StreamConfig{.start_bank = b, .distance = d}});
      EXPECT_EQ(ss.bandwidth, analytic::single_stream_bandwidth(m, d, nc))
          << "m=" << m << " nc=" << nc << " d=" << d << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SingleStreamSweep,
                         ::testing::Values(SingleParams{4, 2}, SingleParams{8, 4},
                                           SingleParams{12, 3}, SingleParams{13, 6},
                                           SingleParams{16, 4}, SingleParams{16, 7},
                                           SingleParams{32, 4}, SingleParams{24, 5}));

}  // namespace
}  // namespace vpmem::sim
