#include "vpmem/core/bandwidth.hpp"

#include <gtest/gtest.h>

namespace vpmem::core {
namespace {

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

TEST(AnalyzeSingle, PredictionMatchesSimulationAcrossDistances) {
  const auto cfg = flat(16, 4);
  for (i64 d = 0; d < 16; ++d) {
    const SingleStreamReport r = analyze_single(cfg, d);
    EXPECT_TRUE(r.consistent()) << "d=" << d << ": " << r.predicted.str() << " vs "
                                << r.simulated.str();
    EXPECT_EQ(r.m, 16);
    EXPECT_EQ(r.nc, 4);
  }
}

TEST(AnalyzeSingle, ReportsReturnNumber) {
  const SingleStreamReport r = analyze_single(flat(16, 4), 6);
  EXPECT_EQ(r.return_number, 8);
  EXPECT_EQ(r.predicted, Rational{1});
}

TEST(AnalyzePair, ConflictFreePair) {
  const PairReport r = analyze_pair(flat(12, 3), 1, 7);
  EXPECT_EQ(r.prediction.cls, analytic::PairClass::conflict_free_synchronized);
  EXPECT_EQ(r.sim_min, Rational{2});
  EXPECT_EQ(r.sim_max, Rational{2});
  EXPECT_EQ(r.by_offset.size(), 12u);
}

TEST(AnalyzePair, StartDependentPairShowsSpread) {
  const PairReport r = analyze_pair(flat(13, 6), 1, 6);
  EXPECT_EQ(r.prediction.cls, analytic::PairClass::start_dependent);
  EXPECT_LT(r.sim_min, r.sim_max);
}

TEST(AnalyzePair, SummaryMentionsClassAndRange) {
  const PairReport r = analyze_pair(flat(12, 3), 1, 7);
  const std::string s = r.summary();
  EXPECT_NE(s.find("conflict-free"), std::string::npos);
  EXPECT_NE(s.find("m=12"), std::string::npos);
  EXPECT_NE(s.find("[2, 2]"), std::string::npos);
}

TEST(AnalyzePair, SameCpuUsesSectionRegime) {
  // With s < m and both ports on one CPU, same-distance streams collide on
  // paths; with separate CPUs they do not.
  sim::MemoryConfig cfg{.banks = 12, .sections = 2, .bank_cycle = 2};
  const PairReport same = analyze_pair(cfg, 1, 1, /*same_cpu=*/true);
  const PairReport cross = analyze_pair(cfg, 1, 1, /*same_cpu=*/false);
  EXPECT_GE(cross.sim_min, same.sim_min);
  EXPECT_EQ(cross.sim_max, Rational{2});
}

}  // namespace
}  // namespace vpmem::core
