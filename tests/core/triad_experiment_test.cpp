#include "vpmem/core/triad_experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vpmem::core {
namespace {

TriadExperiment small_experiment() {
  TriadExperiment exp;
  exp.setup.n = 128;
  exp.inc_min = 1;
  exp.inc_max = 4;
  return exp;
}

TEST(TriadExperiment, ProducesOneRowPerInc) {
  const auto rows = run_triad_experiment(small_experiment(), 2);
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].inc, static_cast<i64>(i) + 1);
    EXPECT_GT(rows[i].cycles_dedicated, 0);
    EXPECT_GE(rows[i].cycles_contended, rows[i].cycles_dedicated);
    EXPECT_GE(rows[i].interference_factor(), 1.0);
  }
}

TEST(TriadExperiment, ParallelAndSequentialAgree) {
  const auto seq = run_triad_experiment(small_experiment(), 1);
  const auto par = run_triad_experiment(small_experiment(), 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].cycles_contended, par[i].cycles_contended);
    EXPECT_EQ(seq[i].cycles_dedicated, par[i].cycles_dedicated);
    EXPECT_EQ(seq[i].conflicts_contended.total(), par[i].conflicts_contended.total());
  }
}

TEST(TriadExperiment, RejectsBadRange) {
  TriadExperiment exp = small_experiment();
  exp.inc_min = 0;
  EXPECT_THROW(static_cast<void>(run_triad_experiment(exp)), std::invalid_argument);
  exp.inc_min = 5;
  exp.inc_max = 4;
  EXPECT_THROW(static_cast<void>(run_triad_experiment(exp)), std::invalid_argument);
}

TEST(TriadExperiment, TableHasExpectedColumns) {
  const auto rows = run_triad_experiment(small_experiment(), 2);
  const Table table = triad_table(rows);
  EXPECT_EQ(table.rows(), rows.size());
  std::ostringstream os;
  table.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("INC"), std::string::npos);
  EXPECT_NE(s.find("cycles(a)"), std::string::npos);
  EXPECT_NE(s.find("slowdown"), std::string::npos);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("INC,cycles(a)"), std::string::npos);
}

TEST(TriadRow, InterferenceFactorHandlesZero) {
  TriadRow row;
  EXPECT_DOUBLE_EQ(row.interference_factor(), 0.0);
}

}  // namespace
}  // namespace vpmem::core
