#include "vpmem/core/group.hpp"

#include <gtest/gtest.h>

namespace vpmem::core {
namespace {

sim::MemoryConfig flat(i64 m, i64 nc) {
  return sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc};
}

TEST(UniformStreams, Construction) {
  const auto streams = uniform_streams(4, 1, 3, 16);
  ASSERT_EQ(streams.size(), 4u);
  EXPECT_EQ(streams[2].start_bank, 6);
  EXPECT_EQ(streams[2].cpu, 2);
  const auto same = uniform_streams(3, 2, 5, 16, /*same_cpu=*/true);
  for (const auto& s : same) EXPECT_EQ(s.cpu, 0);
  EXPECT_THROW(static_cast<void>(uniform_streams(0, 1, 1, 16)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(uniform_streams(2, 1, 1, 0)), std::invalid_argument);
}

TEST(AnalyzeGroup, FourStaggeredStrideOneStreamsAreConflictFree) {
  // p*nc = 16 = m: with nc-spaced starts the schedule packs perfectly.
  const GroupReport r =
      analyze_group(flat(16, 4), uniform_streams(4, 1, /*stagger=*/4, 16));
  EXPECT_EQ(r.bandwidth, Rational{4});
  EXPECT_EQ(r.conflicts_in_period.total(), 0);
  EXPECT_DOUBLE_EQ(r.utilization(16, 4), 1.0);
}

TEST(AnalyzeGroup, SaturationBeyondServiceBound) {
  // The paper's Section IV remark: 6 ports on 16 banks with nc = 4 cannot
  // all stream (6*4 = 24 > 16): b_eff <= m/nc = 4.
  const GroupReport r =
      analyze_group(flat(16, 4), uniform_streams(6, 1, /*stagger=*/3, 16));
  EXPECT_LE(r.bandwidth, Rational{4});
  EXPECT_GT(r.conflicts_in_period.total(), 0);
}

TEST(AnalyzeGroup, ServiceSlotBoundHoldsForAnyStagger) {
  for (i64 stagger = 0; stagger < 8; ++stagger) {
    const GroupReport r = analyze_group(flat(8, 2), uniform_streams(6, 1, stagger, 8));
    EXPECT_LE(r.bandwidth, Rational{4}) << "stagger=" << stagger;  // m/nc
  }
}

TEST(AnalyzeGroup, PerPortSumsToTotal) {
  const GroupReport r = analyze_group(flat(16, 4), uniform_streams(5, 3, 2, 16));
  Rational sum{0};
  for (const auto& bw : r.per_port) sum += bw;
  EXPECT_EQ(sum, r.bandwidth);
}

TEST(AnalyzeGroup, UtilizationValidation) {
  GroupReport r;
  EXPECT_THROW(static_cast<void>(r.utilization(0, 1)), std::invalid_argument);
}

}  // namespace
}  // namespace vpmem::core
