#include "vpmem/core/advisor.hpp"

#include <gtest/gtest.h>

namespace vpmem::core {
namespace {

sim::MemoryConfig xmp_like() {
  return sim::MemoryConfig{.banks = 16, .sections = 16, .bank_cycle = 4};
}

TEST(Advisor, FlagsSelfConflictingAccess) {
  // Walking a row of a 64-column array: distance 64 mod 16 = 0, r = 1.
  const AdvisorReport report =
      advise(xmp_like(), {PlannedAccess{.name = "A(i,:)", .dims = {64, 64}, .dim_index = 1}});
  ASSERT_EQ(report.accesses.size(), 1u);
  EXPECT_TRUE(report.accesses[0].self_conflicting);
  EXPECT_EQ(report.accesses[0].distance, 0);
  EXPECT_EQ(report.accesses[0].self_bandwidth, (Rational{1, 4}));
  // The conclusion's advice: pad the leading dimension to 65.
  bool mentions_pad = false;
  for (const auto& r : report.recommendations) {
    if (r.find("65") != std::string::npos) mentions_pad = true;
  }
  EXPECT_TRUE(mentions_pad);
}

TEST(Advisor, CleanAccessHasNoWarnings) {
  const AdvisorReport report =
      advise(xmp_like(), {PlannedAccess{.name = "A(:)", .dims = {1024}, .dim_index = 0}});
  EXPECT_FALSE(report.accesses[0].self_conflicting);
  ASSERT_EQ(report.recommendations.size(), 1u);
  EXPECT_NE(report.recommendations[0].find("No self-conflicts"), std::string::npos);
}

TEST(Advisor, PairwiseClassification) {
  const AdvisorReport report = advise(
      xmp_like(), {PlannedAccess{.name = "X", .dims = {1024}, .dim_index = 0, .inc = 1},
                   PlannedAccess{.name = "Y", .dims = {1024}, .dim_index = 0, .inc = 2},
                   PlannedAccess{.name = "Z", .dims = {1024}, .dim_index = 0, .inc = 3}});
  EXPECT_EQ(report.pairs.size(), 3u);  // XY, XZ, YZ
  EXPECT_EQ(report.pairs[0].first, "X");
  EXPECT_EQ(report.pairs[0].second, "Y");
}

TEST(Advisor, BarrierPairTriggersRecommendation) {
  // m=26, nc=3: distances 1 and 3 form a unique barrier (Theorem 6).
  sim::MemoryConfig cfg{.banks = 26, .sections = 26, .bank_cycle = 3};
  const AdvisorReport report =
      advise(cfg, {PlannedAccess{.name = "U", .dims = {100}, .dim_index = 0, .inc = 1},
                   PlannedAccess{.name = "V", .dims = {100}, .dim_index = 0, .inc = 3}});
  bool barrier_flagged = false;
  for (const auto& r : report.recommendations) {
    if (r.find("barrier") != std::string::npos) barrier_flagged = true;
  }
  EXPECT_TRUE(barrier_flagged);
}

TEST(Advisor, ReportRendering) {
  const AdvisorReport report =
      advise(xmp_like(), {PlannedAccess{.name = "A", .dims = {64}, .dim_index = 0, .inc = 8}});
  const std::string s = report.str();
  EXPECT_NE(s.find("Accesses:"), std::string::npos);
  EXPECT_NE(s.find("Recommendations:"), std::string::npos);
  EXPECT_NE(s.find("SELF-CONFLICTING"), std::string::npos);
}

TEST(Advisor, EmptyInput) {
  const AdvisorReport report = advise(xmp_like(), {});
  EXPECT_TRUE(report.accesses.empty());
  EXPECT_TRUE(report.pairs.empty());
}

}  // namespace
}  // namespace vpmem::core
