#include "vpmem/core/diagnose.hpp"

#include <gtest/gtest.h>

namespace vpmem::core {
namespace {

TEST(Diagnose, ConflictFreeFig2) {
  const Diagnosis d = diagnose({.banks = 12, .sections = 12, .bank_cycle = 3},
                               sim::two_streams(0, 1, 3, 7));
  EXPECT_EQ(d.regime, RunRegime::conflict_free);
  EXPECT_EQ(d.bandwidth, Rational{2});
}

TEST(Diagnose, BarrierIsBankLimited) {
  const Diagnosis d = diagnose({.banks = 13, .sections = 13, .bank_cycle = 6},
                               sim::two_streams(0, 1, 0, 6));
  EXPECT_EQ(d.regime, RunRegime::bank_limited);
  EXPECT_EQ(d.bandwidth, (Rational{7, 6}));
}

TEST(Diagnose, DetectsFig8LinkedConflict) {
  const Diagnosis d = diagnose({.banks = 12, .sections = 3, .bank_cycle = 3},
                               sim::two_streams(0, 1, 1, 1, /*same_cpu=*/true));
  EXPECT_EQ(d.regime, RunRegime::linked_conflict);
  EXPECT_EQ(d.bandwidth, (Rational{3, 2}));
  EXPECT_GT(d.conflicts_in_period.bank, 0);
  EXPECT_GT(d.conflicts_in_period.section, 0);
}

TEST(Diagnose, CyclicPriorityRemovesLinkedConflict) {
  const Diagnosis d = diagnose({.banks = 12,
                                .sections = 3,
                                .bank_cycle = 3,
                                .priority = sim::PriorityRule::cyclic},
                               sim::two_streams(0, 1, 1, 1, /*same_cpu=*/true));
  EXPECT_EQ(d.regime, RunRegime::conflict_free);
}

TEST(Diagnose, SectionLimited) {
  // Two same-CPU streams pinned to one section: pure path contention.
  sim::StreamConfig a;
  a.bank_pattern = {0};
  sim::StreamConfig b;
  b.bank_pattern = {2};
  const Diagnosis d = diagnose({.banks = 4, .sections = 2, .bank_cycle = 1}, {a, b});
  EXPECT_EQ(d.regime, RunRegime::section_limited);
  EXPECT_EQ(d.bandwidth, Rational{1});  // one path grant per period
}

TEST(Diagnose, CrossCpuLimited) {
  // Two CPUs fighting over one bank with nc = 1: pure simultaneous
  // conflicts under fixed priority.
  sim::StreamConfig a;
  a.bank_pattern = {0};
  sim::StreamConfig b;
  b.cpu = 1;
  b.bank_pattern = {0};
  const Diagnosis d = diagnose({.banks = 4, .sections = 4, .bank_cycle = 1}, {a, b});
  EXPECT_EQ(d.regime, RunRegime::cross_cpu_limited);
}

TEST(Diagnose, SummaryMentionsRegimeAndBandwidth) {
  const Diagnosis d = diagnose({.banks = 12, .sections = 3, .bank_cycle = 3},
                               sim::two_streams(0, 1, 1, 1, true));
  const std::string s = d.summary();
  EXPECT_NE(s.find("linked-conflict"), std::string::npos);
  EXPECT_NE(s.find("3/2"), std::string::npos);
}

TEST(SweepRegimes, Fig8WorkloadOffsetMap) {
  // The Fig. 8 workload: which offsets fall into the linked conflict?
  const RegimeSweep sweep = sweep_regimes({.banks = 12, .sections = 3, .bank_cycle = 3}, 1, 1,
                                          /*same_cpu=*/true);
  ASSERT_EQ(sweep.by_offset.size(), 12u);
  const auto linked = sweep.offsets_with(RunRegime::linked_conflict);
  EXPECT_EQ(linked, (std::vector<i64>{1, 2, 3}));
  // Every other offset is conflict-free.
  EXPECT_EQ(sweep.offsets_with(RunRegime::conflict_free).size(), 9u);
}

TEST(SweepRegimes, ConflictFreePairEverywhere) {
  const RegimeSweep sweep = sweep_regimes({.banks = 12, .sections = 12, .bank_cycle = 3}, 1, 7);
  EXPECT_EQ(sweep.offsets_with(RunRegime::conflict_free).size(), 12u);
}

TEST(Diagnose, ToStringAllRegimes) {
  EXPECT_EQ(to_string(RunRegime::conflict_free), "conflict-free");
  EXPECT_EQ(to_string(RunRegime::bank_limited), "bank-limited");
  EXPECT_EQ(to_string(RunRegime::section_limited), "section-limited");
  EXPECT_EQ(to_string(RunRegime::linked_conflict), "linked-conflict");
  EXPECT_EQ(to_string(RunRegime::cross_cpu_limited), "cross-cpu-limited");
}

}  // namespace
}  // namespace vpmem::core
