#include "vpmem/core/layout.hpp"

#include <gtest/gtest.h>

namespace vpmem::core {
namespace {

sim::MemoryConfig xmp_like() {
  return sim::MemoryConfig{.banks = 16, .sections = 16, .bank_cycle = 4};
}

TEST(SweepArraySpacing, CoversEveryResidue) {
  const SpacingReport r = sweep_array_spacing(xmp_like(), 1, 4);
  ASSERT_EQ(r.by_spacing.size(), 16u);
  for (std::size_t s = 0; s < r.by_spacing.size(); ++s) {
    EXPECT_EQ(r.by_spacing[s].spacing, static_cast<i64>(s));
  }
  EXPECT_GE(r.best_bandwidth, r.worst_bandwidth);
}

TEST(SweepArraySpacing, FourStrideOneStreamsReachServiceBound) {
  // 4 streams * nc = 16 = m: some spacing must pack perfectly (spacing nc
  // does), and b_eff can never exceed m/nc = 4.
  const SpacingReport r = sweep_array_spacing(xmp_like(), 1, 4);
  EXPECT_EQ(r.best_bandwidth, Rational{4});
  EXPECT_EQ(r.by_spacing[4].bandwidth, Rational{4});  // nc-spaced
  for (const auto& c : r.by_spacing) EXPECT_LE(c.bandwidth, Rational{4});
}

TEST(SweepArraySpacing, ZeroSpacingIsNeverBetterThanBest) {
  // All arrays starting in one bank cannot beat a staggered layout.
  for (i64 d : {1, 2, 3}) {
    const SpacingReport r = sweep_array_spacing(xmp_like(), d, 3);
    EXPECT_LE(r.by_spacing[0].bandwidth, r.best_bandwidth) << "d=" << d;
  }
}

TEST(SweepArraySpacing, Validation) {
  EXPECT_THROW(static_cast<void>(sweep_array_spacing(xmp_like(), 1, 0)),
               std::invalid_argument);
}

TEST(RecommendIdim, ResidueAndMinimality) {
  const sim::MemoryConfig cfg = xmp_like();
  const SpacingReport r = sweep_array_spacing(cfg, 1, 4);
  const i64 idim = recommend_idim(cfg, 1, 4, 16 * 1024);
  EXPECT_GE(idim, 16 * 1024);
  EXPECT_LT(idim, 16 * 1024 + 16);
  EXPECT_EQ(mod_norm(idim, 16), r.best_spacing);
}

TEST(SweepArraySpacing, StrideOneSelfOrganizesFromAnySpacing) {
  // Dynamic conflict resolution lets infinite stride-1 streams settle into
  // the packed schedule regardless of relative placement — spacing only
  // matters during the (finite) transient, which the fig10 ablation bench
  // measures with real strip-mined kernels.
  const SpacingReport r = sweep_array_spacing(xmp_like(), 1, 4);
  EXPECT_EQ(r.worst_bandwidth, Rational{4});
}

TEST(RecommendIdim, SpacingMattersForRestrictedAccessSets) {
  // Stride 2 visits only one parity class; aliasing all four arrays onto
  // one class caps b_eff at (m/2)/nc = 2, while odd spacings split the
  // streams across both classes and reach 4.
  const SpacingReport r = sweep_array_spacing(xmp_like(), 2, 4);
  EXPECT_EQ(r.by_spacing[0].bandwidth, Rational{2});
  EXPECT_EQ(r.by_spacing[1].bandwidth, Rational{4});
  EXPECT_EQ(r.best_bandwidth, Rational{4});
  EXPECT_EQ(mod_norm(r.best_spacing, 2), 1);
}

TEST(RecommendIdim, Validation) {
  EXPECT_THROW(static_cast<void>(recommend_idim(xmp_like(), 1, 4, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace vpmem::core
