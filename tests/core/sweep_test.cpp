#include "vpmem/core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace vpmem::core {
namespace {

TEST(DefaultWorkers, AtLeastOne) {
  EXPECT_GE(default_workers(), 1u);
  EXPECT_EQ(default_workers(1), 1u);
  EXPECT_LE(default_workers(4), 4u);
}

TEST(ParallelIndexMap, PreservesOrder) {
  const auto out = parallel_index_map<std::size_t>(
      100, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelIndexMap, EmptyInput) {
  const auto out = parallel_index_map<int>(0, [](std::size_t) { return 1; }, 4);
  EXPECT_TRUE(out.empty());
}

TEST(ParallelIndexMap, SingleWorkerSequential) {
  const auto out = parallel_index_map<int>(
      10, [](std::size_t i) { return static_cast<int>(i); }, 1);
  EXPECT_EQ(out[9], 9);
}

TEST(ParallelIndexMap, EveryIndexVisitedExactlyOnce) {
  std::atomic<int> calls{0};
  parallel_index_map<int>(
      1000,
      [&](std::size_t) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return 0;
      },
      8);
  EXPECT_EQ(calls.load(), 1000);
}

TEST(ParallelIndexMap, PropagatesExceptions) {
  EXPECT_THROW(static_cast<void>(parallel_index_map<int>(
                   50,
                   [](std::size_t i) -> int {
                     if (i == 25) throw std::runtime_error{"boom"};
                     return 0;
                   },
                   4)),
               std::runtime_error);
}

TEST(ParallelIndexMap, RejectsNullFunction) {
  std::function<int(std::size_t)> empty;
  EXPECT_THROW(static_cast<void>(parallel_index_map<int>(3, empty, 2)), std::invalid_argument);
}

TEST(ParallelMap, MapsVector) {
  const std::vector<int> in{1, 2, 3, 4};
  const auto out = parallel_map<int, int>(
      in, [](const int& v) { return v * 10; }, 2);
  EXPECT_EQ(out, (std::vector<int>{10, 20, 30, 40}));
}

}  // namespace
}  // namespace vpmem::core
