#include "vpmem/skew/scheme.hpp"

#include <gtest/gtest.h>

namespace vpmem::skew {
namespace {

const MatrixLayout kSquare{.rows = 8, .cols = 8, .lda = 8};

TEST(MatrixLayout, Validation) {
  EXPECT_NO_THROW(kSquare.validate());
  EXPECT_THROW((MatrixLayout{.rows = 0, .cols = 8, .lda = 8}.validate()),
               std::invalid_argument);
  EXPECT_THROW((MatrixLayout{.rows = 8, .cols = 8, .lda = 4}.validate()),
               std::invalid_argument);
}

TEST(StorageScheme, InterleavedBankOfIsColumnMajor) {
  const StorageScheme plain{};
  // bank = (i + j*lda) mod m.
  EXPECT_EQ(plain.bank_of(kSquare, 0, 0, 16), 0);
  EXPECT_EQ(plain.bank_of(kSquare, 3, 0, 16), 3);
  EXPECT_EQ(plain.bank_of(kSquare, 0, 1, 16), 8);
  EXPECT_EQ(plain.bank_of(kSquare, 1, 2, 16), 1);  // 17 mod 16
}

TEST(StorageScheme, SkewedRotatesColumns) {
  const StorageScheme skewed{.kind = SchemeKind::skewed, .skew = 3};
  EXPECT_EQ(skewed.bank_of(kSquare, 0, 0, 16), 0);
  EXPECT_EQ(skewed.bank_of(kSquare, 0, 1, 16), 3);
  EXPECT_EQ(skewed.bank_of(kSquare, 2, 5, 16), 1);  // 2 + 15 mod 16
}

TEST(StorageScheme, BankOfValidation) {
  const StorageScheme plain{};
  EXPECT_THROW(static_cast<void>(plain.bank_of(kSquare, 8, 0, 16)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(plain.bank_of(kSquare, 0, -1, 16)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(plain.bank_of(kSquare, 0, 0, 0)), std::invalid_argument);
}

TEST(PatternLength, PerPattern) {
  const MatrixLayout rect{.rows = 6, .cols = 9, .lda = 7};
  EXPECT_EQ(pattern_length(rect, Pattern::column), 6);
  EXPECT_EQ(pattern_length(rect, Pattern::row), 9);
  EXPECT_EQ(pattern_length(rect, Pattern::forward_diagonal), 6);
  EXPECT_EQ(pattern_length(rect, Pattern::backward_diagonal), 6);
}

TEST(BankSequence, MatchesBankOfElementwise) {
  const StorageScheme skewed{.kind = SchemeKind::skewed, .skew = 5};
  const i64 m = 16;
  const auto col = bank_sequence(skewed, kSquare, Pattern::column, m);
  ASSERT_EQ(col.size(), 8u);
  for (i64 k = 0; k < 8; ++k) {
    EXPECT_EQ(col[static_cast<std::size_t>(k)], skewed.bank_of(kSquare, k, 0, m));
  }
  const auto diag = bank_sequence(skewed, kSquare, Pattern::forward_diagonal, m);
  for (i64 k = 0; k < 8; ++k) {
    EXPECT_EQ(diag[static_cast<std::size_t>(k)], skewed.bank_of(kSquare, k, k, m));
  }
  const auto anti = bank_sequence(skewed, kSquare, Pattern::backward_diagonal, m);
  for (i64 k = 0; k < 8; ++k) {
    EXPECT_EQ(anti[static_cast<std::size_t>(k)], skewed.bank_of(kSquare, k, 7 - k, m));
  }
}

TEST(PatternDistance, MatchesConsecutiveSequenceSteps) {
  // Every pattern is an affine bank walk; the reported distance must equal
  // the (constant) consecutive difference of the explicit sequence.
  const i64 m = 16;
  for (SchemeKind kind : {SchemeKind::interleaved, SchemeKind::skewed}) {
    for (i64 delta : {1, 3, 5, 7}) {
      const StorageScheme scheme{.kind = kind, .skew = delta};
      for (Pattern pattern : {Pattern::column, Pattern::row, Pattern::forward_diagonal,
                              Pattern::backward_diagonal}) {
        const auto seq = bank_sequence(scheme, kSquare, pattern, m);
        const i64 d = pattern_distance(scheme, kSquare, pattern, m);
        for (std::size_t k = 1; k < seq.size(); ++k) {
          EXPECT_EQ(mod_norm(seq[k] - seq[k - 1], m), d)
              << to_string(kind) << " delta=" << delta << " " << to_string(pattern);
        }
      }
    }
  }
}

TEST(PatternDistance, KnownValues) {
  const StorageScheme plain{};
  EXPECT_EQ(pattern_distance(plain, kSquare, Pattern::column, 16), 1);
  EXPECT_EQ(pattern_distance(plain, kSquare, Pattern::row, 16), 8);           // lda
  EXPECT_EQ(pattern_distance(plain, kSquare, Pattern::forward_diagonal, 16), 9);
  EXPECT_EQ(pattern_distance(plain, kSquare, Pattern::backward_diagonal, 16), 9);  // 1-8 mod 16
  const StorageScheme skewed{.kind = SchemeKind::skewed, .skew = 5};
  EXPECT_EQ(pattern_distance(skewed, kSquare, Pattern::row, 16), 5);
  EXPECT_EQ(pattern_distance(skewed, kSquare, Pattern::forward_diagonal, 16), 6);
  EXPECT_EQ(pattern_distance(skewed, kSquare, Pattern::backward_diagonal, 16), 12);  // 1-5 mod 16
}

TEST(ToString, Names) {
  EXPECT_EQ(to_string(SchemeKind::interleaved), "interleaved");
  EXPECT_EQ(to_string(SchemeKind::skewed), "skewed");
  EXPECT_EQ(to_string(Pattern::forward_diagonal), "forward-diagonal");
}

}  // namespace
}  // namespace vpmem::skew
