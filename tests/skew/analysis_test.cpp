#include "vpmem/skew/analysis.hpp"

#include <gtest/gtest.h>

#include "vpmem/sim/memory_system.hpp"
#include "vpmem/sim/steady_state.hpp"

namespace vpmem::skew {
namespace {

const MatrixLayout kUnpadded{.rows = 64, .cols = 64, .lda = 64};

TEST(AnalyzeScheme, UnpaddedInterleavedRowIsWorstCase) {
  // lda = 64 on 16 banks: row distance 0, r = 1 -> b_eff = 1/nc.
  const auto reports = analyze_scheme(StorageScheme{}, kUnpadded, 16, 4);
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].pattern, Pattern::column);
  EXPECT_TRUE(reports[0].conflict_free);
  EXPECT_EQ(reports[1].pattern, Pattern::row);
  EXPECT_FALSE(reports[1].conflict_free);
  EXPECT_EQ(reports[1].bandwidth, (Rational{1, 4}));
  // Diagonals: distance 65 mod 16 = 1 and 1-64 mod 16 = 1... check values.
  EXPECT_EQ(reports[2].distance, 1);   // 65 mod 16
  EXPECT_EQ(reports[3].distance, 1);   // (1 - 64) mod 16 = -63 mod 16 = 1
}

TEST(AnalyzeScheme, GoodSkewFixesAllPatterns) {
  const auto delta = find_good_skew(16, 4);
  ASSERT_TRUE(delta.has_value());
  const StorageScheme skewed{.kind = SchemeKind::skewed, .skew = *delta};
  for (const auto& r : analyze_scheme(skewed, kUnpadded, 16, 4)) {
    EXPECT_TRUE(r.conflict_free) << to_string(r.pattern) << " d=" << r.distance;
    EXPECT_EQ(r.bandwidth, Rational{1});
  }
}

TEST(FindGoodSkew, PrimeBankCountIsEasy) {
  // m = 13, nc = 4: delta = 2 works (distances 1, 2, 3, 1 all coprime-ish,
  // r = 13 for every nonzero distance).
  EXPECT_EQ(find_good_skew(13, 4), std::optional<i64>{2});
  EXPECT_EQ(find_good_skew(17, 8), std::optional<i64>{2});
}

TEST(FindGoodSkew, PowerOfTwoNeedsEvenDelta) {
  // delta-1 and delta+1 cannot both be odd; with even delta the diagonals
  // are odd (full return number) and the row has r = m/gcd(m, delta).
  const auto delta = find_good_skew(16, 4);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(*delta % 2, 0);
  // nc above m/2: even delta gives row r <= m/2 < nc -> impossible.
  EXPECT_FALSE(find_good_skew(16, 12).has_value());
}

TEST(FindGoodSkew, Validation) {
  EXPECT_THROW(static_cast<void>(find_good_skew(0, 4)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(find_good_skew(16, 0)), std::invalid_argument);
}

TEST(PatternBandwidth, AgreesWithSimulatedBankSequence) {
  // End-to-end validation of the pattern plumbing: simulate the explicit
  // bank sequence as a periodic stream and compare the exact steady state
  // with the analytic stride bandwidth.
  const i64 m = 16;
  const i64 nc = 4;
  const MatrixLayout layout{.rows = 16, .cols = 16, .lda = 16};
  for (SchemeKind kind : {SchemeKind::interleaved, SchemeKind::skewed}) {
    for (i64 delta : {2, 3, 6}) {
      const StorageScheme scheme{.kind = kind, .skew = delta};
      for (Pattern pattern : all_patterns()) {
        sim::StreamConfig stream;
        stream.bank_pattern = bank_sequence(scheme, layout, pattern, m);
        const auto ss = sim::find_steady_state(
            sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}, {stream});
        EXPECT_EQ(ss.bandwidth, pattern_bandwidth(scheme, layout, pattern, m, nc))
            << to_string(kind) << " delta=" << delta << " " << to_string(pattern);
      }
    }
  }
}

TEST(PatternBandwidth, ConcurrentRowAndColumnUnderSkew) {
  // Two ports of different CPUs: a column (d=1) and a skewed row (d=delta)
  // are a stride pair; the pair theorems carry over to skewed storage.
  const i64 m = 13;
  const i64 nc = 4;
  const StorageScheme skewed{.kind = SchemeKind::skewed, .skew = 2};
  const MatrixLayout layout{.rows = 13, .cols = 13, .lda = 13};
  sim::StreamConfig col;
  col.bank_pattern = bank_sequence(skewed, layout, Pattern::column, m);
  sim::StreamConfig row;
  row.cpu = 1;
  row.bank_pattern = bank_sequence(skewed, layout, Pattern::row, m);
  const auto ss = sim::find_steady_state(
      sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}, {col, row});
  EXPECT_GT(ss.bandwidth, Rational{1});
  EXPECT_LE(ss.bandwidth, Rational{2});
}

}  // namespace
}  // namespace vpmem::skew
