// Rectangular matrices and padding interplay for the skew module.
#include <gtest/gtest.h>

#include "vpmem/skew/analysis.hpp"

namespace vpmem::skew {
namespace {

TEST(Rectangular, DiagonalLengthIsMinExtent) {
  const MatrixLayout tall{.rows = 12, .cols = 5, .lda = 12};
  EXPECT_EQ(pattern_length(tall, Pattern::forward_diagonal), 5);
  EXPECT_EQ(pattern_length(tall, Pattern::backward_diagonal), 5);
  const MatrixLayout wide{.rows = 5, .cols = 12, .lda = 6};
  EXPECT_EQ(pattern_length(wide, Pattern::forward_diagonal), 5);
}

TEST(Rectangular, BackwardDiagonalStaysInBounds) {
  // cols > rows: the anti-diagonal starts at column cols-1 and walks left.
  const MatrixLayout wide{.rows = 4, .cols = 9, .lda = 4};
  const StorageScheme plain{};
  const auto seq = bank_sequence(plain, wide, Pattern::backward_diagonal, 8);
  ASSERT_EQ(seq.size(), 4u);
  for (i64 k = 0; k < 4; ++k) {
    EXPECT_EQ(seq[static_cast<std::size_t>(k)], plain.bank_of(wide, k, 8 - k, 8));
  }
}

TEST(Rectangular, PaddedLdaChangesOnlyInterleavedPatterns) {
  // The skewed scheme ignores lda entirely (banks depend on (i, j) only),
  // so padding must not change its distances.
  const MatrixLayout unpadded{.rows = 8, .cols = 8, .lda = 8};
  const MatrixLayout padded{.rows = 8, .cols = 8, .lda = 9};
  const StorageScheme skewed{.kind = SchemeKind::skewed, .skew = 3};
  const StorageScheme plain{};
  for (Pattern pattern : all_patterns()) {
    EXPECT_EQ(pattern_distance(skewed, unpadded, pattern, 16),
              pattern_distance(skewed, padded, pattern, 16))
        << to_string(pattern);
  }
  EXPECT_NE(pattern_distance(plain, unpadded, Pattern::row, 16),
            pattern_distance(plain, padded, Pattern::row, 16));
}

TEST(Rectangular, AnalyzeSchemeOnTallMatrix) {
  const MatrixLayout tall{.rows = 48, .cols = 8, .lda = 48};
  const auto reports = analyze_scheme(StorageScheme{}, tall, 16, 4);
  // lda = 48: row distance 0 (48 mod 16), same pathology as square.
  EXPECT_EQ(reports[1].distance, 0);
  EXPECT_FALSE(reports[1].conflict_free);
}

}  // namespace
}  // namespace vpmem::skew
