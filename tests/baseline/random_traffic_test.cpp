#include "vpmem/baseline/random_traffic.hpp"

#include <gtest/gtest.h>

#include "vpmem/baseline/rng.hpp"

namespace vpmem::baseline {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a{42};
  SplitMix64 b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c{43};
  EXPECT_NE(SplitMix64{42}.next(), c.next());
}

TEST(SplitMix64, BoundedValuesInRange) {
  SplitMix64 rng{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(16), 16u);
}

TEST(RandomBankPattern, DeterministicAndInRange) {
  const auto a = random_bank_pattern(16, 256, 1);
  const auto b = random_bank_pattern(16, 256, 1);
  EXPECT_EQ(a, b);
  for (i64 bank : a) {
    EXPECT_GE(bank, 0);
    EXPECT_LT(bank, 16);
  }
  EXPECT_NE(a, random_bank_pattern(16, 256, 2));
}

TEST(RandomBankPattern, CoversAllBanks) {
  const auto pattern = random_bank_pattern(8, 512, 3);
  std::vector<bool> seen(8, false);
  for (i64 bank : pattern) seen[static_cast<std::size_t>(bank)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RandomBankPattern, Validation) {
  EXPECT_THROW(static_cast<void>(random_bank_pattern(0, 16, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(random_bank_pattern(8, 0, 1)), std::invalid_argument);
}

TEST(AcceptanceModel, ClosedForm) {
  EXPECT_DOUBLE_EQ(acceptance_model(16, 1), 1.0);
  // Two requests over m banks: 2 - 1/m expected distinct banks.
  EXPECT_NEAR(acceptance_model(16, 2), 2.0 - 1.0 / 16.0, 1e-12);
  // Saturates at m as p -> infinity (within double precision).
  EXPECT_LE(acceptance_model(16, 1000), 16.0);
  EXPECT_GT(acceptance_model(16, 1000), 15.99);
  EXPECT_LT(acceptance_model(16, 30), 16.0);
  EXPECT_THROW(static_cast<void>(acceptance_model(0, 1)), std::invalid_argument);
}

TEST(ServiceBound, MinOfPortsAndServiceSlots) {
  EXPECT_DOUBLE_EQ(service_bound(16, 4, 2), 2.0);
  EXPECT_DOUBLE_EQ(service_bound(16, 4, 6), 4.0);  // m/nc = 4 caps 6 ports
  EXPECT_DOUBLE_EQ(service_bound(16, 1, 32), 16.0);
  EXPECT_THROW(static_cast<void>(service_bound(0, 1, 1)), std::invalid_argument);
}

TEST(RandomTrafficBandwidth, SinglePortNcOne) {
  // nc = 1: a lone random port is never delayed.
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 1};
  EXPECT_DOUBLE_EQ(random_traffic_bandwidth(cfg, 1, 100, 2000), 1.0);
}

TEST(RandomTrafficBandwidth, SinglePortSlowsWithBankCycle) {
  // A lone random port hits its own recently-used banks with probability
  // ~ (nc-1)/m per request; bandwidth must drop below 1 but stay above
  // the all-same-bank floor 1/nc.
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  const double bw = random_traffic_bandwidth(cfg, 1, 500, 20000);
  EXPECT_LT(bw, 1.0);
  EXPECT_GT(bw, 0.25);
}

TEST(RandomTrafficBandwidth, DeterministicInSeed) {
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  EXPECT_DOUBLE_EQ(random_traffic_bandwidth(cfg, 4, 200, 5000, 9),
                   random_traffic_bandwidth(cfg, 4, 200, 5000, 9));
}

TEST(RandomTrafficBandwidth, MonotoneInPortsUpToSaturation) {
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  double prev = 0.0;
  for (i64 p : {1, 2, 4}) {
    const double bw = random_traffic_bandwidth(cfg, p, 500, 20000);
    EXPECT_GT(bw, prev) << p;
    EXPECT_LE(bw, service_bound(16, 4, p) + 1e-9) << p;
    prev = bw;
  }
}

TEST(RandomTrafficBandwidth, RandomLosesToConflictFreeVectorMode) {
  // The motivation of vector-mode analysis: structured streams beat
  // random traffic.  Two stride-1 streams at the Theorem 3 offset get
  // b_eff = 2; two random ports on the same machine get far less.
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  const double random_bw = random_traffic_bandwidth(cfg, 2, 500, 20000);
  EXPECT_LT(random_bw, 1.8);
}

TEST(RandomTrafficBandwidth, Validation) {
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  EXPECT_THROW(static_cast<void>(random_traffic_bandwidth(cfg, 0, 10, 10)),
               std::invalid_argument);
}

}  // namespace
}  // namespace vpmem::baseline
