#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass over the simulator tests.
#
#   tools/check.sh          # full check: plain build + ctest, then
#                           # ASan/UBSan, then TSan
#   tools/check.sh --fast   # plain build + ctest only
#   tools/check.sh --fuzz   # full check, then an extended differential
#                           # fuzz run (vpmem_cli fuzz, 20k cases) and a
#                           # fault-plan differential leg (5k cases)
#
# The sanitizer pass rebuilds into build-asan/ with -fsanitize=address,undefined
# (VPMEM_SANITIZE=ON) and reruns the sim + obs + check test binaries, which
# exercise the event-hook multiplexer, the Collector's raw-pointer hot path
# and the reference model's event-log scans.
#
# The TSan pass rebuilds into build-tsan/ with -fsanitize=thread
# (VPMEM_SANITIZE_THREAD=ON) and runs `ctest -LE fork`: everything except
# the two fork-labelled suites (the sandbox plumbing and the CLI campaign
# end-to-end tests — TSan's interceptors do not survive fork()).  The
# executor, worker pool, journal writer, sharded fuzzer, and metrics
# merging all get their race coverage here via the in-process suites.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
mode="${1:-}"

echo "== tier 1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== bench telemetry: perf_sim_engine -> BENCH_perf_sim_engine.json =="
# Run from the repo root so the vpmem.bench/1 document lands next to the
# committed copy; the gate below fails on an empty benchmarks array (the
# regression this guards against: a reporter change silently dropping rows).
./build/bench/perf_sim_engine >/dev/null
python3 - <<'EOF'
import json, sys
doc = json.load(open("BENCH_perf_sim_engine.json"))
if doc.get("schema") != "vpmem.bench/1":
    sys.exit(f"BENCH_perf_sim_engine.json: bad schema {doc.get('schema')!r}")
rows = doc.get("benchmarks", [])
if len(rows) < 3:
    sys.exit(f"BENCH_perf_sim_engine.json: only {len(rows)} benchmark entries (need >= 3)")
for row in rows:
    if not row.get("name") or "real_time" not in row:
        sys.exit(f"BENCH_perf_sim_engine.json: malformed entry {row!r}")
names = {row["name"].split("/")[0] for row in rows}
if "bm_step_traced" not in names:
    sys.exit("BENCH_perf_sim_engine.json: tracer-overhead rows (bm_step_traced) missing")
print(f"BENCH_perf_sim_engine.json: {len(rows)} entries ok")
EOF

if [[ "$mode" == "--fast" ]]; then
  echo "== done (fast mode: sanitizer pass skipped) =="
  exit 0
fi

echo "== sanitizer pass: ASan + UBSan on sim/obs/check tests =="
cmake -B build-asan -S . -DVPMEM_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$jobs" --target \
  sim_config_test sim_memory_system_test sim_steady_state_test sim_run_test \
  sim_pattern_test sim_event_buffer_test sim_fault_test sim_checkpoint_test \
  obs_metrics_test obs_collector_test \
  obs_report_test obs_timer_test obs_attribution_test obs_tracer_test \
  check_reference_model_test check_differential_fuzz_test check_replay_test \
  check_fault_plan_fuzz_test
ctest --test-dir build-asan --output-on-failure -j "$jobs" -R \
  '^(sim_|obs_|check_reference_model|check_differential_fuzz|check_replay|check_fault_plan_fuzz)'

echo "== sanitizer pass: TSan on everything but the fork-labelled suites =="
cmake -B build-tsan -S . -DVPMEM_SANITIZE_THREAD=ON >/dev/null
cmake --build build-tsan -j "$jobs"
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -LE fork

if [[ "$mode" == "--fuzz" ]]; then
  echo "== extended differential fuzz: 20k cases =="
  # A different seed than the ctest runs, so this pass explores new
  # configurations on every harness change; still deterministic.
  ./build/examples/vpmem_cli fuzz 20000 --seed 0x20250807
  echo "== fault-plan differential fuzz: 5k cases =="
  # Random timed fault plans (both degradation policies, all six event
  # kinds): simulator and reference model must agree event-for-event.
  ./build/examples/vpmem_cli fuzz 5000 --fault-plans --seed 0x20260807
fi

echo "== all checks passed =="
