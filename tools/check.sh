#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass over the simulator tests.
#
#   tools/check.sh          # full check: plain build + ctest, then ASan/UBSan
#   tools/check.sh --fast   # plain build + ctest only
#
# The sanitizer pass rebuilds into build-asan/ with -fsanitize=address,undefined
# (VPMEM_SANITIZE=ON) and reruns the sim + obs test binaries, which exercise
# the event-hook multiplexer and the Collector's raw-pointer hot path.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier 1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== done (fast mode: sanitizer pass skipped) =="
  exit 0
fi

echo "== sanitizer pass: ASan + UBSan on sim/obs tests =="
cmake -B build-asan -S . -DVPMEM_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$jobs" --target \
  sim_config_test sim_memory_system_test sim_steady_state_test sim_run_test \
  sim_pattern_test obs_metrics_test obs_collector_test obs_report_test obs_timer_test
ctest --test-dir build-asan --output-on-failure -j "$jobs" -R \
  '^(sim_|obs_)'

echo "== all checks passed =="
