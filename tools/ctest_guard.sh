#!/usr/bin/env bash
# Run one test suite under an inner `timeout` that fires *before* ctest's
# own TIMEOUT kill.  ctest -9's a timed-out test with no chance for
# diagnostics; the guard instead catches the hang first, dumps the tail
# of any campaign journals the test was writing (*.jsonl under $TMPDIR —
# the executor flushes one line per attempt, so the tail shows exactly
# which job wedged), and exits 99 so the suite still fails loudly.
#
#   tools/ctest_guard.sh <budget-seconds> <command> [args...]
#
# vpmem_test() wires every ctest suite through this with a budget 20s
# under VPMEM_TEST_TIMEOUT, leaving ctest's kill as the backstop.
set -u
budget="$1"
shift

timeout --signal=TERM --kill-after=10 "$budget" "$@"
rc=$?
if [ "$rc" -eq 124 ] || [ "$rc" -eq 137 ]; then
  echo "ctest_guard: '$1' exceeded its ${budget}s budget" >&2
  tmp="${TMPDIR:-/tmp}"
  found=0
  for journal in "$tmp"/*.jsonl; do
    [ -e "$journal" ] || continue
    found=1
    echo "--- last journal lines: $journal ---" >&2
    tail -n 20 "$journal" >&2
  done
  if [ "$found" -eq 0 ]; then
    echo "ctest_guard: no campaign journals under $tmp" >&2
  fi
  exit 99
fi
exit "$rc"
