// Finite-run drivers: execute streams to completion (vector instructions
// of length n) or measure long-run average bandwidth over a window —
// plus guarded variants that return partial results under a cycle-budget
// watchdog instead of throwing (degraded-mode workloads can hang forever,
// e.g. a stream pinned on an offline bank under FaultPolicy::stall).
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/sim/fault.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::sim {

class MemorySystem;

/// Outcome of running a finite workload to completion.
struct RunResult {
  i64 cycles = 0;  ///< clock periods until the last element was granted
  std::vector<PortStats> ports;
  ConflictTotals conflicts;

  [[nodiscard]] i64 total_grants() const noexcept {
    i64 g = 0;
    for (const auto& p : ports) g += p.grants;
    return g;
  }
  /// Average data per clock period over the whole run (includes startup).
  [[nodiscard]] double bandwidth() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(total_grants()) / static_cast<double>(cycles);
  }
};

/// Simulate until every finite stream has transferred all its elements.
/// Throws vpmem::Error{config_invalid} if any stream is infinite and
/// vpmem::Error{deadline_exceeded} if completion takes more than
/// `max_cycles` periods.
[[nodiscard]] RunResult run_to_completion(const MemoryConfig& config,
                                          const std::vector<StreamConfig>& streams,
                                          i64 max_cycles = 100'000'000);

/// Long-run average bandwidth of infinite streams measured over
/// [warmup, warmup + window).  A floating-point cross-check for
/// find_steady_state(); agrees with it as window -> infinity.  Throws
/// vpmem::Error{config_invalid} on warmup < 0 or window <= 0.
[[nodiscard]] double measure_bandwidth(const MemoryConfig& config,
                                       const std::vector<StreamConfig>& streams, i64 warmup,
                                       i64 window);

/// How a guarded run ended.
enum class RunStatus {
  completed,          ///< workload finished (or the requested window closed)
  deadline_exceeded,  ///< the cycle budget ran out first
  livelock,           ///< no grant for the livelock window while requests pend
  interrupted,        ///< the caller's cancel flag tripped (SIGINT, campaign
                      ///< shutdown); counters cover the cycles observed so far
};

[[nodiscard]] std::string to_string(RunStatus status);

/// Budget limits for a guarded run.
struct Watchdog {
  /// Hard cycle budget: the run stops (status deadline_exceeded) once
  /// this many periods have been simulated without finishing.
  i64 max_cycles = 100'000'000;
  /// Livelock window factor k: the run stops (status livelock) when no
  /// port was granted for more than k * nc * m consecutive periods while
  /// at least one started, unfinished stream is requesting.  That window
  /// is the documented detection bound — any healthy arbitration grants
  /// within nc * m periods of a request, so k adds slack for fault
  /// recovery without masking true livelock.  <= 0 disables detection.
  i64 livelock_factor = 4;
  /// Optional cooperative cancellation: when non-null, guarded runs poll
  /// this flag (every kCancelPollCycles periods) and stop with status
  /// RunStatus::interrupted once it is set.  Wired to the process-wide
  /// SIGINT/SIGTERM token by long-running CLI subcommands and to the
  /// campaign executor's shutdown path, so a guarded run is re-entrant
  /// *and* abandonable without killing its thread.
  const std::atomic<bool>* cancel = nullptr;

  /// How often (in simulated periods) the cancel flag is polled.
  static constexpr i64 kCancelPollCycles = 512;

  [[nodiscard]] bool cancelled() const noexcept {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// The livelock window in clock periods for `config`.
  [[nodiscard]] i64 livelock_window(const MemoryConfig& config) const noexcept {
    return livelock_factor <= 0 ? 0 : livelock_factor * config.bank_cycle * config.banks;
  }
};

/// Outcome of a guarded run: always a usable (possibly partial) result —
/// expiry is reported in `status`, never thrown.
struct GuardedRun {
  RunStatus status = RunStatus::completed;
  RunResult result;          ///< counters up to the cycle the run stopped
  i64 last_grant_cycle = -1; ///< most recent grant; -1 if none at all
  std::string detail;        ///< human-readable stop reason (empty if completed)

  [[nodiscard]] bool ok() const noexcept { return status == RunStatus::completed; }
};

/// Deadline-aware run_to_completion: simulate the finite `streams` under
/// `plan` until they finish, the watchdog budget expires, or livelock is
/// detected.  On expiry the partial counters are returned, not thrown
/// away; `result.cycles` is then the cycle the run stopped.  Still throws
/// vpmem::Error{config_invalid} for infinite streams (a workload that
/// *cannot* finish is a caller bug, not a runtime condition).
[[nodiscard]] GuardedRun run_guarded(const MemoryConfig& config,
                                     const std::vector<StreamConfig>& streams,
                                     const FaultPlan& plan = {}, const Watchdog& watchdog = {});

/// Drive an existing MemorySystem under the watchdog until its workload
/// finishes — or, when `horizon` >= 0, until `horizon` total cycles have
/// elapsed (for infinite workloads, which never finish).  Event hooks
/// already attached to `mem` keep firing, so observers (obs::Collector,
/// trace::Timeline) can watch a guarded run; obs::report_run_guarded is
/// built on this.  Unlike run_guarded this never throws: the caller
/// already built the system, so all inputs were validated.
GuardedRun run_guarded_on(MemorySystem& mem, const Watchdog& watchdog = {}, i64 horizon = -1);

/// Outcome of a guarded bandwidth measurement.
struct BandwidthMeasurement {
  RunStatus status = RunStatus::completed;
  i64 grants = 0;       ///< grants inside the measured window
  i64 cycles = 0;       ///< periods actually measured (== window if completed)
  std::string detail;   ///< stop reason (empty if completed)

  [[nodiscard]] bool ok() const noexcept { return status == RunStatus::completed; }
  [[nodiscard]] double bandwidth() const noexcept {
    return cycles == 0 ? 0.0 : static_cast<double>(grants) / static_cast<double>(cycles);
  }
};

/// measure_bandwidth under a fault plan and watchdog: warm up for
/// `warmup` periods, then measure [warmup, warmup + window).  Livelock
/// detection spans the whole run; on detection the measurement covers the
/// periods observed so far.  Throws vpmem::Error{config_invalid} on bad
/// warmup/window arguments.
[[nodiscard]] BandwidthMeasurement measure_bandwidth_guarded(
    const MemoryConfig& config, const std::vector<StreamConfig>& streams, i64 warmup,
    i64 window, const FaultPlan& plan = {}, const Watchdog& watchdog = {});

}  // namespace vpmem::sim
