// Finite-run drivers: execute streams to completion (vector instructions
// of length n) or measure long-run average bandwidth over a window.
#pragma once

#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::sim {

/// Outcome of running a finite workload to completion.
struct RunResult {
  i64 cycles = 0;  ///< clock periods until the last element was granted
  std::vector<PortStats> ports;
  ConflictTotals conflicts;

  [[nodiscard]] i64 total_grants() const noexcept {
    i64 g = 0;
    for (const auto& p : ports) g += p.grants;
    return g;
  }
  /// Average data per clock period over the whole run (includes startup).
  [[nodiscard]] double bandwidth() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(total_grants()) / static_cast<double>(cycles);
  }
};

/// Simulate until every finite stream has transferred all its elements.
/// Throws std::invalid_argument if any stream is infinite, and
/// std::runtime_error if completion takes more than `max_cycles` periods.
[[nodiscard]] RunResult run_to_completion(const MemoryConfig& config,
                                          const std::vector<StreamConfig>& streams,
                                          i64 max_cycles = 100'000'000);

/// Long-run average bandwidth of infinite streams measured over
/// [warmup, warmup + window).  A floating-point cross-check for
/// find_steady_state(); agrees with it as window -> infinity.
[[nodiscard]] double measure_bandwidth(const MemoryConfig& config,
                                       const std::vector<StreamConfig>& streams, i64 warmup,
                                       i64 window);

}  // namespace vpmem::sim
