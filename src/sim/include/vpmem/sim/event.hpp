// Per-cycle events and per-port statistics emitted by the simulator.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "vpmem/util/numeric.hpp"

namespace vpmem::sim {

/// The three access-conflict types of Section II, plus the fault kind of
/// the degraded-mode model (a delay caused by injected hardware faults
/// rather than by contention between healthy resources).
enum class ConflictKind {
  /// Access requested to an active (busy) bank; request postponed.
  bank,
  /// Two or more ports on *different* access paths request the same
  /// inactive bank; priority decides, losers wait.
  simultaneous,
  /// Two or more ports of the same CPU request inactive banks within the
  /// same section (same access path); priority decides, losers wait.
  section,
  /// Request pinned by an injected fault: target bank offline or inside a
  /// transient stall window, or the access path down (FaultPlan).
  fault,
};

/// Number of ConflictKind values (lost-cycle matrix stride).
inline constexpr std::size_t kConflictKinds = 4;

[[nodiscard]] std::string to_string(ConflictKind kind);

/// One observable simulator event.  `grant` events mark the clock period
/// in which a request was accepted (the bank then stays active for nc
/// periods); conflict events mark each clock period a port spent delayed,
/// tagged with the cause in that period.
struct Event {
  enum class Type { grant, conflict };
  Type type = Type::grant;
  i64 cycle = 0;
  std::size_t port = 0;
  i64 bank = 0;             ///< requested bank
  i64 element = 0;          ///< index k of the stream element involved
  ConflictKind conflict = ConflictKind::bank;  ///< valid when type == conflict
  std::size_t blocker = 0;  ///< port that won the resource: the same-period
                            ///< winner for simultaneous/section conflicts,
                            ///< the port holding the bank for bank conflicts
                            ///< (the requester itself for a self conflict)
};

/// Aggregate counters for one port.  A "conflict" is counted once per
/// clock period of delay, classified by the cause during that period —
/// this matches what the paper's Fortran simulator reports in Fig. 10(c-e)
/// (counts grow linearly with delay time).
struct PortStats {
  i64 grants = 0;
  i64 bank_conflicts = 0;
  i64 simultaneous_conflicts = 0;
  i64 section_conflicts = 0;
  i64 fault_conflicts = 0;  ///< periods lost to injected faults
  i64 first_grant_cycle = -1;
  i64 last_grant_cycle = -1;
  i64 longest_stall = 0;   ///< longest run of consecutive delayed periods
  i64 current_stall = 0;   ///< internal: ongoing delay run

  [[nodiscard]] i64 total_conflicts() const noexcept {
    return bank_conflicts + simultaneous_conflicts + section_conflicts + fault_conflicts;
  }
};

/// Totals across ports.
struct ConflictTotals {
  i64 bank = 0;
  i64 simultaneous = 0;
  i64 section = 0;
  i64 fault = 0;

  [[nodiscard]] i64 total() const noexcept { return bank + simultaneous + section + fault; }
};

[[nodiscard]] ConflictTotals totals(const std::vector<PortStats>& ports);

}  // namespace vpmem::sim
