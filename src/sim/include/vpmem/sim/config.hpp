// Configuration types for the cycle-level interleaved-memory simulator.
//
// The machine model follows Section II of Oed & Lange (1985):
//   * m banks, addresses cyclically interleaved: bank j = i mod m.
//   * Bank cycle time of nc clock periods: a bank servicing a request is
//     "active" and rejects further requests for nc periods.
//   * s | m sections; one access path per (CPU, section); a granted request
//     occupies its path for one clock period.
//   * p ports, each able to issue one request per clock period; an
//     unsatisfied request is delayed one period along with all subsequent
//     requests of that port (dynamic conflict resolution).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "vpmem/util/numeric.hpp"

namespace vpmem::sim {

/// How banks are distributed over sections.
enum class SectionMapping {
  /// k = j mod s — the paper's default cyclic distribution.
  cyclic,
  /// m/s consecutive banks per section: k = j / (m/s).  Proposed by
  /// Cheung & Smith (paper's [8], Fig. 9) to prevent linked conflicts.
  consecutive,
};

/// Arbitration rule when several ports could proceed but share a resource.
enum class PriorityRule {
  /// Lower port index always wins (the paper's "fixed priority rule").
  fixed,
  /// Rotating priority: the highest-priority position advances by one port
  /// every clock period ("cyclic priority rule", resolves linked conflicts
  /// per Fig. 8(b)).
  cyclic,
};

[[nodiscard]] std::string to_string(SectionMapping mapping);
[[nodiscard]] std::string to_string(PriorityRule rule);

/// Static description of the memory system.
struct MemoryConfig {
  i64 banks = 16;        ///< m, number of interleaved banks (m >= 1)
  i64 sections = 16;     ///< s, number of sections; s | m; s == m means
                         ///< paths are never a bottleneck (Section III-B)
  i64 bank_cycle = 4;    ///< nc, bank busy time in clock periods (nc >= 1)
  SectionMapping mapping = SectionMapping::cyclic;
  PriorityRule priority = PriorityRule::fixed;

  /// Throws std::invalid_argument on an inconsistent configuration.
  void validate() const;

  /// Section k of bank j under the configured mapping.
  [[nodiscard]] i64 section_of(i64 bank) const;
};

/// Sentinel: stream issues requests forever (used for steady-state
/// analysis, assumption 1 of Section III).
inline constexpr i64 kInfiniteLength = std::numeric_limits<i64>::max();

/// One access stream driven by one port.
///
/// The common case is a constant-stride stream (a single vector
/// load/store instruction): the (k+1)-th request goes to bank
/// (start_bank + k*distance) mod m.  Alternatively a *periodic bank
/// pattern* may be supplied (skewed storage schemes, diagonal accesses,
/// synthetic random traffic): request k then targets
/// bank_pattern[k mod bank_pattern.size()] and start_bank/distance are
/// ignored.
struct StreamConfig {
  i64 start_bank = 0;   ///< b_i in [0, m)
  i64 distance = 1;     ///< d_i, any sign (taken mod m for bank addressing)
  i64 cpu = 0;          ///< CPU this port belongs to (selects path group)
  i64 length = kInfiniteLength;  ///< number of elements to transfer
  i64 start_cycle = 0;  ///< clock period of the first request
  std::vector<i64> bank_pattern = {};  ///< when non-empty: explicit periodic
                                       ///< bank sequence (each in [0, m))

  [[nodiscard]] bool has_pattern() const noexcept { return !bank_pattern.empty(); }

  /// Bank targeted by request k.
  [[nodiscard]] i64 bank_of(i64 k, i64 banks) const {
    if (has_pattern()) {
      return bank_pattern[static_cast<std::size_t>(k % static_cast<i64>(bank_pattern.size()))];
    }
    return mod_norm(start_bank + k * distance, banks);
  }

  /// Throws std::invalid_argument if inconsistent with `cfg`.
  void validate(const MemoryConfig& cfg) const;
};

/// Convenience builder for the common "two infinite streams" experiments
/// of Section III; both streams on distinct CPUs when `same_cpu` is false
/// (simultaneous-conflict regime) or on one CPU when true (section-conflict
/// regime).
[[nodiscard]] std::vector<StreamConfig> two_streams(i64 b1, i64 d1, i64 b2, i64 d2,
                                                    bool same_cpu = false);

}  // namespace vpmem::sim
