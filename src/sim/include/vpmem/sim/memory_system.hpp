// The cycle-level engine: banks, sections, paths, ports and the per-clock
// arbitration implementing dynamic conflict resolution (Section II).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/sim/fault.hpp"
#include "vpmem/util/json.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::sim {

/// Current value of the "schema" member emitted by SystemState::to_json().
inline constexpr const char* kCheckpointSchema = "vpmem.checkpoint/1";

/// A complete snapshot of a MemorySystem mid-run: configuration, fault
/// plan (with its application cursor and the dynamic fault state), every
/// port's stream + progress + statistics, bank occupancy and the priority
/// rotation.  Restoring it into a fresh MemorySystem (the SystemState
/// constructor) continues the run cycle-for-cycle identically — long
/// sweeps checkpoint to JSON and resume after interruption.  Event hooks
/// are not part of the state; reattach them after restoring.
struct SystemState {
  MemoryConfig config;
  FaultPlan plan;
  std::vector<StreamConfig> streams;
  std::vector<i64> issued;       ///< per-port elements granted
  std::vector<PortStats> stats;  ///< per-port counters (incl. current_stall)
  std::vector<i64> bank_free_at;
  std::vector<i64> bank_grants;
  std::vector<i64> bank_owner;  ///< -1 = no grant yet
  i64 now = 0;
  i64 rr = 0;
  // Dynamic fault state (all empty/zero when the plan is empty).
  i64 plan_cursor = 0;                        ///< plan events already applied
  std::vector<std::uint8_t> bank_online;      ///< empty == all online
  std::vector<i64> bank_nc;                   ///< empty == config.bank_cycle
  std::vector<i64> bank_stall_until;          ///< empty == no windows
  std::vector<std::pair<i64, i64>> paths_down;  ///< active (cpu, section) outages

  /// Schema vpmem.checkpoint/1.
  [[nodiscard]] Json to_json() const;

  /// Inverse of to_json(); throws vpmem::Error{config_invalid} on schema
  /// mismatch or malformed input.
  [[nodiscard]] static SystemState from_json(const Json& json);
};

/// Cycle-accurate simulator of an m-way interleaved, sectioned memory
/// accessed by constant-stride ports.
///
/// Per clock period, requesting ports are visited in priority order; a
/// port is granted iff (a) no higher-priority port claimed its target bank
/// this period, (b) the bank is inactive, and (c) its access path — the
/// (CPU, section) pair — is unclaimed this period.  Otherwise the port is
/// delayed one period (together with all its subsequent requests) and the
/// delay is classified as a bank, simultaneous-bank or section conflict
/// exactly as in Section II.
///
/// Ports may be added while the simulation runs (add_stream); the Cray
/// X-MP driver uses this to issue chained vector instructions whose start
/// times depend on earlier instructions' progress.
class MemorySystem {
 public:
  /// `streams` may be empty; ports can be injected later via add_stream
  /// (the X-MP drivers issue vector instructions as dependencies clear).
  /// An optional FaultPlan degrades the machine over time (see fault.hpp
  /// for the exact semantics); it is validated against `config`.
  MemorySystem(MemoryConfig config, std::vector<StreamConfig> streams, FaultPlan plan = {});

  /// Restore a checkpoint()ed state; the run continues cycle-for-cycle
  /// identically.  Hooks are not restored.
  explicit MemorySystem(const SystemState& state);

  /// Append a port mid-run.  `start_cycle` must be >= now().  Under fixed
  /// priority the new port ranks below all existing ones.  Returns its
  /// port index.
  std::size_t add_stream(const StreamConfig& stream);

  /// Advance the clock by one period.
  void step();

  /// Run `cycles` periods (or until finished() for finite streams when
  /// `stop_when_finished`).  Returns periods actually simulated.
  i64 run(i64 cycles, bool stop_when_finished = true);

  /// All finite-length streams have transferred all their elements.
  [[nodiscard]] bool finished() const noexcept;

  [[nodiscard]] i64 now() const noexcept { return now_; }
  [[nodiscard]] const MemoryConfig& config() const noexcept { return config_; }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return plan_; }

  /// Bank currently accepts requests (not taken offline by a fault).
  [[nodiscard]] bool bank_online(i64 bank) const;

  /// Number of online banks, m' (== banks when no fault plan is active).
  [[nodiscard]] i64 surviving_banks() const noexcept {
    return static_cast<i64>(surviving_.size());
  }

  /// Snapshot the complete machine state (see SystemState).
  [[nodiscard]] SystemState checkpoint() const;
  [[nodiscard]] std::size_t port_count() const noexcept { return ports_.size(); }
  [[nodiscard]] const StreamConfig& stream(std::size_t port) const;
  [[nodiscard]] const PortStats& port_stats(std::size_t port) const;
  [[nodiscard]] std::vector<PortStats> all_stats() const;

  /// Elements granted so far on `port`.
  [[nodiscard]] i64 elements_done(std::size_t port) const;

  /// True once `port` has transferred all its elements.
  [[nodiscard]] bool port_done(std::size_t port) const;

  /// Bank the port will request next (nullopt once the stream finished).
  [[nodiscard]] std::optional<i64> next_bank(std::size_t port) const;

  /// Remaining active periods of `bank` (0 == inactive).
  [[nodiscard]] i64 bank_busy(i64 bank) const;

  /// Grants served by `bank` so far.
  [[nodiscard]] i64 bank_grants(i64 bank) const;

  /// Fraction of elapsed bank-periods spent active, over all banks
  /// (grants * nc, clipped at now()): 1.0 means every bank was busy every
  /// period.  0 before the first step.
  [[nodiscard]] double bank_utilization() const;

  /// The bank with the most grants so far (ties: lowest address).
  [[nodiscard]] i64 hottest_bank() const;

  /// Observer invoked for every grant/conflict event.  Multiple hooks may
  /// be attached at once (a hook multiplexer): vpmem::trace's Timeline and
  /// vpmem::obs's Collector can watch the same run.  Hooks fire in
  /// attachment order; they must not mutate the system.
  using EventHook = std::function<void(const Event&)>;

  /// Attach `hook`; returns a handle for remove_event_hook.
  std::size_t add_event_hook(EventHook hook);

  /// Detach the hook with the given handle (no-op if already removed).
  void remove_event_hook(std::size_t handle);

  /// Number of hooks currently attached.
  [[nodiscard]] std::size_t event_hook_count() const noexcept;

  /// \deprecated Legacy single-hook interface, kept only for pre-
  /// multiplexer callers; use add_event_hook/remove_event_hook in new
  /// code.  Replaces the hook installed by a prior set_event_hook call
  /// (hooks added via add_event_hook are unaffected); pass nullptr to
  /// remove.  check_event_hook_shim_test pins the coexistence contract
  /// with obs::Collector.
  void set_event_hook(EventHook hook);

  /// Opaque encoding of the machine state that determines all future
  /// behaviour of *infinite* streams (per-port phase, bank busy times,
  /// rotation of the cyclic priority).  Equal keys => identical futures;
  /// used for exact cycle detection in steady_state().
  [[nodiscard]] std::vector<i64> state_key() const;

 private:
  struct PortState {
    StreamConfig cfg;
    i64 issued = 0;  ///< elements granted so far
    PortStats stats;
    [[nodiscard]] bool done() const noexcept { return issued >= cfg.length; }
  };

  void emit(const Event& e) const;
  void init_fault_state();
  void apply_due_faults();
  void rebuild_surviving();
  [[nodiscard]] i64 effective_bank(const PortState& port) const;
  [[nodiscard]] bool path_down(i64 cpu, i64 section) const;

  MemoryConfig config_;
  FaultPlan plan_;
  std::vector<PortState> ports_;
  std::vector<i64> bank_free_at_;  ///< absolute cycle the bank becomes inactive
  std::vector<i64> bank_grants_;   ///< grants served per bank
  std::vector<std::size_t> bank_owner_;  ///< port of the latest grant per bank
                                         ///< (bank-conflict blocker payload)
  i64 now_ = 0;
  i64 max_cpu_ = 0;
  std::size_t rr_ = 0;  ///< highest-priority port under PriorityRule::cyclic
  /// Attached hooks, keyed by handle; removed entries stay as empty
  /// functions so handles remain stable (hook churn is rare and tiny).
  std::vector<EventHook> hooks_;
  std::size_t live_hooks_ = 0;  ///< count of non-empty entries in hooks_
  std::size_t legacy_hook_ = static_cast<std::size_t>(-1);  ///< set_event_hook slot
  // Per-step scratch (members to avoid per-cycle allocation).
  std::vector<std::size_t> bank_claim_;
  std::vector<std::size_t> path_claim_;
  // Dynamic fault state, advanced by apply_due_faults() at the start of
  // every step.  All-healthy when the plan is empty (the hot path then
  // only pays one cursor comparison).
  std::size_t plan_cursor_ = 0;               ///< next plan event to apply
  std::vector<std::uint8_t> bank_online_;     ///< 1 = accepts requests
  std::vector<i64> bank_nc_;                  ///< per-bank effective cycle time
  std::vector<i64> bank_stall_until_;         ///< exclusive end of stall window
  std::vector<std::pair<i64, i64>> paths_down_;  ///< active (cpu, section) outages
  std::vector<i64> surviving_;                ///< online banks, ascending
};

}  // namespace vpmem::sim
