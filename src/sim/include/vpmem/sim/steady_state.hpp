// Exact steady-state (cyclic state) detection.
//
// Section III assumes infinitely long streams: "the possible memory states
// are finite, and some cyclic state will be reached.  Neglecting startup
// times, we compute the effective bandwidth for the cyclic state."  This
// module detects that cyclic state exactly by hashing the full machine
// state each clock period, and reports b_eff as an exact rational
// (grants per period over the detected cycle).
#pragma once

#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::sim {

/// Result of cycle detection over infinite streams.
struct SteadyState {
  Rational bandwidth;                  ///< b_eff: total grants per clock period
  std::vector<Rational> per_port;      ///< per-port share of b_eff
  i64 transient_cycles = 0;            ///< periods before the cyclic state is entered
  i64 period = 0;                      ///< length of the cyclic state
  i64 cycles_simulated = 0;            ///< clock periods stepped during detection
  double wall_seconds = 0.0;           ///< wall-clock cost of the detection
  /// Simulator throughput of the detection run (simulated clock periods
  /// per wall-clock second); 0 when the run was too fast to time.
  [[nodiscard]] double cycles_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(cycles_simulated) / wall_seconds : 0.0;
  }
  std::vector<i64> grants_in_period;   ///< per-port grants within one period
  ConflictTotals conflicts_in_period;  ///< conflicts within one period
  std::vector<PortStats> per_port_delta;  ///< per-port stats within one period

  /// True if `port` is never delayed inside the cycle.
  [[nodiscard]] bool port_conflict_free(std::size_t port) const {
    return per_port_delta.at(port).total_conflicts() == 0;
  }

  /// True if no port is ever delayed inside the cycle.
  [[nodiscard]] bool conflict_free() const noexcept { return conflicts_in_period.total() == 0; }
};

/// Detect the cyclic state for a set of *infinite* streams.  Throws
/// std::invalid_argument if any stream is finite and std::runtime_error if
/// no cycle is found within `max_cycles` periods (cannot happen for valid
/// configurations; the bound is a defensive cap).
[[nodiscard]] SteadyState find_steady_state(const MemoryConfig& config,
                                            const std::vector<StreamConfig>& streams,
                                            i64 max_cycles = 1'000'000);

/// Worst/best-case steady-state bandwidth of two streams over *all* pairs
/// of relative start banks (b1 fixed at 0, b2 swept over [0, m)).  Used to
/// validate "synchronization" (Theorem 3: any offset converges) and
/// "unique barrier" claims (Theorems 6/7: b_eff = 1 + d1/d2 regardless of
/// offsets).
struct OffsetSweep {
  Rational min_bandwidth;
  Rational max_bandwidth;
  std::vector<Rational> by_offset;  ///< index = b2
  // Perf telemetry of the sweep itself (summed over offsets); purely
  // observational — the bandwidths above are unaffected.
  i64 cycles_simulated = 0;   ///< clock periods stepped across all points
  double wall_seconds = 0.0;  ///< wall-clock cost of the whole sweep
  [[nodiscard]] double cycles_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(cycles_simulated) / wall_seconds : 0.0;
  }
};

[[nodiscard]] OffsetSweep sweep_start_offsets(const MemoryConfig& config, i64 d1, i64 d2,
                                              bool same_cpu = false, i64 max_cycles = 1'000'000);

}  // namespace vpmem::sim
