// Fault modeling for the degraded-mode machine: timed hardware-fault
// events (bank outage, slow bank, transient bank stall, access-path
// outage) applied by MemorySystem under one of two degradation policies.
//
// The paper's model (Section II) assumes all m banks and all access paths
// stay healthy forever; a FaultPlan relaxes exactly that assumption while
// keeping every arbitration rule intact.  A delayed period whose cause is
// an injected fault is classified ConflictKind::fault — never as a bank /
// simultaneous / section conflict — so healthy-machine statistics stay
// comparable before, during and after an outage.
//
// Semantics (mirrored verbatim by check::ReferenceModel, so the
// differential fuzzer can fuzz over fault plans):
//   * At the start of clock period t every plan event with cycle <= t
//     that has not yet been applied takes effect, in plan order.
//   * Under FaultPolicy::stall a request to an offline bank, to a bank
//     inside a transient stall window, or through a downed (CPU, section)
//     path is delayed one period (dynamic conflict resolution), kind
//     `fault`, blocker = the requesting port itself.
//   * Under FaultPolicy::remap_spare, while any bank is offline the
//     interleave collapses onto the m' surviving banks (ascending order):
//     an affine stream's request k targets surviving[(b + k*d) mod m'], a
//     pattern stream's request k targets surviving[pattern[k] mod m'].
//     With m' = 0 every request stalls (kind `fault`).  Stall windows and
//     path outages delay requests under remap too.
//   * A bank_slow event inflates the bank's effective cycle time: grants
//     issued while it is in effect occupy the bank for `value` periods
//     (the extra delay of later requests classifies as an ordinary bank
//     conflict — the bank is merely slow, not refusing).
#pragma once

#include <string>
#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/util/json.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::sim {

/// Current value of the "schema" member emitted by FaultPlan::to_json().
inline constexpr const char* kFaultPlanSchema = "vpmem.fault_plan/1";

/// How the machine degrades when a request targets failed hardware.
enum class FaultPolicy {
  /// Requests to dead hardware block their port (delayed one period at a
  /// time, like any other conflict) until the fault clears.
  stall,
  /// Requests rotate onto the surviving banks, changing the effective
  /// interleave from m to m' (Theorem 1 then holds with r' = m'/gcd(m',d)).
  remap_spare,
};

[[nodiscard]] std::string to_string(FaultPolicy policy);

/// Inverse of to_string; throws vpmem::Error{fault_plan_invalid}.
[[nodiscard]] FaultPolicy fault_policy_from_string(const std::string& name);

/// One timed fault event.
struct FaultEvent {
  enum class Kind {
    bank_offline,   ///< `bank` stops accepting requests
    bank_online,    ///< `bank` recovers
    bank_slow,      ///< `bank`'s effective cycle time becomes `value`
    bank_stall,     ///< `bank` rejects requests in [cycle, cycle + value)
    path_offline,   ///< access path (`cpu`, `section`) goes down
    path_online,    ///< access path (`cpu`, `section`) recovers
  };

  Kind kind = Kind::bank_offline;
  i64 cycle = 0;    ///< clock period the event takes effect (>= 0)
  i64 bank = 0;     ///< target bank, bank_* kinds only
  i64 cpu = 0;      ///< target CPU, path_* kinds only
  i64 section = 0;  ///< target section, path_* kinds only
  i64 value = 0;    ///< inflated nc (bank_slow) or window length (bank_stall)

  [[nodiscard]] bool targets_bank() const noexcept {
    return kind != Kind::path_offline && kind != Kind::path_online;
  }
};

[[nodiscard]] std::string to_string(FaultEvent::Kind kind);

/// Inverse of to_string; throws vpmem::Error{fault_plan_invalid}.
[[nodiscard]] FaultEvent::Kind fault_kind_from_string(const std::string& name);

/// A degradation policy plus a cycle-sorted list of fault events.  Kept
/// separate from MemoryConfig on purpose: steady-state detection and the
/// analytic layer describe the healthy machine; a plan is a property of
/// one particular run.
struct FaultPlan {
  FaultPolicy policy = FaultPolicy::stall;
  std::vector<FaultEvent> events;  ///< non-decreasing cycle order

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Throws vpmem::Error{ErrorCode::fault_plan_invalid} when an event is
  /// malformed or inconsistent with `config` (bank/section out of range,
  /// cycles unsorted or negative, non-positive slow/stall values).
  void validate(const MemoryConfig& config) const;

  /// Schema vpmem.fault_plan/1.
  [[nodiscard]] Json to_json() const;

  /// Inverse of to_json(); throws vpmem::Error{fault_plan_invalid} on
  /// schema mismatch or malformed input.
  [[nodiscard]] static FaultPlan from_json(const Json& json);

  /// Compact single-token spec for one-line repro strings and
  /// `vpmem_cli faults --inline`:
  ///   <policy>[;<event>...]
  /// with events
  ///   boff@<cycle>:b<bank>        bon@<cycle>:b<bank>
  ///   slow@<cycle>:b<bank>:v<nc>  bstall@<cycle>:b<bank>:v<len>
  ///   poff@<cycle>:c<cpu>:s<sec>  pon@<cycle>:c<cpu>:s<sec>
  /// e.g. "remap_spare;boff@40:b3;bon@200:b3".  Contains no whitespace.
  [[nodiscard]] std::string encode() const;

  /// Inverse of encode(); throws vpmem::Error{fault_plan_invalid}.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
};

}  // namespace vpmem::sim
