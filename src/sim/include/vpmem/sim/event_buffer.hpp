// Bounded, chunked storage for the simulator's event stream.
//
// The event-hook multiplexer (memory_system.hpp) lets several observers
// watch one run, but each observer that *stores* events used to keep its
// own unbounded std::vector<Event>.  EventBuffer is the shared backing
// store for tracing v2: events are packed to 32 bytes, appended to
// fixed-size chunks, and the oldest chunk is recycled once the configured
// capacity is reached — memory stays bounded no matter how long the run
// is, and trace::Timeline plus obs::Tracer can read the same buffer
// instead of recording the stream twice.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "vpmem/sim/event.hpp"
#include "vpmem/sim/memory_system.hpp"

namespace vpmem::sim {

/// One retained event, packed to 32 bytes (sizeof(Event) is 48).  Field
/// widths cover every configuration the library accepts: bank indices fit
/// 32 bits and port counts 16 bits (the X-MP driver tops out at tens of
/// ports); EventBuffer::push checks the limits once per event.
struct PackedEvent {
  i64 cycle = 0;
  i64 element = 0;
  std::int32_t bank = 0;
  std::uint16_t port = 0;
  std::uint16_t blocker = 0;
  std::uint8_t kind = 0;  ///< 0 = grant, 1 + ConflictKind otherwise

  [[nodiscard]] Event unpack() const noexcept {
    Event e;
    e.type = kind == 0 ? Event::Type::grant : Event::Type::conflict;
    e.cycle = cycle;
    e.port = port;
    e.bank = bank;
    e.element = element;
    e.conflict = kind == 0 ? ConflictKind::bank : static_cast<ConflictKind>(kind - 1);
    e.blocker = blocker;
    return e;
  }
};

/// Chunked ring of PackedEvents.  push() is the tracing hot path: it
/// appends to the newest chunk and only touches the chunk list when a
/// chunk fills up.  Eviction drops whole chunks from the front, so the
/// retained window always covers the most recent events.  The whole ring
/// is allocated and pre-faulted by the constructor: push() never
/// allocates, so neither malloc stalls nor first-touch page faults land
/// inside the traced run.
class EventBuffer {
 public:
  /// Events per chunk; eviction granularity.
  static constexpr std::size_t kChunkEvents = 4096;
  /// Default retention: 256k events (8 MiB packed) — far beyond what a
  /// trace viewer renders comfortably, small enough to pre-fault eagerly.
  static constexpr std::size_t kDefaultCapacity = 1u << 18;

  /// `capacity` is rounded up to a whole number of chunks; 0 means
  /// kDefaultCapacity.
  explicit EventBuffer(std::size_t capacity = kDefaultCapacity);

  /// Record one event, evicting the oldest chunk when full.
  void push(const Event& e);

  /// Retained events (<= capacity()).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Events ever pushed, including evicted ones.
  [[nodiscard]] i64 recorded() const noexcept { return recorded_; }
  /// Events evicted to stay within capacity.
  [[nodiscard]] i64 dropped() const noexcept { return recorded_ - static_cast<i64>(size_); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Packed bytes currently held.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return size_ * sizeof(PackedEvent);
  }

  /// Cycle of the oldest retained event (0 when empty) — the start of the
  /// faithfully covered window after eviction.
  [[nodiscard]] i64 first_cycle() const;

  /// Visit every retained event in emission order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& chunk : chunks_) {
      for (std::size_t i = 0; i < chunk.count; ++i) fn(chunk.data[i].unpack());
    }
  }

  /// Materialize the retained events (tests, small windows).
  [[nodiscard]] std::vector<Event> events() const;

  /// Drop everything; recorded()/dropped() reset too.
  void clear();

 private:
  /// Fixed-size slab of kChunkEvents; `count` events are valid.
  struct Chunk {
    std::unique_ptr<PackedEvent[]> data;
    std::size_t count = 0;
  };

  /// Start a fresh tail chunk, evicting the oldest one at capacity.
  void new_chunk();

  std::size_t capacity_;
  std::size_t size_ = 0;
  i64 recorded_ = 0;
  std::deque<Chunk> chunks_;
  Chunk* tail_ = nullptr;  ///< cached &chunks_.back(); stable across pop_front
  /// Pre-faulted spare slabs; new_chunk() draws from here (or recycles an
  /// evicted chunk) so the steady state is allocation-free.
  std::vector<std::unique_ptr<PackedEvent[]>> free_;
};

/// RAII binding of an EventBuffer to a MemorySystem: attaches a hook that
/// pushes every event into the (shared) buffer, detaches on destruction.
/// Both trace::Timeline and obs::Tracer record through this, so a run
/// traced by both stores its event stream exactly once.
class EventRecorder {
 public:
  /// Uses `buffer` if given, otherwise creates one with `capacity`.
  explicit EventRecorder(MemorySystem& mem, std::shared_ptr<EventBuffer> buffer = nullptr,
                         std::size_t capacity = EventBuffer::kDefaultCapacity);
  ~EventRecorder();

  EventRecorder(const EventRecorder&) = delete;
  EventRecorder& operator=(const EventRecorder&) = delete;
  EventRecorder(EventRecorder&&) = delete;
  EventRecorder& operator=(EventRecorder&&) = delete;

  /// Detach from the MemorySystem; the buffer stays readable.  Idempotent.
  void detach();

  [[nodiscard]] const EventBuffer& buffer() const noexcept { return *buffer_; }
  [[nodiscard]] EventBuffer& buffer() noexcept { return *buffer_; }
  /// Share the buffer with another reader (e.g. a Timeline over a traced
  /// run).
  [[nodiscard]] std::shared_ptr<EventBuffer> share() const noexcept { return buffer_; }

 private:
  MemorySystem& mem_;
  std::shared_ptr<EventBuffer> buffer_;
  std::size_t hook_ = 0;
  bool attached_ = false;
};

}  // namespace vpmem::sim
