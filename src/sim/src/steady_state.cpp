#include "vpmem/sim/steady_state.hpp"

#include <chrono>
#include <map>
#include <stdexcept>

#include "vpmem/sim/memory_system.hpp"

namespace vpmem::sim {

namespace {

struct Snapshot {
  i64 cycle = 0;
  std::vector<PortStats> ports;
};

Snapshot snapshot_of(const MemorySystem& mem) {
  return Snapshot{.cycle = mem.now(), .ports = mem.all_stats()};
}

PortStats delta(const PortStats& later, const PortStats& earlier) {
  PortStats d;
  d.grants = later.grants - earlier.grants;
  d.bank_conflicts = later.bank_conflicts - earlier.bank_conflicts;
  d.simultaneous_conflicts = later.simultaneous_conflicts - earlier.simultaneous_conflicts;
  d.section_conflicts = later.section_conflicts - earlier.section_conflicts;
  d.fault_conflicts = later.fault_conflicts - earlier.fault_conflicts;
  d.first_grant_cycle = earlier.last_grant_cycle;
  d.last_grant_cycle = later.last_grant_cycle;
  return d;
}

}  // namespace

SteadyState find_steady_state(const MemoryConfig& config,
                              const std::vector<StreamConfig>& streams, i64 max_cycles) {
  for (const auto& s : streams) {
    if (s.length != kInfiniteLength) {
      throw std::invalid_argument{"find_steady_state: all streams must be infinite"};
    }
  }
  const auto wall_start = std::chrono::steady_clock::now();
  MemorySystem mem{config, streams};
  std::map<std::vector<i64>, Snapshot> seen;

  for (i64 t = 0; t <= max_cycles; ++t) {
    auto key = mem.state_key();
    auto [it, inserted] = seen.try_emplace(std::move(key), snapshot_of(mem));
    if (!inserted) {
      const Snapshot& first = it->second;
      const Snapshot now = snapshot_of(mem);
      SteadyState out;
      out.transient_cycles = first.cycle;
      out.period = now.cycle - first.cycle;
      out.grants_in_period.reserve(now.ports.size());
      i64 total_grants = 0;
      for (std::size_t i = 0; i < now.ports.size(); ++i) {
        const PortStats d = delta(now.ports[i], first.ports[i]);
        out.grants_in_period.push_back(d.grants);
        total_grants += d.grants;
        out.per_port.push_back(Rational{d.grants, out.period});
        out.conflicts_in_period.bank += d.bank_conflicts;
        out.conflicts_in_period.simultaneous += d.simultaneous_conflicts;
        out.conflicts_in_period.section += d.section_conflicts;
        out.conflicts_in_period.fault += d.fault_conflicts;
        out.per_port_delta.push_back(d);
      }
      out.bandwidth = Rational{total_grants, out.period};
      out.cycles_simulated = now.cycle;
      out.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
      return out;
    }
    mem.step();
  }
  throw std::runtime_error{"find_steady_state: no cyclic state within max_cycles"};
}

OffsetSweep sweep_start_offsets(const MemoryConfig& config, i64 d1, i64 d2, bool same_cpu,
                                i64 max_cycles) {
  OffsetSweep sweep;
  sweep.by_offset.reserve(static_cast<std::size_t>(config.banks));
  for (i64 b2 = 0; b2 < config.banks; ++b2) {
    const SteadyState ss =
        find_steady_state(config, two_streams(0, d1, b2, d2, same_cpu), max_cycles);
    sweep.cycles_simulated += ss.cycles_simulated;
    sweep.wall_seconds += ss.wall_seconds;
    sweep.by_offset.push_back(ss.bandwidth);
    if (b2 == 0) {
      sweep.min_bandwidth = ss.bandwidth;
      sweep.max_bandwidth = ss.bandwidth;
    } else {
      sweep.min_bandwidth = std::min(sweep.min_bandwidth, ss.bandwidth);
      sweep.max_bandwidth = std::max(sweep.max_bandwidth, ss.bandwidth);
    }
  }
  return sweep;
}

}  // namespace vpmem::sim
