#include "vpmem/sim/run.hpp"

#include <stdexcept>

#include "vpmem/sim/memory_system.hpp"

namespace vpmem::sim {

RunResult run_to_completion(const MemoryConfig& config, const std::vector<StreamConfig>& streams,
                            i64 max_cycles) {
  for (const auto& s : streams) {
    if (s.length == kInfiniteLength) {
      throw std::invalid_argument{"run_to_completion: all streams must be finite"};
    }
  }
  MemorySystem mem{config, streams};
  mem.run(max_cycles, /*stop_when_finished=*/true);
  if (!mem.finished()) {
    throw std::runtime_error{"run_to_completion: workload did not finish within max_cycles"};
  }
  RunResult out;
  out.ports = mem.all_stats();
  out.conflicts = totals(out.ports);
  for (const auto& p : out.ports) {
    out.cycles = std::max(out.cycles, p.last_grant_cycle + 1);
  }
  return out;
}

double measure_bandwidth(const MemoryConfig& config, const std::vector<StreamConfig>& streams,
                         i64 warmup, i64 window) {
  if (warmup < 0 || window <= 0) {
    throw std::invalid_argument{"measure_bandwidth: warmup >= 0 and window > 0 required"};
  }
  MemorySystem mem{config, streams};
  mem.run(warmup, /*stop_when_finished=*/false);
  i64 before = 0;
  for (std::size_t i = 0; i < mem.port_count(); ++i) before += mem.port_stats(i).grants;
  mem.run(window, /*stop_when_finished=*/false);
  i64 after = 0;
  for (std::size_t i = 0; i < mem.port_count(); ++i) after += mem.port_stats(i).grants;
  return static_cast<double>(after - before) / static_cast<double>(window);
}

}  // namespace vpmem::sim
