#include "vpmem/sim/run.hpp"

#include <algorithm>

#include "vpmem/sim/memory_system.hpp"
#include "vpmem/util/error.hpp"

namespace vpmem::sim {

namespace {

i64 total_grants(const MemorySystem& mem) {
  i64 g = 0;
  for (std::size_t i = 0; i < mem.port_count(); ++i) g += mem.port_stats(i).grants;
  return g;
}

i64 latest_start_cycle(const std::vector<StreamConfig>& streams) {
  i64 latest = 0;
  for (const auto& s : streams) latest = std::max(latest, s.start_cycle);
  return latest;
}

void fill_counters(RunResult& out, const MemorySystem& mem) {
  out.ports = mem.all_stats();
  out.conflicts = totals(out.ports);
}

}  // namespace

RunResult run_to_completion(const MemoryConfig& config, const std::vector<StreamConfig>& streams,
                            i64 max_cycles) {
  for (const auto& s : streams) {
    if (s.length == kInfiniteLength) {
      throw Error{ErrorCode::config_invalid, "run_to_completion: all streams must be finite"};
    }
  }
  MemorySystem mem{config, streams};
  mem.run(max_cycles, /*stop_when_finished=*/true);
  if (!mem.finished()) {
    throw Error{ErrorCode::deadline_exceeded,
                "run_to_completion: workload did not finish within max_cycles"};
  }
  RunResult out;
  fill_counters(out, mem);
  for (const auto& p : out.ports) {
    out.cycles = std::max(out.cycles, p.last_grant_cycle + 1);
  }
  return out;
}

double measure_bandwidth(const MemoryConfig& config, const std::vector<StreamConfig>& streams,
                         i64 warmup, i64 window) {
  if (warmup < 0 || window <= 0) {
    throw Error{ErrorCode::config_invalid,
                "measure_bandwidth: warmup >= 0 and window > 0 required"};
  }
  MemorySystem mem{config, streams};
  mem.run(warmup, /*stop_when_finished=*/false);
  const i64 before = total_grants(mem);
  mem.run(window, /*stop_when_finished=*/false);
  const i64 after = total_grants(mem);
  return static_cast<double>(after - before) / static_cast<double>(window);
}

std::string to_string(RunStatus status) {
  switch (status) {
    case RunStatus::completed: return "completed";
    case RunStatus::deadline_exceeded: return "deadline_exceeded";
    case RunStatus::livelock: return "livelock";
    case RunStatus::interrupted: return "interrupted";
  }
  return "?";
}

GuardedRun run_guarded_on(MemorySystem& mem, const Watchdog& watchdog, i64 horizon) {
  const i64 window = watchdog.livelock_window(mem.config());
  const i64 begun = mem.now();
  i64 latest_start = 0;
  for (std::size_t i = 0; i < mem.port_count(); ++i) {
    latest_start = std::max(latest_start, mem.stream(i).start_cycle);
  }
  GuardedRun out;
  i64 grants = total_grants(mem);
  while ((horizon < 0 || mem.now() < horizon) && !mem.finished()) {
    if (mem.now() >= watchdog.max_cycles) {
      out.status = RunStatus::deadline_exceeded;
      out.detail = "cycle budget of " + std::to_string(watchdog.max_cycles) +
                   " exhausted before completion";
      break;
    }
    if (mem.now() % Watchdog::kCancelPollCycles == 0 && watchdog.cancelled()) {
      out.status = RunStatus::interrupted;
      out.detail = "cancelled by caller at cycle " + std::to_string(mem.now());
      break;
    }
    mem.step();
    const i64 g = total_grants(mem);
    if (g > grants) {
      grants = g;
      out.last_grant_cycle = mem.now() - 1;
    } else if (window > 0 &&
               mem.now() - std::max({out.last_grant_cycle, latest_start, begun}) > window) {
      out.status = RunStatus::livelock;
      out.detail = "no grant in the last " + std::to_string(window) +
                   " cycles (last grant at cycle " + std::to_string(out.last_grant_cycle) + ")";
      break;
    }
  }
  fill_counters(out.result, mem);
  if (out.status == RunStatus::completed && horizon < 0) {
    for (const auto& p : out.result.ports) {
      out.result.cycles = std::max(out.result.cycles, p.last_grant_cycle + 1);
    }
  } else {
    out.result.cycles = mem.now() - begun;
  }
  return out;
}

GuardedRun run_guarded(const MemoryConfig& config, const std::vector<StreamConfig>& streams,
                       const FaultPlan& plan, const Watchdog& watchdog) {
  for (const auto& s : streams) {
    if (s.length == kInfiniteLength) {
      throw Error{ErrorCode::config_invalid, "run_guarded: all streams must be finite"};
    }
  }
  MemorySystem mem{config, streams, plan};
  return run_guarded_on(mem, watchdog);
}

BandwidthMeasurement measure_bandwidth_guarded(const MemoryConfig& config,
                                               const std::vector<StreamConfig>& streams,
                                               i64 warmup, i64 window, const FaultPlan& plan,
                                               const Watchdog& watchdog) {
  if (warmup < 0 || window <= 0) {
    throw Error{ErrorCode::config_invalid,
                "measure_bandwidth_guarded: warmup >= 0 and window > 0 required"};
  }
  MemorySystem mem{config, streams, plan};
  const i64 lwin = watchdog.livelock_window(config);
  const i64 latest_start = latest_start_cycle(streams);
  const i64 horizon = warmup + window;
  BandwidthMeasurement out;
  i64 total = 0;
  i64 last_grant = -1;
  i64 before = 0;  // grants accumulated when the measured window opened
  while (mem.now() < horizon) {
    if (mem.now() >= watchdog.max_cycles) {
      out.status = RunStatus::deadline_exceeded;
      out.detail = "cycle budget of " + std::to_string(watchdog.max_cycles) +
                   " exhausted before the window closed";
      break;
    }
    if (mem.now() % Watchdog::kCancelPollCycles == 0 && watchdog.cancelled()) {
      out.status = RunStatus::interrupted;
      out.detail = "cancelled by caller at cycle " + std::to_string(mem.now());
      break;
    }
    if (mem.now() == warmup) before = total;
    mem.step();
    const i64 g = total_grants(mem);
    if (g > total) {
      total = g;
      last_grant = mem.now() - 1;
    } else if (lwin > 0 && mem.now() - std::max(last_grant, latest_start) > lwin &&
               !mem.finished()) {
      out.status = RunStatus::livelock;
      out.detail = "no grant in the last " + std::to_string(lwin) +
                   " cycles (last grant at cycle " + std::to_string(last_grant) + ")";
      break;
    }
  }
  if (mem.now() > warmup) {
    out.grants = total - before;
    out.cycles = mem.now() - warmup;
  }
  return out;
}

}  // namespace vpmem::sim
