#include "vpmem/sim/memory_system.hpp"

#include <algorithm>
#include <stdexcept>

#include "vpmem/util/error.hpp"

namespace vpmem::sim {

namespace {
constexpr std::size_t kFree = static_cast<std::size_t>(-1);
}

MemorySystem::MemorySystem(MemoryConfig config, std::vector<StreamConfig> streams,
                           FaultPlan plan)
    : config_{config},
      plan_{std::move(plan)},
      bank_free_at_(static_cast<std::size_t>(config.banks), 0),
      bank_grants_(static_cast<std::size_t>(config.banks), 0),
      bank_owner_(static_cast<std::size_t>(config.banks), kFree),
      bank_claim_(static_cast<std::size_t>(config.banks), kFree) {
  config_.validate();
  plan_.validate(config_);
  init_fault_state();
  ports_.reserve(streams.size());
  for (const auto& s : streams) add_stream(s);
}

MemorySystem::MemorySystem(const SystemState& state)
    : MemorySystem{state.config, state.streams, state.plan} {
  if (state.issued.size() != ports_.size() || state.stats.size() != ports_.size()) {
    throw Error{ErrorCode::config_invalid,
                "MemorySystem: checkpoint port vectors disagree with streams"};
  }
  const auto banks = static_cast<std::size_t>(config_.banks);
  if (state.bank_free_at.size() != banks || state.bank_grants.size() != banks ||
      state.bank_owner.size() != banks) {
    throw Error{ErrorCode::config_invalid,
                "MemorySystem: checkpoint bank vectors disagree with config"};
  }
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    ports_[i].issued = state.issued[i];
    ports_[i].stats = state.stats[i];
  }
  bank_free_at_ = state.bank_free_at;
  bank_grants_ = state.bank_grants;
  for (std::size_t j = 0; j < banks; ++j) {
    bank_owner_[j] =
        state.bank_owner[j] < 0 ? kFree : static_cast<std::size_t>(state.bank_owner[j]);
  }
  now_ = state.now;
  rr_ = static_cast<std::size_t>(state.rr);
  if (state.plan_cursor < 0 || state.plan_cursor > static_cast<i64>(plan_.events.size())) {
    throw Error{ErrorCode::config_invalid, "MemorySystem: checkpoint plan cursor out of range"};
  }
  plan_cursor_ = static_cast<std::size_t>(state.plan_cursor);
  if (!state.bank_online.empty()) {
    if (state.bank_online.size() != banks || state.bank_nc.size() != banks ||
        state.bank_stall_until.size() != banks) {
      throw Error{ErrorCode::config_invalid,
                  "MemorySystem: checkpoint fault vectors disagree with config"};
    }
    bank_online_ = state.bank_online;
    bank_nc_ = state.bank_nc;
    bank_stall_until_ = state.bank_stall_until;
    paths_down_ = state.paths_down;
    rebuild_surviving();
  }
}

void MemorySystem::init_fault_state() {
  const auto banks = static_cast<std::size_t>(config_.banks);
  bank_online_.assign(banks, 1);
  bank_nc_.assign(banks, config_.bank_cycle);
  bank_stall_until_.assign(banks, 0);
  paths_down_.clear();
  plan_cursor_ = 0;
  rebuild_surviving();
}

void MemorySystem::rebuild_surviving() {
  surviving_.clear();
  for (std::size_t j = 0; j < bank_online_.size(); ++j) {
    if (bank_online_[j] != 0) surviving_.push_back(static_cast<i64>(j));
  }
}

void MemorySystem::apply_due_faults() {
  bool topology_changed = false;
  while (plan_cursor_ < plan_.events.size() &&
         plan_.events[plan_cursor_].cycle <= now_) {
    const FaultEvent& e = plan_.events[plan_cursor_++];
    const auto bank_u = static_cast<std::size_t>(e.bank);
    switch (e.kind) {
      case FaultEvent::Kind::bank_offline:
        topology_changed = topology_changed || bank_online_[bank_u] != 0;
        bank_online_[bank_u] = 0;
        break;
      case FaultEvent::Kind::bank_online:
        topology_changed = topology_changed || bank_online_[bank_u] == 0;
        bank_online_[bank_u] = 1;
        break;
      case FaultEvent::Kind::bank_slow: bank_nc_[bank_u] = e.value; break;
      case FaultEvent::Kind::bank_stall:
        bank_stall_until_[bank_u] = std::max(bank_stall_until_[bank_u], e.cycle + e.value);
        break;
      case FaultEvent::Kind::path_offline: {
        const auto path = std::make_pair(e.cpu, e.section);
        if (std::find(paths_down_.begin(), paths_down_.end(), path) == paths_down_.end()) {
          paths_down_.push_back(path);
        }
        break;
      }
      case FaultEvent::Kind::path_online: {
        const auto path = std::make_pair(e.cpu, e.section);
        const auto it = std::find(paths_down_.begin(), paths_down_.end(), path);
        if (it != paths_down_.end()) paths_down_.erase(it);
        break;
      }
    }
  }
  if (topology_changed) rebuild_surviving();
}

bool MemorySystem::bank_online(i64 bank) const {
  if (bank < 0 || bank >= config_.banks) {
    throw std::out_of_range{"bank_online: bank out of range"};
  }
  return bank_online_[static_cast<std::size_t>(bank)] != 0;
}

bool MemorySystem::path_down(i64 cpu, i64 section) const {
  // Linear scan: concurrent path outages are rare and few.
  for (const auto& [c, s] : paths_down_) {
    if (c == cpu && s == section) return true;
  }
  return false;
}

i64 MemorySystem::effective_bank(const PortState& port) const {
  const i64 raw = port.cfg.bank_of(port.issued, config_.banks);
  if (plan_.policy != FaultPolicy::remap_spare) return raw;
  const i64 alive = static_cast<i64>(surviving_.size());
  if (alive == config_.banks || alive == 0) return raw;
  // The interleave collapses onto the m' surviving banks: the stream's
  // bank sequence is re-addressed mod m' and looked up in the ascending
  // surviving list (fault.hpp documents this contract).
  const i64 slot = port.cfg.has_pattern()
                       ? mod_norm(port.cfg.bank_of(port.issued, config_.banks), alive)
                       : mod_norm(port.cfg.start_bank + port.issued * port.cfg.distance, alive);
  return surviving_[static_cast<std::size_t>(slot)];
}

std::size_t MemorySystem::add_stream(const StreamConfig& stream) {
  stream.validate(config_);
  if (stream.start_cycle < now_) {
    throw std::invalid_argument{"add_stream: start_cycle must not lie in the past"};
  }
  max_cpu_ = std::max(max_cpu_, stream.cpu);
  path_claim_.assign(static_cast<std::size_t>((max_cpu_ + 1) * config_.sections), kFree);
  PortState port;
  port.cfg = stream;
  ports_.push_back(std::move(port));
  return ports_.size() - 1;
}

const StreamConfig& MemorySystem::stream(std::size_t port) const { return ports_.at(port).cfg; }

const PortStats& MemorySystem::port_stats(std::size_t port) const {
  return ports_.at(port).stats;
}

std::vector<PortStats> MemorySystem::all_stats() const {
  std::vector<PortStats> out;
  out.reserve(ports_.size());
  for (const auto& p : ports_) out.push_back(p.stats);
  return out;
}

i64 MemorySystem::elements_done(std::size_t port) const { return ports_.at(port).issued; }

bool MemorySystem::port_done(std::size_t port) const { return ports_.at(port).done(); }

std::optional<i64> MemorySystem::next_bank(std::size_t port) const {
  const PortState& p = ports_.at(port);
  if (p.done()) return std::nullopt;
  return p.cfg.bank_of(p.issued, config_.banks);
}

i64 MemorySystem::bank_busy(i64 bank) const {
  if (bank < 0 || bank >= config_.banks) throw std::out_of_range{"bank_busy: bank out of range"};
  return std::max<i64>(0, bank_free_at_[static_cast<std::size_t>(bank)] - now_);
}

i64 MemorySystem::bank_grants(i64 bank) const {
  if (bank < 0 || bank >= config_.banks) {
    throw std::out_of_range{"bank_grants: bank out of range"};
  }
  return bank_grants_[static_cast<std::size_t>(bank)];
}

double MemorySystem::bank_utilization() const {
  if (now_ == 0) return 0.0;
  i64 busy = 0;
  for (std::size_t j = 0; j < bank_grants_.size(); ++j) {
    // Grants keep a bank active nc periods each; clip the still-running
    // tail of the latest service at now().  Slow-bank faults can inflate
    // a single service beyond nc, so the per-bank figure is additionally
    // clipped at zero (utilization is approximate under bank_slow).
    busy += std::max<i64>(
        0, bank_grants_[j] * config_.bank_cycle - std::max<i64>(0, bank_free_at_[j] - now_));
  }
  return static_cast<double>(busy) / static_cast<double>(config_.banks * now_);
}

i64 MemorySystem::hottest_bank() const {
  std::size_t best = 0;
  for (std::size_t j = 1; j < bank_grants_.size(); ++j) {
    if (bank_grants_[j] > bank_grants_[best]) best = j;
  }
  return static_cast<i64>(best);
}

bool MemorySystem::finished() const noexcept {
  return std::all_of(ports_.begin(), ports_.end(), [](const PortState& p) { return p.done(); });
}

std::size_t MemorySystem::add_event_hook(EventHook hook) {
  if (!hook) throw std::invalid_argument{"add_event_hook: hook must be callable"};
  // Reuse a vacated slot when available to keep the fan-out loop dense.
  for (std::size_t h = 0; h < hooks_.size(); ++h) {
    if (!hooks_[h]) {
      hooks_[h] = std::move(hook);
      ++live_hooks_;
      return h;
    }
  }
  hooks_.push_back(std::move(hook));
  ++live_hooks_;
  return hooks_.size() - 1;
}

void MemorySystem::remove_event_hook(std::size_t handle) {
  if (handle >= hooks_.size() || !hooks_[handle]) return;
  hooks_[handle] = nullptr;
  --live_hooks_;
  if (handle == legacy_hook_) legacy_hook_ = static_cast<std::size_t>(-1);
}

std::size_t MemorySystem::event_hook_count() const noexcept { return live_hooks_; }

void MemorySystem::set_event_hook(EventHook hook) {
  remove_event_hook(legacy_hook_);
  if (hook) legacy_hook_ = add_event_hook(std::move(hook));
}

void MemorySystem::emit(const Event& e) const {
  if (live_hooks_ == 0) return;
  for (const EventHook& hook : hooks_) {
    if (hook) hook(e);
  }
}

void MemorySystem::step() {
  if (plan_cursor_ < plan_.events.size()) apply_due_faults();
  if (ports_.empty()) {  // ports may be injected later via add_stream
    ++now_;
    return;
  }
  std::fill(bank_claim_.begin(), bank_claim_.end(), kFree);
  std::fill(path_claim_.begin(), path_claim_.end(), kFree);

  const std::size_t p = ports_.size();
  const std::size_t first = (config_.priority == PriorityRule::cyclic) ? rr_ % p : 0;

  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t idx = (first + i) % p;
    PortState& port = ports_[idx];
    if (port.done() || now_ < port.cfg.start_cycle) continue;

    const i64 bank = effective_bank(port);
    const auto bank_u = static_cast<std::size_t>(bank);

    Event ev{.type = Event::Type::conflict,
             .cycle = now_,
             .port = idx,
             .bank = bank,
             .element = port.issued,
             .conflict = ConflictKind::bank,
             .blocker = idx};

    // (0) Injected faults pin the request before any arbitration: the
    //     target bank is offline (stall policy, or remap with no survivor
    //     left), sits inside a transient stall window, or the access path
    //     is down.  Kind `fault`, blocker = the requester itself.
    if (bank_online_[bank_u] == 0 || now_ < bank_stall_until_[bank_u] ||
        (!paths_down_.empty() && path_down(port.cfg.cpu, config_.section_of(bank)))) {
      ev.conflict = ConflictKind::fault;
      ++port.stats.fault_conflicts;
      port.stats.longest_stall = std::max(port.stats.longest_stall, ++port.stats.current_stall);
      emit(ev);
      continue;
    }

    // (1) Claimed this very period by a higher-priority port: a
    //     simultaneous bank conflict if the winner sits on another CPU
    //     (different access path), a section conflict otherwise.
    if (bank_claim_[bank_u] != kFree) {
      const std::size_t winner = bank_claim_[bank_u];
      ev.blocker = winner;
      ev.conflict = (ports_[winner].cfg.cpu == port.cfg.cpu) ? ConflictKind::section
                                                             : ConflictKind::simultaneous;
      if (ev.conflict == ConflictKind::section) {
        ++port.stats.section_conflicts;
      } else {
        ++port.stats.simultaneous_conflicts;
      }
      port.stats.longest_stall = std::max(port.stats.longest_stall, ++port.stats.current_stall);
      emit(ev);
      continue;
    }

    // (2) Bank still active from an earlier period: plain bank conflict.
    //     The blocker is the port whose grant keeps the bank busy (the
    //     requester itself for a self conflict).
    if (bank_free_at_[bank_u] > now_) {
      ev.conflict = ConflictKind::bank;
      ev.blocker = bank_owner_[bank_u];
      ++port.stats.bank_conflicts;
      port.stats.longest_stall = std::max(port.stats.longest_stall, ++port.stats.current_stall);
      emit(ev);
      continue;
    }

    // (3) Access path (CPU, section) already used this period.
    const auto path = static_cast<std::size_t>(port.cfg.cpu * config_.sections +
                                               config_.section_of(bank));
    if (path_claim_[path] != kFree) {
      ev.blocker = path_claim_[path];
      ev.conflict = ConflictKind::section;
      ++port.stats.section_conflicts;
      port.stats.longest_stall = std::max(port.stats.longest_stall, ++port.stats.current_stall);
      emit(ev);
      continue;
    }

    // Grant.
    bank_claim_[bank_u] = idx;
    path_claim_[path] = idx;
    bank_free_at_[bank_u] = now_ + bank_nc_[bank_u];
    bank_owner_[bank_u] = idx;
    ++bank_grants_[bank_u];
    ++port.stats.grants;
    port.stats.current_stall = 0;
    if (port.stats.first_grant_cycle < 0) port.stats.first_grant_cycle = now_;
    port.stats.last_grant_cycle = now_;
    ev.type = Event::Type::grant;
    ev.blocker = idx;
    emit(ev);
    ++port.issued;
  }

  ++now_;
  if (config_.priority == PriorityRule::cyclic && !ports_.empty()) {
    rr_ = (rr_ + 1) % ports_.size();
  }
}

i64 MemorySystem::run(i64 cycles, bool stop_when_finished) {
  i64 done = 0;
  for (; done < cycles; ++done) {
    if (stop_when_finished && finished()) break;
    step();
  }
  return done;
}

std::vector<i64> MemorySystem::state_key() const {
  std::vector<i64> key;
  key.reserve(ports_.size() * 2 + bank_free_at_.size() + 1);
  for (const auto& p : ports_) {
    if (p.done()) {
      key.push_back(-2);  // finished
      key.push_back(0);
    } else if (p.cfg.has_pattern()) {
      // Pattern phase fully determines the future; offset past the bank
      // address domain so affine and pattern keys cannot collide.
      key.push_back(config_.banks + p.issued % static_cast<i64>(p.cfg.bank_pattern.size()));
      key.push_back(std::max<i64>(0, p.cfg.start_cycle - now_));
    } else {
      key.push_back(p.cfg.bank_of(p.issued, config_.banks));
      key.push_back(std::max<i64>(0, p.cfg.start_cycle - now_));  // not yet started
    }
  }
  for (i64 free_at : bank_free_at_) key.push_back(std::max<i64>(0, free_at - now_));
  key.push_back(ports_.empty() ? 0 : static_cast<i64>(rr_ % ports_.size()));
  if (!plan_.empty()) {
    // A fault plan makes the future depend on absolute time (pending
    // events) and on the dynamic fault state; fold all of it in.  Under
    // remap the per-port phase above is insufficient (the effective bank
    // depends on issued mod m'), so the raw progress counters are added —
    // keys then never repeat while a plan is active, which soundly
    // disables cycle detection rather than corrupting it.
    key.push_back(-3);  // domain separator
    key.push_back(static_cast<i64>(plan_.events.size() - plan_cursor_));
    key.push_back(plan_cursor_ < plan_.events.size()
                      ? plan_.events[plan_cursor_].cycle - now_
                      : 0);
    for (const auto& p : ports_) key.push_back(p.issued);
    for (std::uint8_t on : bank_online_) key.push_back(on);
    for (i64 nc : bank_nc_) key.push_back(nc);
    for (i64 until : bank_stall_until_) key.push_back(std::max<i64>(0, until - now_));
    key.push_back(static_cast<i64>(paths_down_.size()));
    for (const auto& [c, s] : paths_down_) {
      key.push_back(c);
      key.push_back(s);
    }
  }
  return key;
}

SystemState MemorySystem::checkpoint() const {
  SystemState st;
  st.config = config_;
  st.plan = plan_;
  st.streams.reserve(ports_.size());
  st.issued.reserve(ports_.size());
  st.stats.reserve(ports_.size());
  for (const auto& p : ports_) {
    st.streams.push_back(p.cfg);
    st.issued.push_back(p.issued);
    st.stats.push_back(p.stats);
  }
  st.bank_free_at = bank_free_at_;
  st.bank_grants = bank_grants_;
  st.bank_owner.reserve(bank_owner_.size());
  for (std::size_t owner : bank_owner_) {
    st.bank_owner.push_back(owner == kFree ? -1 : static_cast<i64>(owner));
  }
  st.now = now_;
  st.rr = static_cast<i64>(rr_);
  st.plan_cursor = static_cast<i64>(plan_cursor_);
  if (!plan_.empty()) {
    st.bank_online = bank_online_;
    st.bank_nc = bank_nc_;
    st.bank_stall_until = bank_stall_until_;
    st.paths_down = paths_down_;
  }
  return st;
}

namespace {

[[noreturn]] void bad_checkpoint(const std::string& what) {
  throw Error{ErrorCode::config_invalid, "SystemState: " + what};
}

Json json_of_i64s(const std::vector<i64>& values) {
  Json out = Json::array();
  for (const i64 v : values) out.push_back(v);
  return out;
}

std::vector<i64> i64s_from_json(const Json& json) {
  std::vector<i64> out;
  for (const Json& v : json.as_array()) out.push_back(v.as_int());
  return out;
}

}  // namespace

Json SystemState::to_json() const {
  Json out = Json::object();
  out["schema"] = kCheckpointSchema;

  Json cfg = Json::object();
  cfg["banks"] = config.banks;
  cfg["sections"] = config.sections;
  cfg["bank_cycle"] = config.bank_cycle;
  cfg["mapping"] = to_string(config.mapping);
  cfg["priority"] = to_string(config.priority);
  out["config"] = std::move(cfg);

  out["fault_plan"] = plan.to_json();

  Json stream_list = Json::array();
  for (const StreamConfig& s : streams) {
    Json entry = Json::object();
    entry["start_bank"] = s.start_bank;
    entry["distance"] = s.distance;
    entry["cpu"] = s.cpu;
    entry["length"] = s.length == kInfiniteLength ? Json{nullptr} : Json{s.length};
    entry["start_cycle"] = s.start_cycle;
    entry["bank_pattern"] = json_of_i64s(s.bank_pattern);
    stream_list.push_back(std::move(entry));
  }
  out["streams"] = std::move(stream_list);

  out["issued"] = json_of_i64s(issued);
  Json stat_list = Json::array();
  for (const PortStats& p : stats) {
    Json entry = Json::object();
    entry["grants"] = p.grants;
    entry["bank_conflicts"] = p.bank_conflicts;
    entry["simultaneous_conflicts"] = p.simultaneous_conflicts;
    entry["section_conflicts"] = p.section_conflicts;
    entry["fault_conflicts"] = p.fault_conflicts;
    entry["first_grant_cycle"] = p.first_grant_cycle;
    entry["last_grant_cycle"] = p.last_grant_cycle;
    entry["longest_stall"] = p.longest_stall;
    entry["current_stall"] = p.current_stall;
    stat_list.push_back(std::move(entry));
  }
  out["stats"] = std::move(stat_list);

  out["bank_free_at"] = json_of_i64s(bank_free_at);
  out["bank_grants"] = json_of_i64s(bank_grants);
  out["bank_owner"] = json_of_i64s(bank_owner);
  out["now"] = now;
  out["rr"] = rr;
  out["plan_cursor"] = plan_cursor;

  std::vector<i64> online;
  online.reserve(bank_online.size());
  for (const std::uint8_t b : bank_online) online.push_back(b);
  out["bank_online"] = json_of_i64s(online);
  out["bank_nc"] = json_of_i64s(bank_nc);
  out["bank_stall_until"] = json_of_i64s(bank_stall_until);
  Json paths = Json::array();
  for (const auto& [c, s] : paths_down) {
    Json entry = Json::object();
    entry["cpu"] = c;
    entry["section"] = s;
    paths.push_back(std::move(entry));
  }
  out["paths_down"] = std::move(paths);
  return out;
}

SystemState SystemState::from_json(const Json& json) {
  try {
    if (!json.contains("schema") || json.at("schema").as_string() != kCheckpointSchema) {
      bad_checkpoint("unknown or missing schema");
    }
    SystemState st;
    const Json& cfg = json.at("config");
    st.config.banks = cfg.at("banks").as_int();
    st.config.sections = cfg.at("sections").as_int();
    st.config.bank_cycle = cfg.at("bank_cycle").as_int();
    const std::string mapping = cfg.at("mapping").as_string();
    if (mapping == to_string(SectionMapping::consecutive)) {
      st.config.mapping = SectionMapping::consecutive;
    } else if (mapping != to_string(SectionMapping::cyclic)) {
      bad_checkpoint("unknown section mapping '" + mapping + "'");
    }
    const std::string priority = cfg.at("priority").as_string();
    if (priority == to_string(PriorityRule::cyclic)) {
      st.config.priority = PriorityRule::cyclic;
    } else if (priority != to_string(PriorityRule::fixed)) {
      bad_checkpoint("unknown priority rule '" + priority + "'");
    }

    st.plan = FaultPlan::from_json(json.at("fault_plan"));

    for (const Json& s : json.at("streams").as_array()) {
      StreamConfig stream;
      stream.start_bank = s.at("start_bank").as_int();
      stream.distance = s.at("distance").as_int();
      stream.cpu = s.at("cpu").as_int();
      stream.length = s.at("length").is_null() ? kInfiniteLength : s.at("length").as_int();
      stream.start_cycle = s.at("start_cycle").as_int();
      stream.bank_pattern = i64s_from_json(s.at("bank_pattern"));
      st.streams.push_back(std::move(stream));
    }

    st.issued = i64s_from_json(json.at("issued"));
    for (const Json& p : json.at("stats").as_array()) {
      PortStats stats;
      stats.grants = p.at("grants").as_int();
      stats.bank_conflicts = p.at("bank_conflicts").as_int();
      stats.simultaneous_conflicts = p.at("simultaneous_conflicts").as_int();
      stats.section_conflicts = p.at("section_conflicts").as_int();
      stats.fault_conflicts = p.at("fault_conflicts").as_int();
      stats.first_grant_cycle = p.at("first_grant_cycle").as_int();
      stats.last_grant_cycle = p.at("last_grant_cycle").as_int();
      stats.longest_stall = p.at("longest_stall").as_int();
      stats.current_stall = p.at("current_stall").as_int();
      st.stats.push_back(stats);
    }

    st.bank_free_at = i64s_from_json(json.at("bank_free_at"));
    st.bank_grants = i64s_from_json(json.at("bank_grants"));
    st.bank_owner = i64s_from_json(json.at("bank_owner"));
    st.now = json.at("now").as_int();
    st.rr = json.at("rr").as_int();
    st.plan_cursor = json.at("plan_cursor").as_int();
    for (const i64 b : i64s_from_json(json.at("bank_online"))) {
      st.bank_online.push_back(b != 0 ? 1 : 0);
    }
    st.bank_nc = i64s_from_json(json.at("bank_nc"));
    st.bank_stall_until = i64s_from_json(json.at("bank_stall_until"));
    for (const Json& p : json.at("paths_down").as_array()) {
      st.paths_down.emplace_back(p.at("cpu").as_int(), p.at("section").as_int());
    }
    return st;
  } catch (const Error&) {
    throw;
  } catch (const std::exception& e) {  // missing member / wrong type
    bad_checkpoint(std::string{"malformed document: "} + e.what());
  }
}

}  // namespace vpmem::sim
