#include "vpmem/sim/memory_system.hpp"

#include <algorithm>
#include <stdexcept>

namespace vpmem::sim {

namespace {
constexpr std::size_t kFree = static_cast<std::size_t>(-1);
}

MemorySystem::MemorySystem(MemoryConfig config, std::vector<StreamConfig> streams)
    : config_{config},
      bank_free_at_(static_cast<std::size_t>(config.banks), 0),
      bank_grants_(static_cast<std::size_t>(config.banks), 0),
      bank_owner_(static_cast<std::size_t>(config.banks), kFree),
      bank_claim_(static_cast<std::size_t>(config.banks), kFree) {
  config_.validate();
  ports_.reserve(streams.size());
  for (const auto& s : streams) add_stream(s);
}

std::size_t MemorySystem::add_stream(const StreamConfig& stream) {
  stream.validate(config_);
  if (stream.start_cycle < now_) {
    throw std::invalid_argument{"add_stream: start_cycle must not lie in the past"};
  }
  max_cpu_ = std::max(max_cpu_, stream.cpu);
  path_claim_.assign(static_cast<std::size_t>((max_cpu_ + 1) * config_.sections), kFree);
  PortState port;
  port.cfg = stream;
  ports_.push_back(std::move(port));
  return ports_.size() - 1;
}

const StreamConfig& MemorySystem::stream(std::size_t port) const { return ports_.at(port).cfg; }

const PortStats& MemorySystem::port_stats(std::size_t port) const {
  return ports_.at(port).stats;
}

std::vector<PortStats> MemorySystem::all_stats() const {
  std::vector<PortStats> out;
  out.reserve(ports_.size());
  for (const auto& p : ports_) out.push_back(p.stats);
  return out;
}

i64 MemorySystem::elements_done(std::size_t port) const { return ports_.at(port).issued; }

bool MemorySystem::port_done(std::size_t port) const { return ports_.at(port).done(); }

std::optional<i64> MemorySystem::next_bank(std::size_t port) const {
  const PortState& p = ports_.at(port);
  if (p.done()) return std::nullopt;
  return p.cfg.bank_of(p.issued, config_.banks);
}

i64 MemorySystem::bank_busy(i64 bank) const {
  if (bank < 0 || bank >= config_.banks) throw std::out_of_range{"bank_busy: bank out of range"};
  return std::max<i64>(0, bank_free_at_[static_cast<std::size_t>(bank)] - now_);
}

i64 MemorySystem::bank_grants(i64 bank) const {
  if (bank < 0 || bank >= config_.banks) {
    throw std::out_of_range{"bank_grants: bank out of range"};
  }
  return bank_grants_[static_cast<std::size_t>(bank)];
}

double MemorySystem::bank_utilization() const {
  if (now_ == 0) return 0.0;
  i64 busy = 0;
  for (std::size_t j = 0; j < bank_grants_.size(); ++j) {
    // Grants keep a bank active nc periods each; clip the still-running
    // tail of the latest service at now().
    busy += bank_grants_[j] * config_.bank_cycle - std::max<i64>(0, bank_free_at_[j] - now_);
  }
  return static_cast<double>(busy) / static_cast<double>(config_.banks * now_);
}

i64 MemorySystem::hottest_bank() const {
  std::size_t best = 0;
  for (std::size_t j = 1; j < bank_grants_.size(); ++j) {
    if (bank_grants_[j] > bank_grants_[best]) best = j;
  }
  return static_cast<i64>(best);
}

bool MemorySystem::finished() const noexcept {
  return std::all_of(ports_.begin(), ports_.end(), [](const PortState& p) { return p.done(); });
}

std::size_t MemorySystem::add_event_hook(EventHook hook) {
  if (!hook) throw std::invalid_argument{"add_event_hook: hook must be callable"};
  // Reuse a vacated slot when available to keep the fan-out loop dense.
  for (std::size_t h = 0; h < hooks_.size(); ++h) {
    if (!hooks_[h]) {
      hooks_[h] = std::move(hook);
      ++live_hooks_;
      return h;
    }
  }
  hooks_.push_back(std::move(hook));
  ++live_hooks_;
  return hooks_.size() - 1;
}

void MemorySystem::remove_event_hook(std::size_t handle) {
  if (handle >= hooks_.size() || !hooks_[handle]) return;
  hooks_[handle] = nullptr;
  --live_hooks_;
  if (handle == legacy_hook_) legacy_hook_ = static_cast<std::size_t>(-1);
}

std::size_t MemorySystem::event_hook_count() const noexcept { return live_hooks_; }

void MemorySystem::set_event_hook(EventHook hook) {
  remove_event_hook(legacy_hook_);
  if (hook) legacy_hook_ = add_event_hook(std::move(hook));
}

void MemorySystem::emit(const Event& e) const {
  if (live_hooks_ == 0) return;
  for (const EventHook& hook : hooks_) {
    if (hook) hook(e);
  }
}

void MemorySystem::step() {
  if (ports_.empty()) {  // ports may be injected later via add_stream
    ++now_;
    return;
  }
  const i64 m = config_.banks;
  std::fill(bank_claim_.begin(), bank_claim_.end(), kFree);
  std::fill(path_claim_.begin(), path_claim_.end(), kFree);

  const std::size_t p = ports_.size();
  const std::size_t first = (config_.priority == PriorityRule::cyclic) ? rr_ % p : 0;

  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t idx = (first + i) % p;
    PortState& port = ports_[idx];
    if (port.done() || now_ < port.cfg.start_cycle) continue;

    const i64 bank = port.cfg.bank_of(port.issued, m);
    const auto bank_u = static_cast<std::size_t>(bank);

    Event ev{.type = Event::Type::conflict,
             .cycle = now_,
             .port = idx,
             .bank = bank,
             .element = port.issued,
             .conflict = ConflictKind::bank,
             .blocker = idx};

    // (1) Claimed this very period by a higher-priority port: a
    //     simultaneous bank conflict if the winner sits on another CPU
    //     (different access path), a section conflict otherwise.
    if (bank_claim_[bank_u] != kFree) {
      const std::size_t winner = bank_claim_[bank_u];
      ev.blocker = winner;
      ev.conflict = (ports_[winner].cfg.cpu == port.cfg.cpu) ? ConflictKind::section
                                                             : ConflictKind::simultaneous;
      if (ev.conflict == ConflictKind::section) {
        ++port.stats.section_conflicts;
      } else {
        ++port.stats.simultaneous_conflicts;
      }
      port.stats.longest_stall = std::max(port.stats.longest_stall, ++port.stats.current_stall);
      emit(ev);
      continue;
    }

    // (2) Bank still active from an earlier period: plain bank conflict.
    //     The blocker is the port whose grant keeps the bank busy (the
    //     requester itself for a self conflict).
    if (bank_free_at_[bank_u] > now_) {
      ev.conflict = ConflictKind::bank;
      ev.blocker = bank_owner_[bank_u];
      ++port.stats.bank_conflicts;
      port.stats.longest_stall = std::max(port.stats.longest_stall, ++port.stats.current_stall);
      emit(ev);
      continue;
    }

    // (3) Access path (CPU, section) already used this period.
    const auto path = static_cast<std::size_t>(port.cfg.cpu * config_.sections +
                                               config_.section_of(bank));
    if (path_claim_[path] != kFree) {
      ev.blocker = path_claim_[path];
      ev.conflict = ConflictKind::section;
      ++port.stats.section_conflicts;
      port.stats.longest_stall = std::max(port.stats.longest_stall, ++port.stats.current_stall);
      emit(ev);
      continue;
    }

    // Grant.
    bank_claim_[bank_u] = idx;
    path_claim_[path] = idx;
    bank_free_at_[bank_u] = now_ + config_.bank_cycle;
    bank_owner_[bank_u] = idx;
    ++bank_grants_[bank_u];
    ++port.stats.grants;
    port.stats.current_stall = 0;
    if (port.stats.first_grant_cycle < 0) port.stats.first_grant_cycle = now_;
    port.stats.last_grant_cycle = now_;
    ev.type = Event::Type::grant;
    ev.blocker = idx;
    emit(ev);
    ++port.issued;
  }

  ++now_;
  if (config_.priority == PriorityRule::cyclic && !ports_.empty()) {
    rr_ = (rr_ + 1) % ports_.size();
  }
}

i64 MemorySystem::run(i64 cycles, bool stop_when_finished) {
  i64 done = 0;
  for (; done < cycles; ++done) {
    if (stop_when_finished && finished()) break;
    step();
  }
  return done;
}

std::vector<i64> MemorySystem::state_key() const {
  std::vector<i64> key;
  key.reserve(ports_.size() * 2 + bank_free_at_.size() + 1);
  for (const auto& p : ports_) {
    if (p.done()) {
      key.push_back(-2);  // finished
      key.push_back(0);
    } else if (p.cfg.has_pattern()) {
      // Pattern phase fully determines the future; offset past the bank
      // address domain so affine and pattern keys cannot collide.
      key.push_back(config_.banks + p.issued % static_cast<i64>(p.cfg.bank_pattern.size()));
      key.push_back(std::max<i64>(0, p.cfg.start_cycle - now_));
    } else {
      key.push_back(p.cfg.bank_of(p.issued, config_.banks));
      key.push_back(std::max<i64>(0, p.cfg.start_cycle - now_));  // not yet started
    }
  }
  for (i64 free_at : bank_free_at_) key.push_back(std::max<i64>(0, free_at - now_));
  key.push_back(ports_.empty() ? 0 : static_cast<i64>(rr_ % ports_.size()));
  return key;
}

}  // namespace vpmem::sim
