#include "vpmem/sim/config.hpp"

#include <stdexcept>

#include "vpmem/util/error.hpp"

namespace vpmem::sim {

namespace {

[[noreturn]] void bad_config(const std::string& what) {
  throw Error{ErrorCode::config_invalid, what};
}

}  // namespace

std::string to_string(SectionMapping mapping) {
  switch (mapping) {
    case SectionMapping::cyclic: return "cyclic";
    case SectionMapping::consecutive: return "consecutive";
  }
  return "?";
}

std::string to_string(PriorityRule rule) {
  switch (rule) {
    case PriorityRule::fixed: return "fixed";
    case PriorityRule::cyclic: return "cyclic";
  }
  return "?";
}

void MemoryConfig::validate() const {
  if (banks < 1) bad_config("MemoryConfig: banks must be >= 1");
  if (sections < 1 || sections > banks) {
    bad_config("MemoryConfig: sections must be in [1, banks]");
  }
  if (banks % sections != 0) {
    bad_config("MemoryConfig: sections must divide banks (s | m)");
  }
  if (bank_cycle < 1) bad_config("MemoryConfig: bank_cycle must be >= 1");
}

i64 MemoryConfig::section_of(i64 bank) const {
  if (bank < 0 || bank >= banks) throw std::out_of_range{"section_of: bank out of range"};
  switch (mapping) {
    case SectionMapping::cyclic: return bank % sections;
    case SectionMapping::consecutive: return bank / (banks / sections);
  }
  throw std::logic_error{"section_of: unknown mapping"};
}

void StreamConfig::validate(const MemoryConfig& cfg) const {
  if (start_bank < 0 || start_bank >= cfg.banks) {
    bad_config("StreamConfig: start_bank out of range");
  }
  if (cpu < 0) bad_config("StreamConfig: cpu must be >= 0");
  if (length < 0) bad_config("StreamConfig: length must be >= 0");
  if (start_cycle < 0) bad_config("StreamConfig: start_cycle must be >= 0");
  for (i64 bank : bank_pattern) {
    if (bank < 0 || bank >= cfg.banks) {
      bad_config("StreamConfig: bank_pattern entry out of range");
    }
  }
}

std::vector<StreamConfig> two_streams(i64 b1, i64 d1, i64 b2, i64 d2, bool same_cpu) {
  StreamConfig s1;
  s1.start_bank = b1;
  s1.distance = d1;
  StreamConfig s2;
  s2.start_bank = b2;
  s2.distance = d2;
  s2.cpu = same_cpu ? 0 : 1;
  return {s1, s2};
}

}  // namespace vpmem::sim
