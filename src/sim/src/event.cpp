#include "vpmem/sim/event.hpp"

namespace vpmem::sim {

std::string to_string(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::bank: return "bank";
    case ConflictKind::simultaneous: return "simultaneous";
    case ConflictKind::section: return "section";
    case ConflictKind::fault: return "fault";
  }
  return "?";
}

ConflictTotals totals(const std::vector<PortStats>& ports) {
  ConflictTotals t;
  for (const auto& p : ports) {
    t.bank += p.bank_conflicts;
    t.simultaneous += p.simultaneous_conflicts;
    t.section += p.section_conflicts;
    t.fault += p.fault_conflicts;
  }
  return t;
}

}  // namespace vpmem::sim
