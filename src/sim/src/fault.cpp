#include "vpmem/sim/fault.hpp"

#include <charconv>

#include "vpmem/util/error.hpp"

namespace vpmem::sim {

namespace {

[[noreturn]] void bad_plan(const std::string& what) {
  throw Error{ErrorCode::fault_plan_invalid, "FaultPlan: " + what};
}

/// Split `text` on `sep` (no empty-segment suppression).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

i64 parse_i64(const std::string& text, const std::string& context) {
  i64 value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || first == last) {
    bad_plan("expected an integer in '" + context + "'");
  }
  return value;
}

/// Field `tag`<int> out of `token`, e.g. "b3" with tag 'b'.
i64 tagged_i64(const std::string& field, char tag, const std::string& context) {
  if (field.empty() || field[0] != tag) {
    bad_plan("expected '" + std::string{tag} + "<int>' in '" + context + "'");
  }
  return parse_i64(field.substr(1), context);
}

}  // namespace

std::string to_string(FaultPolicy policy) {
  switch (policy) {
    case FaultPolicy::stall: return "stall";
    case FaultPolicy::remap_spare: return "remap_spare";
  }
  return "?";
}

FaultPolicy fault_policy_from_string(const std::string& name) {
  for (FaultPolicy p : {FaultPolicy::stall, FaultPolicy::remap_spare}) {
    if (to_string(p) == name) return p;
  }
  bad_plan("unknown policy '" + name + "'");
}

std::string to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::bank_offline: return "bank_offline";
    case FaultEvent::Kind::bank_online: return "bank_online";
    case FaultEvent::Kind::bank_slow: return "bank_slow";
    case FaultEvent::Kind::bank_stall: return "bank_stall";
    case FaultEvent::Kind::path_offline: return "path_offline";
    case FaultEvent::Kind::path_online: return "path_online";
  }
  return "?";
}

FaultEvent::Kind fault_kind_from_string(const std::string& name) {
  for (FaultEvent::Kind k :
       {FaultEvent::Kind::bank_offline, FaultEvent::Kind::bank_online,
        FaultEvent::Kind::bank_slow, FaultEvent::Kind::bank_stall,
        FaultEvent::Kind::path_offline, FaultEvent::Kind::path_online}) {
    if (to_string(k) == name) return k;
  }
  bad_plan("unknown event kind '" + name + "'");
}

void FaultPlan::validate(const MemoryConfig& config) const {
  i64 prev_cycle = 0;
  for (const FaultEvent& e : events) {
    const std::string label = to_string(e.kind) + "@" + std::to_string(e.cycle);
    if (e.cycle < 0) bad_plan(label + ": cycle must be >= 0");
    if (e.cycle < prev_cycle) bad_plan(label + ": events must be sorted by cycle");
    prev_cycle = e.cycle;
    if (e.targets_bank()) {
      if (e.bank < 0 || e.bank >= config.banks) bad_plan(label + ": bank out of range");
    } else {
      if (e.cpu < 0) bad_plan(label + ": cpu must be >= 0");
      if (e.section < 0 || e.section >= config.sections) {
        bad_plan(label + ": section out of range");
      }
    }
    if (e.kind == FaultEvent::Kind::bank_slow && e.value < 1) {
      bad_plan(label + ": slow-bank cycle time must be >= 1");
    }
    if (e.kind == FaultEvent::Kind::bank_stall && e.value < 1) {
      bad_plan(label + ": stall window length must be >= 1");
    }
  }
}

Json FaultPlan::to_json() const {
  Json out = Json::object();
  out["schema"] = kFaultPlanSchema;
  out["policy"] = to_string(policy);
  Json list = Json::array();
  for (const FaultEvent& e : events) {
    Json entry = Json::object();
    entry["kind"] = to_string(e.kind);
    entry["cycle"] = e.cycle;
    if (e.targets_bank()) {
      entry["bank"] = e.bank;
    } else {
      entry["cpu"] = e.cpu;
      entry["section"] = e.section;
    }
    if (e.kind == FaultEvent::Kind::bank_slow || e.kind == FaultEvent::Kind::bank_stall) {
      entry["value"] = e.value;
    }
    list.push_back(std::move(entry));
  }
  out["events"] = std::move(list);
  return out;
}

FaultPlan FaultPlan::from_json(const Json& json) {
  try {
    if (!json.contains("schema") || json.at("schema").as_string() != kFaultPlanSchema) {
      bad_plan("unknown or missing schema");
    }
    FaultPlan plan;
    plan.policy = fault_policy_from_string(json.at("policy").as_string());
    for (const Json& entry : json.at("events").as_array()) {
      FaultEvent e;
      e.kind = fault_kind_from_string(entry.at("kind").as_string());
      e.cycle = entry.at("cycle").as_int();
      if (e.targets_bank()) {
        e.bank = entry.at("bank").as_int();
      } else {
        e.cpu = entry.at("cpu").as_int();
        e.section = entry.at("section").as_int();
      }
      if (entry.contains("value")) e.value = entry.at("value").as_int();
      plan.events.push_back(e);
    }
    return plan;
  } catch (const Error&) {
    throw;
  } catch (const std::exception& e) {  // missing member / wrong type
    bad_plan(std::string{"malformed document: "} + e.what());
  }
}

std::string FaultPlan::encode() const {
  std::string out = to_string(policy);
  for (const FaultEvent& e : events) {
    out += ';';
    switch (e.kind) {
      case FaultEvent::Kind::bank_offline: out += "boff"; break;
      case FaultEvent::Kind::bank_online: out += "bon"; break;
      case FaultEvent::Kind::bank_slow: out += "slow"; break;
      case FaultEvent::Kind::bank_stall: out += "bstall"; break;
      case FaultEvent::Kind::path_offline: out += "poff"; break;
      case FaultEvent::Kind::path_online: out += "pon"; break;
    }
    out += '@' + std::to_string(e.cycle);
    if (e.targets_bank()) {
      out += ":b" + std::to_string(e.bank);
    } else {
      out += ":c" + std::to_string(e.cpu) + ":s" + std::to_string(e.section);
    }
    if (e.kind == FaultEvent::Kind::bank_slow || e.kind == FaultEvent::Kind::bank_stall) {
      out += ":v" + std::to_string(e.value);
    }
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ';');
  FaultPlan plan;
  plan.policy = fault_policy_from_string(parts[0]);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& token = parts[i];
    const std::size_t at = token.find('@');
    if (at == std::string::npos) bad_plan("expected '<kind>@<cycle>...' in '" + token + "'");
    const std::string mnemonic = token.substr(0, at);
    const std::vector<std::string> fields = split(token.substr(at + 1), ':');
    FaultEvent e;
    if (mnemonic == "boff") {
      e.kind = FaultEvent::Kind::bank_offline;
    } else if (mnemonic == "bon") {
      e.kind = FaultEvent::Kind::bank_online;
    } else if (mnemonic == "slow") {
      e.kind = FaultEvent::Kind::bank_slow;
    } else if (mnemonic == "bstall") {
      e.kind = FaultEvent::Kind::bank_stall;
    } else if (mnemonic == "poff") {
      e.kind = FaultEvent::Kind::path_offline;
    } else if (mnemonic == "pon") {
      e.kind = FaultEvent::Kind::path_online;
    } else {
      bad_plan("unknown event mnemonic '" + mnemonic + "'");
    }
    const bool has_value =
        e.kind == FaultEvent::Kind::bank_slow || e.kind == FaultEvent::Kind::bank_stall;
    const std::size_t expected = e.targets_bank() ? (has_value ? 3u : 2u) : 3u;
    if (fields.size() != expected) {
      bad_plan("wrong field count in '" + token + "'");
    }
    e.cycle = parse_i64(fields[0], token);
    if (e.targets_bank()) {
      e.bank = tagged_i64(fields[1], 'b', token);
      if (has_value) e.value = tagged_i64(fields[2], 'v', token);
    } else {
      e.cpu = tagged_i64(fields[1], 'c', token);
      e.section = tagged_i64(fields[2], 's', token);
    }
    plan.events.push_back(e);
  }
  return plan;
}

}  // namespace vpmem::sim
