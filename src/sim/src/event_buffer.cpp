#include "vpmem/sim/event_buffer.hpp"

#include <limits>
#include <stdexcept>

namespace vpmem::sim {

EventBuffer::EventBuffer(std::size_t capacity)
    : capacity_{capacity == 0 ? kDefaultCapacity : capacity} {
  // Round up to whole chunks so eviction keeps at least `capacity` events.
  capacity_ = ((capacity_ + kChunkEvents - 1) / kChunkEvents) * kChunkEvents;
  // Allocate and touch every slab now: the zero-fill faults the pages in,
  // so the per-event path never pays malloc or first-touch cost.
  for (std::size_t have = 0; have < capacity_; have += kChunkEvents) {
    free_.push_back(std::make_unique<PackedEvent[]>(kChunkEvents));
  }
}

void EventBuffer::new_chunk() {
  Chunk next;
  if (size_ + kChunkEvents > capacity_ && !chunks_.empty()) {
    // Evict the oldest chunk but keep its slab: the warm ring runs
    // allocation-free.
    size_ -= chunks_.front().count;
    next = std::move(chunks_.front());
    next.count = 0;
    chunks_.pop_front();
  } else if (!free_.empty()) {
    next.data = std::move(free_.back());
    free_.pop_back();
  } else {
    next.data = std::make_unique_for_overwrite<PackedEvent[]>(kChunkEvents);
  }
  chunks_.push_back(std::move(next));
  // deque never relocates surviving elements on push_back/pop_front, so
  // the cached tail pointer stays valid until the next new_chunk().
  tail_ = &chunks_.back();
}

void EventBuffer::push(const Event& e) {
  if (e.port > std::numeric_limits<std::uint16_t>::max() ||
      e.blocker > std::numeric_limits<std::uint16_t>::max() ||
      e.bank > std::numeric_limits<std::int32_t>::max()) {
    throw std::invalid_argument{"EventBuffer::push: port/bank exceeds packed field width"};
  }
  if (tail_ == nullptr || tail_->count == kChunkEvents) new_chunk();
  PackedEvent& p = tail_->data[tail_->count++];
  p.cycle = e.cycle;
  p.element = e.element;
  p.bank = static_cast<std::int32_t>(e.bank);
  p.port = static_cast<std::uint16_t>(e.port);
  p.blocker = static_cast<std::uint16_t>(e.blocker);
  p.kind = e.type == Event::Type::grant
               ? std::uint8_t{0}
               : static_cast<std::uint8_t>(1 + static_cast<int>(e.conflict));
  ++size_;
  ++recorded_;
}

i64 EventBuffer::first_cycle() const {
  if (chunks_.empty() || chunks_.front().count == 0) return 0;
  return chunks_.front().data[0].cycle;
}

std::vector<Event> EventBuffer::events() const {
  std::vector<Event> out;
  out.reserve(size_);
  for_each([&out](const Event& e) { out.push_back(e); });
  return out;
}

void EventBuffer::clear() {
  for (auto& chunk : chunks_) free_.push_back(std::move(chunk.data));
  chunks_.clear();
  tail_ = nullptr;
  size_ = 0;
  recorded_ = 0;
}

EventRecorder::EventRecorder(MemorySystem& mem, std::shared_ptr<EventBuffer> buffer,
                             std::size_t capacity)
    : mem_{mem},
      buffer_{buffer ? std::move(buffer) : std::make_shared<EventBuffer>(capacity)},
      hook_{mem.add_event_hook(
          [b = buffer_.get()](const Event& e) { b->push(e); })},
      attached_{true} {}

EventRecorder::~EventRecorder() { detach(); }

void EventRecorder::detach() {
  if (!attached_) return;
  mem_.remove_event_hook(hook_);
  attached_ = false;
}

}  // namespace vpmem::sim
