// Horizontal ASCII bar charts for the bench harnesses: the paper reports
// Fig. 10 as curves, so the reproduction prints the same series as bars
// next to the raw tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vpmem {

/// One labelled series rendered as horizontal bars, scaled to `width`
/// characters at the maximum value.
class BarChart {
 public:
  explicit BarChart(std::string title = {}, std::size_t width = 50);

  void add(std::string label, double value);

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

  /// Render all bars; values are printed after each bar.  Bars of the
  /// maximum value span the full width; a zero/negative maximum renders
  /// empty bars.
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::string label;
    double value;
  };
  std::string title_;
  std::size_t width_;
  std::vector<Row> rows_;
};

}  // namespace vpmem
