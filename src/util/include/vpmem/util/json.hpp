// Minimal JSON document model, writer and parser — the serialization
// backbone of vpmem::obs run reports and the bench telemetry files.
//
// Scope is deliberately small: the value model of RFC 8259 with ordered
// objects (members serialize in insertion order, so reports are stable
// and diffable), shortest-round-trip doubles, and a strict recursive
// parser for the round-trip tests.  Not a general-purpose library: no
// comments, no NaN/Inf literals (non-finite doubles serialize as null).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "vpmem/util/numeric.hpp"

namespace vpmem {

/// One JSON value: null, bool, integer, double, string, array or object.
/// Integers are kept distinct from doubles so counters survive a
/// round-trip exactly.
class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion-ordered object representation.  Lookup is linear — report
  /// objects hold tens of keys, never thousands.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() noexcept : value_{nullptr} {}
  Json(std::nullptr_t) noexcept : value_{nullptr} {}          // NOLINT(google-explicit-constructor)
  Json(bool b) noexcept : value_{b} {}                        // NOLINT(google-explicit-constructor)
  Json(i64 n) noexcept : value_{n} {}                         // NOLINT(google-explicit-constructor)
  Json(int n) noexcept : value_{static_cast<i64>(n)} {}       // NOLINT(google-explicit-constructor)
  Json(std::size_t n) noexcept : value_{static_cast<i64>(n)} {}  // NOLINT(google-explicit-constructor)
  Json(double d) noexcept : value_{d} {}                      // NOLINT(google-explicit-constructor)
  Json(const char* s) : value_{std::string{s}} {}             // NOLINT(google-explicit-constructor)
  Json(std::string s) : value_{std::move(s)} {}               // NOLINT(google-explicit-constructor)
  Json(Array a) : value_{std::move(a)} {}                     // NOLINT(google-explicit-constructor)
  Json(Object o) : value_{std::move(o)} {}                    // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Json array() { return Json{Array{}}; }
  [[nodiscard]] static Json object() { return Json{Object{}}; }

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_int() const noexcept { return std::holds_alternative<i64>(value_); }
  [[nodiscard]] bool is_double() const noexcept { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] i64 as_int() const;       ///< integer values only
  [[nodiscard]] double as_double() const; ///< any number (int widens)
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member access: inserts a null member on first use (mutable
  /// overload), throws std::out_of_range if absent (const overload).
  Json& operator[](std::string_view key);
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Array element access (const; throws std::out_of_range).
  [[nodiscard]] const Json& at(std::size_t index) const;

  /// Append to an array (value must be an array or null; null becomes []).
  void push_back(Json element);

  /// Number of members/elements (object or array; 0 otherwise).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Serialize.  indent < 0: compact single line; indent >= 0: pretty-
  /// printed with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;
  void dump(std::ostream& os, int indent = -1) const;

  /// Strict parser; throws std::runtime_error with an offset-annotated
  /// message on malformed input or trailing garbage.
  [[nodiscard]] static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b) noexcept = default;

 private:
  void write(std::ostream& os, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, i64, double, std::string, Array, Object> value_;
};

/// Append `value` as one line of an JSONL (JSON Lines) file.
void append_jsonl(std::ostream& os, const Json& value);

}  // namespace vpmem
