// Typed error hierarchy with stable, machine-readable error codes.
//
// Library layers throw vpmem::Error instead of bare std::runtime_error /
// std::invalid_argument so that callers (the CLI, the fuzz harness, sweep
// drivers) can react to *what* went wrong without string-matching what():
// each code is a stable contract — vpmem_cli maps them to distinct process
// exit codes and to the "code" member of its --json error envelope.
#pragma once

#include <stdexcept>
#include <string>

namespace vpmem {

/// Stable error codes.  Append-only: the names (and the CLI exit codes
/// derived from them) are part of the vpmem.cli/1 contract.
enum class ErrorCode {
  /// A MemoryConfig/StreamConfig (or other run parameter) failed
  /// validation.
  config_invalid,
  /// A FaultPlan failed validation (unknown event kind, bank/path out of
  /// range, unsorted or negative cycles, bad policy).
  fault_plan_invalid,
  /// A guarded run exhausted its cycle budget before the workload
  /// finished.
  deadline_exceeded,
  /// A guarded run made no progress (no grant) for the livelock window —
  /// typically a request pinned on a failed bank under the stall policy.
  livelock,
};

/// Stable lower-case name of `code` ("config_invalid", ...).
[[nodiscard]] std::string to_string(ErrorCode code);

/// Exception carrying an ErrorCode.  Derives from std::runtime_error so
/// pre-existing catch sites keep working; new code should catch
/// vpmem::Error and dispatch on code().
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what) : std::runtime_error{what}, code_{code} {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace vpmem
