// Retry-with-exponential-backoff policy for the campaign executor.
//
// Delays are *deterministically* jittered: the jitter factor is a pure
// function of (seed, attempt), so a replayed campaign schedules retries
// identically while distinct jobs still decorrelate (each passes its own
// config-hash-derived seed).  Nothing here sleeps — callers decide how to
// wait — so the policy is directly unit-testable.
#pragma once

#include <cstdint>

namespace vpmem {

/// Exponential backoff with bounded attempts and multiplicative jitter.
struct BackoffPolicy {
  /// Total attempts for a transiently-failing job, including the first.
  int max_attempts = 3;
  /// Delay before the second attempt (milliseconds).
  double base_ms = 25.0;
  /// Growth factor per further attempt.
  double multiplier = 2.0;
  /// Ceiling applied before jitter.
  double cap_ms = 2000.0;
  /// Jitter fraction in [0, 1): the delay is scaled by a deterministic
  /// factor drawn uniformly from [1 - jitter, 1 + jitter].
  double jitter = 0.5;

  /// Delay in milliseconds before `attempt` (>= 2; attempt 1 never
  /// waits).  Deterministic in (seed, attempt).
  [[nodiscard]] double delay_ms(int attempt, std::uint64_t seed) const noexcept;

  /// True if `attempt` (1-based) may still be retried afterwards.
  [[nodiscard]] bool retryable(int attempt) const noexcept { return attempt < max_attempts; }
};

}  // namespace vpmem
