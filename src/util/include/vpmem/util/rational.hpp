// Exact rational arithmetic.  Effective bandwidths in the paper are exact
// rationals (e.g. b_eff = 1 + d1/d2 for a unique barrier, r1/nc for a
// self-conflicting single stream, 3/2 for the linked conflict of Fig. 8a),
// so the simulator reports them exactly rather than as floating point.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "vpmem/util/numeric.hpp"

namespace vpmem {

/// Always-normalized rational number: gcd(num, den) == 1, den > 0.
class Rational {
 public:
  constexpr Rational() noexcept = default;
  constexpr Rational(i64 value) noexcept : num_{value} {}  // NOLINT(google-explicit-constructor)
  constexpr Rational(i64 num, i64 den) : num_{num}, den_{den} { normalize(); }

  [[nodiscard]] constexpr i64 num() const noexcept { return num_; }
  [[nodiscard]] constexpr i64 den() const noexcept { return den_; }

  [[nodiscard]] constexpr double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  [[nodiscard]] constexpr bool is_integer() const noexcept { return den_ == 1; }

  [[nodiscard]] std::string str() const;

  friend constexpr Rational operator+(Rational a, Rational b) {
    return Rational{a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_};
  }
  friend constexpr Rational operator-(Rational a, Rational b) {
    return Rational{a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_};
  }
  friend constexpr Rational operator*(Rational a, Rational b) {
    return Rational{a.num_ * b.num_, a.den_ * b.den_};
  }
  friend constexpr Rational operator/(Rational a, Rational b) {
    if (b.num_ == 0) throw std::domain_error{"Rational: division by zero"};
    return Rational{a.num_ * b.den_, a.den_ * b.num_};
  }
  constexpr Rational operator-() const noexcept {
    Rational r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
  }
  constexpr Rational& operator+=(Rational o) { return *this = *this + o; }
  constexpr Rational& operator-=(Rational o) { return *this = *this - o; }
  constexpr Rational& operator*=(Rational o) { return *this = *this * o; }
  constexpr Rational& operator/=(Rational o) { return *this = *this / o; }

  friend constexpr bool operator==(Rational a, Rational b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend constexpr std::strong_ordering operator<=>(Rational a, Rational b) noexcept {
    return (a.num_ * b.den_) <=> (b.num_ * a.den_);
  }

  friend std::ostream& operator<<(std::ostream& os, Rational r);

 private:
  constexpr void normalize() {
    if (den_ == 0) throw std::domain_error{"Rational: zero denominator"};
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const i64 g = std::gcd(num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
  }

  i64 num_{0};
  i64 den_{1};
};

}  // namespace vpmem
