// Append-only campaign journal (schema "vpmem.journal/1").
//
// Every job attempt a campaign executor makes lands as one JSONL line —
// job id, config hash, attempt number, status, and the result payload on
// success — flushed immediately so a crashed or killed campaign leaves a
// complete trail up to the instant it died.  Resume reads the journal
// back, keeps the *final* record per config hash, and skips work that
// already completed.  A torn final line (the writer died mid-write) is
// tolerated and reported, never fatal; corruption anywhere else is an
// error, because it means something other than a crash edited the file.
#pragma once

#include <mutex>
#include <fstream>
#include <string>
#include <vector>

#include "vpmem/util/json.hpp"

namespace vpmem {

/// Current value of the "schema" member of every journal line.
inline constexpr const char* kJournalSchema = "vpmem.journal/1";

/// One journal line: the outcome of one attempt at one job.
struct JournalRecord {
  std::string job;     ///< stable job id within the campaign
  std::string hash;    ///< config hash (resume key, see stable_hash())
  int attempt = 1;     ///< 1-based attempt number
  /// "ok" | "retry" | "failed" | "crashed" | "quarantined".
  std::string status;
  std::string error;   ///< stable error code / signal name (empty when ok)
  std::string repro;   ///< one-line repro token (crashes and quarantines)
  int worker = -1;     ///< worker index that ran the attempt (-1 unknown)
  double wall_ms = 0.0;
  Json result;         ///< job result payload (null unless status == "ok")

  [[nodiscard]] Json to_json() const;
  /// Throws std::runtime_error on schema mismatch or missing members.
  [[nodiscard]] static JournalRecord from_json(const Json& json);
};

/// Thread-safe append-only writer: one compact JSON line per record,
/// flushed per append.  Opens in append mode so resumed campaigns extend
/// the existing trail.  Throws std::runtime_error if the file cannot be
/// opened.
class JournalWriter {
 public:
  explicit JournalWriter(const std::string& path);

  void append(const JournalRecord& record);
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::mutex mutex_;
  std::ofstream out_;
  std::string path_;
};

/// Everything read back from a journal file.
struct JournalScan {
  std::vector<JournalRecord> records;  ///< in file (append) order
  bool truncated_tail = false;  ///< final line was torn and dropped

  /// Final record per config hash, file order preserved.  This is the
  /// resume view: "ok" and "quarantined" entries are settled jobs.
  [[nodiscard]] std::vector<JournalRecord> latest_per_hash() const;
};

/// Parse `path`.  A missing file yields an empty scan (a campaign that
/// never started is resumable); a torn final line is dropped and flagged;
/// malformed content elsewhere throws std::runtime_error.
[[nodiscard]] JournalScan read_journal(const std::string& path);

}  // namespace vpmem
