// Stable content hashing for campaign job identity.
//
// The executor journals every job under a hash of its *configuration*
// (not its PRNG seed or its position in the grid) so a resumed campaign
// recognizes completed work even after the surrounding sweep is
// reordered or extended.  FNV-1a over a canonical string encoding is
// used deliberately: the value is part of the vpmem.journal/1 contract,
// so it must be identical across platforms, compilers and processes —
// std::hash guarantees none of that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace vpmem {

/// 64-bit FNV-1a over `bytes`.  Stable across platforms and runs.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// `value` as 16 lowercase hex digits (zero-padded, no prefix).
[[nodiscard]] std::string hex64(std::uint64_t value);

/// Canonical journal-key form: hex64(fnv1a64(bytes)).
[[nodiscard]] std::string stable_hash(std::string_view bytes);

}  // namespace vpmem
