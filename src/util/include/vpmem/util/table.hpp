// Minimal tabular output used by the benchmark harnesses to print the
// rows/series of each paper figure, both human-aligned and as CSV.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace vpmem {

/// Column-aligned table with an optional title.  Cells are strings; use
/// cell() helpers for numeric types.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, std::string title = {});

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept { return headers_; }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Space-padded human-readable rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (cells containing comma/quote/newline are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers so call sites read uniformly.
[[nodiscard]] std::string cell(std::string_view s);
[[nodiscard]] std::string cell(long long v);
[[nodiscard]] std::string cell(unsigned long long v);
[[nodiscard]] std::string cell(int v);
[[nodiscard]] std::string cell(double v, int precision = 4);

}  // namespace vpmem
