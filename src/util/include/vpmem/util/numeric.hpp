// Number-theoretic helpers used throughout the analytic model of
// Oed & Lange (1985).  All arithmetic is signed 64-bit; bank counts and
// distances in the paper are tiny (m <= a few thousand), so overflow is
// not a practical concern, but egcd/mod helpers are written to be exact
// for the full range anyway.
#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vpmem {

using i64 = std::int64_t;

/// Greatest common divisor with gcd(0, 0) == 0 and gcd(a, 0) == |a|,
/// matching the paper's convention gcd(m, 0) = m (used right after
/// Theorem 3: streams with d1 == d2 are conflict-free iff r >= 2*nc).
[[nodiscard]] constexpr i64 gcd(i64 a, i64 b) noexcept {
  return std::gcd(a, b);
}

/// gcd of three values, the paper's f = gcd(m, d1, d2).
[[nodiscard]] constexpr i64 gcd(i64 a, i64 b, i64 c) noexcept {
  return std::gcd(std::gcd(a, b), c);
}

/// Least common multiple; lcm(a, 0) == 0.
[[nodiscard]] constexpr i64 lcm(i64 a, i64 b) noexcept {
  return std::lcm(a, b);
}

/// Result of the extended Euclidean algorithm: g = gcd(a, b) = a*x + b*y.
struct Egcd {
  i64 g;
  i64 x;
  i64 y;
};

/// Extended Euclidean algorithm (Birkhoff & MacLane [9] in the paper).
[[nodiscard]] constexpr Egcd egcd(i64 a, i64 b) noexcept {
  if (b == 0) {
    return (a < 0) ? Egcd{-a, -1, 0} : Egcd{a, 1, 0};
  }
  const Egcd sub = egcd(b, a % b);
  return Egcd{sub.g, sub.y, sub.x - (a / b) * sub.y};
}

/// Canonical residue of a modulo m, in [0, m). Requires m > 0.
[[nodiscard]] constexpr i64 mod_norm(i64 a, i64 m) {
  if (m <= 0) throw std::invalid_argument{"mod_norm: modulus must be positive"};
  const i64 r = a % m;
  return (r < 0) ? r + m : r;
}

/// Multiplicative inverse of a modulo m; requires gcd(a, m) == 1.
/// Used by the Appendix isomorphism d1 (+) d2 == k*d1 (+) k*d2 (mod m).
[[nodiscard]] constexpr i64 mod_inverse(i64 a, i64 m) {
  if (m <= 0) throw std::invalid_argument{"mod_inverse: modulus must be positive"};
  const Egcd e = egcd(mod_norm(a, m), m);
  if (e.g != 1) throw std::invalid_argument{"mod_inverse: argument not coprime to modulus"};
  return mod_norm(e.x, m);
}

/// Ceiling division for positive divisor.
[[nodiscard]] constexpr i64 ceil_div(i64 a, i64 b) {
  if (b <= 0) throw std::invalid_argument{"ceil_div: divisor must be positive"};
  return (a >= 0) ? (a + b - 1) / b : -((-a) / b);
}

/// True if a divides b (a != 0).
[[nodiscard]] constexpr bool divides(i64 a, i64 b) noexcept {
  return a != 0 && b % a == 0;
}

/// True if gcd(a, b) == 1.
[[nodiscard]] constexpr bool coprime(i64 a, i64 b) noexcept {
  return std::gcd(a, b) == 1;
}

/// All positive divisors of n (n > 0), ascending.  The Appendix notes that
/// for the first stream only distances d1 | m need be considered; sweeps
/// over theorem hypotheses use this.
[[nodiscard]] std::vector<i64> divisors(i64 n);

}  // namespace vpmem
