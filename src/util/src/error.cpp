#include "vpmem/util/error.hpp"

namespace vpmem {

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::config_invalid: return "config_invalid";
    case ErrorCode::fault_plan_invalid: return "fault_plan_invalid";
    case ErrorCode::deadline_exceeded: return "deadline_exceeded";
    case ErrorCode::livelock: return "livelock";
  }
  return "?";
}

}  // namespace vpmem
