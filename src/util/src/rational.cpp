#include "vpmem/util/rational.hpp"

#include <ostream>

namespace vpmem {

std::string Rational::str() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, Rational r) { return os << r.str(); }

}  // namespace vpmem
