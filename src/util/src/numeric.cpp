#include "vpmem/util/numeric.hpp"

#include <algorithm>

namespace vpmem {

std::vector<i64> divisors(i64 n) {
  if (n <= 0) throw std::invalid_argument{"divisors: argument must be positive"};
  std::vector<i64> low;
  std::vector<i64> high;
  for (i64 d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      low.push_back(d);
      if (d != n / d) high.push_back(n / d);
    }
  }
  low.insert(low.end(), high.rbegin(), high.rend());
  return low;
}

}  // namespace vpmem
