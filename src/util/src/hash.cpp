#include "vpmem/util/hash.hpp"

namespace vpmem {

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::string stable_hash(std::string_view bytes) { return hex64(fnv1a64(bytes)); }

}  // namespace vpmem
