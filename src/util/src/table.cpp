#include "vpmem/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vpmem {

Table::Table(std::vector<std::string> headers, std::string title)
    : title_{std::move(title)}, headers_{std::move(headers)} {
  if (headers_.empty()) throw std::invalid_argument{"Table: need at least one column"};
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table: row width does not match header count"};
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  if (!title_.empty()) os << title_ << '\n';
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << r[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(r[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

std::string cell(std::string_view s) { return std::string{s}; }
std::string cell(long long v) { return std::to_string(v); }
std::string cell(unsigned long long v) { return std::to_string(v); }
std::string cell(int v) { return std::to_string(v); }

std::string cell(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace vpmem
