#include "vpmem/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vpmem {

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw std::runtime_error{std::string{"Json: value is not "} + expected};
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xffu);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN literal
    os << "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
  if (ec != std::errc{}) type_error("a representable double");
  // Keep integral doubles visibly doubles so a round-trip preserves type.
  std::string_view text{buf, static_cast<std::size_t>(ptr - buf)};
  os << text;
  if (text.find_first_of(".eE") == std::string_view::npos) os << ".0";
}

/// Strict recursive-descent parser over a string_view.
///
/// Nesting depth is capped: adversarial input like ten thousand '['s
/// would otherwise recurse once per bracket and overflow the stack —
/// undefined behaviour reachable from any file we parse (fuzz --replay
/// corpora, report round-trips).  No legitimate vpmem.* document nests
/// more than a handful of levels.
class Parser {
 public:
  /// Maximum container nesting accepted by parse().
  static constexpr int kMaxDepth = 128;

  explicit Parser(std::string_view text) : text_{text} {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error{"Json::parse: " + what + " at offset " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': {
        if (depth_ >= kMaxDepth) fail("nesting too deep");
        ++depth_;
        Json v = object();
        --depth_;
        return v;
      }
      case '[': {
        if (depth_ >= kMaxDepth) fail("nesting too deep");
        ++depth_;
        Json v = array();
        --depth_;
        return v;
      }
      case '"': return Json{string()};
      case 't':
        if (consume_literal("true")) return Json{true};
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json{false};
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json{nullptr};
        fail("invalid literal");
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json{std::move(members)};
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json{std::move(members)};
    }
  }

  Json array() {
    expect('[');
    Json::Array elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json{std::move(elements)};
    }
    while (true) {
      elements.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json{std::move(elements)};
    }
  }

  unsigned hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      code <<= 4u;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80u) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800u) {
      out += static_cast<char>(0xC0u | (cp >> 6u));
      out += static_cast<char>(0x80u | (cp & 0x3Fu));
    } else if (cp < 0x10000u) {
      out += static_cast<char>(0xE0u | (cp >> 12u));
      out += static_cast<char>(0x80u | ((cp >> 6u) & 0x3Fu));
      out += static_cast<char>(0x80u | (cp & 0x3Fu));
    } else {
      out += static_cast<char>(0xF0u | (cp >> 18u));
      out += static_cast<char>(0x80u | ((cp >> 12u) & 0x3Fu));
      out += static_cast<char>(0x80u | ((cp >> 6u) & 0x3Fu));
      out += static_cast<char>(0x80u | (cp & 0x3Fu));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800u && cp <= 0xDBFFu) {  // high surrogate: pair required
            if (peek() != '\\') fail("unpaired surrogate");
            ++pos_;
            if (peek() != 'u') fail("unpaired surrogate");
            ++pos_;
            const unsigned lo = hex4();
            if (lo < 0xDC00u || lo > 0xDFFFu) fail("invalid low surrogate");
            cp = 0x10000u + ((cp - 0xD800u) << 10u) + (lo - 0xDC00u);
          } else if (cp >= 0xDC00u && cp <= 0xDFFFu) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Json number() {
    // Strict RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // "01", "1." and "1e" are rejected rather than passed to from_chars,
    // which is more lenient than JSON.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    if (pos_ == int_start) fail("invalid number");
    if (text_[int_start] == '0' && pos_ - int_start > 1) fail("leading zero in number");
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      const std::size_t frac_start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
      if (pos_ == frac_start) fail("missing digits after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
      if (pos_ == exp_start) fail("missing digits in exponent");
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!is_double) {
      i64 n = 0;
      const auto [ptr, ec] = std::from_chars(first, last, n);
      if (ec == std::errc{} && ptr == last) return Json{n};
      // Integer overflow: fall through to double.
    }
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc{} || ptr != last) fail("invalid number");
    return Json{d};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  type_error("a bool");
}

i64 Json::as_int() const {
  if (const i64* n = std::get_if<i64>(&value_)) return *n;
  type_error("an integer");
}

double Json::as_double() const {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  if (const i64* n = std::get_if<i64>(&value_)) return static_cast<double>(*n);
  type_error("a number");
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  type_error("a string");
}

const Json::Array& Json::as_array() const {
  if (const Array* a = std::get_if<Array>(&value_)) return *a;
  type_error("an array");
}

const Json::Object& Json::as_object() const {
  if (const Object* o = std::get_if<Object>(&value_)) return *o;
  type_error("an object");
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = Object{};
  Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) type_error("an object");
  for (auto& [k, v] : *o) {
    if (k == key) return v;
  }
  o->emplace_back(std::string{key}, Json{});
  return o->back().second;
}

const Json& Json::at(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return v;
  }
  throw std::out_of_range{"Json: no member '" + std::string{key} + "'"};
}

bool Json::contains(std::string_view key) const {
  const Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) return false;
  for (const auto& [k, v] : *o) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(std::size_t index) const {
  const Array& a = as_array();
  if (index >= a.size()) throw std::out_of_range{"Json: array index out of range"};
  return a[index];
}

void Json::push_back(Json element) {
  if (is_null()) value_ = Array{};
  Array* a = std::get_if<Array>(&value_);
  if (a == nullptr) type_error("an array");
  a->push_back(std::move(element));
}

std::size_t Json::size() const noexcept {
  if (const Array* a = std::get_if<Array>(&value_)) return a->size();
  if (const Object* o = std::get_if<Object>(&value_)) return o->size();
  return 0;
}

void Json::write(std::ostream& os, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent < 0) return;
    os << '\n' << std::string(static_cast<std::size_t>(indent * level), ' ');
  };
  if (is_null()) {
    os << "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const i64* n = std::get_if<i64>(&value_)) {
    os << *n;
  } else if (const double* d = std::get_if<double>(&value_)) {
    write_double(os, *d);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    write_escaped(os, *s);
  } else if (const Array* a = std::get_if<Array>(&value_)) {
    if (a->empty()) {
      os << "[]";
      return;
    }
    os << '[';
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i > 0) os << ',';
      newline(depth + 1);
      (*a)[i].write(os, indent, depth + 1);
    }
    newline(depth);
    os << ']';
  } else if (const Object* o = std::get_if<Object>(&value_)) {
    if (o->empty()) {
      os << "{}";
      return;
    }
    os << '{';
    for (std::size_t i = 0; i < o->size(); ++i) {
      if (i > 0) os << ',';
      newline(depth + 1);
      write_escaped(os, (*o)[i].first);
      os << (indent < 0 ? ":" : ": ");
      (*o)[i].second.write(os, indent, depth + 1);
    }
    newline(depth);
    os << '}';
  }
}

std::string Json::dump(int indent) const {
  std::ostringstream out;
  write(out, indent, 0);
  return out.str();
}

void Json::dump(std::ostream& os, int indent) const { write(os, indent, 0); }

Json Json::parse(std::string_view text) { return Parser{text}.run(); }

void append_jsonl(std::ostream& os, const Json& value) {
  value.dump(os, /*indent=*/-1);
  os << '\n';
}

}  // namespace vpmem
