#include "vpmem/util/journal.hpp"

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <unordered_map>

namespace vpmem {

namespace {

/// Offset just past the last '\n' in the file (0 if none), scanning
/// backward in chunks so healing stays cheap on large journals.
std::uintmax_t last_complete_line_end(std::ifstream& in, std::uintmax_t size) {
  constexpr std::uintmax_t kChunk = 4096;
  std::string buf;
  std::uintmax_t end = size;
  while (end > 0) {
    const std::uintmax_t begin = end > kChunk ? end - kChunk : 0;
    buf.resize(static_cast<std::size_t>(end - begin));
    in.seekg(static_cast<std::streamoff>(begin));
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    for (std::size_t i = buf.size(); i-- > 0;) {
      if (buf[i] == '\n') return begin + i + 1;
    }
    end = begin;
  }
  return 0;
}

/// Drop a crash-torn trailing partial line before appending.  The reader
/// tolerates a torn tail, but *appending after one* would weld the next
/// record onto the fragment and corrupt the journal mid-stream — which
/// the reader rightly treats as fatal.
void heal_torn_tail(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return;
  std::ifstream in{path, std::ios::binary};
  if (!in) return;
  in.seekg(-1, std::ios::end);
  char last = '\n';
  in.get(last);
  if (last == '\n') return;
  std::filesystem::resize_file(path, last_complete_line_end(in, size), ec);
}

}  // namespace

Json JournalRecord::to_json() const {
  Json doc = Json::object();
  doc["schema"] = kJournalSchema;
  doc["job"] = job;
  doc["hash"] = hash;
  doc["attempt"] = attempt;
  doc["status"] = status;
  if (!error.empty()) doc["error"] = error;
  if (!repro.empty()) doc["repro"] = repro;
  doc["worker"] = worker;
  doc["wall_ms"] = wall_ms;
  if (!result.is_null()) doc["result"] = result;
  return doc;
}

JournalRecord JournalRecord::from_json(const Json& json) {
  if (!json.is_object() || !json.contains("schema") ||
      json.at("schema").as_string() != kJournalSchema) {
    throw std::runtime_error{"journal record: missing or unknown schema"};
  }
  JournalRecord r;
  r.job = json.at("job").as_string();
  r.hash = json.at("hash").as_string();
  r.attempt = static_cast<int>(json.at("attempt").as_int());
  r.status = json.at("status").as_string();
  if (json.contains("error")) r.error = json.at("error").as_string();
  if (json.contains("repro")) r.repro = json.at("repro").as_string();
  if (json.contains("worker")) r.worker = static_cast<int>(json.at("worker").as_int());
  if (json.contains("wall_ms")) r.wall_ms = json.at("wall_ms").as_double();
  if (json.contains("result")) r.result = json.at("result");
  return r;
}

JournalWriter::JournalWriter(const std::string& path) : path_{path} {
  heal_torn_tail(path);
  out_.open(path, std::ios::app);
  if (!out_) throw std::runtime_error{"journal: cannot open '" + path + "' for appending"};
}

void JournalWriter::append(const JournalRecord& record) {
  const std::string line = record.to_json().dump();
  const std::lock_guard<std::mutex> lock{mutex_};
  out_ << line << '\n';
  out_.flush();
}

std::vector<JournalRecord> JournalScan::latest_per_hash() const {
  std::vector<JournalRecord> out;
  std::unordered_map<std::string, std::size_t> index;
  for (const auto& r : records) {
    const auto it = index.find(r.hash);
    if (it == index.end()) {
      index.emplace(r.hash, out.size());
      out.push_back(r);
    } else {
      out[it->second] = r;
    }
  }
  return out;
}

JournalScan read_journal(const std::string& path) {
  JournalScan scan;
  std::ifstream in{path};
  if (!in) return scan;  // no journal yet: nothing to resume
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    try {
      scan.records.push_back(JournalRecord::from_json(Json::parse(lines[i])));
    } catch (const std::exception& e) {
      if (i + 1 == lines.size()) {
        // The writer died mid-line; everything before it is intact.
        scan.truncated_tail = true;
        break;
      }
      throw std::runtime_error{"journal '" + path + "' line " + std::to_string(i + 1) +
                               ": " + e.what()};
    }
  }
  return scan;
}

}  // namespace vpmem
