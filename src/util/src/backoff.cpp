#include "vpmem/util/backoff.hpp"

#include <algorithm>
#include <cmath>

namespace vpmem {

namespace {

// SplitMix64 finalizer (util cannot depend on vpmem::baseline): a single
// mixing round is plenty for one jitter draw per (seed, attempt).
std::uint64_t mix(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

double BackoffPolicy::delay_ms(int attempt, std::uint64_t seed) const noexcept {
  if (attempt <= 1 || base_ms <= 0.0) return 0.0;
  const double exponent = static_cast<double>(attempt - 2);
  const double raw = std::min(cap_ms, base_ms * std::pow(std::max(1.0, multiplier), exponent));
  const double j = std::clamp(jitter, 0.0, 0.999);
  if (j == 0.0) return raw;
  constexpr std::uint64_t kStep = 0x9E3779B97F4A7C15ULL;
  const std::uint64_t draw = mix(seed ^ (kStep * static_cast<std::uint64_t>(attempt)));
  // Uniform in [1 - j, 1 + j] from the top 53 bits of the draw.
  const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return raw * (1.0 - j + 2.0 * j * unit);
}

}  // namespace vpmem
