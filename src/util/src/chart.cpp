#include "vpmem/util/chart.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace vpmem {

BarChart::BarChart(std::string title, std::size_t width)
    : title_{std::move(title)}, width_{width} {
  if (width_ < 1) throw std::invalid_argument{"BarChart: width must be >= 1"};
}

void BarChart::add(std::string label, double value) {
  if (value < 0.0) throw std::invalid_argument{"BarChart: values must be >= 0"};
  rows_.push_back(Row{std::move(label), value});
}

void BarChart::print(std::ostream& os) const {
  if (!title_.empty()) os << title_ << '\n';
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& r : rows_) {
    max_value = std::max(max_value, r.value);
    label_width = std::max(label_width, r.label.size());
  }
  for (const auto& r : rows_) {
    const auto bar = static_cast<std::size_t>(
        max_value > 0.0 ? (r.value / max_value) * static_cast<double>(width_) + 0.5 : 0.0);
    os << std::setw(static_cast<int>(label_width)) << std::right << r.label << " |"
       << std::string(bar, '#') << std::string(width_ - std::min(bar, width_), ' ') << "| "
       << r.value << '\n';
  }
}

}  // namespace vpmem
