#include "vpmem/check/reference_model.hpp"

#include <stdexcept>

namespace vpmem::check {

namespace {
constexpr std::size_t kNobody = static_cast<std::size_t>(-1);
}

std::string to_string(FaultKind fault) {
  switch (fault) {
    case FaultKind::none: return "none";
    case FaultKind::ignore_path_conflict: return "ignore-path-conflict";
    case FaultKind::short_bank_busy: return "short-bank-busy";
    case FaultKind::priority_inversion: return "priority-inversion";
    case FaultKind::misclassify_simultaneous: return "misclassify-simultaneous";
    case FaultKind::drop_rotation: return "drop-rotation";
  }
  return "?";
}

FaultKind fault_from_string(const std::string& name) {
  for (FaultKind f : {FaultKind::none, FaultKind::ignore_path_conflict,
                      FaultKind::short_bank_busy, FaultKind::priority_inversion,
                      FaultKind::misclassify_simultaneous, FaultKind::drop_rotation}) {
    if (to_string(f) == name) return f;
  }
  throw std::invalid_argument{"fault_from_string: unknown fault '" + name + "'"};
}

const std::vector<FaultKind>& all_faults() {
  static const std::vector<FaultKind> kFaults = {
      FaultKind::ignore_path_conflict, FaultKind::short_bank_busy,
      FaultKind::priority_inversion, FaultKind::misclassify_simultaneous,
      FaultKind::drop_rotation};
  return kFaults;
}

ReferenceModel::ReferenceModel(sim::MemoryConfig config, std::vector<sim::StreamConfig> streams,
                               FaultKind fault)
    : config_{config}, streams_{std::move(streams)}, fault_{fault} {
  config_.validate();
  for (const auto& s : streams_) s.validate(config_);
  issued_.assign(streams_.size(), 0);
}

i64 ReferenceModel::busy_length() const noexcept {
  return fault_ == FaultKind::short_bank_busy ? std::max<i64>(1, config_.bank_cycle - 1)
                                              : config_.bank_cycle;
}

std::size_t ReferenceModel::bank_active_from_earlier(i64 bank, i64 t) const {
  const i64 len = busy_length();
  // Log cycles are non-decreasing, so scanning backwards can stop at the
  // first event too old to still occupy a bank.
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    if (it->cycle + len <= t) break;
    if (it->type == sim::Event::Type::grant && it->bank == bank && it->cycle < t) {
      return it->port;
    }
  }
  return kNobody;
}

std::size_t ReferenceModel::same_period_bank_winner(i64 bank, i64 t) const {
  for (auto it = log_.rbegin(); it != log_.rend() && it->cycle == t; ++it) {
    if (it->type == sim::Event::Type::grant && it->bank == bank) return it->port;
  }
  return kNobody;
}

std::size_t ReferenceModel::same_period_path_winner(i64 cpu, i64 section, i64 t) const {
  for (auto it = log_.rbegin(); it != log_.rend() && it->cycle == t; ++it) {
    if (it->type == sim::Event::Type::grant && streams_[it->port].cpu == cpu &&
        config_.section_of(it->bank) == section) {
      return it->port;
    }
  }
  return kNobody;
}

void ReferenceModel::step() {
  const i64 t = now_;
  const std::size_t p = streams_.size();
  if (p == 0) {
    ++now_;
    return;
  }
  const bool cyclic = config_.priority == sim::PriorityRule::cyclic;
  const std::size_t first = cyclic ? rr_ % p : 0;

  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t rank = fault_ == FaultKind::priority_inversion ? p - 1 - i : i;
    const std::size_t idx = (first + rank) % p;
    const sim::StreamConfig& s = streams_[idx];
    if (issued_[idx] >= s.length || t < s.start_cycle) continue;

    const i64 bank = s.bank_of(issued_[idx], config_.banks);
    sim::Event ev{.type = sim::Event::Type::conflict,
                  .cycle = t,
                  .port = idx,
                  .bank = bank,
                  .element = issued_[idx],
                  .conflict = sim::ConflictKind::bank,
                  .blocker = idx};

    // Rule 1: the bank was claimed this very period by a higher-priority
    // port — simultaneous bank conflict across CPUs, section conflict
    // within one CPU.
    if (const std::size_t winner = same_period_bank_winner(bank, t); winner != kNobody) {
      ev.blocker = winner;
      ev.conflict = streams_[winner].cpu == s.cpu ? sim::ConflictKind::section
                                                  : sim::ConflictKind::simultaneous;
      if (fault_ == FaultKind::misclassify_simultaneous &&
          ev.conflict == sim::ConflictKind::simultaneous) {
        ev.conflict = sim::ConflictKind::section;
      }
      log_.push_back(ev);
      continue;
    }

    // Rule 2: the bank is still active from a grant in an earlier period;
    // the holder of that grant is the blocker.
    if (const std::size_t holder = bank_active_from_earlier(bank, t); holder != kNobody) {
      ev.conflict = sim::ConflictKind::bank;
      ev.blocker = holder;
      log_.push_back(ev);
      continue;
    }

    // Rule 3: the access path (CPU, section) is occupied this period.
    if (fault_ != FaultKind::ignore_path_conflict) {
      const std::size_t winner = same_period_path_winner(s.cpu, config_.section_of(bank), t);
      if (winner != kNobody) {
        ev.blocker = winner;
        ev.conflict = sim::ConflictKind::section;
        log_.push_back(ev);
        continue;
      }
    }

    ev.type = sim::Event::Type::grant;
    ev.blocker = idx;
    log_.push_back(ev);
    ++issued_[idx];
  }

  ++now_;
  if (cyclic && fault_ != FaultKind::drop_rotation) rr_ = (rr_ + 1) % p;
}

void ReferenceModel::run(i64 cycles) {
  for (i64 t = 0; t < cycles; ++t) step();
}

std::vector<sim::PortStats> ReferenceModel::stats() const {
  std::vector<sim::PortStats> out(streams_.size());
  for (const auto& e : log_) {
    sim::PortStats& st = out[e.port];
    if (e.type == sim::Event::Type::grant) {
      ++st.grants;
      if (st.first_grant_cycle < 0) st.first_grant_cycle = e.cycle;
      st.last_grant_cycle = e.cycle;
      st.current_stall = 0;
      continue;
    }
    switch (e.conflict) {
      case sim::ConflictKind::bank: ++st.bank_conflicts; break;
      case sim::ConflictKind::simultaneous: ++st.simultaneous_conflicts; break;
      case sim::ConflictKind::section: ++st.section_conflicts; break;
    }
    st.longest_stall = std::max(st.longest_stall, ++st.current_stall);
  }
  return out;
}

}  // namespace vpmem::check
