#include "vpmem/check/reference_model.hpp"

#include <stdexcept>

namespace vpmem::check {

namespace {
constexpr std::size_t kNobody = static_cast<std::size_t>(-1);
}

std::string to_string(FaultKind fault) {
  switch (fault) {
    case FaultKind::none: return "none";
    case FaultKind::ignore_path_conflict: return "ignore-path-conflict";
    case FaultKind::short_bank_busy: return "short-bank-busy";
    case FaultKind::priority_inversion: return "priority-inversion";
    case FaultKind::misclassify_simultaneous: return "misclassify-simultaneous";
    case FaultKind::drop_rotation: return "drop-rotation";
  }
  return "?";
}

FaultKind fault_from_string(const std::string& name) {
  for (FaultKind f : {FaultKind::none, FaultKind::ignore_path_conflict,
                      FaultKind::short_bank_busy, FaultKind::priority_inversion,
                      FaultKind::misclassify_simultaneous, FaultKind::drop_rotation}) {
    if (to_string(f) == name) return f;
  }
  throw std::invalid_argument{"fault_from_string: unknown fault '" + name + "'"};
}

const std::vector<FaultKind>& all_faults() {
  static const std::vector<FaultKind> kFaults = {
      FaultKind::ignore_path_conflict, FaultKind::short_bank_busy,
      FaultKind::priority_inversion, FaultKind::misclassify_simultaneous,
      FaultKind::drop_rotation};
  return kFaults;
}

ReferenceModel::ReferenceModel(sim::MemoryConfig config, std::vector<sim::StreamConfig> streams,
                               FaultKind fault, sim::FaultPlan plan)
    : config_{config}, streams_{std::move(streams)}, fault_{fault}, plan_{std::move(plan)} {
  config_.validate();
  for (const auto& s : streams_) s.validate(config_);
  plan_.validate(config_);
  issued_.assign(streams_.size(), 0);
  max_service_length_ = config_.bank_cycle;
  for (const auto& e : plan_.events) {
    if (e.kind == sim::FaultEvent::Kind::bank_slow) {
      max_service_length_ = std::max(max_service_length_, e.value);
    }
  }
}

bool ReferenceModel::ref_bank_online(i64 bank, i64 t) const {
  bool online = true;
  for (const auto& e : plan_.events) {
    if (e.cycle > t) break;
    if (e.bank != bank) continue;
    if (e.kind == sim::FaultEvent::Kind::bank_offline) online = false;
    if (e.kind == sim::FaultEvent::Kind::bank_online) online = true;
  }
  return online;
}

i64 ReferenceModel::ref_bank_nc(i64 bank, i64 t) const {
  i64 nc = config_.bank_cycle;
  for (const auto& e : plan_.events) {
    if (e.cycle > t) break;
    if (e.kind == sim::FaultEvent::Kind::bank_slow && e.bank == bank) nc = e.value;
  }
  return nc;
}

bool ReferenceModel::ref_bank_stalled(i64 bank, i64 t) const {
  for (const auto& e : plan_.events) {
    if (e.cycle > t) break;
    if (e.kind == sim::FaultEvent::Kind::bank_stall && e.bank == bank &&
        t < e.cycle + e.value) {
      return true;
    }
  }
  return false;
}

bool ReferenceModel::ref_path_down(i64 cpu, i64 section, i64 t) const {
  bool down = false;
  for (const auto& e : plan_.events) {
    if (e.cycle > t) break;
    if (e.cpu != cpu || e.section != section) continue;
    if (e.kind == sim::FaultEvent::Kind::path_offline) down = true;
    if (e.kind == sim::FaultEvent::Kind::path_online) down = false;
  }
  return down;
}

i64 ReferenceModel::ref_effective_bank(std::size_t idx, i64 t) const {
  const sim::StreamConfig& s = streams_[idx];
  const i64 raw = s.bank_of(issued_[idx], config_.banks);
  if (plan_.policy != sim::FaultPolicy::remap_spare) return raw;
  std::vector<i64> surviving;
  for (i64 b = 0; b < config_.banks; ++b) {
    if (ref_bank_online(b, t)) surviving.push_back(b);
  }
  const i64 alive = static_cast<i64>(surviving.size());
  if (alive == config_.banks || alive == 0) return raw;
  const i64 slot = s.has_pattern() ? mod_norm(raw, alive)
                                   : mod_norm(s.start_bank + issued_[idx] * s.distance, alive);
  return surviving[static_cast<std::size_t>(slot)];
}

i64 ReferenceModel::service_length(i64 bank, i64 grant_cycle) const {
  const i64 nc = ref_bank_nc(bank, grant_cycle);
  return fault_ == FaultKind::short_bank_busy ? std::max<i64>(1, nc - 1) : nc;
}

std::size_t ReferenceModel::bank_active_from_earlier(i64 bank, i64 t) const {
  // Log cycles are non-decreasing, so scanning backwards can stop at the
  // first event too old to still occupy a bank even at the longest
  // possible service time.
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    if (it->cycle + max_service_length_ <= t) break;
    if (it->type == sim::Event::Type::grant && it->bank == bank && it->cycle < t &&
        it->cycle + service_length(bank, it->cycle) > t) {
      return it->port;
    }
  }
  return kNobody;
}

std::size_t ReferenceModel::same_period_bank_winner(i64 bank, i64 t) const {
  for (auto it = log_.rbegin(); it != log_.rend() && it->cycle == t; ++it) {
    if (it->type == sim::Event::Type::grant && it->bank == bank) return it->port;
  }
  return kNobody;
}

std::size_t ReferenceModel::same_period_path_winner(i64 cpu, i64 section, i64 t) const {
  for (auto it = log_.rbegin(); it != log_.rend() && it->cycle == t; ++it) {
    if (it->type == sim::Event::Type::grant && streams_[it->port].cpu == cpu &&
        config_.section_of(it->bank) == section) {
      return it->port;
    }
  }
  return kNobody;
}

void ReferenceModel::step() {
  const i64 t = now_;
  const std::size_t p = streams_.size();
  if (p == 0) {
    ++now_;
    return;
  }
  const bool cyclic = config_.priority == sim::PriorityRule::cyclic;
  const std::size_t first = cyclic ? rr_ % p : 0;

  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t rank = fault_ == FaultKind::priority_inversion ? p - 1 - i : i;
    const std::size_t idx = (first + rank) % p;
    const sim::StreamConfig& s = streams_[idx];
    if (issued_[idx] >= s.length || t < s.start_cycle) continue;

    const i64 bank = ref_effective_bank(idx, t);
    sim::Event ev{.type = sim::Event::Type::conflict,
                  .cycle = t,
                  .port = idx,
                  .bank = bank,
                  .element = issued_[idx],
                  .conflict = sim::ConflictKind::bank,
                  .blocker = idx};

    // Rule 0: an injected fault pins the request before any arbitration —
    // offline target bank, transient stall window, or downed access path.
    // Kind `fault`, blocker = the requester itself.
    if (!ref_bank_online(bank, t) || ref_bank_stalled(bank, t) ||
        ref_path_down(s.cpu, config_.section_of(bank), t)) {
      ev.conflict = sim::ConflictKind::fault;
      log_.push_back(ev);
      continue;
    }

    // Rule 1: the bank was claimed this very period by a higher-priority
    // port — simultaneous bank conflict across CPUs, section conflict
    // within one CPU.
    if (const std::size_t winner = same_period_bank_winner(bank, t); winner != kNobody) {
      ev.blocker = winner;
      ev.conflict = streams_[winner].cpu == s.cpu ? sim::ConflictKind::section
                                                  : sim::ConflictKind::simultaneous;
      if (fault_ == FaultKind::misclassify_simultaneous &&
          ev.conflict == sim::ConflictKind::simultaneous) {
        ev.conflict = sim::ConflictKind::section;
      }
      log_.push_back(ev);
      continue;
    }

    // Rule 2: the bank is still active from a grant in an earlier period;
    // the holder of that grant is the blocker.
    if (const std::size_t holder = bank_active_from_earlier(bank, t); holder != kNobody) {
      ev.conflict = sim::ConflictKind::bank;
      ev.blocker = holder;
      log_.push_back(ev);
      continue;
    }

    // Rule 3: the access path (CPU, section) is occupied this period.
    if (fault_ != FaultKind::ignore_path_conflict) {
      const std::size_t winner = same_period_path_winner(s.cpu, config_.section_of(bank), t);
      if (winner != kNobody) {
        ev.blocker = winner;
        ev.conflict = sim::ConflictKind::section;
        log_.push_back(ev);
        continue;
      }
    }

    ev.type = sim::Event::Type::grant;
    ev.blocker = idx;
    log_.push_back(ev);
    ++issued_[idx];
  }

  ++now_;
  if (cyclic && fault_ != FaultKind::drop_rotation) rr_ = (rr_ + 1) % p;
}

void ReferenceModel::run(i64 cycles) {
  for (i64 t = 0; t < cycles; ++t) step();
}

std::vector<sim::PortStats> ReferenceModel::stats() const {
  std::vector<sim::PortStats> out(streams_.size());
  for (const auto& e : log_) {
    sim::PortStats& st = out[e.port];
    if (e.type == sim::Event::Type::grant) {
      ++st.grants;
      if (st.first_grant_cycle < 0) st.first_grant_cycle = e.cycle;
      st.last_grant_cycle = e.cycle;
      st.current_stall = 0;
      continue;
    }
    switch (e.conflict) {
      case sim::ConflictKind::bank: ++st.bank_conflicts; break;
      case sim::ConflictKind::simultaneous: ++st.simultaneous_conflicts; break;
      case sim::ConflictKind::section: ++st.section_conflicts; break;
      case sim::ConflictKind::fault: ++st.fault_conflicts; break;
    }
    st.longest_stall = std::max(st.longest_stall, ++st.current_stall);
  }
  return out;
}

}  // namespace vpmem::check
