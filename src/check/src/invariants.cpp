#include "vpmem/check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "vpmem/analytic/stream.hpp"
#include "vpmem/analytic/theorems.hpp"
#include "vpmem/obs/collector.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/sim/run.hpp"
#include "vpmem/sim/steady_state.hpp"

namespace vpmem::check {

namespace {

bool all_infinite(const std::vector<sim::StreamConfig>& streams) {
  return std::all_of(streams.begin(), streams.end(),
                     [](const sim::StreamConfig& s) { return s.length == sim::kInfiniteLength; });
}

bool all_affine(const std::vector<sim::StreamConfig>& streams) {
  return std::none_of(streams.begin(), streams.end(),
                      [](const sim::StreamConfig& s) { return s.has_pattern(); });
}

/// The canonical Section III-B shape the pair theorems are stated for:
/// two affine infinite streams on distinct CPUs, starting at cycle 0, in
/// a flat memory (s = m) under fixed priority, with distances in [1, m).
bool canonical_pair(const sim::MemoryConfig& cfg, const std::vector<sim::StreamConfig>& streams) {
  if (streams.size() != 2 || cfg.sections != cfg.banks ||
      cfg.priority != sim::PriorityRule::fixed) {
    return false;
  }
  for (const auto& s : streams) {
    if (s.has_pattern() || s.length != sim::kInfiniteLength || s.start_cycle != 0 ||
        s.distance < 1 || s.distance >= cfg.banks) {
      return false;
    }
  }
  return streams[0].cpu != streams[1].cpu;
}

std::string rational_str(const Rational& r) { return r.str(); }

/// Runs one named check, converting any exception into a failure entry so
/// a single misbehaving oracle cannot abort the whole report.
class Runner {
 public:
  Runner(InvariantReport& report) : report_{report} {}  // NOLINT(google-explicit-constructor)

  void run(const std::string& name, const std::function<void(std::ostringstream&)>& body) {
    report_.ran.push_back(name);
    std::ostringstream fail;
    try {
      body(fail);
    } catch (const std::exception& e) {
      fail << "exception: " << e.what();
    }
    if (!fail.str().empty()) report_.failures.push_back({name, fail.str()});
  }

 private:
  InvariantReport& report_;
};

}  // namespace

bool InvariantReport::did_run(const std::string& name) const {
  return std::find(ran.begin(), ran.end(), name) != ran.end();
}

std::string compare_port_stats(const sim::PortStats& simulator,
                               const sim::PortStats& independent) {
  const auto diff = [](const char* field, i64 a, i64 b) {
    std::ostringstream os;
    os << field << ": simulator " << a << " vs independent " << b;
    return os.str();
  };
  if (simulator.grants != independent.grants) {
    return diff("grants", simulator.grants, independent.grants);
  }
  if (simulator.bank_conflicts != independent.bank_conflicts) {
    return diff("bank_conflicts", simulator.bank_conflicts, independent.bank_conflicts);
  }
  if (simulator.simultaneous_conflicts != independent.simultaneous_conflicts) {
    return diff("simultaneous_conflicts", simulator.simultaneous_conflicts,
                independent.simultaneous_conflicts);
  }
  if (simulator.section_conflicts != independent.section_conflicts) {
    return diff("section_conflicts", simulator.section_conflicts,
                independent.section_conflicts);
  }
  if (simulator.fault_conflicts != independent.fault_conflicts) {
    return diff("fault_conflicts", simulator.fault_conflicts, independent.fault_conflicts);
  }
  if (simulator.first_grant_cycle != independent.first_grant_cycle) {
    return diff("first_grant_cycle", simulator.first_grant_cycle,
                independent.first_grant_cycle);
  }
  if (simulator.last_grant_cycle != independent.last_grant_cycle) {
    return diff("last_grant_cycle", simulator.last_grant_cycle, independent.last_grant_cycle);
  }
  if (simulator.longest_stall != independent.longest_stall) {
    return diff("longest_stall", simulator.longest_stall, independent.longest_stall);
  }
  return {};
}

InvariantReport check_invariants(const sim::MemoryConfig& config,
                                 const std::vector<sim::StreamConfig>& streams,
                                 const InvariantOptions& options) {
  InvariantReport report;
  Runner runner{report};
  const i64 m = config.banks;
  const i64 nc = config.bank_cycle;

  // --- Theorem 1: return number r = m / gcd(m, d) ------------------------
  if (all_affine(streams) && !streams.empty()) {
    runner.run("theorem1_return_number", [&](std::ostringstream& fail) {
      for (const auto& s : streams) {
        const i64 r = analytic::return_number(m, s.distance);
        const auto set = analytic::access_set(m, s.start_bank, s.distance);
        if (static_cast<i64>(set.size()) != r) {
          fail << "d=" << s.distance << ": access set has " << set.size()
               << " banks, Theorem 1 says r=" << r;
          return;
        }
        for (i64 k = 0; k < r; ++k) {
          if (s.bank_of(k + r, m) != s.bank_of(k, m)) {
            fail << "d=" << s.distance << ": bank_of(" << k + r << ") != bank_of(" << k
                 << ") despite r=" << r;
            return;
          }
        }
      }
    });
  }

  // --- Single stream: b_eff = min(1, r/nc) -------------------------------
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const sim::StreamConfig& s = streams[i];
    if (s.has_pattern() || s.length != sim::kInfiniteLength) continue;
    runner.run("single_stream_bandwidth", [&](std::ostringstream& fail) {
      const Rational predicted = analytic::single_stream_bandwidth(m, s.distance, nc);
      const sim::SteadyState ss = sim::find_steady_state(config, {s}, options.max_cycles);
      if (ss.bandwidth != predicted) {
        fail << "stream " << i << " (d=" << s.distance << "): simulated "
             << rational_str(ss.bandwidth) << ", Section III-A predicts "
             << rational_str(predicted);
      }
    });
  }

  // --- Collector: event-derived stats == simulator counters --------------
  if (!streams.empty()) {
    runner.run("collector_totals", [&](std::ostringstream& fail) {
      sim::MemorySystem mem{config, streams};
      obs::Collector collector{mem};
      mem.run(options.cycles, /*stop_when_finished=*/false);
      collector.finish();
      const auto from_sim = mem.all_stats();
      const auto from_events = collector.port_stats();
      for (std::size_t p = 0; p < from_sim.size(); ++p) {
        const std::string d = compare_port_stats(from_sim[p], from_events[p]);
        if (!d.empty()) {
          fail << "port " << p << " " << d;
          return;
        }
      }
      for (i64 bank = 0; bank < m; ++bank) {
        const i64 counted = collector.bank_grants()[static_cast<std::size_t>(bank)];
        if (counted != mem.bank_grants(bank)) {
          fail << "bank " << bank << " grants: simulator " << mem.bank_grants(bank)
               << " vs collector " << counted;
          return;
        }
      }
    });
  }

  if (!all_infinite(streams) || streams.empty()) return report;

  // Everything below needs the exact steady state of the full set.
  sim::SteadyState base;
  bool have_base = false;
  runner.run("steady_state_detection", [&](std::ostringstream&) {
    base = sim::find_steady_state(config, streams, options.max_cycles);
    have_base = true;
  });
  if (!have_base) return report;

  const auto p = static_cast<i64>(streams.size());

  // --- Capacity bounds ----------------------------------------------------
  runner.run("bandwidth_bounds", [&](std::ostringstream& fail) {
    i64 total = 0;
    for (i64 g : base.grants_in_period) total += g;
    if (total > p * base.period) {
      fail << "b_eff " << rational_str(base.bandwidth) << " exceeds the port bound " << p;
      return;
    }
    if (total * nc > m * base.period) {
      fail << "b_eff " << rational_str(base.bandwidth) << " exceeds bank capacity m/nc = "
           << rational_str(Rational{m, nc});
      return;
    }
    Rational share_sum;
    for (const auto& share : base.per_port) share_sum += share;
    if (share_sum != base.bandwidth) {
      fail << "per-port shares sum to " << rational_str(share_sum) << ", not b_eff "
           << rational_str(base.bandwidth);
    }
  });

  // --- Windowed measurement over whole periods equals the rational -------
  runner.run("windowed_measurement", [&](std::ostringstream& fail) {
    const i64 window = base.period * 8;
    const double measured = sim::measure_bandwidth(config, streams, base.transient_cycles,
                                                   window);
    if (std::abs(measured - base.bandwidth.to_double()) > 1e-9) {
      fail << "windowed average " << measured << " over " << window
           << " periods vs exact " << rational_str(base.bandwidth);
    }
  });

  // --- Start-bank translation: relabeling banks is a no-op ---------------
  // For the cyclic section mapping any rotation c is a consistent
  // relabeling of banks *and* sections; for the consecutive mapping the
  // rotation must shift whole sections, i.e. c must be a multiple of m/s.
  if (m >= 2) {
    i64 c = 0;
    if (config.mapping == sim::SectionMapping::cyclic || config.sections == 1) {
      c = 1 + mod_norm(nc + p, m - 1);
    } else if (m / config.sections < m) {
      c = m / config.sections;
    }
    if (c > 0 && c < m) {
      const i64 shift = c;
      runner.run("translation_invariance", [&](std::ostringstream& fail) {
        std::vector<sim::StreamConfig> shifted = streams;
        for (auto& s : shifted) {
          if (s.has_pattern()) {
            for (i64& bank : s.bank_pattern) bank = mod_norm(bank + shift, m);
          } else {
            s.start_bank = mod_norm(s.start_bank + shift, m);
          }
        }
        const sim::SteadyState moved = sim::find_steady_state(config, shifted,
                                                              options.max_cycles);
        if (moved.bandwidth != base.bandwidth || moved.per_port != base.per_port ||
            moved.period != base.period ||
            moved.conflicts_in_period.total() != base.conflicts_in_period.total()) {
          fail << "shifting every start bank by " << shift << " changed b_eff from "
               << rational_str(base.bandwidth) << " to " << rational_str(moved.bandwidth);
        }
      });
    }
  }

  // --- Global start-cycle shift: delaying everything is a no-op ----------
  runner.run("time_shift_invariance", [&](std::ostringstream& fail) {
    // Under cyclic priority the rotation advances from cycle 0 regardless
    // of stream starts, so shift by a whole number of rotations.
    const i64 t0 = config.priority == sim::PriorityRule::cyclic ? p : 3;
    std::vector<sim::StreamConfig> delayed = streams;
    for (auto& s : delayed) s.start_cycle += t0;
    const sim::SteadyState moved = sim::find_steady_state(config, delayed, options.max_cycles);
    if (moved.bandwidth != base.bandwidth || moved.per_port != base.per_port ||
        moved.period != base.period) {
      fail << "delaying every start cycle by " << t0 << " changed b_eff from "
           << rational_str(base.bandwidth) << " to " << rational_str(moved.bandwidth);
    }
  });

  // --- Pair theorems (canonical two-stream flat configuration only) ------
  if (!canonical_pair(config, streams) || m > options.max_sweep_banks) return report;
  const i64 d1 = streams[0].distance;
  const i64 d2 = streams[1].distance;
  const bool both_self_free = analytic::self_conflict_free(m, d1, nc) &&
                              analytic::self_conflict_free(m, d2, nc);
  const bool thm3 = both_self_free && analytic::conflict_free_achievable(m, nc, d1, d2);
  const bool barrier_shape = m % d1 == 0 && d2 > d1 && both_self_free;
  const bool thm5 = barrier_shape && analytic::barrier_possible(m, nc, d1, d2) &&
                    analytic::double_conflict_impossible(m, nc, d1, d2);
  const bool unique = barrier_shape && !analytic::conflict_free_achievable(m, nc, d1, d2) &&
                      !analytic::disjoint_access_sets_achievable(m, d1, d2) &&
                      analytic::unique_barrier(m, nc, d1, d2, /*stream1_priority=*/true);
  if (!thm3 && !thm5 && !unique) return report;

  if (thm3) report.ran.push_back("theorem3_synchronization");
  if (thm5) report.ran.push_back("theorem5_no_double_conflict");
  if (unique) report.ran.push_back("unique_barrier_bandwidth");
  const Rational eq29 = analytic::barrier_bandwidth(d1, d2);
  for (i64 b2 = 0; b2 < m; ++b2) {
    sim::SteadyState ss;
    try {
      ss = sim::find_steady_state(config, sim::two_streams(0, d1, b2, d2), options.max_cycles);
    } catch (const std::exception& e) {
      report.failures.push_back({"steady_state_detection", std::string{"offset sweep b2="} +
                                                               std::to_string(b2) + ": " +
                                                               e.what()});
      return report;
    }
    std::ostringstream at;
    at << " (m=" << m << " nc=" << nc << " d1=" << d1 << " d2=" << d2 << " b2=" << b2 << ")";
    if (thm3 && ss.bandwidth != Rational{2}) {
      report.failures.push_back(
          {"theorem3_synchronization",
           "eq. 12 holds but offset converged to b_eff " + rational_str(ss.bandwidth) + at.str()});
      break;
    }
    if (thm5 && !ss.port_conflict_free(0) && !ss.port_conflict_free(1)) {
      report.failures.push_back(
          {"theorem5_no_double_conflict", "mutual delays in the steady cycle" + at.str()});
      break;
    }
    if (unique && ss.bandwidth != eq29) {
      report.failures.push_back(
          {"unique_barrier_bandwidth", "expected eq. 29 b_eff " + rational_str(eq29) +
                                           ", simulated " + rational_str(ss.bandwidth) +
                                           at.str()});
      break;
    }
  }
  return report;
}

}  // namespace vpmem::check
