#include "vpmem/check/replay.hpp"

#include <sstream>
#include <stdexcept>

namespace vpmem::check {

namespace {

std::string encode_stream(const sim::StreamConfig& s) {
  std::ostringstream os;
  os << "stream=";
  if (s.has_pattern()) {
    os << 'p';
    for (std::size_t i = 0; i < s.bank_pattern.size(); ++i) {
      os << (i == 0 ? "" : ":") << s.bank_pattern[i];
    }
  } else {
    os << 'b' << s.start_bank << ",d" << s.distance;
  }
  os << ",c" << s.cpu << ",l";
  if (s.length == sim::kInfiniteLength) {
    os << "inf";
  } else {
    os << s.length;
  }
  os << ",t" << s.start_cycle;
  return os.str();
}

i64 parse_i64(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const i64 value = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument{"trailing garbage"};
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument{"parse_repro: bad " + what + " '" + text + "'"};
  }
}

sim::StreamConfig parse_stream(const std::string& body) {
  sim::StreamConfig s;
  std::istringstream fields{body};
  std::string field;
  bool have_banks = false;
  while (std::getline(fields, field, ',')) {
    if (field.empty()) throw std::invalid_argument{"parse_repro: empty stream field"};
    const char tag = field[0];
    const std::string value = field.substr(1);
    switch (tag) {
      case 'b':
        s.start_bank = parse_i64(value, "start bank");
        have_banks = true;
        break;
      case 'd': s.distance = parse_i64(value, "distance"); break;
      case 'p': {
        std::istringstream entries{value};
        std::string entry;
        s.bank_pattern.clear();
        while (std::getline(entries, entry, ':')) {
          s.bank_pattern.push_back(parse_i64(entry, "pattern entry"));
        }
        if (s.bank_pattern.empty()) {
          throw std::invalid_argument{"parse_repro: empty bank pattern"};
        }
        have_banks = true;
        break;
      }
      case 'c': s.cpu = parse_i64(value, "cpu"); break;
      case 'l':
        s.length = value == "inf" ? sim::kInfiniteLength : parse_i64(value, "length");
        break;
      case 't': s.start_cycle = parse_i64(value, "start cycle"); break;
      default:
        throw std::invalid_argument{std::string{"parse_repro: unknown stream field '"} + tag +
                                    "'"};
    }
  }
  if (!have_banks) {
    throw std::invalid_argument{"parse_repro: stream needs b<bank>,d<dist> or p<pattern>"};
  }
  return s;
}

}  // namespace

std::string encode_repro(const FuzzCase& fuzz_case) {
  std::ostringstream os;
  os << kReproSchema << " m=" << fuzz_case.config.banks << " s=" << fuzz_case.config.sections
     << " nc=" << fuzz_case.config.bank_cycle
     << " map=" << sim::to_string(fuzz_case.config.mapping)
     << " prio=" << sim::to_string(fuzz_case.config.priority)
     << " cycles=" << fuzz_case.cycles << " fault=" << to_string(fuzz_case.fault);
  // FaultPlan::encode() is whitespace-free, so the plan stays one token.
  if (!fuzz_case.plan.empty()) os << " fplan=" << fuzz_case.plan.encode();
  for (const auto& s : fuzz_case.streams) os << ' ' << encode_stream(s);
  return os.str();
}

FuzzCase parse_repro(const std::string& line) {
  std::istringstream tokens{line};
  std::string token;
  if (!(tokens >> token) || token != kReproSchema) {
    throw std::invalid_argument{std::string{"parse_repro: expected leading '"} + kReproSchema +
                                "'"};
  }
  FuzzCase out;
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument{"parse_repro: token without '=': '" + token + "'"};
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "m") {
      out.config.banks = parse_i64(value, "bank count");
    } else if (key == "s") {
      out.config.sections = parse_i64(value, "section count");
    } else if (key == "nc") {
      out.config.bank_cycle = parse_i64(value, "bank cycle");
    } else if (key == "map") {
      if (value == "cyclic") {
        out.config.mapping = sim::SectionMapping::cyclic;
      } else if (value == "consecutive") {
        out.config.mapping = sim::SectionMapping::consecutive;
      } else {
        throw std::invalid_argument{"parse_repro: unknown mapping '" + value + "'"};
      }
    } else if (key == "prio") {
      if (value == "fixed") {
        out.config.priority = sim::PriorityRule::fixed;
      } else if (value == "cyclic") {
        out.config.priority = sim::PriorityRule::cyclic;
      } else {
        throw std::invalid_argument{"parse_repro: unknown priority '" + value + "'"};
      }
    } else if (key == "cycles") {
      out.cycles = parse_i64(value, "cycle budget");
    } else if (key == "fault") {
      out.fault = fault_from_string(value);
    } else if (key == "fplan") {
      out.plan = sim::FaultPlan::parse(value);
    } else if (key == "stream") {
      out.streams.push_back(parse_stream(value));
    } else {
      throw std::invalid_argument{"parse_repro: unknown key '" + key + "'"};
    }
  }
  out.config.validate();
  for (const auto& s : out.streams) s.validate(out.config);
  out.plan.validate(out.config);
  return out;
}

FuzzCase shrink_case(const FuzzCase& fuzz_case,
                     const std::function<bool(const FuzzCase&)>& still_fails) {
  FuzzCase current = fuzz_case;

  // Drop streams one at a time until no single removal keeps the failure.
  bool progress = true;
  while (progress && current.streams.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < current.streams.size(); ++i) {
      FuzzCase candidate = current;
      candidate.streams.erase(candidate.streams.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }

  // Drop fault-plan events one at a time (a whole-plan drop first —
  // most failures are not fault-induced and shed the plan in one step).
  if (!current.plan.empty()) {
    FuzzCase candidate = current;
    candidate.plan = sim::FaultPlan{};
    if (still_fails(candidate)) current = std::move(candidate);
  }
  progress = true;
  while (progress && !current.plan.empty()) {
    progress = false;
    for (std::size_t i = 0; i < current.plan.events.size(); ++i) {
      FuzzCase candidate = current;
      candidate.plan.events.erase(candidate.plan.events.begin() +
                                  static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }

  // Halve the cycle budget while the failure persists.
  while (current.cycles > 8) {
    FuzzCase candidate = current;
    candidate.cycles = current.cycles / 2;
    if (!still_fails(candidate)) break;
    current = std::move(candidate);
  }

  // Remove delayed starts where they are not load-bearing.
  for (std::size_t i = 0; i < current.streams.size(); ++i) {
    if (current.streams[i].start_cycle == 0) continue;
    FuzzCase candidate = current;
    candidate.streams[i].start_cycle = 0;
    if (still_fails(candidate)) current = std::move(candidate);
  }
  return current;
}

}  // namespace vpmem::check
