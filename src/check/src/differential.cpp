#include "vpmem/check/differential.hpp"

#include <sstream>

#include "vpmem/sim/memory_system.hpp"

namespace vpmem::check {

namespace {

std::string describe(const sim::Event& e) {
  std::ostringstream os;
  os << (e.type == sim::Event::Type::grant ? "grant" : "conflict") << " cycle=" << e.cycle
     << " port=" << e.port << " bank=" << e.bank << " element=" << e.element;
  if (e.type == sim::Event::Type::conflict) {
    os << " kind=" << sim::to_string(e.conflict) << " blocker=" << e.blocker;
  }
  return os.str();
}

bool same_event(const sim::Event& a, const sim::Event& b) {
  if (a.type != b.type || a.cycle != b.cycle || a.port != b.port || a.bank != b.bank ||
      a.element != b.element) {
    return false;
  }
  // Classification and blocker only carry meaning for conflicts.
  return a.type == sim::Event::Type::grant ||
         (a.conflict == b.conflict && a.blocker == b.blocker);
}

std::string describe_stats(const sim::PortStats& s) {
  std::ostringstream os;
  os << "grants=" << s.grants << " bank=" << s.bank_conflicts
     << " simultaneous=" << s.simultaneous_conflicts << " section=" << s.section_conflicts
     << " fault=" << s.fault_conflicts << " first=" << s.first_grant_cycle
     << " last=" << s.last_grant_cycle << " longest_stall=" << s.longest_stall;
  return os.str();
}

bool same_stats(const sim::PortStats& a, const sim::PortStats& b) {
  return a.grants == b.grants && a.bank_conflicts == b.bank_conflicts &&
         a.simultaneous_conflicts == b.simultaneous_conflicts &&
         a.section_conflicts == b.section_conflicts &&
         a.fault_conflicts == b.fault_conflicts &&
         a.first_grant_cycle == b.first_grant_cycle &&
         a.last_grant_cycle == b.last_grant_cycle && a.longest_stall == b.longest_stall;
}

}  // namespace

DiffResult diff_run(const sim::MemoryConfig& config,
                    const std::vector<sim::StreamConfig>& streams, i64 cycles,
                    FaultKind fault) {
  return diff_run(config, streams, cycles, sim::FaultPlan{}, fault);
}

DiffResult diff_run(const sim::MemoryConfig& config,
                    const std::vector<sim::StreamConfig>& streams, i64 cycles,
                    const sim::FaultPlan& plan, FaultKind fault) {
  DiffResult out;

  sim::MemorySystem mem{config, streams, plan};
  std::vector<sim::Event> sim_events;
  mem.add_event_hook([&sim_events](const sim::Event& e) { sim_events.push_back(e); });
  mem.run(cycles, /*stop_when_finished=*/false);

  ReferenceModel ref{config, streams, fault, plan};
  ref.run(cycles);

  const std::vector<sim::Event>& ref_events = ref.events();
  const std::size_t n = std::min(sim_events.size(), ref_events.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!same_event(sim_events[i], ref_events[i])) {
      out.agreed = false;
      out.message = "event " + std::to_string(i) + " diverges: sim {" +
                    describe(sim_events[i]) + "} vs reference {" + describe(ref_events[i]) +
                    "}";
      out.events_compared = static_cast<i64>(i);
      return out;
    }
  }
  if (sim_events.size() != ref_events.size()) {
    out.agreed = false;
    const bool sim_longer = sim_events.size() > ref_events.size();
    const sim::Event& extra = sim_longer ? sim_events[n] : ref_events[n];
    out.message = std::string{sim_longer ? "simulator" : "reference"} +
                  " produced extra event " + std::to_string(n) + ": {" + describe(extra) + "}";
    out.events_compared = static_cast<i64>(n);
    return out;
  }
  out.events_compared = static_cast<i64>(n);

  const std::vector<sim::PortStats> sim_stats = mem.all_stats();
  const std::vector<sim::PortStats> ref_stats = ref.stats();
  for (std::size_t p = 0; p < sim_stats.size(); ++p) {
    out.grants += sim_stats[p].grants;
    if (!same_stats(sim_stats[p], ref_stats[p])) {
      out.agreed = false;
      out.message = "port " + std::to_string(p) + " stats diverge: sim {" +
                    describe_stats(sim_stats[p]) + "} vs reference {" +
                    describe_stats(ref_stats[p]) + "}";
      return out;
    }
  }
  return out;
}

}  // namespace vpmem::check
