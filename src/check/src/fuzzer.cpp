#include "vpmem/check/fuzzer.hpp"

#include <algorithm>

#include "vpmem/check/differential.hpp"
#include "vpmem/check/replay.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::check {

namespace {

using baseline::SplitMix64;

i64 pick(SplitMix64& rng, i64 bound) {
  return static_cast<i64>(rng.next_below(static_cast<std::uint64_t>(bound)));
}

/// Bank counts biased toward divisor-rich values (sections, disjoint
/// access sets) plus the paper's primes 13/17 and the degenerate m=1.
constexpr i64 kBankChoices[] = {1, 2, 3, 4, 5, 6, 8, 9, 12, 13, 16, 17, 24, 32};

sim::StreamConfig sample_stream(SplitMix64& rng, i64 m) {
  sim::StreamConfig s;
  s.cpu = pick(rng, 3);
  if (pick(rng, 8) == 0) {
    const i64 len = 1 + pick(rng, 8);
    s.bank_pattern.reserve(static_cast<std::size_t>(len));
    for (i64 k = 0; k < len; ++k) s.bank_pattern.push_back(pick(rng, m));
  } else {
    s.start_bank = pick(rng, m);
    s.distance = pick(rng, 4 * m + 1) - 2 * m;  // any sign, zero included
  }
  if (pick(rng, 5) >= 3) s.length = 1 + pick(rng, 128);
  if (pick(rng, 4) == 0) s.start_cycle = pick(rng, 9);
  return s;
}

/// Random timed degradation: 1-4 events over the first ~3/4 of the cycle
/// budget so recoveries (bank_online / path_online) actually replay
/// inside the differential window.
sim::FaultPlan sample_plan(SplitMix64& rng, const sim::MemoryConfig& config, i64 cycles) {
  sim::FaultPlan plan;
  plan.policy = rng.next_below(2) == 0 ? sim::FaultPolicy::stall
                                       : sim::FaultPolicy::remap_spare;
  const i64 n_events = 1 + pick(rng, 4);
  const i64 span = std::max<i64>(1, cycles * 3 / 4);
  std::vector<i64> at;
  at.reserve(static_cast<std::size_t>(n_events));
  for (i64 i = 0; i < n_events; ++i) at.push_back(pick(rng, span));
  std::sort(at.begin(), at.end());
  for (i64 i = 0; i < n_events; ++i) {
    sim::FaultEvent e;
    e.cycle = at[static_cast<std::size_t>(i)];
    switch (pick(rng, 6)) {
      case 0: e.kind = sim::FaultEvent::Kind::bank_offline; break;
      case 1: e.kind = sim::FaultEvent::Kind::bank_online; break;
      case 2: e.kind = sim::FaultEvent::Kind::bank_slow; break;
      case 3: e.kind = sim::FaultEvent::Kind::bank_stall; break;
      case 4: e.kind = sim::FaultEvent::Kind::path_offline; break;
      default: e.kind = sim::FaultEvent::Kind::path_online; break;
    }
    if (e.targets_bank()) {
      e.bank = pick(rng, config.banks);
      if (e.kind == sim::FaultEvent::Kind::bank_slow) e.value = 1 + pick(rng, 6);
      if (e.kind == sim::FaultEvent::Kind::bank_stall) e.value = 1 + pick(rng, 16);
    } else {
      e.cpu = pick(rng, 3);
      e.section = pick(rng, config.sections);
    }
    plan.events.push_back(e);
  }
  return plan;
}

}  // namespace

FuzzCase sample_case(SplitMix64& rng, const FuzzOptions& options) {
  FuzzCase out;
  out.cycles = options.cycles;
  out.fault = options.fault;

  const bool canonical = rng.next_below(2) == 0;
  if (canonical) {
    // The Section III-B shape the pair theorems are stated for: flat
    // memory, fixed priority, two affine infinite streams on two CPUs.
    i64 m = 1;
    while (m < 3) m = kBankChoices[pick(rng, static_cast<i64>(std::size(kBankChoices)))];
    out.config = sim::MemoryConfig{.banks = m, .sections = m,
                                   .bank_cycle = 1 + pick(rng, 6)};
    sim::StreamConfig s1;
    s1.start_bank = pick(rng, m);
    s1.distance = 1 + pick(rng, m - 1);
    sim::StreamConfig s2;
    s2.start_bank = pick(rng, m);
    s2.distance = 1 + pick(rng, m - 1);
    s2.cpu = 1;
    out.streams = {s1, s2};
    if (options.fault_plans) out.plan = sample_plan(rng, out.config, out.cycles);
    return out;
  }

  const i64 m = kBankChoices[pick(rng, static_cast<i64>(std::size(kBankChoices)))];
  const std::vector<i64> divs = divisors(m);
  // Bias toward the flat s = m memory (half the draws), else any divisor.
  const i64 s = rng.next_below(2) == 0 ? m : divs[static_cast<std::size_t>(pick(
                                             rng, static_cast<i64>(divs.size())))];
  out.config = sim::MemoryConfig{
      .banks = m,
      .sections = s,
      .bank_cycle = 1 + pick(rng, 6),
      .mapping = pick(rng, 4) == 0 ? sim::SectionMapping::consecutive
                                   : sim::SectionMapping::cyclic,
      .priority = pick(rng, 4) == 0 ? sim::PriorityRule::cyclic : sim::PriorityRule::fixed};
  const i64 ports = 1 + pick(rng, 4);
  out.streams.reserve(static_cast<std::size_t>(ports));
  for (i64 i = 0; i < ports; ++i) out.streams.push_back(sample_stream(rng, m));
  if (options.fault_plans) out.plan = sample_plan(rng, out.config, out.cycles);
  return out;
}

CaseResult check_case(const FuzzCase& fuzz_case, const InvariantOptions& invariants,
                      bool run_invariants) {
  CaseResult result;
  const DiffResult diff = diff_run(fuzz_case.config, fuzz_case.streams, fuzz_case.cycles,
                                   fuzz_case.plan, fuzz_case.fault);
  result.checks_run = 1;
  result.events_compared = diff.events_compared;
  if (!diff.agreed) result.failures.push_back({"differential", diff.message});

  // The analytic theorems assume a healthy machine; a degraded case is
  // checked by the differential comparison alone.
  if (run_invariants && fuzz_case.plan.empty()) {
    const InvariantReport report =
        check_invariants(fuzz_case.config, fuzz_case.streams, invariants);
    result.checks_run += static_cast<i64>(report.ran.size());
    for (const auto& f : report.failures) result.failures.push_back({f.name, f.detail});
  }
  return result;
}

namespace {

/// Build the reported failure for one failing case (shrinking included).
/// Pure function of the case and options, so sequential and sharded runs
/// produce byte-identical reports.
FuzzFailure build_failure(const FuzzCase& fuzz_case, const CaseResult& result, i64 iteration,
                          const FuzzOptions& options) {
  FuzzFailure failure;
  failure.iteration = iteration;
  failure.check = result.failures.front().check;
  failure.message = result.failures.front().message;
  failure.repro = encode_repro(fuzz_case);
  if (options.shrink_failures) {
    const std::string& check_name = failure.check;
    const FuzzCase shrunk = shrink_case(fuzz_case, [&](const FuzzCase& candidate) {
      const CaseResult r = check_case(candidate, options.invariants, options.run_invariants);
      for (const auto& f : r.failures) {
        if (f.check == check_name) return true;
      }
      return false;
    });
    failure.shrunk_repro = encode_repro(shrunk);
  }
  return failure;
}

bool cancelled(const FuzzOptions& options) {
  return options.cancel != nullptr && options.cancel->cancelled();
}

/// Sharded fuzzing.  Shard-order independence by construction: cases are
/// pre-sampled sequentially from the seed (sampling is a pure function
/// of the PRNG stream), workers check disjoint cases, and outcomes fold
/// back strictly in iteration order with the same early-stop rule as the
/// sequential loop — so the summary's counters, failures and shrunk
/// repros match the jobs=1 run exactly, at any worker count.
FuzzSummary fuzz_sharded(const FuzzOptions& options) {
  FuzzSummary summary;
  summary.seed = options.seed;
  SplitMix64 rng{options.seed};
  std::vector<FuzzCase> cases;
  cases.reserve(static_cast<std::size_t>(std::max<i64>(0, options.iterations)));
  for (i64 i = 0; i < options.iterations; ++i) cases.push_back(sample_case(rng, options));

  struct Slot {
    CaseResult result;
    FuzzFailure failure;
    bool done = false;
  };
  // Chunked dispatch: big enough to keep every worker busy, small enough
  // that the sequential early-stop (max_failures) doesn't run the whole
  // campaign for nothing.
  const i64 chunk = std::max<i64>(static_cast<i64>(options.jobs) * 8, 32);
  for (i64 begin = 0; begin < options.iterations; begin += chunk) {
    const i64 end = std::min(begin + chunk, options.iterations);
    std::vector<Slot> slots(static_cast<std::size_t>(end - begin));
    exec::parallel_for(
        end - begin, options.jobs,
        [&](i64 k, int /*worker*/) {
          const i64 iteration = begin + k;
          Slot& slot = slots[static_cast<std::size_t>(k)];
          const FuzzCase& fuzz_case = cases[static_cast<std::size_t>(iteration)];
          slot.result = check_case(fuzz_case, options.invariants, options.run_invariants);
          if (!slot.result.ok()) {
            slot.failure = build_failure(fuzz_case, slot.result, iteration, options);
          }
          slot.done = true;
        },
        options.cancel);
    // Fold in iteration order, reproducing the sequential loop's tally
    // and stopping rules exactly.
    for (auto& slot : slots) {
      if (!slot.done) {  // cancellation stopped dispatch mid-chunk
        summary.interrupted = true;
        return summary;
      }
      ++summary.iterations;
      summary.checks_run += slot.result.checks_run;
      summary.events_compared += slot.result.events_compared;
      if (slot.result.ok()) continue;
      summary.failures.push_back(std::move(slot.failure));
      if (summary.failures.size() >= options.max_failures) return summary;
    }
    if (cancelled(options)) {
      summary.interrupted = true;
      return summary;
    }
  }
  return summary;
}

}  // namespace

FuzzSummary fuzz(const FuzzOptions& options) {
  if (options.jobs > 1) return fuzz_sharded(options);
  FuzzSummary summary;
  summary.seed = options.seed;
  SplitMix64 rng{options.seed};

  for (i64 iteration = 0; iteration < options.iterations; ++iteration) {
    if (cancelled(options)) {
      summary.interrupted = true;
      break;
    }
    const FuzzCase fuzz_case = sample_case(rng, options);
    const CaseResult result = check_case(fuzz_case, options.invariants, options.run_invariants);
    ++summary.iterations;
    summary.checks_run += result.checks_run;
    summary.events_compared += result.events_compared;
    if (result.ok()) continue;

    summary.failures.push_back(build_failure(fuzz_case, result, iteration, options));
    if (summary.failures.size() >= options.max_failures) break;
  }
  return summary;
}

Json FuzzSummary::to_json() const {
  Json doc = Json::object();
  doc["schema"] = "vpmem.fuzz_summary/1";
  doc["seed"] = static_cast<i64>(seed);
  doc["iterations"] = iterations;
  doc["checks_run"] = checks_run;
  doc["events_compared"] = events_compared;
  doc["ok"] = ok();
  doc["interrupted"] = interrupted;
  Json list = Json::array();
  for (const auto& f : failures) {
    Json entry = Json::object();
    entry["iteration"] = f.iteration;
    entry["check"] = f.check;
    entry["message"] = f.message;
    entry["repro"] = f.repro;
    entry["shrunk_repro"] = f.shrunk_repro;
    list.push_back(std::move(entry));
  }
  doc["failures"] = std::move(list);
  return doc;
}

}  // namespace vpmem::check
