// Deterministic replay and shrinking.  Every fuzz failure is reported as
// a single self-contained line ("vpmem.fuzz/1 m=16 s=4 nc=4 ... stream=…")
// that encodes the complete scenario — not just the PRNG seed — so a
// repro survives changes to the sampling distribution.  `vpmem_cli fuzz
// --replay '<line>'` re-executes it; shrink_case() greedily minimizes the
// stream count and cycle budget while the failure persists.
#pragma once

#include <functional>
#include <string>

#include "vpmem/check/fuzzer.hpp"

namespace vpmem::check {

/// Line-format marker; bump when the encoding changes incompatibly.
inline constexpr const char* kReproSchema = "vpmem.fuzz/1";

/// One-line, human-readable, order-stable encoding of a case, e.g.
///   vpmem.fuzz/1 m=13 s=13 nc=4 map=cyclic prio=fixed cycles=224
///     fault=none stream=b0,d1,c0,linf,t0 stream=b7,d6,c1,l64,t2
/// Pattern streams encode the period instead of b/d: stream=p0:3:5,c0,….
/// A case with a sim::FaultPlan carries it as one extra token,
/// fplan=<FaultPlan::encode()>, e.g. fplan=stall;boff@8:b3;bon@40:b3.
[[nodiscard]] std::string encode_repro(const FuzzCase& fuzz_case);

/// Inverse of encode_repro; throws std::invalid_argument on malformed
/// input (unknown keys, missing fields, bad schema tag) and
/// vpmem::Error{fault_plan_invalid} on a malformed fplan token.
[[nodiscard]] FuzzCase parse_repro(const std::string& line);

/// Greedy minimization: repeatedly drop streams, then halve the cycle
/// budget, then zero start cycles — keeping each simplification only while
/// `still_fails` stays true.  Returns the smallest failing case found.
[[nodiscard]] FuzzCase shrink_case(const FuzzCase& fuzz_case,
                                   const std::function<bool(const FuzzCase&)>& still_fails);

}  // namespace vpmem::check
