// Deliberately naive reference implementation of the Section II
// arbitration rules — the differential-testing oracle for
// sim::MemorySystem.
//
// Where the production simulator keeps incremental machine state
// (bank_free_at_, per-step claim scratch, running stall counters), the
// reference model derives all *arbitration* state from the event log it
// has produced so far: a bank is active at clock period t iff the log
// holds a grant to it within the last nc periods; same-period bank and
// access-path claims are found by scanning the log tail; per-port
// statistics are recomputed from scratch on demand.  The two
// implementations share no state and no code path beyond the public
// config types, so event-for-event agreement is a meaningful check.
//
// The model can also *mutate* its arbitration via FaultKind: small,
// deliberate rule violations used to prove that the differential harness
// detects arbitration bugs (tests/check/differential_fuzz_test.cpp).
#pragma once

#include <string>
#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/sim/fault.hpp"

namespace vpmem::check {

/// Arbitration mutations for harness-sensitivity testing.  `none` is the
/// faithful reference; every other value breaks exactly one Section II
/// rule.
enum class FaultKind {
  none,
  ignore_path_conflict,      ///< skip the (CPU, section) access-path check
  short_bank_busy,           ///< banks stay active nc - 1 periods, not nc
  priority_inversion,        ///< visit ports in reverse priority order
  misclassify_simultaneous,  ///< log simultaneous bank conflicts as section
  drop_rotation,             ///< cyclic priority never rotates
};

[[nodiscard]] std::string to_string(FaultKind fault);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] FaultKind fault_from_string(const std::string& name);

/// The five mutations (everything except `none`), for sweep tests.
[[nodiscard]] const std::vector<FaultKind>& all_faults();

/// Event-queue-style re-implementation of the per-clock arbitration:
/// requesting ports are visited in priority order; a port is granted iff
/// no higher-priority port claimed its bank this period, the bank is
/// inactive, and its access path is unclaimed this period; otherwise the
/// delay is classified as a bank / simultaneous-bank / section conflict.
class ReferenceModel {
 public:
  /// An optional sim::FaultPlan degrades the modelled machine exactly as
  /// it degrades MemorySystem (fault.hpp documents the contract).  The
  /// model derives the fault state naively — by folding the plan's due
  /// events on every query instead of keeping cursors — so agreement with
  /// the simulator's incremental bookkeeping is a meaningful check.
  ReferenceModel(sim::MemoryConfig config, std::vector<sim::StreamConfig> streams,
                 FaultKind fault = FaultKind::none, sim::FaultPlan plan = {});

  /// Advance the clock by one period.
  void step();

  /// Run exactly `cycles` periods.
  void run(i64 cycles);

  [[nodiscard]] i64 now() const noexcept { return now_; }
  [[nodiscard]] std::size_t port_count() const noexcept { return streams_.size(); }

  /// Every grant and per-period conflict, in arbitration order — directly
  /// comparable with the events MemorySystem emits through its hooks.
  [[nodiscard]] const std::vector<sim::Event>& events() const noexcept { return log_; }

  /// Per-port statistics recomputed from the event log alone (grants,
  /// conflict kinds, first/last grant cycle, stall runs).
  [[nodiscard]] std::vector<sim::PortStats> stats() const;

 private:
  /// Port whose earlier grant keeps `bank` active at t (the bank-conflict
  /// blocker payload), or kNobody when inactive.  A grant at period g
  /// occupies its bank for the bank's effective cycle time *at g* (slow-
  /// bank faults lengthen it; the short_bank_busy mutation shortens it).
  [[nodiscard]] std::size_t bank_active_from_earlier(i64 bank, i64 t) const;
  /// Port granted `bank` in period t, if any (scans the log tail).
  [[nodiscard]] std::size_t same_period_bank_winner(i64 bank, i64 t) const;
  /// Port granted any bank on access path (cpu, section) in period t.
  [[nodiscard]] std::size_t same_period_path_winner(i64 cpu, i64 section, i64 t) const;

  // Naive fault-state queries: each folds the plan's events with
  // cycle <= t from the start, sharing nothing with the simulator's
  // incremental cursor/vector bookkeeping.
  [[nodiscard]] bool ref_bank_online(i64 bank, i64 t) const;
  [[nodiscard]] i64 ref_bank_nc(i64 bank, i64 t) const;
  [[nodiscard]] bool ref_bank_stalled(i64 bank, i64 t) const;
  [[nodiscard]] bool ref_path_down(i64 cpu, i64 section, i64 t) const;
  /// Bank port `idx` requests at t: the raw stream bank, or its image on
  /// the surviving banks under FaultPolicy::remap_spare.
  [[nodiscard]] i64 ref_effective_bank(std::size_t idx, i64 t) const;
  /// Periods a grant to `bank` issued at `grant_cycle` occupies it.
  [[nodiscard]] i64 service_length(i64 bank, i64 grant_cycle) const;

  sim::MemoryConfig config_;
  std::vector<sim::StreamConfig> streams_;
  FaultKind fault_;
  sim::FaultPlan plan_;
  i64 max_service_length_ = 0;  ///< backward-scan cutoff for bank activity
  std::vector<sim::Event> log_;
  std::vector<i64> issued_;  ///< per-port element cursor (the port's own
                             ///< progress, not derived arbitration state)
  i64 now_ = 0;
  std::size_t rr_ = 0;  ///< cyclic-priority rotation counter
};

}  // namespace vpmem::check
