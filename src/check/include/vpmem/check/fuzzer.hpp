// Config/stream fuzzer: samples memory configurations and access-stream
// sets within the paper's valid ranges (SplitMix64-driven, fully
// deterministic per seed) and cross-checks three independent oracles per
// case — the cycle-accurate simulator, the naive reference model, and the
// analytic theorems.  Every failure carries a one-line repro that
// `vpmem_cli fuzz --replay` re-executes (see replay.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vpmem/baseline/rng.hpp"
#include "vpmem/check/invariants.hpp"
#include "vpmem/check/reference_model.hpp"
#include "vpmem/exec/pool.hpp"
#include "vpmem/sim/config.hpp"
#include "vpmem/util/json.hpp"

namespace vpmem::check {

/// One fuzzed scenario: a configuration, its streams, the differential
/// cycle budget, and the reference-model mutation to inject (none for
/// real cross-checking; a specific fault for harness-sensitivity tests).
struct FuzzCase {
  sim::MemoryConfig config;
  std::vector<sim::StreamConfig> streams;
  i64 cycles = 224;
  FaultKind fault = FaultKind::none;
  sim::FaultPlan plan;  ///< degrades *both* sides when non-empty
};

/// Outcome of checking a single case.
struct CaseFailure {
  std::string check;    ///< "differential" or an invariant name
  std::string message;
};

struct CaseResult {
  std::vector<CaseFailure> failures;
  i64 checks_run = 0;
  i64 events_compared = 0;
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Differential comparison plus (optionally) the analytic invariants.
[[nodiscard]] CaseResult check_case(const FuzzCase& fuzz_case,
                                    const InvariantOptions& invariants = {},
                                    bool run_invariants = true);

struct FuzzOptions {
  std::uint64_t seed = 0x0ed1a25;  ///< PRNG seed; the whole run is a pure
                                   ///< function of it
  i64 iterations = 500;
  i64 cycles = 224;                ///< differential cycle budget per case
  FaultKind fault = FaultKind::none;  ///< reference mutation (sensitivity runs)
  /// Attach a randomized sim::FaultPlan (timed bank/path degradation under
  /// either policy) to every sampled case.  The analytic invariants are
  /// skipped for such cases — the theorems assume a healthy machine — so
  /// the check is pure simulator-vs-reference differential.
  bool fault_plans = false;
  bool run_invariants = true;
  bool shrink_failures = true;
  std::size_t max_failures = 8;    ///< stop fuzzing after this many
  InvariantOptions invariants{};
  /// Worker threads checking cases.  Sharding is order-independent: the
  /// whole campaign is pre-sampled sequentially from `seed`, workers
  /// check disjoint cases, and results fold back in iteration order — a
  /// --jobs 8 run reports exactly the failures the sequential run finds.
  int jobs = 1;
  /// Cooperative cancellation (SIGINT): the loop stops at the next case
  /// boundary and FuzzSummary::interrupted is set.
  const exec::CancelToken* cancel = nullptr;
};

struct FuzzFailure {
  i64 iteration = 0;
  std::string check;
  std::string message;
  std::string repro;         ///< full failing case, one line
  std::string shrunk_repro;  ///< greedily minimized case (empty if not shrunk)
};

struct FuzzSummary {
  i64 iterations = 0;        ///< cases actually checked
  i64 checks_run = 0;        ///< differential + invariant checks executed
  i64 events_compared = 0;   ///< simulator/reference events compared
  std::uint64_t seed = 0;
  std::vector<FuzzFailure> failures;
  bool interrupted = false;  ///< stopped early on the caller's cancel token
  [[nodiscard]] bool ok() const noexcept { return failures.empty() && !interrupted; }
  /// Schema "vpmem.fuzz_summary/1"; embedded verbatim by the CLI.
  [[nodiscard]] Json to_json() const;
};

/// Sample one scenario.  Half the cases take the canonical Section III-B
/// shape (two affine infinite streams, flat memory, fixed priority) so
/// the theorem oracles regularly fire; the rest roam the general space:
/// 1-4 ports over up to 3 CPUs, sections s | m, both mappings and
/// priority rules, affine (any-sign distances) and periodic-pattern
/// streams, finite lengths, delayed starts.
[[nodiscard]] FuzzCase sample_case(baseline::SplitMix64& rng, const FuzzOptions& options);

/// Run the full fuzz loop.
[[nodiscard]] FuzzSummary fuzz(const FuzzOptions& options);

}  // namespace vpmem::check
