// Per-run invariant checking: every configuration the fuzzer produces is
// held against the *analytic* oracles of the paper, independent of the
// reference-model comparison.  Each check guards its own applicability
// (e.g. the theorem sweeps only fire for the canonical two-stream flat
// configuration they are stated for) and reports a named failure with a
// human-readable detail when the simulator contradicts the oracle.
//
// Oracles (see DESIGN.md §7 for the full table):
//   * Theorem 1 return numbers r = m / gcd(m, d) vs the stream's actual
//     bank revisit period and access-set size.
//   * Single-stream b_eff = min(1, r/nc) vs exact steady-state detection.
//   * Theorem 3 synchronization: eq. 12 => every start offset converges
//     to a conflict-free cycle at b_eff = 2.
//   * Theorem 5: within the eq. 17 barrier context, no start offset may
//     produce mutual delays in the steady cycle.
//   * Theorems 6/7 + eq. 29: a unique barrier means b_eff = 1 + d1/d2
//     from every start offset.
//   * obs::Collector event-derived statistics == MemorySystem counters.
//   * Start-bank translation and global start-cycle shifts leave the
//     steady-state bandwidth unchanged (bank/time relabelings).
//   * Capacity bounds: b_eff <= p and b_eff * nc <= m, per-port shares
//     sum to the total.
//   * Windowed measurement over whole periods equals the exact rational.
#pragma once

#include <string>
#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"

namespace vpmem::check {

struct InvariantOptions {
  i64 cycles = 224;          ///< window for collector / finite-run checks
  i64 max_sweep_banks = 16;  ///< run full offset sweeps only when m <= this
  i64 max_cycles = 500'000;  ///< steady-state detection guard
};

/// One failed check.
struct InvariantFailure {
  std::string name;    ///< e.g. "theorem3_synchronization"
  std::string detail;  ///< what disagreed, with the offending values
};

struct InvariantReport {
  std::vector<std::string> ran;  ///< names of checks that were applicable
  std::vector<InvariantFailure> failures;
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] bool did_run(const std::string& name) const;
};

/// Run every applicable invariant for the given configuration.
[[nodiscard]] InvariantReport check_invariants(const sim::MemoryConfig& config,
                                               const std::vector<sim::StreamConfig>& streams,
                                               const InvariantOptions& options = {});

/// Field-by-field PortStats comparison used by the collector check;
/// exposed so the failure path is unit-testable.  Returns an empty string
/// when equal, else a description of the first differing field.
[[nodiscard]] std::string compare_port_stats(const sim::PortStats& simulator,
                                             const sim::PortStats& independent);

}  // namespace vpmem::check
