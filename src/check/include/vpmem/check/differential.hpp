// Grant-for-grant comparison of sim::MemorySystem against the naive
// ReferenceModel: both implementations run the same configuration for the
// same number of clock periods, and every emitted event (grants *and*
// per-period conflict classifications) plus the final per-port statistics
// must match exactly.
#pragma once

#include <string>
#include <vector>

#include "vpmem/check/reference_model.hpp"
#include "vpmem/sim/config.hpp"

namespace vpmem::check {

/// Outcome of one differential run.
struct DiffResult {
  bool agreed = true;
  i64 events_compared = 0;  ///< events matched before divergence (or total)
  i64 grants = 0;           ///< grants the simulator issued in the window
  std::string message;      ///< first divergence, human-readable; empty if agreed
};

/// Run both implementations for exactly `cycles` periods and compare.
/// `fault` mutates the *reference* side only — a non-none fault models an
/// arbitration bug that the comparison is expected to expose.
[[nodiscard]] DiffResult diff_run(const sim::MemoryConfig& config,
                                  const std::vector<sim::StreamConfig>& streams, i64 cycles,
                                  FaultKind fault = FaultKind::none);

/// diff_run under a sim::FaultPlan: *both* sides degrade the machine per
/// `plan` (the simulator incrementally, the reference by naive re-
/// derivation), and every fault-pinned delay must match event-for-event
/// on top of the usual grant/conflict agreement.
[[nodiscard]] DiffResult diff_run(const sim::MemoryConfig& config,
                                  const std::vector<sim::StreamConfig>& streams, i64 cycles,
                                  const sim::FaultPlan& plan, FaultKind fault = FaultKind::none);

}  // namespace vpmem::check
