// Bandwidth analysis of matrix access patterns under a storage scheme:
// each pattern reduces to a stride, so Section III-A and the pair
// theorems apply directly; the simulator cross-checks via explicit bank
// sequences.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "vpmem/skew/scheme.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::skew {

/// All four patterns, in a fixed order for reports.
[[nodiscard]] const std::vector<Pattern>& all_patterns();

/// Single-stream effective bandwidth of `pattern` under `scheme`
/// (Section III-A applied to the pattern's equivalent stride).
[[nodiscard]] Rational pattern_bandwidth(const StorageScheme& scheme,
                                         const MatrixLayout& layout, Pattern pattern, i64 m,
                                         i64 nc);

/// One row of a scheme report.
struct PatternReport {
  Pattern pattern = Pattern::column;
  i64 distance = 0;
  i64 return_number = 0;
  Rational bandwidth;
  bool conflict_free = false;  ///< return_number >= nc
};

/// Analyze all four patterns under a scheme.
[[nodiscard]] std::vector<PatternReport> analyze_scheme(const StorageScheme& scheme,
                                                        const MatrixLayout& layout, i64 m,
                                                        i64 nc);

/// Smallest skew delta in [2, m) making *all four* patterns run at full
/// single-stream bandwidth (column 1, row delta, diagonals delta +- 1 all
/// with return number >= nc).  nullopt when no such delta exists (e.g.
/// power-of-two m with nc > m/2: delta-1 and delta+1 cannot both be odd).
[[nodiscard]] std::optional<i64> find_good_skew(i64 m, i64 nc);

}  // namespace vpmem::skew
