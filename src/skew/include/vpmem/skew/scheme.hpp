// Storage schemes for two-dimensional arrays.
//
// The paper's conclusion recommends two escapes from bad strides and
// barrier-situations: dimensions relatively prime to the bank count, and
// "the application of skewing schemes (e.g. [1], [4], [11], [12])" —
// Budnik & Kuck's skewed storage, where column j of a matrix is rotated
// by delta*j banks so that rows, columns and diagonals can all be
// accessed conflict-free.  This module maps matrix access patterns to
// bank sequences under plain interleaving and under a (1, delta)-skew,
// reducing each pattern to an equivalent stride so the paper's
// single-stream and pair theorems apply unchanged.
#pragma once

#include <string>
#include <vector>

#include "vpmem/util/numeric.hpp"

namespace vpmem::skew {

/// A column-major (Fortran) matrix: element (i, j) lives at linear
/// address i + j*lda, 0-based, i < rows <= lda, j < cols.
struct MatrixLayout {
  i64 rows = 0;
  i64 cols = 0;
  i64 lda = 0;  ///< leading dimension (>= rows)

  void validate() const;
};

/// How elements are assigned to banks.
enum class SchemeKind {
  /// Plain m-way interleaving of linear addresses: bank = (i + j*lda) mod m.
  interleaved,
  /// (1, delta)-skewed storage: bank = (i + j*delta) mod m — column j is
  /// rotated delta*j banks relative to column 0.
  skewed,
};

struct StorageScheme {
  SchemeKind kind = SchemeKind::interleaved;
  i64 skew = 1;  ///< delta, used when kind == skewed

  /// Bank of element (i, j) under m banks.
  [[nodiscard]] i64 bank_of(const MatrixLayout& layout, i64 i, i64 j, i64 m) const;
};

[[nodiscard]] std::string to_string(SchemeKind kind);

/// The vector access patterns of interest (Lawrie's "d-ordered vectors"):
/// a column, a row, a forward diagonal (i+k, j+k) and a backward diagonal
/// (i+k, j-k).
enum class Pattern { column, row, forward_diagonal, backward_diagonal };

[[nodiscard]] std::string to_string(Pattern pattern);

/// Number of elements the pattern visits in this layout.
[[nodiscard]] i64 pattern_length(const MatrixLayout& layout, Pattern pattern);

/// The explicit bank sequence of `pattern` (starting at element (0, 0),
/// (0, j0) or (i0, 0) as appropriate — index 0 of the pattern) under the
/// scheme.  Suitable as sim::StreamConfig::bank_pattern.
[[nodiscard]] std::vector<i64> bank_sequence(const StorageScheme& scheme,
                                             const MatrixLayout& layout, Pattern pattern,
                                             i64 m);

/// Every pattern above is an affine bank walk: consecutive elements are a
/// constant bank distance apart.  Returns that distance (mod m):
///   interleaved: column 1, row lda, diagonals lda +- 1;
///   skewed:      column 1, row delta, diagonals delta +- 1.
[[nodiscard]] i64 pattern_distance(const StorageScheme& scheme, const MatrixLayout& layout,
                                   Pattern pattern, i64 m);

}  // namespace vpmem::skew
