#include "vpmem/skew/analysis.hpp"

#include "vpmem/analytic/stream.hpp"

namespace vpmem::skew {

const std::vector<Pattern>& all_patterns() {
  static const std::vector<Pattern> patterns{Pattern::column, Pattern::row,
                                             Pattern::forward_diagonal,
                                             Pattern::backward_diagonal};
  return patterns;
}

Rational pattern_bandwidth(const StorageScheme& scheme, const MatrixLayout& layout,
                           Pattern pattern, i64 m, i64 nc) {
  return analytic::single_stream_bandwidth(m, pattern_distance(scheme, layout, pattern, m),
                                           nc);
}

std::vector<PatternReport> analyze_scheme(const StorageScheme& scheme,
                                          const MatrixLayout& layout, i64 m, i64 nc) {
  std::vector<PatternReport> out;
  out.reserve(all_patterns().size());
  for (Pattern pattern : all_patterns()) {
    PatternReport r;
    r.pattern = pattern;
    r.distance = pattern_distance(scheme, layout, pattern, m);
    r.return_number = analytic::return_number(m, r.distance);
    r.bandwidth = analytic::single_stream_bandwidth(m, r.distance, nc);
    r.conflict_free = analytic::self_conflict_free(m, r.distance, nc);
    out.push_back(r);
  }
  return out;
}

std::optional<i64> find_good_skew(i64 m, i64 nc) {
  if (m < 1 || nc < 1) throw std::invalid_argument{"find_good_skew: m, nc must be >= 1"};
  for (i64 delta = 2; delta < m; ++delta) {
    const bool ok = analytic::self_conflict_free(m, 1, nc) &&
                    analytic::self_conflict_free(m, delta, nc) &&
                    analytic::self_conflict_free(m, delta + 1, nc) &&
                    analytic::self_conflict_free(m, delta - 1, nc);
    if (ok) return delta;
  }
  return std::nullopt;
}

}  // namespace vpmem::skew
