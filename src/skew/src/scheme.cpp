#include "vpmem/skew/scheme.hpp"

#include <algorithm>
#include <stdexcept>

namespace vpmem::skew {

void MatrixLayout::validate() const {
  if (rows < 1 || cols < 1) throw std::invalid_argument{"MatrixLayout: rows, cols must be >= 1"};
  if (lda < rows) throw std::invalid_argument{"MatrixLayout: lda must be >= rows"};
}

i64 StorageScheme::bank_of(const MatrixLayout& layout, i64 i, i64 j, i64 m) const {
  layout.validate();
  if (m < 1) throw std::invalid_argument{"bank_of: m must be >= 1"};
  if (i < 0 || i >= layout.rows || j < 0 || j >= layout.cols) {
    throw std::out_of_range{"bank_of: element index out of range"};
  }
  switch (kind) {
    case SchemeKind::interleaved: return mod_norm(i + j * layout.lda, m);
    case SchemeKind::skewed: return mod_norm(i + j * skew, m);
  }
  throw std::logic_error{"bank_of: unknown scheme"};
}

std::string to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::interleaved: return "interleaved";
    case SchemeKind::skewed: return "skewed";
  }
  return "?";
}

std::string to_string(Pattern pattern) {
  switch (pattern) {
    case Pattern::column: return "column";
    case Pattern::row: return "row";
    case Pattern::forward_diagonal: return "forward-diagonal";
    case Pattern::backward_diagonal: return "backward-diagonal";
  }
  return "?";
}

i64 pattern_length(const MatrixLayout& layout, Pattern pattern) {
  layout.validate();
  switch (pattern) {
    case Pattern::column: return layout.rows;
    case Pattern::row: return layout.cols;
    case Pattern::forward_diagonal:
    case Pattern::backward_diagonal: return std::min(layout.rows, layout.cols);
  }
  throw std::logic_error{"pattern_length: unknown pattern"};
}

std::vector<i64> bank_sequence(const StorageScheme& scheme, const MatrixLayout& layout,
                               Pattern pattern, i64 m) {
  const i64 n = pattern_length(layout, pattern);
  std::vector<i64> seq;
  seq.reserve(static_cast<std::size_t>(n));
  for (i64 k = 0; k < n; ++k) {
    i64 i = 0;
    i64 j = 0;
    switch (pattern) {
      case Pattern::column: i = k; break;
      case Pattern::row: j = k; break;
      case Pattern::forward_diagonal:
        i = k;
        j = k;
        break;
      case Pattern::backward_diagonal:
        i = k;
        j = layout.cols - 1 - k;
        break;
    }
    seq.push_back(scheme.bank_of(layout, i, j, m));
  }
  return seq;
}

i64 pattern_distance(const StorageScheme& scheme, const MatrixLayout& layout, Pattern pattern,
                     i64 m) {
  layout.validate();
  if (m < 1) throw std::invalid_argument{"pattern_distance: m must be >= 1"};
  const i64 col_step = (scheme.kind == SchemeKind::skewed) ? scheme.skew : layout.lda;
  switch (pattern) {
    case Pattern::column: return mod_norm(1, m);
    case Pattern::row: return mod_norm(col_step, m);
    case Pattern::forward_diagonal: return mod_norm(1 + col_step, m);
    case Pattern::backward_diagonal: return mod_norm(1 - col_step, m);
  }
  throw std::logic_error{"pattern_distance: unknown pattern"};
}

}  // namespace vpmem::skew
