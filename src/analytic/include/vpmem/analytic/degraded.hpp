// Degraded-mode extension of Theorem 1: effective bandwidth after bank
// failures under sim::FaultPolicy::remap_spare.
//
// The remap contract (sim/fault.hpp) re-addresses every stream's bank
// sequence modulo the number of surviving banks m' and looks the slot up
// in the ascending surviving list.  Two accesses therefore collide on a
// physical bank iff they collide on a slot, and the slot sequence of an
// affine stream with distance d is again affine with the same distance —
// so the degraded machine is access-for-access isomorphic to a healthy
// m'-bank interleave.  Theorem 1 transfers verbatim with m replaced by
// m': the degraded return number is r' = m' / gcd(m', d) and a single
// stream sustains b_eff = min(1, r'/nc).  The sweep test
// tests/analytic/degraded_test.cpp validates the equality (not just the
// bound) against the cycle-accurate simulator across (m, d, nc, failed
// bank) and recovery scenarios.
#pragma once

#include "vpmem/util/numeric.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::analytic {

/// Return number over the m' surviving banks: r' = m' / gcd(m', d), with
/// the paper's convention gcd(m', 0) = m'.  Throws
/// std::invalid_argument when no bank survives (m' < 1) — a machine with
/// zero online banks grants nothing and has no return number.
[[nodiscard]] i64 degraded_return_number(i64 survivors, i64 d);

/// Steady effective bandwidth of one affine stream of distance d on a
/// remap-degraded machine with m' surviving banks:
///   b_eff = min(1, r'/nc),  r' = m'/gcd(m', d).
/// Exact for a single stream; an upper bound per stream otherwise.
[[nodiscard]] Rational degraded_single_stream_bandwidth(i64 survivors, i64 d, i64 nc);

/// Machine-level ceiling on the *total* effective bandwidth of any
/// workload over p ports when m' banks survive: each bank completes at
/// most one access per nc periods and each port at most one per period,
/// so total b_eff <= min(p, m'/nc).  survivors == 0 gives 0.
[[nodiscard]] Rational degraded_capacity(i64 survivors, i64 nc, i64 ports);

}  // namespace vpmem::analytic
