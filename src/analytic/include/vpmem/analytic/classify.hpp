// Pair classification: what the theorems predict for a pair of distances
// (d1, d2) on an m-way interleaved memory with bank cycle nc, before any
// start banks are chosen.
#pragma once

#include <optional>
#include <string>

#include "vpmem/util/numeric.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::analytic {

/// Best-case / guaranteed behaviour of a pair of infinite streams
/// (sections not a bottleneck, s = m).
enum class PairClass {
  /// At least one stream self-conflicts (r < nc); the pair analysis of
  /// Section III-B does not apply.
  self_conflicting,
  /// Disjoint access sets achievable (Theorem 2): b_eff = 2 with suitable
  /// start banks.
  disjoint_possible,
  /// Conflict-free by Theorem 3, with *synchronization*: every relative
  /// start position converges to a conflict-free cycle, b_eff = 2 always.
  conflict_free_synchronized,
  /// A unique barrier-situation (Theorems 6/7): b_eff = 1 + d1/d2
  /// regardless of start positions (after normalization).
  unique_barrier,
  /// Conflicting cycles whose bandwidth depends on the relative start
  /// positions (barrier or double conflict); simulate to quantify.
  start_dependent,
};

[[nodiscard]] std::string to_string(PairClass c);

/// Classification plus the bandwidth the class guarantees (best case for
/// disjoint_possible, exact for conflict_free_synchronized and
/// unique_barrier, nullopt when start-dependent).
struct PairPrediction {
  PairClass cls = PairClass::start_dependent;
  std::optional<Rational> bandwidth;
  /// Distances after Appendix normalization (d1 | m), used by the barrier
  /// theorems; equal to the inputs when already in canonical shape.
  i64 norm_d1 = 0;
  i64 norm_d2 = 0;
};

/// Classify the distance pair for s = m (no section bottleneck).
/// `stream1_priority` enables the eq. 28 refinement of Theorem 7.
[[nodiscard]] PairPrediction classify_pair(i64 m, i64 nc, i64 d1, i64 d2,
                                           bool stream1_priority = false);

}  // namespace vpmem::analytic
