// Analytic properties of a single constant-stride access stream
// (Section III, Theorem 1 and Section III-A).
#pragma once

#include <vector>

#include "vpmem/util/numeric.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::analytic {

/// Theorem 1: the return number r = m / gcd(m, d) — the number of accesses
/// made before the stream requests the same bank again.  With the paper's
/// convention gcd(m, 0) = m, a distance that is a multiple of m gives
/// r = 1 (every access hits the start bank).
[[nodiscard]] i64 return_number(i64 m, i64 d);

/// The access set Z: the r distinct bank addresses the stream visits, in
/// visiting order starting from b.
[[nodiscard]] std::vector<i64> access_set(i64 m, i64 b, i64 d);

/// The section set: distinct section addresses visited by the stream
/// under the cyclic mapping k = j mod s, in first-visit order.
[[nodiscard]] std::vector<i64> section_set(i64 m, i64 s, i64 b, i64 d);

/// Section III-A: one stream's effective bandwidth.
/// b_eff = 1 when r >= nc, else r / nc (r requests serviced every nc
/// periods once the stream self-conflicts at its start bank).
[[nodiscard]] Rational single_stream_bandwidth(i64 m, i64 d, i64 nc);

/// True when the stream never conflicts with itself: r >= nc.
[[nodiscard]] bool self_conflict_free(i64 m, i64 d, i64 nc);

/// Generalization of Theorem 3's equal-distance case to p streams (the
/// schedule behind the conclusion's "multitasking option": uniform
/// streams time-share the banks).  p streams of distance d, started
/// nc*d banks apart, are conflict-free iff consecutive visits to any
/// bank are >= nc periods apart, i.e. r >= p * nc.
[[nodiscard]] bool equal_distance_group_conflict_free(i64 m, i64 d, i64 nc, i64 p);

/// The staggered start banks of that schedule: b_i = i * nc * d (mod m).
[[nodiscard]] std::vector<i64> equal_distance_group_offsets(i64 m, i64 d, i64 nc, i64 p);

}  // namespace vpmem::analytic
