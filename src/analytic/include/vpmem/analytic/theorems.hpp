// Theorems 2-9 of Oed & Lange (1985): conditions on two concurrent
// constant-stride streams over an m-way interleaved memory with bank cycle
// time nc (and, for Theorems 8/9, s sections).
//
// Each predicate evaluates exactly the inequality of the corresponding
// equation; `*_preconditions_hold` helpers expose the side conditions the
// paper states ("Let r1 >= 2nc; r2 > nc; Z1 ∩ Z2 != ∅; d1 | m; d2 > d1").
#pragma once

#include "vpmem/util/numeric.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::analytic {

// ---------------------------------------------------------------- Thm 2 --

/// Theorem 2 (eq. 5): start banks with disjoint access sets exist iff
/// gcd(m, d1, d2) > 1.
[[nodiscard]] bool disjoint_access_sets_achievable(i64 m, i64 d1, i64 d2);

/// Whether two *placed* streams actually have disjoint access sets.
[[nodiscard]] bool access_sets_disjoint(i64 m, i64 b1, i64 d1, i64 b2, i64 d2);

// ---------------------------------------------------------------- Thm 3 --

/// Theorem 3 (eq. 12): with f = gcd(m, d1, d2), start banks making two
/// streams with *non-disjoint* access sets conflict-free exist iff
/// gcd(m/f, (d2 - d1)/f) >= 2*nc.  (gcd(x, 0) = x, so equal distances are
/// conflict-free iff the return number r >= 2*nc.)
[[nodiscard]] bool conflict_free_achievable(i64 m, i64 nc, i64 d1, i64 d2);

/// The start-bank offset the proof of Theorem 3 exhibits: b2 = nc*d1
/// (mod m) relative to b1 = 0.  Stream 1 then arrives at b2 exactly when
/// b2 becomes inactive again.
[[nodiscard]] i64 conflict_free_offset(i64 m, i64 nc, i64 d1);

// ------------------------------------------------------------- Thm 4-7 --

/// Side conditions shared by Theorems 4-7: r1 >= 2nc, r2 > nc,
/// non-disjoint access sets, d1 | m, d2 > d1.
[[nodiscard]] bool barrier_preconditions_hold(i64 m, i64 nc, i64 d1, i64 d2);

/// Theorem 4 (eq. 17): start banks leading to a barrier-situation exist if
/// ((d2 mod (m/d1)) - d1)/f < nc, f = gcd(m, d1, d2).  (The conflict-free
/// stream "1" forms a barrier that regularly delays stream "2".)
/// Implemented via the proof's eq. 20/21 form (1 <= c < nc), plus the
/// implicit non-degeneracy d1'*d2' != 0 (mod m') the proof relies on.
[[nodiscard]] bool barrier_possible(i64 m, i64 nc, i64 d1, i64 d2);

/// Theorem 5 (eq. 22): a double conflict (mutual delays) is *never*
/// encountered if (nc - 1)*(d2 + d1) < m.
///
/// Reproduction note: the paper states this with only the side conditions
/// of barrier_preconditions_hold(), but the guarantee empirically requires
/// the eq. 17 barrier context as well — e.g. m=12, nc=2, d1=1, d2=4
/// satisfies eq. 22 (1*5 < 12) yet every start position falls into a
/// mutual-delay cycle (b_eff = 8/5).  Use barrier_possible() alongside
/// this predicate; the property suite documents the counterexamples.
[[nodiscard]] bool double_conflict_impossible(i64 m, i64 nc, i64 d1, i64 d2);

/// Theorem 6 (eq. 24): given eq. 17, the barrier-situation is unique
/// (reached from every relative start position) if (2nc - 1)*d2 <= m.
[[nodiscard]] bool unique_barrier_thm6(i64 m, i64 nc, i64 d1, i64 d2);

/// Theorem 7 (eq. 25): given eqs. 17 and 22 but not 24, a unique
/// barrier-situation is reached if k*d2 < (k - nc)*d1 (mod m) with
/// k = ceil(m/(d1*d2))*d1 < 2nc.  With stream 1 holding priority
/// (eq. 28) equality also suffices.
[[nodiscard]] bool unique_barrier_thm7(i64 m, i64 nc, i64 d1, i64 d2,
                                       bool stream1_priority = false);

/// Combined: barrier-situation is unique by Theorem 6 or Theorem 7.
[[nodiscard]] bool unique_barrier(i64 m, i64 nc, i64 d1, i64 d2, bool stream1_priority = false);

/// Eq. 29: effective bandwidth of a unique barrier-situation,
/// b_eff = 1 + d1/d2 < 2 (the delayed stream completes d1/f accesses per
/// d2/f clock periods while the barrier stream runs freely).
[[nodiscard]] Rational barrier_bandwidth(i64 d1, i64 d2);

// ------------------------------------------------------- Thm 8/9, s < m --

/// Theorem 8 (eq. 30): with s < m sections (cyclic bank distribution),
/// disjoint access sets but overlapping section sets, conflict-free
/// streams require gcd(s, d2 - d1) >= 2.
[[nodiscard]] bool section_conflict_free_disjoint(i64 s, i64 d1, i64 d2);

/// Theorem 9 (eq. 31): when eq. 12 holds, the streams are conflict-free
/// (with offset nc*d1) if nc*d1 is not a multiple of s.
[[nodiscard]] bool section_condition_thm9(i64 s, i64 nc, i64 d1);

/// Eq. 32: when eq. 31 fails, conflict-freeness is still possible with the
/// offset (nc+1)*d1 if gcd(m/f, (d2 - d1)/f) >= 2*(nc + 1) — one extra
/// clock period avoids the section conflict.
[[nodiscard]] bool conflict_free_achievable_ext(i64 m, i64 nc, i64 d1, i64 d2);

/// Start-bank offset used by eq. 32: (nc + 1)*d1 mod m.
[[nodiscard]] i64 conflict_free_offset_ext(i64 m, i64 nc, i64 d1);

/// Conflict-free achievability for non-disjoint access sets in a
/// sectioned memory: eq. 12 together with Theorem 9, or the eq. 32
/// relaxation.  Returns the usable relative offset via `offset_out`
/// (untouched when the function returns false).
[[nodiscard]] bool conflict_free_with_sections(i64 m, i64 s, i64 nc, i64 d1, i64 d2,
                                               i64* offset_out = nullptr);

}  // namespace vpmem::analytic
