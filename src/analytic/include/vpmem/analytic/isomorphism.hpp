// Appendix "Isomorphism of Distances": the competition d1 (+) d2 of two
// streams is unchanged (up to renumbering banks) by multiplying both
// distances by any k with gcd(k, m) = 1.  For stream 1 only distances with
// d1 | m need be considered; every other pair is isomorphic to such a one.
#pragma once

#include <optional>

#include "vpmem/util/numeric.hpp"

namespace vpmem::analytic {

/// A distance pair brought to the canonical form the theorems assume.
struct NormalizedPair {
  i64 d1;         ///< canonical first distance, d1 | m
  i64 d2;         ///< companion distance (mod m), in [0, m)
  i64 k;          ///< multiplier used: d1 = k*orig_d1 mod m, gcd(k, m) = 1
  bool swapped;   ///< true if the roles of the input streams were exchanged
};

/// Multiply both distances by k (mod m); requires gcd(k, m) = 1.
[[nodiscard]] std::optional<NormalizedPair> apply_multiplier(i64 m, i64 d1, i64 d2, i64 k);

/// Normalize (d1, d2) so that the first distance divides m, using the
/// smallest admissible multiplier k.  Always succeeds for m >= 1: k can be
/// chosen so that k*d1 = gcd(m, d1) (mod m).
[[nodiscard]] NormalizedPair normalize_pair(i64 m, i64 d1, i64 d2);

/// As normalize_pair, but additionally tries swapping the streams so that
/// the normalized pair satisfies the barrier-theorem shape d1 | m and
/// d2 > d1 whenever some isomorphic representative does.
[[nodiscard]] NormalizedPair normalize_pair_ordered(i64 m, i64 d1, i64 d2);

/// True if (a1, a2) and (c1, c2) describe isomorphic competitions, i.e.
/// some k with gcd(k, m) = 1 maps one onto the other (in either stream
/// order).
[[nodiscard]] bool isomorphic(i64 m, i64 a1, i64 a2, i64 c1, i64 c2);

}  // namespace vpmem::analytic
