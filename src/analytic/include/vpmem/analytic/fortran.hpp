// Section IV / Conclusion: mapping Fortran loop strides and array shapes
// to bank distances (eq. 33) and the paper's programming advice ("choose
// the dimension of arrays so that they are relatively prime to the number
// of banks").
#pragma once

#include <span>
#include <vector>

#include "vpmem/util/numeric.hpp"

namespace vpmem::analytic {

/// Eq. 33: the bank distance that results from stepping with increment
/// `inc` through dimension `dim_index` (0-based; 0 = leftmost, the
/// contiguous one in Fortran) of an array with extents `dims`:
///   d = (inc * prod_{i < dim_index} dims[i]) mod m.
[[nodiscard]] i64 array_distance(std::span<const i64> dims, std::size_t dim_index, i64 inc,
                                 i64 m);

/// Element distance (not reduced mod m) for the same access pattern.
[[nodiscard]] i64 array_stride_elements(std::span<const i64> dims, std::size_t dim_index,
                                        i64 inc);

/// Smallest extent >= `wanted` that is relatively prime to m — the safe
/// leading-dimension padding rule from the conclusion.
[[nodiscard]] i64 safe_leading_dimension(i64 wanted, i64 m);

/// Start banks of consecutive arrays laid out back-to-back in a COMMON
/// block starting at `base_bank`, each of `idim` elements (Section IV uses
/// IDIM = 16*1024 + 1 so consecutive arrays start one bank apart).
[[nodiscard]] std::vector<i64> common_block_start_banks(i64 base_bank, i64 idim,
                                                        std::size_t arrays, i64 m);

}  // namespace vpmem::analytic
