#include "vpmem/analytic/isomorphism.hpp"

#include <stdexcept>

namespace vpmem::analytic {

std::optional<NormalizedPair> apply_multiplier(i64 m, i64 d1, i64 d2, i64 k) {
  if (m < 1) throw std::invalid_argument{"apply_multiplier: m must be >= 1"};
  if (!coprime(k, m)) return std::nullopt;
  return NormalizedPair{.d1 = mod_norm(k * d1, m),
                        .d2 = mod_norm(k * d2, m),
                        .k = mod_norm(k, m),
                        .swapped = false};
}

NormalizedPair normalize_pair(i64 m, i64 d1, i64 d2) {
  if (m < 1) throw std::invalid_argument{"normalize_pair: m must be >= 1"};
  const i64 d1n = mod_norm(d1, m);
  // Target: k*d1 == gcd(m, d1) (mod m).  gcd(m, 0) = m == 0 (mod m), so a
  // zero distance stays zero (which divides m in the mod-m sense; callers
  // treat it as the degenerate always-same-bank stream).
  for (i64 k = 1; k < m + 1; ++k) {
    if (!coprime(k, m)) continue;
    const i64 c1 = mod_norm(k * d1n, m);
    if (c1 == 0 ? d1n == 0 : m % c1 == 0) {
      return NormalizedPair{.d1 = c1, .d2 = mod_norm(k * d2, m), .k = k, .swapped = false};
    }
  }
  throw std::logic_error{"normalize_pair: no admissible multiplier (unreachable)"};
}

NormalizedPair normalize_pair_ordered(i64 m, i64 d1, i64 d2) {
  const NormalizedPair forward = normalize_pair(m, d1, d2);
  if (forward.d1 >= 1 && forward.d2 > forward.d1) return forward;
  NormalizedPair swapped = normalize_pair(m, d2, d1);
  swapped.swapped = true;
  if (swapped.d1 >= 1 && swapped.d2 > swapped.d1) return swapped;
  return forward;  // no representative has the theorem shape; return canon
}

bool isomorphic(i64 m, i64 a1, i64 a2, i64 c1, i64 c2) {
  if (m < 1) throw std::invalid_argument{"isomorphic: m must be >= 1"};
  const i64 t1 = mod_norm(c1, m);
  const i64 t2 = mod_norm(c2, m);
  for (i64 k = 1; k <= m; ++k) {
    if (!coprime(k, m)) continue;
    const i64 x1 = mod_norm(k * a1, m);
    const i64 x2 = mod_norm(k * a2, m);
    if ((x1 == t1 && x2 == t2) || (x1 == t2 && x2 == t1)) return true;
  }
  return false;
}

}  // namespace vpmem::analytic
