#include "vpmem/analytic/degraded.hpp"

#include <stdexcept>

#include "vpmem/analytic/stream.hpp"

namespace vpmem::analytic {

i64 degraded_return_number(i64 survivors, i64 d) {
  if (survivors < 1) {
    throw std::invalid_argument{"degraded_return_number: no surviving banks"};
  }
  return return_number(survivors, d);
}

Rational degraded_single_stream_bandwidth(i64 survivors, i64 d, i64 nc) {
  if (survivors < 0) {
    throw std::invalid_argument{"degraded_single_stream_bandwidth: survivors must be >= 0"};
  }
  if (survivors == 0) return Rational{0, 1};
  return single_stream_bandwidth(survivors, d, nc);
}

Rational degraded_capacity(i64 survivors, i64 nc, i64 ports) {
  if (survivors < 0 || ports < 0) {
    throw std::invalid_argument{"degraded_capacity: survivors and ports must be >= 0"};
  }
  if (nc < 1) throw std::invalid_argument{"degraded_capacity: nc must be >= 1"};
  const Rational banks_side{survivors, nc};
  const Rational ports_side{ports, 1};
  return banks_side < ports_side ? banks_side : ports_side;
}

}  // namespace vpmem::analytic
