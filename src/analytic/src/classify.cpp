#include "vpmem/analytic/classify.hpp"

#include "vpmem/analytic/isomorphism.hpp"
#include "vpmem/analytic/stream.hpp"
#include "vpmem/analytic/theorems.hpp"

namespace vpmem::analytic {

std::string to_string(PairClass c) {
  switch (c) {
    case PairClass::self_conflicting: return "self-conflicting";
    case PairClass::disjoint_possible: return "disjoint-possible";
    case PairClass::conflict_free_synchronized: return "conflict-free";
    case PairClass::unique_barrier: return "unique-barrier";
    case PairClass::start_dependent: return "start-dependent";
  }
  return "?";
}

PairPrediction classify_pair(i64 m, i64 nc, i64 d1, i64 d2, bool stream1_priority) {
  PairPrediction out;
  const NormalizedPair norm = normalize_pair_ordered(m, d1, d2);
  out.norm_d1 = norm.d1;
  out.norm_d2 = norm.d2;

  if (!self_conflict_free(m, d1, nc) || !self_conflict_free(m, d2, nc)) {
    out.cls = PairClass::self_conflicting;
    return out;
  }
  if (conflict_free_achievable(m, nc, d1, d2)) {
    // Theorem 3 plus the synchronization property: any offset converges.
    out.cls = PairClass::conflict_free_synchronized;
    out.bandwidth = Rational{2};
    return out;
  }
  if (disjoint_access_sets_achievable(m, d1, d2)) {
    out.cls = PairClass::disjoint_possible;
    out.bandwidth = Rational{2};  // achievable, not guaranteed for all starts
    return out;
  }
  if (unique_barrier(m, nc, norm.d1, norm.d2, stream1_priority)) {
    out.cls = PairClass::unique_barrier;
    out.bandwidth = barrier_bandwidth(norm.d1, norm.d2);
    return out;
  }
  out.cls = PairClass::start_dependent;
  return out;
}

}  // namespace vpmem::analytic
