#include "vpmem/analytic/stream.hpp"

#include <stdexcept>

namespace vpmem::analytic {

namespace {
void check_m(i64 m) {
  if (m < 1) throw std::invalid_argument{"analytic: m must be >= 1"};
}
}  // namespace

i64 return_number(i64 m, i64 d) {
  check_m(m);
  const i64 g = gcd(m, mod_norm(d, m));
  return m / (g == 0 ? m : g);  // gcd(m, 0) == m by the paper's convention
}

std::vector<i64> access_set(i64 m, i64 b, i64 d) {
  check_m(m);
  const i64 r = return_number(m, d);
  std::vector<i64> z;
  z.reserve(static_cast<std::size_t>(r));
  for (i64 k = 0; k < r; ++k) z.push_back(mod_norm(b + k * d, m));
  return z;
}

std::vector<i64> section_set(i64 m, i64 s, i64 b, i64 d) {
  check_m(m);
  if (s < 1 || m % s != 0) throw std::invalid_argument{"section_set: s must divide m"};
  std::vector<bool> seen(static_cast<std::size_t>(s), false);
  std::vector<i64> out;
  for (i64 bank : access_set(m, b, d)) {
    const i64 sec = bank % s;
    if (!seen[static_cast<std::size_t>(sec)]) {
      seen[static_cast<std::size_t>(sec)] = true;
      out.push_back(sec);
    }
  }
  return out;
}

Rational single_stream_bandwidth(i64 m, i64 d, i64 nc) {
  check_m(m);
  if (nc < 1) throw std::invalid_argument{"analytic: nc must be >= 1"};
  const i64 r = return_number(m, d);
  if (r >= nc) return Rational{1};
  return Rational{r, nc};
}

bool self_conflict_free(i64 m, i64 d, i64 nc) {
  return return_number(m, d) >= nc;
}

bool equal_distance_group_conflict_free(i64 m, i64 d, i64 nc, i64 p) {
  check_m(m);
  if (nc < 1 || p < 1) throw std::invalid_argument{"analytic: nc, p must be >= 1"};
  return return_number(m, d) >= p * nc;
}

std::vector<i64> equal_distance_group_offsets(i64 m, i64 d, i64 nc, i64 p) {
  check_m(m);
  if (nc < 1 || p < 1) throw std::invalid_argument{"analytic: nc, p must be >= 1"};
  std::vector<i64> offsets;
  offsets.reserve(static_cast<std::size_t>(p));
  for (i64 i = 0; i < p; ++i) offsets.push_back(mod_norm(i * nc * d, m));
  return offsets;
}

}  // namespace vpmem::analytic
