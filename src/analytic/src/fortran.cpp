#include "vpmem/analytic/fortran.hpp"

#include <stdexcept>

namespace vpmem::analytic {

i64 array_stride_elements(std::span<const i64> dims, std::size_t dim_index, i64 inc) {
  if (dim_index >= dims.size()) {
    throw std::invalid_argument{"array_stride_elements: dim_index out of range"};
  }
  i64 stride = 1;
  for (std::size_t i = 0; i < dim_index; ++i) {
    if (dims[i] < 1) throw std::invalid_argument{"array_stride_elements: extents must be >= 1"};
    stride *= dims[i];
  }
  return inc * stride;
}

i64 array_distance(std::span<const i64> dims, std::size_t dim_index, i64 inc, i64 m) {
  if (m < 1) throw std::invalid_argument{"array_distance: m must be >= 1"};
  return mod_norm(array_stride_elements(dims, dim_index, inc), m);
}

i64 safe_leading_dimension(i64 wanted, i64 m) {
  if (wanted < 1 || m < 1) {
    throw std::invalid_argument{"safe_leading_dimension: arguments must be >= 1"};
  }
  i64 j = wanted;
  while (!coprime(j, m)) ++j;
  return j;
}

std::vector<i64> common_block_start_banks(i64 base_bank, i64 idim, std::size_t arrays, i64 m) {
  if (m < 1) throw std::invalid_argument{"common_block_start_banks: m must be >= 1"};
  if (idim < 1) throw std::invalid_argument{"common_block_start_banks: idim must be >= 1"};
  std::vector<i64> banks;
  banks.reserve(arrays);
  for (std::size_t a = 0; a < arrays; ++a) {
    banks.push_back(mod_norm(base_bank + static_cast<i64>(a) * idim, m));
  }
  return banks;
}

}  // namespace vpmem::analytic
