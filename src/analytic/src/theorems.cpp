#include "vpmem/analytic/theorems.hpp"

#include <stdexcept>
#include <vector>

#include "vpmem/analytic/stream.hpp"

namespace vpmem::analytic {

namespace {

void check_args(i64 m, i64 nc) {
  if (m < 1) throw std::invalid_argument{"analytic: m must be >= 1"};
  if (nc < 1) throw std::invalid_argument{"analytic: nc must be >= 1"};
}

/// gcd with the paper's convention gcd(x, 0) = x.
i64 gcd0(i64 a, i64 b) { return b == 0 ? a : gcd(a, b); }

/// The primed quantities of the proofs: everything divided by
/// f = gcd(m, d1, d2).
struct Primed {
  i64 f;
  i64 m;
  i64 d1;
  i64 d2;
};

Primed primed(i64 m, i64 d1, i64 d2) {
  i64 f = gcd(m, d1, d2);
  if (f == 0) f = 1;
  return Primed{f, m / f, d1 / f, d2 / f};
}

}  // namespace

// ---------------------------------------------------------------- Thm 2 --

bool disjoint_access_sets_achievable(i64 m, i64 d1, i64 d2) {
  check_args(m, 1);
  return gcd(m, d1, d2) > 1;
}

bool access_sets_disjoint(i64 m, i64 b1, i64 d1, i64 b2, i64 d2) {
  check_args(m, 1);
  std::vector<bool> in_z1(static_cast<std::size_t>(m), false);
  for (i64 bank : access_set(m, b1, d1)) in_z1[static_cast<std::size_t>(bank)] = true;
  for (i64 bank : access_set(m, b2, d2)) {
    if (in_z1[static_cast<std::size_t>(bank)]) return false;
  }
  return true;
}

// ---------------------------------------------------------------- Thm 3 --

bool conflict_free_achievable(i64 m, i64 nc, i64 d1, i64 d2) {
  check_args(m, nc);
  const Primed p = primed(m, d1, d2);
  return gcd0(p.m, gcd(p.m, p.d2 - p.d1)) >= 2 * nc;
}

i64 conflict_free_offset(i64 m, i64 nc, i64 d1) {
  check_args(m, nc);
  return mod_norm(nc * d1, m);
}

// ------------------------------------------------------------- Thm 4-7 --

bool barrier_preconditions_hold(i64 m, i64 nc, i64 d1, i64 d2) {
  check_args(m, nc);
  if (d1 < 1 || d2 <= d1) return false;
  if (m % d1 != 0) return false;  // d1 | m
  return return_number(m, d1) >= 2 * nc && return_number(m, d2) > nc;
}

bool barrier_possible(i64 m, i64 nc, i64 d1, i64 d2) {
  if (!barrier_preconditions_hold(m, nc, d1, d2)) return false;
  const Primed p = primed(m, d1, d2);
  // The proof of Theorem 4 uses "the first common address after 0 is
  // d1'*d2' mod m'"; when d1'*d2' == 0 (mod m') that address is 0 itself
  // and the construction degenerates — empirically (property suite) no
  // barrier placement exists then (e.g. m=12, nc=2, d1=3, d2=8 runs at
  // 7/4 from every offset instead of 1 + 3/8).
  if (mod_norm(p.d1 * p.d2, p.m) == 0) return false;
  // Eq. (20/21) of the proof, in primed quantities: a barrier placement
  // exists iff d2' == d1' + c (mod m'') with 1 <= c < nc, m'' = m'/d1'.
  const i64 m2 = p.m / p.d1;
  if (m2 == 0) return false;
  const i64 c = mod_norm(p.d2 - p.d1, m2);
  return c >= 1 && c < nc;
}

bool double_conflict_impossible(i64 m, i64 nc, i64 d1, i64 d2) {
  check_args(m, nc);
  return (nc - 1) * (d2 + d1) < m;
}

bool unique_barrier_thm6(i64 m, i64 nc, i64 d1, i64 d2) {
  return barrier_possible(m, nc, d1, d2) && (2 * nc - 1) * d2 <= m;
}

bool unique_barrier_thm7(i64 m, i64 nc, i64 d1, i64 d2, bool stream1_priority) {
  if (!barrier_possible(m, nc, d1, d2)) return false;
  if (!double_conflict_impossible(m, nc, d1, d2)) return false;
  // Proof works in primed quantities (eqs. 26/27); eq. 25 is the same test
  // scaled back by f.
  const Primed p = primed(m, d1, d2);
  if (p.d1 == 0 || p.d2 == 0) return false;
  const i64 k = ceil_div(p.m, p.d1 * p.d2) * p.d1;
  if (k >= 2 * nc) return false;
  const i64 lhs = mod_norm(k * p.d2, p.m);
  const i64 rhs = mod_norm((k - nc) * p.d1, p.m);
  return stream1_priority ? lhs <= rhs : lhs < rhs;
}

bool unique_barrier(i64 m, i64 nc, i64 d1, i64 d2, bool stream1_priority) {
  return unique_barrier_thm6(m, nc, d1, d2) ||
         unique_barrier_thm7(m, nc, d1, d2, stream1_priority);
}

Rational barrier_bandwidth(i64 d1, i64 d2) {
  if (d1 < 0 || d2 <= 0) throw std::invalid_argument{"barrier_bandwidth: need d2 > 0, d1 >= 0"};
  return Rational{1} + Rational{d1, d2};
}

// ------------------------------------------------------- Thm 8/9, s < m --

bool section_conflict_free_disjoint(i64 s, i64 d1, i64 d2) {
  if (s < 1) throw std::invalid_argument{"analytic: s must be >= 1"};
  return gcd0(s, gcd(s, d2 - d1)) >= 2;
}

bool section_condition_thm9(i64 s, i64 nc, i64 d1) {
  if (s < 1 || nc < 1) throw std::invalid_argument{"analytic: s, nc must be >= 1"};
  return mod_norm(nc * d1, s) != 0;
}

bool conflict_free_achievable_ext(i64 m, i64 nc, i64 d1, i64 d2) {
  check_args(m, nc);
  const Primed p = primed(m, d1, d2);
  return gcd0(p.m, gcd(p.m, p.d2 - p.d1)) >= 2 * (nc + 1);
}

i64 conflict_free_offset_ext(i64 m, i64 nc, i64 d1) {
  check_args(m, nc);
  return mod_norm((nc + 1) * d1, m);
}

bool conflict_free_with_sections(i64 m, i64 s, i64 nc, i64 d1, i64 d2, i64* offset_out) {
  check_args(m, nc);
  if (s < 1 || m % s != 0) throw std::invalid_argument{"analytic: s must divide m"};
  // Reproduction note: Theorem 9's guard ("nc*d1 and s relatively prime")
  // is not sufficient.  With start offset o, the bank differences between
  // simultaneous requests are o + j*(d2-d1) mod m, whose residues mod s
  // sweep o + multiples of gcd(g, s) with g = gcd(m, d2-d1) — a section
  // collision is avoided iff o is NOT a multiple of gcd(g, s).
  // Counterexample to the paper's version: m=12, s=3, nc=2, d1=1, d2=5
  // (g=4, gcd(g,s)=1): every offset eventually collides, yet nc*d1 = 2 is
  // relatively prime to s.  The property suite pins this down.
  const i64 g = gcd0(m, gcd(m, d2 - d1));
  const i64 gs = gcd(g, s);
  auto offset_safe = [&](i64 offset) { return gs > 0 && mod_norm(offset, gs) != 0; };
  if (conflict_free_achievable(m, nc, d1, d2) && offset_safe(nc * d1)) {
    if (offset_out != nullptr) *offset_out = conflict_free_offset(m, nc, d1);
    return true;
  }
  // Eq. 32: spend one extra clock period; requires the wider gcd bound and
  // that the shifted offset itself avoids the section alignment.
  if (conflict_free_achievable_ext(m, nc, d1, d2) && offset_safe((nc + 1) * d1)) {
    if (offset_out != nullptr) *offset_out = conflict_free_offset_ext(m, nc, d1);
    return true;
  }
  return false;
}

}  // namespace vpmem::analytic
