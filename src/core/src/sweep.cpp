#include "vpmem/core/sweep.hpp"

#include <algorithm>

namespace vpmem::core {

std::size_t default_workers(std::size_t hint) {
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hint == 0) return hw;
  return std::min(hint, hw);
}

}  // namespace vpmem::core
