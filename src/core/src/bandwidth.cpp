#include "vpmem/core/bandwidth.hpp"

#include <sstream>

#include "vpmem/analytic/stream.hpp"
#include "vpmem/sim/steady_state.hpp"

namespace vpmem::core {

SingleStreamReport analyze_single(const sim::MemoryConfig& config, i64 distance) {
  SingleStreamReport r;
  r.m = config.banks;
  r.nc = config.bank_cycle;
  r.distance = distance;
  r.return_number = analytic::return_number(config.banks, distance);
  r.predicted = analytic::single_stream_bandwidth(config.banks, distance, config.bank_cycle);
  const sim::SteadyState ss = sim::find_steady_state(
      config, {sim::StreamConfig{.start_bank = 0, .distance = distance}});
  r.simulated = ss.bandwidth;
  return r;
}

PairReport analyze_pair(const sim::MemoryConfig& config, i64 d1, i64 d2, bool same_cpu) {
  PairReport r;
  r.m = config.banks;
  r.nc = config.bank_cycle;
  r.d1 = d1;
  r.d2 = d2;
  r.prediction = analytic::classify_pair(config.banks, config.bank_cycle, d1, d2,
                                         config.priority == sim::PriorityRule::fixed);
  const sim::OffsetSweep sweep = sim::sweep_start_offsets(config, d1, d2, same_cpu);
  r.sim_min = sweep.min_bandwidth;
  r.sim_max = sweep.max_bandwidth;
  r.by_offset = sweep.by_offset;
  return r;
}

std::string PairReport::summary() const {
  std::ostringstream out;
  out << "m=" << m << " nc=" << nc << " d1=" << d1 << " d2=" << d2 << ": "
      << analytic::to_string(prediction.cls);
  if (prediction.bandwidth) out << " (predicted b_eff " << prediction.bandwidth->str() << ")";
  out << ", simulated b_eff in [" << sim_min.str() << ", " << sim_max.str() << "]";
  return out.str();
}

}  // namespace vpmem::core
