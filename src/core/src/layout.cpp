#include "vpmem/core/layout.hpp"

#include <stdexcept>

#include "vpmem/core/group.hpp"

namespace vpmem::core {

SpacingReport sweep_array_spacing(const sim::MemoryConfig& config, i64 distance, i64 arrays,
                                  bool same_cpu) {
  config.validate();
  if (arrays < 1) throw std::invalid_argument{"sweep_array_spacing: arrays must be >= 1"};
  SpacingReport report;
  report.by_spacing.reserve(static_cast<std::size_t>(config.banks));
  for (i64 spacing = 0; spacing < config.banks; ++spacing) {
    const GroupReport group = analyze_group(
        config, uniform_streams(arrays, distance, spacing, config.banks, same_cpu));
    report.by_spacing.push_back(SpacingChoice{spacing, group.bandwidth});
    if (spacing == 0 || group.bandwidth > report.best_bandwidth) {
      report.best_spacing = spacing;
      report.best_bandwidth = group.bandwidth;
    }
    if (spacing == 0 || group.bandwidth < report.worst_bandwidth) {
      report.worst_spacing = spacing;
      report.worst_bandwidth = group.bandwidth;
    }
  }
  return report;
}

i64 recommend_idim(const sim::MemoryConfig& config, i64 distance, i64 arrays, i64 min_elements,
                   bool same_cpu) {
  if (min_elements < 1) throw std::invalid_argument{"recommend_idim: min_elements must be >= 1"};
  const SpacingReport report = sweep_array_spacing(config, distance, arrays, same_cpu);
  const i64 m = config.banks;
  // Smallest idim >= min_elements with idim mod m == best_spacing.
  const i64 rem = mod_norm(min_elements, m);
  return min_elements + mod_norm(report.best_spacing - rem, m);
}

}  // namespace vpmem::core
