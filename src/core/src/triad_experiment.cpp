#include "vpmem/core/triad_experiment.hpp"

#include <stdexcept>

#include "vpmem/core/sweep.hpp"

namespace vpmem::core {

std::vector<TriadRow> run_triad_experiment(const TriadExperiment& experiment,
                                           std::size_t workers,
                                           obs::SweepTelemetry* telemetry) {
  if (experiment.inc_min < 1 || experiment.inc_max < experiment.inc_min) {
    throw std::invalid_argument{"run_triad_experiment: bad INC range"};
  }
  const auto count = static_cast<std::size_t>(experiment.inc_max - experiment.inc_min + 1);
  return parallel_index_map<TriadRow>(
      count,
      [&](std::size_t i) {
        xmp::TriadSetup setup = experiment.setup;
        setup.inc = experiment.inc_min + static_cast<i64>(i);
        const xmp::TriadResult contended =
            xmp::run_triad(experiment.machine, setup, /*other_cpu_active=*/true);
        const xmp::TriadResult dedicated =
            xmp::run_triad(experiment.machine, setup, /*other_cpu_active=*/false);
        TriadRow row;
        row.inc = setup.inc;
        row.cycles_contended = contended.cycles;
        row.cycles_dedicated = dedicated.cycles;
        row.conflicts_contended = contended.conflicts;
        row.conflicts_dedicated = dedicated.conflicts;
        row.background_goodput = contended.background_goodput();
        if (telemetry != nullptr) telemetry->add_cycles(contended.cycles + dedicated.cycles);
        return row;
      },
      workers, telemetry);
}

Table triad_table(const std::vector<TriadRow>& rows) {
  Table table{{"INC", "cycles(a)", "cycles(b)", "bank(c)", "section(d)", "simult(e)",
               "slowdown", "otherCPU b_eff"},
              "Fig. 10 — triad A(I)=B(I)+C(I)*D(I), n=1024, Cray X-MP model "
              "(a: other CPU active, b: dedicated; c-e: conflicts of the contended run)"};
  for (const auto& r : rows) {
    table.add_row({cell(static_cast<long long>(r.inc)),
                   cell(static_cast<long long>(r.cycles_contended)),
                   cell(static_cast<long long>(r.cycles_dedicated)),
                   cell(static_cast<long long>(r.conflicts_contended.bank)),
                   cell(static_cast<long long>(r.conflicts_contended.section)),
                   cell(static_cast<long long>(r.conflicts_contended.simultaneous)),
                   cell(r.interference_factor(), 3), cell(r.background_goodput, 3)});
  }
  return table;
}

}  // namespace vpmem::core
