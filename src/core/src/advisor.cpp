#include "vpmem/core/advisor.hpp"

#include <sstream>

#include "vpmem/analytic/fortran.hpp"
#include "vpmem/analytic/stream.hpp"

namespace vpmem::core {

AdvisorReport advise(const sim::MemoryConfig& config,
                     const std::vector<PlannedAccess>& accesses) {
  config.validate();
  const i64 m = config.banks;
  const i64 nc = config.bank_cycle;
  AdvisorReport report;

  for (const auto& a : accesses) {
    AccessAdvice advice;
    advice.name = a.name;
    advice.distance = analytic::array_distance(a.dims, a.dim_index, a.inc, m);
    advice.return_number = analytic::return_number(m, advice.distance);
    advice.self_bandwidth = analytic::single_stream_bandwidth(m, advice.distance, nc);
    advice.self_conflicting = !analytic::self_conflict_free(m, advice.distance, nc);
    if (advice.self_conflicting) {
      std::ostringstream rec;
      rec << a.name << ": return number " << advice.return_number << " < nc = " << nc
          << " — stream throttles itself to " << advice.self_bandwidth.str()
          << " data/clock.";
      if (!a.dims.empty() && a.dim_index > 0) {
        const i64 padded = analytic::safe_leading_dimension(a.dims[0], m);
        if (padded != a.dims[0]) {
          rec << " Pad the leading dimension from " << a.dims[0] << " to " << padded
              << " (relatively prime to m = " << m << ").";
        }
      }
      report.recommendations.push_back(rec.str());
    }
    report.accesses.push_back(std::move(advice));
  }

  for (std::size_t i = 0; i < report.accesses.size(); ++i) {
    for (std::size_t j = i + 1; j < report.accesses.size(); ++j) {
      PairAdvice pair;
      pair.first = report.accesses[i].name;
      pair.second = report.accesses[j].name;
      pair.prediction = analytic::classify_pair(m, nc, report.accesses[i].distance,
                                                report.accesses[j].distance,
                                                config.priority == sim::PriorityRule::fixed);
      if (pair.prediction.cls == analytic::PairClass::unique_barrier) {
        std::ostringstream rec;
        rec << pair.first << " vs " << pair.second << ": unique barrier-situation, b_eff = "
            << pair.prediction.bandwidth->str()
            << " — one stream will be systematically delayed; consider equal or "
               "gcd-sharing distances.";
        report.recommendations.push_back(rec.str());
      }
      report.pairs.push_back(std::move(pair));
    }
  }
  if (report.recommendations.empty()) {
    report.recommendations.emplace_back("No self-conflicts or guaranteed barriers detected.");
  }
  return report;
}

std::string AdvisorReport::str() const {
  std::ostringstream out;
  out << "Accesses:\n";
  for (const auto& a : accesses) {
    out << "  " << a.name << ": distance " << a.distance << ", return number "
        << a.return_number << ", self b_eff " << a.self_bandwidth.str()
        << (a.self_conflicting ? "  [SELF-CONFLICTING]" : "") << '\n';
  }
  out << "Pairs:\n";
  for (const auto& p : pairs) {
    out << "  " << p.first << " vs " << p.second << ": "
        << analytic::to_string(p.prediction.cls);
    if (p.prediction.bandwidth) out << " (b_eff " << p.prediction.bandwidth->str() << ")";
    out << '\n';
  }
  out << "Recommendations:\n";
  for (const auto& r : recommendations) out << "  - " << r << '\n';
  return out.str();
}

}  // namespace vpmem::core
