#include "vpmem/core/group.hpp"

#include <algorithm>
#include <stdexcept>

#include "vpmem/sim/steady_state.hpp"

namespace vpmem::core {

double GroupReport::utilization(i64 m, i64 nc) const {
  if (m < 1 || nc < 1) throw std::invalid_argument{"utilization: m, nc must be >= 1"};
  const double bound = std::min(static_cast<double>(per_port.size()),
                                static_cast<double>(m) / static_cast<double>(nc));
  return bound == 0.0 ? 0.0 : bandwidth.to_double() / bound;
}

GroupReport analyze_group(const sim::MemoryConfig& config,
                          const std::vector<sim::StreamConfig>& streams) {
  const sim::SteadyState ss = sim::find_steady_state(config, streams);
  GroupReport out;
  out.bandwidth = ss.bandwidth;
  out.per_port = ss.per_port;
  out.conflicts_in_period = ss.conflicts_in_period;
  out.period = ss.period;
  out.transient_cycles = ss.transient_cycles;
  return out;
}

std::vector<sim::StreamConfig> uniform_streams(i64 ports, i64 distance, i64 stagger, i64 m,
                                               bool same_cpu) {
  if (ports < 1) throw std::invalid_argument{"uniform_streams: ports must be >= 1"};
  if (m < 1) throw std::invalid_argument{"uniform_streams: m must be >= 1"};
  std::vector<sim::StreamConfig> streams;
  streams.reserve(static_cast<std::size_t>(ports));
  for (i64 p = 0; p < ports; ++p) {
    sim::StreamConfig s;
    s.start_bank = mod_norm(p * stagger, m);
    s.distance = distance;
    s.cpu = same_cpu ? 0 : p;
    streams.push_back(s);
  }
  return streams;
}

}  // namespace vpmem::core
