#include "vpmem/core/diagnose.hpp"

#include <sstream>

#include "vpmem/sim/steady_state.hpp"

namespace vpmem::core {

std::string to_string(RunRegime regime) {
  switch (regime) {
    case RunRegime::conflict_free: return "conflict-free";
    case RunRegime::bank_limited: return "bank-limited";
    case RunRegime::section_limited: return "section-limited";
    case RunRegime::linked_conflict: return "linked-conflict";
    case RunRegime::cross_cpu_limited: return "cross-cpu-limited";
  }
  return "?";
}

Diagnosis diagnose(const sim::MemoryConfig& config,
                   const std::vector<sim::StreamConfig>& streams) {
  const sim::SteadyState ss = sim::find_steady_state(config, streams);
  Diagnosis d;
  d.bandwidth = ss.bandwidth;
  d.conflicts_in_period = ss.conflicts_in_period;
  d.period = ss.period;
  d.transient_cycles = ss.transient_cycles;
  d.cycles_simulated = ss.cycles_simulated;
  const auto& c = ss.conflicts_in_period;
  if (c.total() == 0) {
    d.regime = RunRegime::conflict_free;
  } else if (c.simultaneous > 0) {
    d.regime = RunRegime::cross_cpu_limited;
  } else if (c.bank > 0 && c.section > 0) {
    d.regime = RunRegime::linked_conflict;
  } else if (c.bank > 0) {
    d.regime = RunRegime::bank_limited;
  } else {
    d.regime = RunRegime::section_limited;
  }
  return d;
}

std::vector<i64> RegimeSweep::offsets_with(RunRegime regime) const {
  std::vector<i64> out;
  for (std::size_t b2 = 0; b2 < by_offset.size(); ++b2) {
    if (by_offset[b2].regime == regime) out.push_back(static_cast<i64>(b2));
  }
  return out;
}

RegimeSweep sweep_regimes(const sim::MemoryConfig& config, i64 d1, i64 d2, bool same_cpu,
                          obs::SweepTelemetry* telemetry) {
  RegimeSweep sweep;
  sweep.by_offset.reserve(static_cast<std::size_t>(config.banks));
  for (i64 b2 = 0; b2 < config.banks; ++b2) {
    const obs::Stopwatch watch;
    sweep.by_offset.push_back(diagnose(config, sim::two_streams(0, d1, b2, d2, same_cpu)));
    if (telemetry != nullptr) {
      telemetry->record_point(watch.seconds(), sweep.by_offset.back().cycles_simulated);
    }
  }
  return sweep;
}

std::string Diagnosis::summary() const {
  std::ostringstream out;
  out << to_string(regime) << ": b_eff " << bandwidth.str() << " over a period of " << period
      << " (bank " << conflicts_in_period.bank << ", simultaneous "
      << conflicts_in_period.simultaneous << ", section " << conflicts_in_period.section
      << " conflicts per period)";
  return out.str();
}

}  // namespace vpmem::core
