// Thread-parallel parameter sweeps.  Simulations of distinct parameter
// points are independent, so sweeps (all INC values of Fig. 10, all
// (d1, d2) pairs of the classification grid) fan out across a thread pool.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vpmem::core {

/// Number of workers to use: min(hint, hardware_concurrency), at least 1.
[[nodiscard]] std::size_t default_workers(std::size_t hint = 0);

/// Apply `fn` to every index in [0, count) on `workers` threads and return
/// the results in index order.  `fn` must be callable concurrently; any
/// exception it throws is rethrown on the caller's thread (first one wins).
template <typename R>
std::vector<R> parallel_index_map(std::size_t count, const std::function<R(std::size_t)>& fn,
                                  std::size_t workers = 0) {
  if (!fn) throw std::invalid_argument{"parallel_index_map: fn must be callable"};
  workers = default_workers(workers);
  std::vector<R> results(count);
  if (count == 0) return results;
  if (workers <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        for (std::size_t i = w; i < count; i += workers) results[i] = fn(i);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

/// Convenience: map over a vector of inputs.
template <typename R, typename T>
std::vector<R> parallel_map(const std::vector<T>& inputs, const std::function<R(const T&)>& fn,
                            std::size_t workers = 0) {
  return parallel_index_map<R>(
      inputs.size(), [&](std::size_t i) { return fn(inputs[i]); }, workers);
}

}  // namespace vpmem::core
