// Thread-parallel parameter sweeps.  Simulations of distinct parameter
// points are independent, so sweeps (all INC values of Fig. 10, all
// (d1, d2) pairs of the classification grid) fan out across a thread pool.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "vpmem/obs/timer.hpp"

namespace vpmem::core {

/// Number of workers to use: min(hint, hardware_concurrency), at least 1.
[[nodiscard]] std::size_t default_workers(std::size_t hint = 0);

/// Apply `fn` to every index in [0, count) on `workers` threads and return
/// the results in index order.  `fn` must be callable concurrently; any
/// exception it throws is rethrown on the caller's thread (first one wins).
///
/// When `telemetry` is non-null every point's wall-clock latency is
/// recorded into it (thread-safe); `fn` may additionally report the clock
/// periods it stepped via SweepTelemetry::add_cycles so the sweep's
/// simulated-cycles-per-second is meaningful.  Telemetry never changes
/// the results.
template <typename R>
std::vector<R> parallel_index_map(std::size_t count, const std::function<R(std::size_t)>& fn,
                                  std::size_t workers = 0,
                                  obs::SweepTelemetry* telemetry = nullptr) {
  if (!fn) throw std::invalid_argument{"parallel_index_map: fn must be callable"};
  workers = default_workers(workers);
  const auto timed_fn = [&](std::size_t i) {
    if (telemetry == nullptr) return fn(i);
    const obs::Stopwatch watch;
    R result = fn(i);
    telemetry->record_point(watch.seconds());
    return result;
  };
  std::vector<R> results(count);
  if (count == 0) return results;
  if (workers <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = timed_fn(i);
    return results;
  }
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        for (std::size_t i = w; i < count; i += workers) results[i] = timed_fn(i);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

/// Convenience: map over a vector of inputs.
template <typename R, typename T>
std::vector<R> parallel_map(const std::vector<T>& inputs, const std::function<R(const T&)>& fn,
                            std::size_t workers = 0,
                            obs::SweepTelemetry* telemetry = nullptr) {
  return parallel_index_map<R>(
      inputs.size(), [&](std::size_t i) { return fn(inputs[i]); }, workers, telemetry);
}

}  // namespace vpmem::core
