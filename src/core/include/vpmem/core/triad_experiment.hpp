// The Section IV experiment (Fig. 10): the triad A(I) = B(I) + C(I)*D(I)
// executed for every stride INC in a range, with and without a competing
// CPU, reporting execution time and per-type conflict counts.
#pragma once

#include <vector>

#include "vpmem/obs/timer.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/util/numeric.hpp"
#include "vpmem/util/table.hpp"
#include "vpmem/xmp/machine.hpp"

namespace vpmem::core {

/// One row of Fig. 10: everything measured for a single INC.
struct TriadRow {
  i64 inc = 0;
  i64 cycles_contended = 0;    ///< Fig. 10(a): other CPU streaming d = 1
  i64 cycles_dedicated = 0;    ///< Fig. 10(b): other CPU shut off
  sim::ConflictTotals conflicts_contended;  ///< Fig. 10(c/d/e)
  sim::ConflictTotals conflicts_dedicated;
  double background_goodput = 0.0;  ///< other CPU's grants/period while the
                                    ///< triad ran (barrier-former strides
                                    ///< depress it; see Section IV)

  /// Slowdown of the contended run relative to the dedicated one.
  [[nodiscard]] double interference_factor() const noexcept {
    return cycles_dedicated == 0 ? 0.0
                                 : static_cast<double>(cycles_contended) /
                                       static_cast<double>(cycles_dedicated);
  }
};

struct TriadExperiment {
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;   ///< inc is overwritten per row
  i64 inc_min = 1;
  i64 inc_max = 16;
};

/// Run the full sweep (both contended and dedicated runs per INC), in
/// parallel across `workers` threads.  When `telemetry` is non-null the
/// sweep records per-INC wall-clock latency and the simulated clock
/// periods of both runs into it (results are unaffected).
[[nodiscard]] std::vector<TriadRow> run_triad_experiment(
    const TriadExperiment& experiment, std::size_t workers = 0,
    obs::SweepTelemetry* telemetry = nullptr);

/// Render rows as the table the paper's five sub-figures plot.
[[nodiscard]] Table triad_table(const std::vector<TriadRow>& rows);

}  // namespace vpmem::core
