// Array-placement advice: the Section IV experiment chooses
// IDIM = 16*1024 + 1 so that consecutive COMMON arrays start one bank
// apart.  This module answers the general question — given the memory
// geometry, the loop stride and the number of arrays streamed together,
// which relative array spacing (IDIM mod m) maximizes steady-state
// bandwidth, and what is the smallest safe IDIM?
#pragma once

#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::core {

/// Bandwidth achieved by `arrays` equal-stride streams whose start banks
/// are spaced `spacing` apart (mod m).
struct SpacingChoice {
  i64 spacing = 0;  ///< IDIM mod m
  Rational bandwidth;
};

struct SpacingReport {
  std::vector<SpacingChoice> by_spacing;  ///< index == spacing in [0, m)
  i64 best_spacing = 0;   ///< smallest spacing achieving the maximum
  Rational best_bandwidth;
  i64 worst_spacing = 0;
  Rational worst_bandwidth;
};

/// Sweep every spacing residue.  `same_cpu` selects whether the streams
/// share one CPU's access paths (a single CPU reading several operands)
/// or run from distinct CPUs.
[[nodiscard]] SpacingReport sweep_array_spacing(const sim::MemoryConfig& config, i64 distance,
                                                i64 arrays, bool same_cpu = false);

/// Smallest array extent >= min_elements whose residue mod m equals the
/// best spacing found by sweep_array_spacing.  For the paper's setup
/// (m = 16, stride 1, 4 arrays, >= 16384 elements) this reproduces a
/// one-bank-apart layout like IDIM = 16*1024 + 1.
[[nodiscard]] i64 recommend_idim(const sim::MemoryConfig& config, i64 distance, i64 arrays,
                                 i64 min_elements, bool same_cpu = false);

}  // namespace vpmem::core
