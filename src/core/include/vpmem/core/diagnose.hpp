// Conflict-regime diagnosis of a steady cycle: which of the paper's
// conflict mechanisms limits a workload?  In particular this detects the
// *linked conflict* of Section III-B / Fig. 8 — a cyclic state that
// alternates bank and section conflicts — mechanically from the exact
// steady state.
#pragma once

#include <string>
#include <vector>

#include "vpmem/obs/timer.hpp"
#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::core {

enum class RunRegime {
  conflict_free,      ///< no delays in the cyclic state
  bank_limited,       ///< only bank conflicts (self-conflicts, barriers)
  section_limited,    ///< only section (access-path) conflicts
  linked_conflict,    ///< bank and section conflicts alternate (Fig. 8a)
  cross_cpu_limited,  ///< simultaneous bank conflicts are involved
};

[[nodiscard]] std::string to_string(RunRegime regime);

struct Diagnosis {
  RunRegime regime = RunRegime::conflict_free;
  Rational bandwidth;
  sim::ConflictTotals conflicts_in_period;
  i64 period = 0;
  i64 transient_cycles = 0;
  i64 cycles_simulated = 0;  ///< detection cost (perf telemetry only)

  [[nodiscard]] std::string summary() const;
};

/// Classify the cyclic state of `streams` (all infinite) on `config`.
[[nodiscard]] Diagnosis diagnose(const sim::MemoryConfig& config,
                                 const std::vector<sim::StreamConfig>& streams);

/// Diagnose a distance pair for every relative start position (b1 = 0,
/// b2 in [0, m)) — shows e.g. which offsets of the Fig. 8 workload fall
/// into the linked conflict.
struct RegimeSweep {
  std::vector<Diagnosis> by_offset;

  /// Offsets whose cyclic state has the given regime.
  [[nodiscard]] std::vector<i64> offsets_with(RunRegime regime) const;
};

/// When `telemetry` is non-null the per-offset detection latency and
/// simulated cycle counts are recorded into it (results unaffected).
[[nodiscard]] RegimeSweep sweep_regimes(const sim::MemoryConfig& config, i64 d1, i64 d2,
                                        bool same_cpu = false,
                                        obs::SweepTelemetry* telemetry = nullptr);

}  // namespace vpmem::core
