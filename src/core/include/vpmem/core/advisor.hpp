// The conclusion's programming guidance, packaged: given the memory
// geometry and a set of Fortran-style array accesses, report each access's
// bank distance, its self-bandwidth, pairwise classifications, and a
// padding recommendation ("choose the dimension of arrays so that they
// are relatively prime to the number of banks").
#pragma once

#include <string>
#include <vector>

#include "vpmem/analytic/classify.hpp"
#include "vpmem/sim/config.hpp"
#include "vpmem/util/numeric.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::core {

/// One planned access pattern: stepping through dimension `dim_index` of
/// an array with extents `dims` using loop increment `inc`.
struct PlannedAccess {
  std::string name;          ///< label for the report (e.g. "A(:, j)")
  std::vector<i64> dims;     ///< array extents, leftmost first
  std::size_t dim_index = 0; ///< dimension being traversed
  i64 inc = 1;               ///< loop increment
};

struct AccessAdvice {
  std::string name;
  i64 distance = 0;          ///< eq. 33, reduced mod m
  i64 return_number = 0;
  Rational self_bandwidth;   ///< Section III-A
  bool self_conflicting = false;
};

struct PairAdvice {
  std::string first;
  std::string second;
  analytic::PairPrediction prediction;
};

struct AdvisorReport {
  std::vector<AccessAdvice> accesses;
  std::vector<PairAdvice> pairs;              ///< all unordered pairs
  std::vector<std::string> recommendations;   ///< human-readable guidance
  [[nodiscard]] std::string str() const;
};

/// Analyze the planned accesses against memory geometry `config`.
[[nodiscard]] AdvisorReport advise(const sim::MemoryConfig& config,
                                   const std::vector<PlannedAccess>& accesses);

}  // namespace vpmem::core
