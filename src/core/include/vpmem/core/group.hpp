// Beyond two streams: exact steady-state analysis of arbitrary groups of
// concurrent streams.  The paper analyzes one and two streams and notes
// (Section IV) that with six active ports "access conflicts are bound to
// occur since 6*nc = 24 > 16" — this module quantifies that saturation.
#pragma once

#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::core {

/// Exact steady-state summary of a stream group.
struct GroupReport {
  Rational bandwidth;              ///< total data per clock period
  std::vector<Rational> per_port;
  sim::ConflictTotals conflicts_in_period;
  i64 period = 0;
  i64 transient_cycles = 0;

  /// Fraction of the service bound min(p, m/nc) actually achieved.
  [[nodiscard]] double utilization(i64 m, i64 nc) const;
};

/// Analyze `streams` (all infinite) on `config` via exact cycle detection.
[[nodiscard]] GroupReport analyze_group(const sim::MemoryConfig& config,
                                        const std::vector<sim::StreamConfig>& streams);

/// p equal-distance infinite streams with start banks staggered by
/// `stagger`; one port per CPU when `same_cpu` is false (no shared
/// access paths), all on CPU 0 otherwise.
[[nodiscard]] std::vector<sim::StreamConfig> uniform_streams(i64 ports, i64 distance,
                                                             i64 stagger, i64 m,
                                                             bool same_cpu = false);

}  // namespace vpmem::core
