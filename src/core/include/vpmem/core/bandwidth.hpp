// User-facing bandwidth analysis: the analytic prediction of Section III
// cross-checked against the exact cycle-level simulation, for one stream
// or a pair of streams.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "vpmem/analytic/classify.hpp"
#include "vpmem/sim/config.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::core {

/// Analysis of one constant-stride stream on an m-way memory.
struct SingleStreamReport {
  i64 m = 0;
  i64 nc = 0;
  i64 distance = 0;
  i64 return_number = 0;       ///< Theorem 1
  Rational predicted;          ///< Section III-A formula
  Rational simulated;          ///< exact steady-state of the simulator
  [[nodiscard]] bool consistent() const noexcept { return predicted == simulated; }
};

[[nodiscard]] SingleStreamReport analyze_single(const sim::MemoryConfig& config, i64 distance);

/// Analysis of a distance pair: theorem classification plus the simulated
/// bandwidth extremes over every relative start position.
struct PairReport {
  i64 m = 0;
  i64 nc = 0;
  i64 d1 = 0;
  i64 d2 = 0;
  analytic::PairPrediction prediction;
  Rational sim_min;  ///< worst steady-state b_eff over all start offsets
  Rational sim_max;  ///< best steady-state b_eff over all start offsets
  std::vector<Rational> by_offset;

  [[nodiscard]] std::string summary() const;
};

/// Sweep all m relative start positions (b1 = 0 fixed) and classify.
/// `same_cpu` selects the section-conflict regime (both ports on one CPU)
/// instead of the simultaneous-conflict regime.
[[nodiscard]] PairReport analyze_pair(const sim::MemoryConfig& config, i64 d1, i64 d2,
                                      bool same_cpu = false);

}  // namespace vpmem::core
