// Umbrella header for the vpmem library — everything needed to reproduce
// Oed & Lange (1985), "On the Effective Bandwidth of Interleaved Memories
// in Vector Processor Systems".
//
// Layers (see DESIGN.md):
//   vpmem::sim       cycle-level bank/section/port simulator
//   vpmem::obs       metrics registry, run reports, perf telemetry
//   vpmem::analytic  Theorems 1-9 and the distance isomorphism
//   vpmem::trace     the paper's clock diagrams
//   vpmem::xmp       Cray X-MP machine model (Section IV)
//   vpmem::skew      skewed storage schemes (the conclusion's remedy)
//   vpmem::baseline  random-reference traffic (the [1]-[5] baseline)
//   vpmem::check     differential fuzzing: reference model, invariants,
//                    config fuzzer, deterministic replay + shrinking
//   vpmem::exec      campaign executor: worker pool, fork sandbox,
//                    retry/backoff, journaled resume
//   vpmem::core      facade: reports, advisor, groups, parallel sweeps
#pragma once

#include "vpmem/analytic/classify.hpp"
#include "vpmem/analytic/degraded.hpp"
#include "vpmem/analytic/fortran.hpp"
#include "vpmem/analytic/isomorphism.hpp"
#include "vpmem/analytic/stream.hpp"
#include "vpmem/analytic/theorems.hpp"
#include "vpmem/baseline/random_traffic.hpp"
#include "vpmem/baseline/rng.hpp"
#include "vpmem/check/differential.hpp"
#include "vpmem/check/fuzzer.hpp"
#include "vpmem/check/invariants.hpp"
#include "vpmem/check/reference_model.hpp"
#include "vpmem/check/replay.hpp"
#include "vpmem/core/advisor.hpp"
#include "vpmem/core/bandwidth.hpp"
#include "vpmem/core/diagnose.hpp"
#include "vpmem/core/group.hpp"
#include "vpmem/core/layout.hpp"
#include "vpmem/core/sweep.hpp"
#include "vpmem/core/triad_experiment.hpp"
#include "vpmem/exec/executor.hpp"
#include "vpmem/exec/pool.hpp"
#include "vpmem/exec/sandbox.hpp"
#include "vpmem/obs/attribution.hpp"
#include "vpmem/obs/collector.hpp"
#include "vpmem/obs/metrics.hpp"
#include "vpmem/obs/report.hpp"
#include "vpmem/obs/timer.hpp"
#include "vpmem/obs/tracer.hpp"
#include "vpmem/skew/analysis.hpp"
#include "vpmem/skew/scheme.hpp"
#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/sim/event_buffer.hpp"
#include "vpmem/sim/fault.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/sim/run.hpp"
#include "vpmem/sim/steady_state.hpp"
#include "vpmem/trace/timeline.hpp"
#include "vpmem/util/backoff.hpp"
#include "vpmem/util/chart.hpp"
#include "vpmem/util/error.hpp"
#include "vpmem/util/hash.hpp"
#include "vpmem/util/journal.hpp"
#include "vpmem/util/json.hpp"
#include "vpmem/util/numeric.hpp"
#include "vpmem/util/rational.hpp"
#include "vpmem/util/table.hpp"
#include "vpmem/xmp/kernels.hpp"
#include "vpmem/xmp/machine.hpp"
