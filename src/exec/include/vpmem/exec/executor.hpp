// Crash-isolated, journaled campaign executor.
//
// A campaign is a vector of independent jobs (sweep points, fuzz cases,
// bench configs), each a closure returning a Json result.  The executor
// shards them across a worker pool, optionally fork-isolates every
// attempt (sandbox.hpp) so a SIGSEGV becomes a structured failure, and
// journals every attempt to an append-only vpmem.journal/1 file so a
// killed campaign resumes exactly where it stopped, skipping completed
// jobs by config hash.
//
// Retry state machine per job:
//
//          ok ──────────────────────────────▶ ok
//   run ─▶ transient error (deadline_exceeded,
//          livelock) ── backoff, attempt <
//          retry.max_attempts ─▶ run again, else ▶ failed
//          crash / deterministic error ── one
//          immediate retry, then ───────────▶ quarantined
//
// Quarantined jobs carry their repro token so `vpmem_cli fuzz --replay`
// (or the sweep equivalent) can reproduce the death in isolation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "vpmem/exec/pool.hpp"
#include "vpmem/obs/metrics.hpp"
#include "vpmem/util/backoff.hpp"
#include "vpmem/util/journal.hpp"
#include "vpmem/util/json.hpp"

namespace vpmem::exec {

/// One schedulable unit of campaign work.
struct JobSpec {
  std::string id;    ///< unique, human-readable ("d1=3/d2=7")
  std::string hash;  ///< stable config hash — the resume key
  std::string repro; ///< replay token recorded on crash/quarantine
  std::function<Json()> run;  ///< executed on a worker (or a fork child)
};

/// Final disposition of one job.
enum class JobStatus {
  ok,           ///< result available
  failed,       ///< transient error persisted through every retry
  quarantined,  ///< deterministic crash/error; repro captured
  cancelled,    ///< campaign stopped before this job ran
};

[[nodiscard]] std::string to_string(JobStatus status);

/// Per-job outcome; `results` of CampaignSummary holds one per input
/// job, in input order, whatever order the workers finished in.
struct JobResult {
  std::string id;
  std::string hash;
  JobStatus status = JobStatus::cancelled;
  int attempts = 0;       ///< attempts this process made (0 when resumed)
  bool resumed = false;   ///< settled from the journal, not re-run
  std::string error_code; ///< stable error code or signal name
  std::string error;      ///< human-readable failure detail
  std::string repro;      ///< replay token (quarantined jobs)
  int signal = 0;         ///< terminating signal for sandboxed crashes
  double wall_ms = 0.0;   ///< wall time of the final attempt
  long max_rss_kb = 0;    ///< child peak RSS (sandboxed runs only)
  Json result;            ///< job payload (status == ok)
};

/// Knobs for one campaign.
struct ExecutorOptions {
  int jobs = 1;              ///< worker threads
  bool sandbox = false;      ///< fork-isolate each attempt (POSIX)
  BackoffPolicy retry{};     ///< transient retry/backoff policy
  std::string journal_path;  ///< empty = unjournaled campaign
  bool resume = false;       ///< preload settled jobs from journal_path
  /// Campaign-level cancellation (defaults to nothing; the CLI passes
  /// the process token so SIGINT drains gracefully).
  const CancelToken* cancel = nullptr;
  /// Sleep between retry attempts (tests disable to stay fast).
  bool sleep_on_backoff = true;
};

/// Aggregated campaign outcome.
struct CampaignSummary {
  std::vector<JobResult> results;  ///< one per job, input order
  i64 completed = 0;    ///< status ok (fresh or resumed)
  i64 failed = 0;
  i64 quarantined = 0;
  i64 cancelled = 0;
  i64 resumed = 0;      ///< settled straight from the journal
  i64 retries = 0;      ///< extra attempts beyond the first, all jobs
  /// "ok" (everything completed) | "partial" (cancelled mid-flight) |
  /// "degraded" (completed, but some jobs failed or were quarantined).
  std::string status = "ok";
  bool interrupted = false;  ///< cancel token tripped mid-campaign
  /// Merged per-worker metrics: counters jobs.completed / jobs.retried /
  /// jobs.quarantined / jobs.failed / jobs.resumed and the job.wall_ms
  /// histogram.  Json snapshot so the summary stays copyable.
  Json metrics;

  [[nodiscard]] bool ok() const noexcept { return status == "ok"; }
  /// Schema "vpmem.campaign/1": counters, status, metrics — everything
  /// except per-job results (callers embed those as they see fit).
  [[nodiscard]] Json to_json() const;
};

/// Run `jobs` under `options`.  Never throws for per-job conditions —
/// crashes, typed errors and cancellations all land in the summary.
/// Throws std::runtime_error only for campaign-level misuse: an
/// unopenable journal, duplicate config hashes, or a corrupt journal on
/// resume.
[[nodiscard]] CampaignSummary run_campaign(const std::vector<JobSpec>& jobs,
                                           const ExecutorOptions& options);

}  // namespace vpmem::exec
