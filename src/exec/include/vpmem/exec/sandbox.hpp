// Fork-based crash isolation for one campaign job (POSIX only).
//
// The job runs in a forked child; its Json result (or typed error) is
// marshalled back through a pipe and the child exits without running the
// parent's atexit machinery.  A child killed by SIGSEGV / SIGABRT / a
// sanitizer abort therefore becomes a *structured* SandboxOutcome —
// signal number plus rusage — instead of taking the whole campaign down.
//
// Forking from a worker thread relies on the platform's fork handlers
// reinitializing the allocator locks in the child (glibc and the BSD
// libcs do); sandbox_supported() reports false where that contract is
// unavailable and the executor falls back to in-process execution.
#pragma once

#include <functional>
#include <string>

#include "vpmem/util/json.hpp"

namespace vpmem::exec {

/// Structured outcome of one sandboxed job attempt.
struct SandboxOutcome {
  enum class Kind {
    ok,           ///< child returned a result
    error,        ///< child threw; code/message captured
    crashed,      ///< child died on a signal (SIGSEGV, SIGABRT, ...)
    unsupported,  ///< no fork on this platform; nothing ran
  };

  Kind kind = Kind::unsupported;
  Json result;                ///< valid when kind == ok
  std::string error_code;     ///< stable vpmem::ErrorCode name, or "error"
  std::string error_message;  ///< what() from the child
  int exit_code = 0;          ///< child exit status (kind ok/error)
  int signal = 0;             ///< terminating signal (kind crashed)
  long max_rss_kb = 0;        ///< child peak RSS from wait4 rusage
  double user_seconds = 0.0;
  double system_seconds = 0.0;

  [[nodiscard]] bool ok() const noexcept { return kind == Kind::ok; }
  /// Human-readable signal name ("SIGSEGV"), empty unless crashed.
  [[nodiscard]] std::string signal_name() const;
};

/// Whether run_sandboxed() actually isolates on this platform.
[[nodiscard]] bool sandbox_supported() noexcept;

/// Fork and run `job` in the child, capturing its result or death.
/// On unsupported platforms returns kind == unsupported without running
/// the job (the executor then runs it in-process instead).
[[nodiscard]] SandboxOutcome run_sandboxed(const std::function<Json()>& job);

}  // namespace vpmem::exec
