// Worker-pool primitives for campaign execution: a cooperative
// cancellation token, process-wide SIGINT/SIGTERM capture, and a
// TSan-clean parallel_for over a dense index range.
//
// The pool deliberately has no work stealing and no shared result
// state: indices are claimed with one fetch_add and every writer owns a
// distinct slot, so callers that write results[index] need no further
// synchronization.  All cross-thread communication is the single atomic
// cursor plus thread join — the shapes ThreadSanitizer proves clean.
#pragma once

#include <atomic>
#include <functional>

#include "vpmem/util/numeric.hpp"

namespace vpmem::exec {

/// Cooperative cancellation flag, shareable with signal handlers (the
/// store is lock-free) and with sim::Watchdog::cancel.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }
  /// The raw flag, for APIs that poll an atomic (sim::Watchdog).
  [[nodiscard]] const std::atomic<bool>* flag() const noexcept { return &flag_; }

 private:
  std::atomic<bool> flag_{false};
};

/// The process-wide token the installed signal handlers trip.
[[nodiscard]] CancelToken& process_cancel_token() noexcept;

/// Route SIGINT/SIGTERM into process_cancel_token() (idempotent).  Long-
/// running CLI subcommands call this so Ctrl-C drains gracefully — the
/// campaign stops dispatching, flushes its journal and writes a valid
/// partial JSON envelope instead of dying mid-write.  The *second*
/// delivery of either signal restores the default disposition, so a
/// wedged campaign can still be killed the ordinary way.
void install_signal_handlers();

/// True once a handled SIGINT/SIGTERM arrived.
[[nodiscard]] bool interrupted() noexcept;

/// Which signal arrived (0 if none) — for "interrupted by SIGTERM" detail.
[[nodiscard]] int interrupt_signal() noexcept;

/// Run `fn(index, worker)` for every index in [0, count) across `jobs`
/// worker threads (jobs <= 1 runs inline on the caller).  Dispatch stops
/// early when `cancel` trips; indices already claimed still finish.
/// Returns the number of indices actually executed.  Exceptions escaping
/// `fn` are a caller bug (the executor catches per-job errors itself)
/// and terminate via std::terminate.
i64 parallel_for(i64 count, int jobs, const std::function<void(i64 index, int worker)>& fn,
                 const CancelToken* cancel = nullptr);

}  // namespace vpmem::exec
