#include "vpmem/exec/pool.hpp"

#include <csignal>
#include <thread>
#include <vector>

namespace vpmem::exec {

namespace {

std::atomic<int> g_signal{0};

extern "C" void vpmem_exec_signal_handler(int sig) {
  // Async-signal-safe: two lock-free atomic stores, nothing else.
  g_signal.store(sig, std::memory_order_relaxed);
  process_cancel_token().cancel();
  // A second Ctrl-C / TERM must still kill a wedged campaign.
  std::signal(sig, SIG_DFL);
}

}  // namespace

CancelToken& process_cancel_token() noexcept {
  static CancelToken token;
  return token;
}

void install_signal_handlers() {
  // Force the token's (guarded) static initialization now: running it for
  // the first time inside the handler would not be async-signal-safe.
  (void)process_cancel_token();
  std::signal(SIGINT, &vpmem_exec_signal_handler);
  std::signal(SIGTERM, &vpmem_exec_signal_handler);
}

bool interrupted() noexcept { return g_signal.load(std::memory_order_relaxed) != 0; }

int interrupt_signal() noexcept { return g_signal.load(std::memory_order_relaxed); }

i64 parallel_for(i64 count, int jobs, const std::function<void(i64 index, int worker)>& fn,
                 const CancelToken* cancel) {
  if (count <= 0) return 0;
  std::atomic<i64> cursor{0};
  std::atomic<i64> executed{0};
  const auto work = [&](int worker) {
    while (cancel == nullptr || !cancel->cancelled()) {
      const i64 index = cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      fn(index, worker);
      executed.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (jobs <= 1) {
    work(0);
    return executed.load(std::memory_order_relaxed);
  }
  const int workers = static_cast<int>(std::min<i64>(jobs, count));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(work, w);
  for (auto& t : threads) t.join();
  return executed.load(std::memory_order_relaxed);
}

}  // namespace vpmem::exec
