#include "vpmem/exec/executor.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "vpmem/exec/sandbox.hpp"
#include "vpmem/util/error.hpp"
#include "vpmem/util/hash.hpp"

namespace vpmem::exec {

std::string to_string(JobStatus status) {
  switch (status) {
    case JobStatus::ok: return "ok";
    case JobStatus::failed: return "failed";
    case JobStatus::quarantined: return "quarantined";
    case JobStatus::cancelled: return "cancelled";
  }
  return "?";
}

namespace {

/// Outcome of a single attempt, sandboxed or in-process.
struct Attempt {
  enum class Kind { ok, error, crashed } kind = Kind::error;
  Json result;
  std::string code;     ///< stable error code ("deadline_exceeded", ...)
  std::string message;
  int signal = 0;
  long max_rss_kb = 0;
};

Attempt attempt_once(const JobSpec& spec, bool sandbox) {
  if (sandbox && sandbox_supported()) {
    const SandboxOutcome s = run_sandboxed(spec.run);
    Attempt a;
    a.max_rss_kb = s.max_rss_kb;
    switch (s.kind) {
      case SandboxOutcome::Kind::ok:
        a.kind = Attempt::Kind::ok;
        a.result = s.result;
        return a;
      case SandboxOutcome::Kind::crashed:
        a.kind = Attempt::Kind::crashed;
        a.signal = s.signal;
        a.code = s.signal_name();
        a.message = "job crashed with " + s.signal_name();
        return a;
      case SandboxOutcome::Kind::error:
      case SandboxOutcome::Kind::unsupported:
        a.kind = Attempt::Kind::error;
        a.code = s.error_code.empty() ? "error" : s.error_code;
        a.message = s.error_message;
        return a;
    }
  }
  Attempt a;
  try {
    a.result = spec.run();
    a.kind = Attempt::Kind::ok;
  } catch (const vpmem::Error& e) {
    a.code = to_string(e.code());
    a.message = e.what();
  } catch (const std::exception& e) {
    a.code = "error";
    a.message = e.what();
  }
  return a;
}

/// deadline_exceeded / livelock are load conditions worth retrying with
/// backoff; everything else (a crash, config_invalid, a logic error) is
/// deterministic and gets exactly one confirmation retry.
bool transient(const Attempt& a) {
  return a.kind == Attempt::Kind::error &&
         (a.code == "deadline_exceeded" || a.code == "livelock");
}

JournalRecord record_of(const JobSpec& spec, const Attempt& a, int attempt, int worker,
                        double wall_ms, const std::string& status) {
  JournalRecord rec;
  rec.job = spec.id;
  rec.hash = spec.hash;
  rec.attempt = attempt;
  rec.status = status;
  rec.worker = worker;
  rec.wall_ms = wall_ms;
  if (a.kind == Attempt::Kind::ok) {
    rec.result = a.result;
  } else {
    rec.error = a.code;
    if (status == "quarantined" || a.kind == Attempt::Kind::crashed) rec.repro = spec.repro;
  }
  return rec;
}

/// Run one job to its final disposition (retries included).
JobResult run_one(const JobSpec& spec, int worker, const ExecutorOptions& options,
                  JournalWriter* journal, obs::MetricsRegistry& metrics) {
  JobResult out;
  out.id = spec.id;
  out.hash = spec.hash;
  const std::uint64_t seed = fnv1a64(spec.hash);
  int attempt = 0;
  int deterministic_failures = 0;
  for (;;) {
    ++attempt;
    out.attempts = attempt;
    if (attempt > 1) {
      metrics.counter("jobs.retried").inc();
      const double delay = options.retry.delay_ms(attempt, seed);
      if (options.sleep_on_backoff && delay > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
      }
    }
    const auto begin = std::chrono::steady_clock::now();
    const Attempt a = attempt_once(spec, options.sandbox);
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - begin)
                      .count();
    out.max_rss_kb = a.max_rss_kb;
    metrics.histogram("job.wall_ms").record(static_cast<i64>(out.wall_ms));

    if (a.kind == Attempt::Kind::ok) {
      out.status = JobStatus::ok;
      out.result = a.result;
      out.error_code.clear();
      out.error.clear();
      metrics.counter("jobs.completed").inc();
      if (journal != nullptr) journal->append(record_of(spec, a, attempt, worker, out.wall_ms, "ok"));
      return out;
    }

    out.error_code = a.code;
    out.error = a.message;
    out.signal = a.signal;
    if (transient(a)) {
      if (options.retry.retryable(attempt)) {
        if (journal != nullptr) {
          journal->append(record_of(spec, a, attempt, worker, out.wall_ms, "retry"));
        }
        continue;
      }
      out.status = JobStatus::failed;
      metrics.counter("jobs.failed").inc();
      if (journal != nullptr) {
        journal->append(record_of(spec, a, attempt, worker, out.wall_ms, "failed"));
      }
      return out;
    }

    // Deterministic crash or typed error: one confirmation retry, then
    // quarantine with the repro token.
    ++deterministic_failures;
    if (deterministic_failures < 2) {
      if (journal != nullptr) {
        journal->append(record_of(spec, a, attempt, worker, out.wall_ms,
                                  a.kind == Attempt::Kind::crashed ? "crashed" : "retry"));
      }
      continue;
    }
    out.status = JobStatus::quarantined;
    out.repro = spec.repro;
    metrics.counter("jobs.quarantined").inc();
    if (journal != nullptr) {
      journal->append(record_of(spec, a, attempt, worker, out.wall_ms, "quarantined"));
    }
    return out;
  }
}

JobResult resumed_result(const JobSpec& spec, const JournalRecord& rec) {
  JobResult out;
  out.id = spec.id;
  out.hash = spec.hash;
  out.resumed = true;
  out.error_code = rec.error;
  out.repro = rec.repro;
  if (rec.status == "ok") {
    out.status = JobStatus::ok;
    out.result = rec.result;
  } else {
    out.status = JobStatus::quarantined;
    out.error = "quarantined in a previous campaign run (journal attempt " +
                std::to_string(rec.attempt) + ")";
  }
  return out;
}

}  // namespace

Json CampaignSummary::to_json() const {
  Json doc = Json::object();
  doc["schema"] = "vpmem.campaign/1";
  doc["status"] = status;
  doc["interrupted"] = interrupted;
  doc["jobs"] = static_cast<i64>(results.size());
  doc["completed"] = completed;
  doc["failed"] = failed;
  doc["quarantined"] = quarantined;
  doc["cancelled"] = cancelled;
  doc["resumed"] = resumed;
  doc["retries"] = retries;
  doc["metrics"] = metrics;
  return doc;
}

CampaignSummary run_campaign(const std::vector<JobSpec>& jobs, const ExecutorOptions& options) {
  {
    std::unordered_set<std::string> hashes;
    for (const auto& j : jobs) {
      if (!hashes.insert(j.hash).second) {
        throw std::runtime_error{"run_campaign: duplicate config hash for job '" + j.id +
                                 "' — resume-by-hash would conflate jobs"};
      }
    }
  }

  CampaignSummary summary;
  summary.results.resize(jobs.size());

  // Resume view: settled ("ok"/"quarantined") records by config hash.
  std::unordered_map<std::string, JournalRecord> settled;
  if (options.resume && !options.journal_path.empty()) {
    for (auto& rec : read_journal(options.journal_path).latest_per_hash()) {
      if (rec.status == "ok" || rec.status == "quarantined") {
        settled.emplace(rec.hash, std::move(rec));
      }
    }
  }

  std::unique_ptr<JournalWriter> journal;
  if (!options.journal_path.empty()) {
    journal = std::make_unique<JournalWriter>(options.journal_path);
  }

  // Settle resumable jobs up front; only the rest hit the pool.
  std::vector<std::size_t> pending;
  pending.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto it = settled.find(jobs[i].hash);
    if (it != settled.end()) {
      summary.results[i] = resumed_result(jobs[i], it->second);
    } else {
      summary.results[i].id = jobs[i].id;
      summary.results[i].hash = jobs[i].hash;
      pending.push_back(i);
    }
  }

  const int workers = options.jobs <= 1 ? 1 : options.jobs;
  std::vector<obs::MetricsRegistry> per_worker(static_cast<std::size_t>(workers));
  parallel_for(
      static_cast<i64>(pending.size()), options.jobs,
      [&](i64 index, int worker) {
        const std::size_t slot = pending[static_cast<std::size_t>(index)];
        summary.results[slot] = run_one(jobs[slot], worker, options, journal.get(),
                                        per_worker[static_cast<std::size_t>(worker)]);
      },
      options.cancel);

  obs::MetricsRegistry merged;
  for (const auto& reg : per_worker) merged.merge(reg);
  for (const auto& r : summary.results) {
    switch (r.status) {
      case JobStatus::ok: ++summary.completed; break;
      case JobStatus::failed: ++summary.failed; break;
      case JobStatus::quarantined: ++summary.quarantined; break;
      case JobStatus::cancelled: ++summary.cancelled; break;
    }
    if (r.resumed) ++summary.resumed;
    if (r.attempts > 1) summary.retries += r.attempts - 1;
  }
  merged.counter("jobs.resumed").inc(summary.resumed);
  summary.metrics = merged.to_json();
  summary.interrupted = options.cancel != nullptr && options.cancel->cancelled();
  if (summary.cancelled > 0) {
    summary.status = "partial";
  } else if (summary.failed > 0 || summary.quarantined > 0) {
    summary.status = "degraded";
  }
  return summary;
}

}  // namespace vpmem::exec
