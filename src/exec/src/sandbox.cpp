#include "vpmem/exec/sandbox.hpp"

#include "vpmem/util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define VPMEM_EXEC_HAS_FORK 1
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define VPMEM_EXEC_HAS_FORK 0
#endif

namespace vpmem::exec {

std::string SandboxOutcome::signal_name() const {
  if (kind != Kind::crashed) return {};
#if VPMEM_EXEC_HAS_FORK
  switch (signal) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    default: break;
  }
#endif
  return "SIG" + std::to_string(signal);
}

bool sandbox_supported() noexcept { return VPMEM_EXEC_HAS_FORK != 0; }

#if VPMEM_EXEC_HAS_FORK

namespace {

/// Child->parent wire format: a one-byte tag, then the payload.
///   'R' <compact json>            — job result
///   'E' <code> '\n' <message>     — typed / generic error
constexpr char kTagResult = 'R';
constexpr char kTagError = 'E';

void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // parent vanished; nothing useful left to do
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

std::string read_all(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return out;
    out.append(buf, static_cast<std::size_t>(n));
  }
}

[[noreturn]] void child_main(int fd, const std::function<Json()>& job) {
  // The child inherited the parent's signal routing; a Ctrl-C aimed at
  // the campaign must not look like a per-job crash.
  std::signal(SIGINT, SIG_IGN);
  std::string payload;
  int code = 0;
  try {
    payload = kTagResult + job().dump();
  } catch (const vpmem::Error& e) {
    payload = kTagError + to_string(e.code()) + '\n' + e.what();
    code = 1;
  } catch (const std::exception& e) {
    payload = std::string{kTagError} + "error" + '\n' + e.what();
    code = 1;
  }
  write_all(fd, payload.data(), payload.size());
  ::close(fd);
  // _exit, not exit: the parent's atexit handlers / stream flushes must
  // not run twice.
  ::_exit(code);
}

}  // namespace

SandboxOutcome run_sandboxed(const std::function<Json()>& job) {
  SandboxOutcome out;
  int fds[2];
  if (::pipe(fds) != 0) {
    out.kind = SandboxOutcome::Kind::error;
    out.error_code = "error";
    out.error_message = std::string{"sandbox: pipe failed: "} + std::strerror(errno);
    return out;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    out.kind = SandboxOutcome::Kind::error;
    out.error_code = "error";
    out.error_message = std::string{"sandbox: fork failed: "} + std::strerror(errno);
    return out;
  }
  if (pid == 0) {
    ::close(fds[0]);
    child_main(fds[1], job);  // never returns
  }
  ::close(fds[1]);
  const std::string wire = read_all(fds[0]);
  ::close(fds[0]);

  int status = 0;
  struct rusage usage {};
  while (::wait4(pid, &status, 0, &usage) < 0) {
    if (errno != EINTR) break;
  }
  out.max_rss_kb = usage.ru_maxrss;
  out.user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                     static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
  out.system_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                       static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;

  if (WIFSIGNALED(status)) {
    out.kind = SandboxOutcome::Kind::crashed;
    out.signal = WTERMSIG(status);
    return out;
  }
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (!wire.empty() && wire[0] == kTagResult) {
    try {
      out.result = Json::parse(wire.substr(1));
      out.kind = SandboxOutcome::Kind::ok;
      return out;
    } catch (const std::exception& e) {
      out.kind = SandboxOutcome::Kind::error;
      out.error_code = "error";
      out.error_message = std::string{"sandbox: torn result payload: "} + e.what();
      return out;
    }
  }
  if (!wire.empty() && wire[0] == kTagError) {
    const std::size_t nl = wire.find('\n');
    out.kind = SandboxOutcome::Kind::error;
    out.error_code = nl == std::string::npos ? "error" : wire.substr(1, nl - 1);
    out.error_message = nl == std::string::npos ? wire.substr(1) : wire.substr(nl + 1);
    return out;
  }
  // No payload at all: the child died before writing (e.g. an abort with
  // an unblockable exit path) or exited silently.
  out.kind = SandboxOutcome::Kind::error;
  out.error_code = "error";
  out.error_message = "sandbox: child exited with status " + std::to_string(out.exit_code) +
                      " without a result";
  return out;
}

#else  // !VPMEM_EXEC_HAS_FORK

SandboxOutcome run_sandboxed(const std::function<Json()>&) { return {}; }

#endif

}  // namespace vpmem::exec
