#include "vpmem/baseline/random_traffic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "vpmem/baseline/rng.hpp"
#include "vpmem/sim/run.hpp"

namespace vpmem::baseline {

std::vector<i64> random_bank_pattern(i64 m, std::size_t length, std::uint64_t seed) {
  if (m < 1) throw std::invalid_argument{"random_bank_pattern: m must be >= 1"};
  if (length == 0) throw std::invalid_argument{"random_bank_pattern: length must be >= 1"};
  SplitMix64 rng{seed};
  std::vector<i64> pattern;
  pattern.reserve(length);
  for (std::size_t k = 0; k < length; ++k) {
    pattern.push_back(static_cast<i64>(rng.next_below(static_cast<std::uint64_t>(m))));
  }
  return pattern;
}

double random_traffic_bandwidth(const sim::MemoryConfig& config, i64 ports, i64 warmup,
                                i64 window, std::uint64_t seed) {
  config.validate();
  if (ports < 1) throw std::invalid_argument{"random_traffic_bandwidth: ports must be >= 1"};
  // Long co-prime-ish pattern lengths so the joint period vastly exceeds
  // the measurement window (the streams never re-align within it).
  constexpr std::size_t kBasePatternLength = 8191;
  std::vector<sim::StreamConfig> streams;
  streams.reserve(static_cast<std::size_t>(ports));
  for (i64 p = 0; p < ports; ++p) {
    sim::StreamConfig s;
    s.cpu = p;  // one port per CPU: no shared access paths
    s.bank_pattern = random_bank_pattern(
        config.banks, kBasePatternLength + static_cast<std::size_t>(p),
        seed + 0x51ED2701ULL * static_cast<std::uint64_t>(p + 1));
    streams.push_back(std::move(s));
  }
  return sim::measure_bandwidth(config, streams, warmup, window);
}

double acceptance_model(i64 m, i64 p) {
  if (m < 1 || p < 1) throw std::invalid_argument{"acceptance_model: m, p must be >= 1"};
  const double md = static_cast<double>(m);
  return md * (1.0 - std::pow(1.0 - 1.0 / md, static_cast<double>(p)));
}

double service_bound(i64 m, i64 nc, i64 p) {
  if (m < 1 || nc < 1 || p < 1) {
    throw std::invalid_argument{"service_bound: arguments must be >= 1"};
  }
  return std::min(static_cast<double>(p), static_cast<double>(m) / static_cast<double>(nc));
}

}  // namespace vpmem::baseline
