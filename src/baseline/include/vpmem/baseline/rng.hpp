// Small deterministic PRNG (SplitMix64).  Used to synthesize random
// reference streams; seeded explicitly so every experiment is exactly
// reproducible.
#pragma once

#include <cstdint>

namespace vpmem::baseline {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound) for bound >= 1 (modulo bias is < 2^-50
  /// for the tiny bounds used here).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

 private:
  std::uint64_t state_;
};

}  // namespace vpmem::baseline
