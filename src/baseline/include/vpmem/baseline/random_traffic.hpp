// Random-reference baseline.
//
// The models the paper builds on ([1]-[5]: Budnik/Kuck, Ravi, Bhandarkar,
// Lawrie, Chang/Kuck/Lawrie) analyze *random* requests to interleaved
// memories.  This module provides that baseline for comparison with
// vector-mode streams: p processors issuing uniformly random bank
// requests with the same dynamic conflict resolution (a delayed processor
// retries the same bank), plus the classical closed-form acceptance model
// for nc = 1.
#pragma once

#include <cstdint>
#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::baseline {

/// A periodic pseudo-random bank sequence usable as
/// sim::StreamConfig::bank_pattern.  Deterministic in (m, length, seed).
[[nodiscard]] std::vector<i64> random_bank_pattern(i64 m, std::size_t length,
                                                   std::uint64_t seed);

/// Long-run effective bandwidth of `ports` independent processors (one
/// port per CPU, so paths are never shared) issuing uniform random bank
/// requests into `config`.  Measured over `window` periods after
/// `warmup`; deterministic in `seed`.
[[nodiscard]] double random_traffic_bandwidth(const sim::MemoryConfig& config, i64 ports,
                                              i64 warmup, i64 window,
                                              std::uint64_t seed = 0x9E3779B9ULL);

/// Classical one-cycle acceptance model (nc = 1, conflicting requests
/// dropped and resubmitted fresh): the expected number of distinct banks
/// addressed by p uniform requests over m banks,
///   E[grants/period] = m * (1 - (1 - 1/m)^p).
/// An optimistic bound for the queued simulation above (requeued requests
/// are *not* fresh), exact only as nc -> 1 and p/m -> 0.
[[nodiscard]] double acceptance_model(i64 m, i64 p);

/// Upper bound on any schedule: min(p, m/nc) data per clock period (ports
/// on one side, bank service slots on the other).
[[nodiscard]] double service_bound(i64 m, i64 nc, i64 p);

}  // namespace vpmem::baseline
