#include "vpmem/xmp/machine.hpp"

#include "vpmem/xmp/kernels.hpp"

namespace vpmem::xmp {

std::vector<i64> triad_start_banks(const XmpConfig& config, const TriadSetup& setup) {
  if (setup.idim < 1) throw std::invalid_argument{"TriadSetup: idim >= 1"};
  const i64 m = config.memory.banks;
  // COMMON// A(IDIM), B(IDIM), C(IDIM), D(IDIM): arrays back to back.
  return {mod_norm(setup.base_bank, m), mod_norm(setup.base_bank + setup.idim, m),
          mod_norm(setup.base_bank + 2 * setup.idim, m),
          mod_norm(setup.base_bank + 3 * setup.idim, m)};
}

TriadResult run_triad(const XmpConfig& config, const TriadSetup& setup, bool other_cpu_active) {
  return run_kernel(config, triad_kernel(), setup, other_cpu_active);
}

}  // namespace vpmem::xmp
