#include "vpmem/xmp/kernels.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "vpmem/baseline/random_traffic.hpp"
#include "vpmem/sim/memory_system.hpp"

namespace vpmem::xmp {

namespace {

constexpr std::size_t kUnset = static_cast<std::size_t>(-1);

void validate_setup(const XmpConfig& config, const TriadSetup& setup) {
  config.memory.validate();
  if (config.vector_length < 1) throw std::invalid_argument{"XmpConfig: vector_length >= 1"};
  if (config.issue_gap < 0) throw std::invalid_argument{"XmpConfig: issue_gap >= 0"};
  if (config.chain_latency < 1) throw std::invalid_argument{"XmpConfig: chain_latency >= 1"};
  if (setup.n < 1) throw std::invalid_argument{"TriadSetup: n >= 1"};
  if (setup.inc < 1) throw std::invalid_argument{"TriadSetup: inc >= 1"};
  if (setup.idim < 1) throw std::invalid_argument{"TriadSetup: idim >= 1"};
  for (i64 b : config.background_start_banks) {
    if (b < 0 || b >= config.memory.banks) {
      throw std::invalid_argument{"XmpConfig: background start bank out of range"};
    }
  }
}

/// Issues one CPU's strip-mined kernel instructions into a (possibly
/// shared) MemorySystem as their dependencies clear: loads round-robin
/// over the CPU's two load ports, the store chained a fixed latency
/// behind the last operand's first element.  Processes the element range
/// [first_element, first_element + count) of the loop.
class KernelDriver {
 public:
  KernelDriver(sim::MemorySystem& mem, const XmpConfig& config, const KernelSpec& spec,
               const TriadSetup& setup, i64 cpu, i64 first_element, i64 count)
      : mem_{mem},
        config_{config},
        spec_{spec},
        setup_{setup},
        cpu_{cpu},
        first_element_{first_element},
        count_{count},
        nloads_{static_cast<std::size_t>(spec.loads)},
        strips_{static_cast<std::size_t>(ceil_div(count, config.vector_length))},
        load_idx_(strips_, std::vector<std::size_t>(std::max<std::size_t>(nloads_, 1), kUnset)),
        store_idx_(strips_, kUnset) {
    if (count_ < 1) throw std::invalid_argument{"KernelDriver: count must be >= 1"};
  }

  /// Schedule whatever became ready; call every clock period (and once
  /// before the first step to issue the initial loads).
  void tick() {
    for (std::size_t k = 0; k < strips_; ++k) {
      for (std::size_t q = 0; q < nloads_; ++q) {
        if (load_idx_[k][q] != kUnset) continue;
        HwPort& hw = load_port_[q % kLoadPorts];
        if (hw.last != kUnset && !mem_.port_done(hw.last)) continue;
        i64 start = (hw.last == kUnset) ? mem_.now() : free_after(hw.last);
        if (spec_.gather && q == 1) {
          // B(IX(I)) cannot issue before indices start arriving.
          if (load_idx_[k][0] == kUnset || stats(load_idx_[k][0]).first_grant_cycle < 0) {
            continue;
          }
          start = std::max(start,
                           stats(load_idx_[k][0]).first_grant_cycle + config_.chain_latency);
        }
        load_idx_[k][q] = add(first_load_array() + q, k, start, hw);
      }
      if (spec_.store && store_idx_[k] == kUnset) {
        bool operands_started = true;
        i64 chain_start = 0;
        for (std::size_t q = 0; q < nloads_; ++q) {
          if (load_idx_[k][q] == kUnset || stats(load_idx_[k][q]).first_grant_cycle < 0) {
            operands_started = false;
            break;
          }
          chain_start = std::max(
              chain_start, stats(load_idx_[k][q]).first_grant_cycle + config_.chain_latency);
        }
        if (!operands_started) continue;
        if (store_port_.last != kUnset) {
          if (!mem_.port_done(store_port_.last)) continue;
          chain_start = std::max(chain_start, free_after(store_port_.last));
        }
        store_idx_[k] = add(0, k, chain_start, store_port_);
      }
    }
  }

  [[nodiscard]] bool finished() const {
    const std::size_t k = strips_ - 1;
    if (spec_.store) return store_idx_[k] != kUnset && mem_.port_done(store_idx_[k]);
    for (std::size_t q = 0; q < nloads_; ++q) {
      if (load_idx_[k][q] == kUnset || !mem_.port_done(load_idx_[k][q])) return false;
    }
    return true;
  }

  [[nodiscard]] const std::vector<std::size_t>& ports() const noexcept { return ports_; }

 private:
  static constexpr std::size_t kLoadPorts = 2;
  struct HwPort {
    std::size_t last = kUnset;  ///< sim-port index of the last instruction
  };

  [[nodiscard]] std::size_t first_load_array() const { return spec_.store ? 1 : 0; }

  [[nodiscard]] i64 strip_len(std::size_t k) const {
    return std::min<i64>(config_.vector_length,
                         count_ - static_cast<i64>(k) * config_.vector_length);
  }

  [[nodiscard]] sim::StreamConfig make_stream(std::size_t array, std::size_t k,
                                              i64 start_cycle) const {
    const i64 m = config_.memory.banks;
    sim::StreamConfig s;
    s.cpu = cpu_;
    s.length = strip_len(k);
    s.start_cycle = start_cycle;
    const bool indexed_load = spec_.gather && array == first_load_array() + 1;
    const bool indexed_store = spec_.scatter && spec_.store && array == 0;
    if (indexed_load || indexed_store) {
      // The indexed operand: banks determined by the data in IX, modeled
      // as uniform random, deterministic per (cpu, strip).
      s.bank_pattern = baseline::random_bank_pattern(
          m, static_cast<std::size_t>(strip_len(k)),
          0xC0FFEEULL + 1000ULL * static_cast<std::uint64_t>(cpu_) +
              static_cast<std::uint64_t>(k));
    } else {
      const i64 base = mod_norm(setup_.base_bank + static_cast<i64>(array) * setup_.idim, m);
      const i64 element0 = first_element_ + static_cast<i64>(k) * config_.vector_length;
      s.start_bank = mod_norm(base + element0 * setup_.inc, m);
      s.distance = mod_norm(setup_.inc, m);
    }
    return s;
  }

  [[nodiscard]] const sim::PortStats& stats(std::size_t sim_port) const {
    return mem_.port_stats(sim_port);
  }
  [[nodiscard]] i64 free_after(std::size_t sim_port) const {
    return stats(sim_port).last_grant_cycle + 1 + config_.issue_gap;
  }
  std::size_t add(std::size_t array, std::size_t k, i64 start, HwPort& hw) {
    const std::size_t sim_port =
        mem_.add_stream(make_stream(array, k, std::max(start, mem_.now())));
    hw.last = sim_port;
    ports_.push_back(sim_port);
    return sim_port;
  }

  sim::MemorySystem& mem_;
  const XmpConfig& config_;
  const KernelSpec& spec_;
  const TriadSetup& setup_;
  i64 cpu_;
  i64 first_element_;
  i64 count_;
  std::size_t nloads_;
  std::size_t strips_;
  std::array<HwPort, kLoadPorts> load_port_;
  HwPort store_port_;
  std::vector<std::vector<std::size_t>> load_idx_;
  std::vector<std::size_t> store_idx_;
  std::vector<std::size_t> ports_;
};

std::vector<sim::PortStats> collect(const sim::MemorySystem& mem,
                                    const std::vector<std::size_t>& ports, i64* cycles) {
  std::vector<sim::PortStats> out;
  out.reserve(ports.size());
  for (std::size_t sim_port : ports) {
    out.push_back(mem.port_stats(sim_port));
    if (cycles != nullptr) *cycles = std::max(*cycles, out.back().last_grant_cycle + 1);
  }
  return out;
}

}  // namespace

void KernelSpec::validate() const {
  if (loads < 0) throw std::invalid_argument{"KernelSpec: loads must be >= 0"};
  if (loads == 0 && !store) {
    throw std::invalid_argument{"KernelSpec: kernel must access memory"};
  }
  if (gather && loads < 2) {
    throw std::invalid_argument{"KernelSpec: gather needs an index load and an indexed load"};
  }
  if (scatter && (loads < 1 || !store)) {
    throw std::invalid_argument{"KernelSpec: scatter needs an index load and a store"};
  }
}

KernelSpec copy_kernel() { return KernelSpec{.name = "copy", .loads = 1, .store = true}; }
KernelSpec scale_kernel() { return KernelSpec{.name = "scale", .loads = 1, .store = true}; }
KernelSpec sum_kernel() { return KernelSpec{.name = "sum", .loads = 1, .store = false}; }
KernelSpec daxpy_kernel() { return KernelSpec{.name = "daxpy", .loads = 2, .store = true}; }
KernelSpec triad_kernel() { return KernelSpec{.name = "triad", .loads = 3, .store = true}; }

KernelSpec gather_kernel() {
  return KernelSpec{.name = "gather", .loads = 2, .store = true, .gather = true};
}

KernelSpec scatter_kernel() {
  return KernelSpec{.name = "scatter", .loads = 2, .store = true, .scatter = true};
}

const std::vector<KernelSpec>& all_kernels() {
  static const std::vector<KernelSpec> kernels{copy_kernel(),  scale_kernel(), sum_kernel(),
                                               daxpy_kernel(), triad_kernel(), gather_kernel(),
                                               scatter_kernel()};
  return kernels;
}

TriadResult run_kernel(const XmpConfig& config, const KernelSpec& spec, const TriadSetup& setup,
                       bool other_cpu_active) {
  spec.validate();
  validate_setup(config, setup);

  sim::MemorySystem mem{config.memory, {}};
  KernelDriver driver{mem, config, spec, setup, /*cpu=*/0, /*first_element=*/0, setup.n};
  // Issue the first vector instructions before the background streams so
  // the measured CPU's ports hold fixed-priority seniority — this matters
  // for the eq. 28 equality barriers (e.g. INC = 11 vs the stride-1
  // environment, which only forms when the triad's ports have priority).
  driver.tick();
  std::vector<std::size_t> background_ports;
  if (other_cpu_active) {
    for (i64 bank : config.background_start_banks) {
      sim::StreamConfig s;
      s.start_bank = bank;
      s.distance = 1;
      s.cpu = 1;
      background_ports.push_back(mem.add_stream(s));
    }
  }

  const i64 guard = 1'000'000 + setup.n * 64;
  while (!driver.finished()) {
    if (mem.now() > guard) {
      throw std::runtime_error{"run_kernel: execution did not finish (guard exceeded)"};
    }
    mem.step();
    driver.tick();
  }

  TriadResult out;
  out.triad_ports = collect(mem, driver.ports(), &out.cycles);
  out.conflicts = sim::totals(out.triad_ports);
  out.background_ports = collect(mem, background_ports, nullptr);
  return out;
}

MultitaskResult run_kernel_multitasked(const XmpConfig& config, const KernelSpec& spec,
                                       const TriadSetup& setup) {
  spec.validate();
  validate_setup(config, setup);
  const i64 half = ceil_div(setup.n, 2);

  sim::MemorySystem mem{config.memory, {}};
  KernelDriver cpu0{mem, config, spec, setup, /*cpu=*/0, /*first_element=*/0, half};
  // n == 1: CPU 1 has nothing to do; run single-driver in that case.
  const bool two_halves = setup.n > 1;
  std::optional<KernelDriver> cpu1;
  if (two_halves) cpu1.emplace(mem, config, spec, setup, /*cpu=*/1, half, setup.n - half);
  cpu0.tick();
  if (cpu1) cpu1->tick();

  const i64 guard = 1'000'000 + setup.n * 64;
  while (!(cpu0.finished() && (!cpu1 || cpu1->finished()))) {
    if (mem.now() > guard) {
      throw std::runtime_error{"run_kernel_multitasked: did not finish (guard exceeded)"};
    }
    mem.step();
    cpu0.tick();
    if (cpu1) cpu1->tick();
  }

  MultitaskResult out;
  out.cpu0_ports = collect(mem, cpu0.ports(), &out.cycles);
  if (cpu1) out.cpu1_ports = collect(mem, cpu1->ports(), &out.cycles);
  out.conflicts = sim::totals(out.cpu0_ports);
  const sim::ConflictTotals c1 = sim::totals(out.cpu1_ports);
  out.conflicts.bank += c1.bank;
  out.conflicts.simultaneous += c1.simultaneous;
  out.conflicts.section += c1.section;
  out.conflicts.fault += c1.fault;
  return out;
}

}  // namespace vpmem::xmp
