// Vector-kernel family for the X-MP model.
//
// Section IV discusses the triad in detail and defers "further
// experiments" to the companion paper [10] (Oed & Lange, "Modelling,
// measurement, and simulation of memory interference in the CRAY X-MP").
// This module generalizes the triad driver to any kernel of the shape
//   A(I) = f(B(I), C(I), ...)     (op_loads load arrays, optional store)
// so the classic Fortran kernels (copy, scale, sum, daxpy, triad) run on
// the same strip-mined, chained port schedule.
#pragma once

#include <string>
#include <vector>

#include "vpmem/xmp/machine.hpp"

namespace vpmem::xmp {

/// Shape of one vector kernel iteration.
struct KernelSpec {
  std::string name;
  i64 loads = 1;      ///< number of distinct load-operand arrays (>= 0)
  bool store = true;  ///< whether a result array is stored
  bool gather = false;   ///< load 1 is indexed through load 0 (A(I) =
                         ///< B(IX(I))): its banks are a pseudo-random
                         ///< pattern and it chains behind the index load
  bool scatter = false;  ///< the store is indexed through load 0
                         ///< (A(IX(I)) = B(I)): random-bank store pattern

  void validate() const;
};

/// The classic kernels.  Array 0 is the store target (when present);
/// load arrays follow it in the COMMON block.
[[nodiscard]] KernelSpec copy_kernel();    ///< A(I) = B(I)
[[nodiscard]] KernelSpec scale_kernel();   ///< A(I) = s * B(I)
[[nodiscard]] KernelSpec sum_kernel();     ///< s = s + B(I)        (no store)
[[nodiscard]] KernelSpec daxpy_kernel();   ///< A(I) = B(I) + s*C(I)
[[nodiscard]] KernelSpec triad_kernel();   ///< A(I) = B(I) + C(I)*D(I)
/// A(I) = B(IX(I)) — hardware gather through an index vector.  A model
/// extension beyond the paper (gather/scatter arrived with the four-CPU
/// X-MPs): the indexed stream's banks are uniformly random, so gather
/// pays the random-traffic conflict tax of the baseline module no matter
/// how IX itself strides.
[[nodiscard]] KernelSpec gather_kernel();
/// A(IX(I)) = B(I) — hardware scatter; the store's banks are random.
[[nodiscard]] KernelSpec scatter_kernel();
[[nodiscard]] const std::vector<KernelSpec>& all_kernels();

/// Execute `spec` on CPU 0 with the Section IV memory layout (consecutive
/// arrays of `setup.idim` elements starting at `setup.base_bank`),
/// optionally against the stride-1 background CPU.  Loads are assigned
/// round-robin to the two load ports; the chained store issues a fixed
/// latency after every operand's first element has arrived.
[[nodiscard]] TriadResult run_kernel(const XmpConfig& config, const KernelSpec& spec,
                                     const TriadSetup& setup, bool other_cpu_active);

/// Outcome of a multitasked kernel (both CPUs cooperating on one loop).
struct MultitaskResult {
  i64 cycles = 0;  ///< periods until both halves finished
  std::vector<sim::PortStats> cpu0_ports;
  std::vector<sim::PortStats> cpu1_ports;
  sim::ConflictTotals conflicts;  ///< both CPUs combined

  /// Parallel speedup over a single-CPU run of the whole loop.
  [[nodiscard]] double speedup(i64 single_cpu_cycles) const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(single_cpu_cycles) / static_cast<double>(cycles);
  }
};

/// The conclusion's "multitasking option": split the loop across both
/// CPUs — CPU 0 processes elements [0, ceil(n/2)), CPU 1 the rest — so
/// both processors run *uniform* equal-stride streams instead of the
/// hostile mixed environment of Fig. 10(a).
[[nodiscard]] MultitaskResult run_kernel_multitasked(const XmpConfig& config,
                                                     const KernelSpec& spec,
                                                     const TriadSetup& setup);

}  // namespace vpmem::xmp
