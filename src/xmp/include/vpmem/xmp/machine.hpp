// A cycle-level timing model of the Cray X-MP memory pipeline, sufficient
// to regenerate the Section IV experiment (Fig. 10).
//
// Substitution note (see DESIGN.md): the paper measures CPU time on real
// hardware and validates it against the authors' (unpublished) Fortran
// simulator.  We model the memory-relevant behaviour: two CPUs, each with
// two vector load ports and one vector store port into a 16-bank,
// 4-section memory with bank cycle nc = 4; vector instructions are
// strip-mined to the 64-element vector registers, the third load of a
// triad reuses a load port, and the chained store issues a fixed number
// of clock periods after the last operand's first element arrives.
// Functional-unit and issue latencies are coarse documented constants;
// they shift curves vertically but do not affect the conflict structure,
// which is what Fig. 10 reports.
#pragma once

#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::xmp {

/// Machine description.  Defaults model the Juelich X-MP of the paper:
/// 2 processors, 16 banks, 4 sections, bipolar memory with nc = 4.
struct XmpConfig {
  sim::MemoryConfig memory{.banks = 16,
                           .sections = 4,
                           .bank_cycle = 4,
                           .mapping = sim::SectionMapping::cyclic,
                           .priority = sim::PriorityRule::fixed};
  i64 vector_length = 64;    ///< VL: elements per vector register strip
  i64 issue_gap = 3;         ///< periods between instructions on one port
  i64 chain_latency = 17;    ///< first operand element -> first store element
                             ///< (multiply + add functional units, chained)
  /// Start banks of the competing CPU's three stride-1 streams (Fig. 10a:
  /// "the other CPU ... constantly accessed by all three ports with a
  /// distance of 1").
  std::vector<i64> background_start_banks{0, 5, 10};
};

/// The Fortran loop of Section IV:
///   COMMON// A(IDIM), B(IDIM), C(IDIM), D(IDIM)
///   DO 1 I = 1, N*INC, INC
/// 1 A(I) = B(I) + C(I)*D(I)
struct TriadSetup {
  i64 n = 1024;              ///< vector length (independent of INC)
  i64 inc = 1;               ///< Fortran stride
  i64 idim = 16 * 1024 + 1;  ///< array extent; 16*1024+1 puts consecutive
                             ///< arrays one bank apart
  i64 base_bank = 0;         ///< bank of A(1)
};

/// Outcome of one kernel execution on CPU 0.
struct TriadResult {
  i64 cycles = 0;  ///< clock periods from first issue to last store grant
  std::vector<sim::PortStats> triad_ports;  ///< every CPU-0 vector instruction
  sim::ConflictTotals conflicts;            ///< CPU-0 totals (Fig. 10c-e)
  /// Stats of the competing CPU's stride-1 ports (empty when it was off).
  /// Section IV: for INC = 6 and 11 the triad is "fairly undisturbed while
  /// the access requests of the other CPU are greatly delayed" — visible
  /// here as depressed background goodput.
  std::vector<sim::PortStats> background_ports;

  [[nodiscard]] double cycles_per_element(i64 n) const noexcept {
    return n == 0 ? 0.0 : static_cast<double>(cycles) / static_cast<double>(n);
  }

  /// Background grants per clock period over the kernel's runtime (0 when
  /// the other CPU was off).
  [[nodiscard]] double background_goodput() const noexcept {
    if (cycles == 0 || background_ports.empty()) return 0.0;
    i64 grants = 0;
    for (const auto& p : background_ports) grants += p.grants;
    return static_cast<double>(grants) / static_cast<double>(cycles);
  }
};

/// Execute the triad on CPU 0, optionally with CPU 1 saturating its three
/// ports with infinite stride-1 streams (Fig. 10a vs. 10b).
[[nodiscard]] TriadResult run_triad(const XmpConfig& config, const TriadSetup& setup,
                                    bool other_cpu_active);

/// Start banks of A, B, C, D given the COMMON layout of `setup`.
[[nodiscard]] std::vector<i64> triad_start_banks(const XmpConfig& config,
                                                 const TriadSetup& setup);

}  // namespace vpmem::xmp
