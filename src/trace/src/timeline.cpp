#include "vpmem/trace/timeline.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace vpmem::trace {

Timeline::Timeline(sim::MemorySystem& mem)
    : mem_{mem},
      buffer_{std::make_shared<sim::EventBuffer>()},
      recorder_{std::make_unique<sim::EventRecorder>(mem, buffer_)} {}

Timeline::Timeline(sim::MemorySystem& mem, std::shared_ptr<sim::EventBuffer> buffer)
    : mem_{mem}, buffer_{std::move(buffer)} {
  if (!buffer_) throw std::invalid_argument{"Timeline: null event buffer"};
}

Timeline::~Timeline() = default;

namespace {

/// Digit for a port: streams are numbered 1-based as in the paper.
char port_digit(std::size_t port) {
  return (port < 9) ? static_cast<char>('1' + port) : '#';
}

}  // namespace

std::vector<std::string> Timeline::grid(i64 from, i64 to) const {
  if (from < 0 || to < from) throw std::invalid_argument{"Timeline::grid: bad window"};
  const i64 m = mem_.config().banks;
  const i64 nc = mem_.config().bank_cycle;
  const auto width = static_cast<std::size_t>(to - from);
  std::vector<std::string> rows(static_cast<std::size_t>(m), std::string(width, '.'));

  // Pass 1: service periods from grants.
  buffer_->for_each([&](const sim::Event& e) {
    if (e.type != sim::Event::Type::grant) return;
    for (i64 t = e.cycle; t < e.cycle + nc; ++t) {
      if (t < from || t >= to) continue;
      const auto col = static_cast<std::size_t>(t - from);
      rows[static_cast<std::size_t>(e.bank)][col] = port_digit(e.port);
    }
  });
  // Grant-start cells: the clock period in which a request was accepted
  // keeps its stream digit even if another port was turned away from the
  // same bank that period (Fig. 3 shows "1<<<<<...", not "<<<<<<...").
  std::vector<std::vector<bool>> grant_start(static_cast<std::size_t>(m),
                                             std::vector<bool>(width, false));
  buffer_->for_each([&](const sim::Event& e) {
    if (e.type != sim::Event::Type::grant) return;
    if (e.cycle < from || e.cycle >= to) return;
    grant_start[static_cast<std::size_t>(e.bank)][static_cast<std::size_t>(e.cycle - from)] =
        true;
  });
  // Pass 2: delay markers overwrite service characters, as in the paper
  // (e.g. Fig. 3's "1<<<<<222222" shows stream 2 waiting on the bank that
  // stream 1 is holding).  The event's blocker payload carries the port
  // holding the contended resource, which orients the marker directly —
  // a self conflict (blocker == port) renders '>' like any other wait on
  // the stream's own earlier grant.
  buffer_->for_each([&](const sim::Event& e) {
    if (e.type != sim::Event::Type::conflict) return;
    if (e.cycle < from || e.cycle >= to) return;
    const auto col = static_cast<std::size_t>(e.cycle - from);
    const auto row = static_cast<std::size_t>(e.bank);
    if (grant_start[row][col]) return;
    char marker = '*';
    if (e.conflict == sim::ConflictKind::fault) {
      marker = 'x';  // request pinned by an injected fault, not contention
    } else if (e.conflict != sim::ConflictKind::section) {
      marker = e.port > e.blocker ? '<' : '>';
    }
    rows[row][col] = marker;
  });
  return rows;
}

std::string Timeline::render(i64 from, i64 to, bool show_sections) const {
  const auto rows = grid(from, to);
  std::ostringstream out;
  const auto& cfg = mem_.config();
  std::size_t label_width = 0;
  std::vector<std::string> labels(rows.size());
  for (std::size_t j = 0; j < rows.size(); ++j) {
    const auto bank = static_cast<i64>(j);
    std::ostringstream lbl;
    if (show_sections) lbl << cfg.section_of(bank) << " - ";
    lbl << bank;
    labels[j] = lbl.str();
    label_width = std::max(label_width, labels[j].size());
  }
  out << std::string(label_width + 2, ' ') << "clock-period " << from << ".." << (to - 1)
      << '\n';
  for (std::size_t j = 0; j < rows.size(); ++j) {
    out << std::string(label_width - labels[j].size(), ' ') << labels[j] << "  " << rows[j]
        << '\n';
  }
  return out.str();
}

void Timeline::events_csv(std::ostream& os) const {
  os << "cycle,type,port,bank,element,conflict,blocker\n";
  buffer_->for_each([&](const sim::Event& e) {
    const bool grant = e.type == sim::Event::Type::grant;
    os << e.cycle << ',' << (grant ? "grant" : "conflict") << ',' << e.port << ',' << e.bank
       << ',' << e.element << ',' << (grant ? "" : sim::to_string(e.conflict)) << ','
       << e.blocker << '\n';
  });
}

std::string render_run(const sim::MemoryConfig& config,
                       const std::vector<sim::StreamConfig>& streams, i64 cycles,
                       bool show_sections) {
  sim::MemorySystem mem{config, streams};
  Timeline tl{mem};
  mem.run(cycles, /*stop_when_finished=*/true);
  return tl.render(0, mem.now(), show_sections);
}

}  // namespace vpmem::trace
