// Clock-diagram rendering in the notation of the paper's Figs. 2-9:
// one row per bank, one column per clock period, where
//   '1'..'9'  bank active servicing that stream (nc consecutive periods),
//   '.'       bank idle,
//   '<'       a higher-numbered stream is delayed at this bank this period,
//   '>'       a lower-numbered stream is delayed at this bank this period,
//   '*'       the delay is a section (access-path) conflict.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "vpmem/sim/event.hpp"
#include "vpmem/sim/event_buffer.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::trace {

/// Records simulator events and renders the paper's clock diagrams.
/// Attach before running; render any window afterwards.
///
/// The recording lives in a bounded sim::EventBuffer.  By default the
/// Timeline owns a fresh buffer; pass a shared one (e.g. from
/// obs::Tracer::share_buffer()) to render diagrams from a run that is
/// already being traced without storing the event stream twice.
class Timeline {
 public:
  /// Record into a private buffer (capacity sim::EventBuffer defaults).
  explicit Timeline(sim::MemorySystem& mem);

  /// Read from `buffer` without attaching any hook: some other observer
  /// (an EventRecorder or a Tracer) fills it.  Windows older than the
  /// buffer's retention render as idle.
  Timeline(sim::MemorySystem& mem, std::shared_ptr<sim::EventBuffer> buffer);

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;
  Timeline(Timeline&&) = delete;
  Timeline& operator=(Timeline&&) = delete;
  ~Timeline();

  /// All retained events in emission order, unpacked from the buffer.
  [[nodiscard]] std::vector<sim::Event> events() const { return buffer_->events(); }

  /// The backing store (shared with any co-observers).
  [[nodiscard]] const sim::EventBuffer& buffer() const noexcept { return *buffer_; }

  /// Render clock periods [from, to) as the paper's diagram.  When
  /// `show_sections` is set, rows are labelled "section - bank" as in
  /// Figs. 7-9.
  [[nodiscard]] std::string render(i64 from, i64 to, bool show_sections = false) const;

  /// The raw character grid (rows = banks) without labels, e.g. for tests
  /// asserting on exact patterns.
  [[nodiscard]] std::vector<std::string> grid(i64 from, i64 to) const;

  /// Machine-readable event dump (cycle, type, port, bank, element,
  /// conflict kind, blocker) for external plotting.
  void events_csv(std::ostream& os) const;

 private:
  sim::MemorySystem& mem_;
  std::shared_ptr<sim::EventBuffer> buffer_;
  /// Present only when this Timeline records for itself (first ctor).
  std::unique_ptr<sim::EventRecorder> recorder_;
};

/// One-shot helper: simulate `streams` on `config` for `cycles` periods
/// and return the rendered diagram of that window.
[[nodiscard]] std::string render_run(const sim::MemoryConfig& config,
                                     const std::vector<sim::StreamConfig>& streams, i64 cycles,
                                     bool show_sections = false);

}  // namespace vpmem::trace
