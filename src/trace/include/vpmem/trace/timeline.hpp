// Clock-diagram rendering in the notation of the paper's Figs. 2-9:
// one row per bank, one column per clock period, where
//   '1'..'9'  bank active servicing that stream (nc consecutive periods),
//   '.'       bank idle,
//   '<'       a higher-numbered stream is delayed at this bank this period,
//   '>'       a lower-numbered stream is delayed at this bank this period,
//   '*'       the delay is a section (access-path) conflict.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "vpmem/sim/event.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::trace {

/// Records simulator events and renders the paper's clock diagrams.
/// Attach before running; render any window afterwards.
class Timeline {
 public:
  explicit Timeline(sim::MemorySystem& mem);

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;
  Timeline(Timeline&&) = delete;
  Timeline& operator=(Timeline&&) = delete;
  ~Timeline();

  /// All recorded events in emission order.
  [[nodiscard]] const std::vector<sim::Event>& events() const noexcept { return events_; }

  /// Render clock periods [from, to) as the paper's diagram.  When
  /// `show_sections` is set, rows are labelled "section - bank" as in
  /// Figs. 7-9.
  [[nodiscard]] std::string render(i64 from, i64 to, bool show_sections = false) const;

  /// The raw character grid (rows = banks) without labels, e.g. for tests
  /// asserting on exact patterns.
  [[nodiscard]] std::vector<std::string> grid(i64 from, i64 to) const;

  /// Machine-readable event dump (cycle, type, port, bank, element,
  /// conflict kind, blocker) for external plotting.
  void events_csv(std::ostream& os) const;

 private:
  sim::MemorySystem& mem_;
  std::size_t hook_ = 0;  ///< handle from MemorySystem::add_event_hook
  std::vector<sim::Event> events_;
};

/// One-shot helper: simulate `streams` on `config` for `cycles` periods
/// and return the rendered diagram of that window.
[[nodiscard]] std::string render_run(const sim::MemoryConfig& config,
                                     const std::vector<sim::StreamConfig>& streams, i64 cycles,
                                     bool show_sections = false);

}  // namespace vpmem::trace
