// Tracing v2: cycle-accurate run recording with bounded memory and a
// Chrome trace-event / Perfetto JSON exporter (schema vpmem.trace/1).
//
// A Tracer attaches to a MemorySystem through the event-hook multiplexer
// and does two things per event, both O(1): push a 32-byte packed record
// into a shared sim::EventBuffer (chunked ring — memory stays bounded on
// arbitrarily long runs) and fold the event into a ConflictAttribution
// (exact per-(stream, bank, kind) lost-cycle matrices that never lose
// precision to buffer eviction).
//
// The export draws one track per bank (service slices, nc periods each)
// and one per port (transfer slices, conflict instants carrying kind /
// blocking stream / element index in args), plus a b_eff counter track —
// load the file at ui.perfetto.dev or chrome://tracing.  One simulated
// clock period maps to one microsecond of trace time.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "vpmem/obs/attribution.hpp"
#include "vpmem/sim/event_buffer.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/util/json.hpp"

namespace vpmem::obs {

/// Current value of the "schema" member emitted by Tracer::chrome_trace().
inline constexpr const char* kTraceSchema = "vpmem.trace/1";

struct TracerOptions {
  /// Retained events; older events are evicted in chunks (the attribution
  /// fold is unaffected).  0 means sim::EventBuffer::kDefaultCapacity.
  std::size_t capacity = sim::EventBuffer::kDefaultCapacity;
  /// Fold a ConflictAttribution alongside the buffer.
  bool attribution = true;
  /// b_eff(t) window width for the attribution fold.
  i64 window = 64;
  /// Episode merge gap (see AttributionOptions); <= 0 means nc.
  i64 episode_gap = 0;
};

/// Lifecycle: construct before running (attaches the hook), step the
/// system, call finish() (detaches, finalizes attribution), then export.
/// The destructor calls finish() if it has not run yet.
class Tracer {
 public:
  explicit Tracer(sim::MemorySystem& mem, TracerOptions options = {});
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  Tracer(Tracer&&) = delete;
  Tracer& operator=(Tracer&&) = delete;

  /// Detach the hook and finalize the attribution at the current clock.
  /// Idempotent; no further events are recorded afterwards.
  void finish();

  [[nodiscard]] const sim::EventBuffer& buffer() const noexcept { return *buffer_; }
  /// Share the buffer with another reader (e.g. trace::Timeline renders
  /// the paper's clock diagram from the same recording).
  [[nodiscard]] std::shared_ptr<sim::EventBuffer> share_buffer() const noexcept {
    return buffer_;
  }

  /// The attribution fold, or nullptr when options.attribution is false.
  /// Finalized only after finish().
  [[nodiscard]] const ConflictAttribution* attribution() const noexcept {
    return attribution_.get();
  }

  /// The full vpmem.trace/1 document (Chrome trace-event JSON object form
  /// with vpmem extensions under "otherData").  Calls finish() first.
  [[nodiscard]] Json chrome_trace();

  /// Serialize chrome_trace() to `os` / to `path` (replacing any existing
  /// file; throws std::runtime_error if the file cannot be opened).
  void write_chrome_trace(std::ostream& os);
  void save_chrome_trace(const std::string& path);

 private:
  sim::MemorySystem& mem_;
  TracerOptions options_;
  std::shared_ptr<sim::EventBuffer> buffer_;
  std::unique_ptr<ConflictAttribution> attribution_;
  // One hook does both the buffer push and the attribution fold: a single
  // std::function dispatch per simulated event is what keeps the traced
  // engine within the 2x overhead budget (steady_perf_test).
  std::size_t hook_ = 0;
  bool attached_ = false;
  bool finished_ = false;
};

}  // namespace vpmem::obs
