// Structured run reports: every simulation becomes a machine-readable,
// schema-versioned JSON artifact that later PRs (and external tooling)
// can diff, trend and regress against.  The schema is documented in
// README.md ("Observability") and exercised by a golden round-trip test.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/sim/fault.hpp"
#include "vpmem/sim/run.hpp"
#include "vpmem/sim/steady_state.hpp"
#include "vpmem/util/json.hpp"
#include "vpmem/util/rational.hpp"

namespace vpmem::obs {

/// Current value of the "schema" member emitted by RunReport::to_json().
inline constexpr const char* kRunReportSchema = "vpmem.run_report/1";

/// Exact steady-state portion of a report (infinite streams only).
struct SteadyStateReport {
  Rational b_eff;                           ///< total grants per clock period
  std::vector<Rational> per_port;           ///< per-port share of b_eff
  i64 transient_cycles = 0;
  i64 period = 0;
  std::vector<i64> grants_in_period;
  sim::ConflictTotals conflicts_in_period;
};

/// Wall-clock telemetry of the producing run.
struct PerfReport {
  double wall_seconds = 0.0;    ///< time spent simulating
  i64 cycles_simulated = 0;     ///< clock periods stepped (all phases)
  [[nodiscard]] double cycles_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(cycles_simulated) / wall_seconds : 0.0;
  }
};

/// One complete, self-describing record of a simulation.
struct RunReport {
  std::string kind;  ///< "steady_state" (infinite streams), "finite_run"
                     ///< or "guarded_run" (watchdogged, possibly partial)
  sim::MemoryConfig config;
  std::vector<sim::StreamConfig> streams;
  sim::FaultPlan fault_plan;  ///< empty unless the run degraded the machine

  /// How the run ended: "completed", or for guarded runs possibly
  /// "deadline_exceeded" / "livelock" — the counters below then cover the
  /// partial window up to the stop.  Reports written before the fault
  /// model read back as "completed".
  std::string status = "completed";
  std::string status_detail;  ///< human-readable stop reason (may be empty)

  // Observed window (the whole run for finite streams; a transient +
  // whole-period window for infinite ones).
  i64 cycles = 0;                     ///< clock periods observed
  std::vector<sim::PortStats> ports;  ///< counters over the window;
                                      ///< equals MemorySystem::all_stats()
  sim::ConflictTotals conflicts;      ///< totals over the window
  double window_bandwidth = 0.0;      ///< grants / cycles (includes startup)

  // Bank-level view over the window.
  std::vector<i64> bank_grants;  ///< grants per bank
  double bank_utilization = 0.0;
  i64 hottest_bank = 0;

  std::optional<SteadyStateReport> steady_state;  ///< infinite streams only
  Json metrics;  ///< Collector registry snapshot (histograms etc.)
  /// ConflictAttribution summary over the observed window (schema
  /// vpmem.attribution/1); null when ReportOptions::attribution is off.
  /// Carried verbatim through a JSON round-trip, like `metrics`.
  Json attribution;
  PerfReport perf;

  [[nodiscard]] Json to_json() const;

  /// Inverse of to_json(); throws std::runtime_error on schema mismatch
  /// or malformed input.  `metrics` is carried through verbatim.
  [[nodiscard]] static RunReport from_json(const Json& json);

  /// Serialize to `os` (pretty-printed) / append as one JSONL line.
  void write_json(std::ostream& os, int indent = 2) const;
  void append_jsonl(std::ostream& os) const;

  /// Write to `path`, replacing any existing file.  Throws
  /// std::runtime_error if the file cannot be opened.
  void save(const std::string& path, int indent = 2) const;
};

/// Options for report_run().
struct ReportOptions {
  /// Clock periods to observe.  0 = automatic: finite workloads run to
  /// completion; infinite ones observe the transient plus one full
  /// steady-state period (so per-port counters cover startup + cycle).
  i64 cycles = 0;
  /// Guard for finite runs / steady-state detection.
  i64 max_cycles = 1'000'000;
  /// Fold a ConflictAttribution over the observed window and embed its
  /// summary block (RunReport::attribution).
  bool attribution = true;
  /// b_eff(t) window for the embedded attribution.
  i64 attribution_window = 64;
};

/// Run `streams` on `config` with a Collector attached and produce the
/// full report.  For all-infinite streams this also performs exact
/// steady-state detection (kind = "steady_state"); otherwise the workload
/// runs to completion (kind = "finite_run").  Mixed finite/infinite
/// workloads are rejected (std::invalid_argument).
[[nodiscard]] RunReport report_run(const sim::MemoryConfig& config,
                                   const std::vector<sim::StreamConfig>& streams,
                                   const ReportOptions& options = {});

/// Hardened report_run: drive the workload under `plan` with a watchdog
/// and report even when it cannot finish — RunReport::status records how
/// the run ended and the counters cover the observed (possibly partial)
/// window.  kind = "guarded_run"; no steady-state section is computed
/// (cycle detection is unsound while a fault plan is active), so infinite
/// streams require an explicit options.cycles horizon.  The watchdog's
/// max_cycles is the cycle budget (ReportOptions::max_cycles is ignored
/// here).  Throws vpmem::Error{config_invalid} for mixed finite/infinite
/// workloads or a missing horizon, and
/// vpmem::Error{fault_plan_invalid} if `plan` does not fit `config`.
[[nodiscard]] RunReport report_run_guarded(const sim::MemoryConfig& config,
                                           const std::vector<sim::StreamConfig>& streams,
                                           const sim::FaultPlan& plan = {},
                                           const ReportOptions& options = {},
                                           const sim::Watchdog& watchdog = {});

/// JSON shapes shared with the CLI: serialize one PortStats / the totals.
[[nodiscard]] Json json_of(const sim::PortStats& stats);
[[nodiscard]] Json json_of(const sim::ConflictTotals& totals);
[[nodiscard]] Json json_of(const Rational& r);
[[nodiscard]] Json json_of(const sim::MemoryConfig& config);
[[nodiscard]] Json json_of(const sim::StreamConfig& stream);

}  // namespace vpmem::obs
