// Wall-clock instrumentation: a monotonic stopwatch, an RAII scope timer,
// and a thread-safe telemetry accumulator for parallel sweeps.  These are
// the "how fast is the simulator itself" half of vpmem::obs — they report
// simulated-cycles-per-second and per-point latency for sweeps without
// perturbing what the sweeps compute.
#pragma once

#include <chrono>
#include <functional>
#include <mutex>
#include <string>

#include "vpmem/util/json.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::obs {

/// Monotonic wall-clock stopwatch, running from construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_{std::chrono::steady_clock::now()} {}

  void reset() noexcept { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction/reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer: measures the enclosing scope and hands the elapsed seconds
/// to a sink on destruction.  Typical sinks: a SweepTelemetry, a Gauge,
/// or a captured double.
class ScopeTimer {
 public:
  using Sink = std::function<void(double seconds)>;

  explicit ScopeTimer(Sink sink) : sink_{std::move(sink)} {}
  ~ScopeTimer() {
    if (sink_) sink_(watch_.seconds());
  }

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;
  ScopeTimer(ScopeTimer&&) = delete;
  ScopeTimer& operator=(ScopeTimer&&) = delete;

  /// Seconds elapsed so far (the scope is still open).
  [[nodiscard]] double seconds() const noexcept { return watch_.seconds(); }

 private:
  Stopwatch watch_;
  Sink sink_;
};

/// Thread-safe accumulator for a parameter sweep: one record_point() per
/// sweep point (from any worker thread), plus the simulated clock periods
/// each point stepped.  Reports total/mean/max per-point latency and the
/// aggregate simulated-cycles-per-second of the sweep.
class SweepTelemetry {
 public:
  /// Record one completed sweep point.
  void record_point(double wall_seconds, i64 simulated_cycles = 0);

  /// Add simulated cycles to the running total without closing a point
  /// (used when the point's wall time is recorded by a generic wrapper).
  void add_cycles(i64 simulated_cycles);

  [[nodiscard]] i64 points() const;
  [[nodiscard]] double total_seconds() const;
  [[nodiscard]] i64 simulated_cycles() const;
  [[nodiscard]] double mean_point_seconds() const;
  [[nodiscard]] double max_point_seconds() const;
  /// Simulated clock periods per wall-clock second, summed over points
  /// (0 when nothing was recorded or the sweep was too fast to time).
  [[nodiscard]] double cycles_per_second() const;

  /// {"points":N,"wall_seconds":..,"simulated_cycles":..,
  ///  "cycles_per_second":..,"mean_point_seconds":..,"max_point_seconds":..}
  [[nodiscard]] Json to_json() const;

  /// One-line human summary, e.g. for stderr logging after a sweep.
  [[nodiscard]] std::string summary() const;

 private:
  mutable std::mutex mutex_;
  i64 points_ = 0;
  i64 cycles_ = 0;
  double total_seconds_ = 0.0;
  double max_point_seconds_ = 0.0;
};

}  // namespace vpmem::obs
