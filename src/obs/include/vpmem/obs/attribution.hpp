// Conflict attribution: folds the simulator's event stream into
// per-(stream, bank, conflict-kind) lost-cycle matrices, stream-vs-stream
// blame counts, barrier-episode detection and a windowed b_eff(t) time
// series.  This is the "which stream loses which cycle to which conflict"
// instrumentation behind Theorems 3-7: every delayed clock period is
// charged to the bank it stalled on, the conflict kind of that period,
// and the stream that held the contended resource.
//
// The analyzer folds *online* — observe() is O(1) per event and the state
// is O(ports x banks), independent of run length — so it can ride the
// event-hook multiplexer next to a bounded trace buffer without ever
// dropping attribution precision, even when the buffer evicts old events.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "vpmem/sim/config.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/util/json.hpp"

namespace vpmem::obs {

/// Current value of the "schema" member emitted by
/// ConflictAttribution::to_json().
inline constexpr const char* kAttributionSchema = "vpmem.attribution/1";

/// One detected barrier episode: a maximal run of delayed periods of one
/// stream in which consecutive stalls are separated by at most the merge
/// gap.  In a paper barrier-situation (Fig. 3, Theorems 4/6/7) the
/// delayed stream re-enters the barrier every return, so the whole
/// steady-state loss pattern folds into a single episode whose onset is
/// the first contended period.
struct BarrierEpisode {
  std::size_t port = 0;        ///< the delayed stream
  i64 onset = 0;               ///< first delayed clock period
  i64 last = 0;                ///< last delayed clock period
  i64 lost_cycles = 0;         ///< delayed periods inside the episode
  std::vector<i64> banks;      ///< participating banks, ascending
  sim::ConflictTotals kinds;   ///< lost cycles by conflict kind

  /// Clock periods spanned (first to last delay, inclusive).
  [[nodiscard]] i64 length() const noexcept { return last - onset + 1; }
};

/// One sample of the windowed effective-bandwidth time series.
struct BandwidthSample {
  i64 start = 0;     ///< first clock period of the window
  i64 cycles = 0;    ///< periods covered (the final window may be partial)
  i64 grants = 0;    ///< grants inside the window
  [[nodiscard]] double b_eff() const noexcept {
    return cycles > 0 ? static_cast<double>(grants) / static_cast<double>(cycles) : 0.0;
  }
};

struct AttributionOptions {
  /// Width of the b_eff(t) window in clock periods.
  i64 window = 64;
  /// Two stalls of one stream separated by more than this many periods
  /// start a new episode; <= 0 means the bank cycle time nc (one service
  /// period — merges the recurring stalls of a barrier-situation, splits
  /// unrelated transients).
  i64 episode_gap = 0;
  /// Safety cap on recorded episodes; further ones are counted but not
  /// stored (episodes_truncated() reports how many).
  std::size_t max_episodes = 4096;
};

/// Online event-stream analyzer.  Feed events in emission order (attach
/// via MemorySystem::add_event_hook or replay a recorded buffer), then
/// finalize(end_cycle) once the run's observation window closes.
class ConflictAttribution {
 public:
  explicit ConflictAttribution(const sim::MemoryConfig& config, AttributionOptions options = {});

  /// Fold one event.  Events must arrive in non-decreasing cycle order.
  void observe(const sim::Event& e);

  /// Close open episodes and the final (possibly partial) b_eff window.
  /// `end_cycle` is the exclusive end of the observed window.  Idempotent
  /// in the sense that observe() must not be called afterwards.
  void finalize(i64 end_cycle);

  [[nodiscard]] std::size_t port_count() const noexcept { return ports_.size(); }

  /// Lost cycles of `port` at `bank` due to conflicts of kind `k`.
  [[nodiscard]] i64 lost_cycles(std::size_t port, i64 bank, sim::ConflictKind kind) const;
  /// Row sum over banks: must equal the stream's PortStats delay counter
  /// of the same kind (the Collector-style cross-check invariant).
  [[nodiscard]] i64 lost_cycles(std::size_t port, sim::ConflictKind kind) const;
  /// All three row sums of one stream; equals the stream's PortStats
  /// {bank,simultaneous,section}_conflicts field-for-field.
  [[nodiscard]] sim::ConflictTotals totals(std::size_t port) const;
  /// Lost cycles of `port` charged to `blocker` (the stream that held the
  /// contended bank or path; the port itself for self conflicts).  Sums
  /// over blockers to totals(port).total().
  [[nodiscard]] i64 blocked_by(std::size_t port, std::size_t blocker) const;

  /// Detected episodes, in onset order (valid after finalize()).
  [[nodiscard]] const std::vector<BarrierEpisode>& episodes() const noexcept { return episodes_; }
  /// Episodes dropped by the max_episodes cap.
  [[nodiscard]] i64 episodes_truncated() const noexcept { return episodes_truncated_; }

  /// The b_eff(t) series (valid after finalize()).
  [[nodiscard]] const std::vector<BandwidthSample>& bandwidth_series() const noexcept {
    return series_;
  }

  [[nodiscard]] i64 window() const noexcept { return options_.window; }
  [[nodiscard]] i64 end_cycle() const noexcept { return end_cycle_; }
  [[nodiscard]] i64 total_grants() const noexcept { return total_grants_; }

  /// The attribution summary block (schema vpmem.attribution/1): grand
  /// totals, per-port lost-cycle matrices (non-zero banks only),
  /// stream-vs-stream blame, episodes and the b_eff(t) series.
  [[nodiscard]] Json to_json() const;

 private:
  struct PortFold {
    /// banks * kConflictKinds lost-cycle cells, indexed
    /// bank * kConflictKinds + kind.  Per-kind and grand totals are row
    /// sums over this — the observe() hot path keeps exactly one counter
    /// per (bank, kind).
    std::vector<i64> by_bank_kind;
    std::vector<i64> by_blocker;  ///< grown to the highest blocker seen
    // Open-episode state.
    bool episode_open = false;
    BarrierEpisode open;
    /// open.kinds folded kind-indexed (no switch on the hot path);
    /// close_episode() copies it into open.kinds.
    std::array<i64, sim::kConflictKinds> open_kinds{};
    /// Per-bank "already in the open episode" flags — keeps the banks list
    /// deduplicated in O(1) per conflict (sorted only on close).
    std::vector<std::uint8_t> bank_in_episode;
  };

  PortFold& fold_for(std::size_t port);
  void close_episode(PortFold& fold);

  sim::MemoryConfig config_;
  AttributionOptions options_;
  i64 gap_;
  std::vector<PortFold> ports_;
  std::vector<BarrierEpisode> episodes_;
  std::vector<BandwidthSample> series_;  ///< built by finalize()
  i64 episodes_truncated_ = 0;
  // b_eff(t) fold: grants per window, advanced as cycles pass.  The
  // cursor caches the window holding the last grant so the hot path
  // avoids a division per event.
  std::vector<i64> window_grants_;
  std::size_t cur_window_ = 0;
  i64 window_end_ = 0;  ///< exclusive end of the cached window
  i64 total_grants_ = 0;
  i64 last_cycle_ = -1;  ///< highest cycle observed
  i64 end_cycle_ = -1;   ///< set by finalize()
  bool finalized_ = false;
};

}  // namespace vpmem::obs
