// Metric primitives and a named registry — the in-memory representation
// behind every structured report.
//
// All metric types are plain single-threaded accumulators (the simulator
// itself is single-threaded per instance); cross-thread aggregation for
// parallel sweeps lives in vpmem::obs::SweepTelemetry (timer.hpp).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "vpmem/util/json.hpp"
#include "vpmem/util/numeric.hpp"

namespace vpmem::obs {

/// Monotonically increasing integer metric (grant counts, conflicts).
class Counter {
 public:
  void inc(i64 by = 1) noexcept { value_ += by; }
  [[nodiscard]] i64 value() const noexcept { return value_; }
  [[nodiscard]] Json to_json() const { return Json{value_}; }

 private:
  i64 value_ = 0;
};

/// Last-value metric (bank utilization, hottest bank).
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] Json to_json() const { return Json{value_}; }

 private:
  double value_ = 0.0;
};

/// Power-of-two-bucketed histogram over non-negative integer samples
/// (stall lengths, per-bank grant counts).  Bucket 0 holds the value 0;
/// bucket b >= 1 holds values in [2^(b-1), 2^b - 1], so short stalls keep
/// single-cycle resolution while pathological ones stay bounded: 64
/// buckets cover the whole i64 range.
class Histogram {
 public:
  /// Record one sample; negative values clamp to 0.
  void record(i64 value);

  [[nodiscard]] i64 count() const noexcept { return count_; }
  [[nodiscard]] i64 sum() const noexcept { return sum_; }
  /// Extremes of the recorded samples (0 when empty).
  [[nodiscard]] i64 min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] i64 max() const noexcept { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Bucket index a sample falls into.
  [[nodiscard]] static std::size_t bucket_of(i64 value) noexcept;
  /// Smallest / largest value belonging to bucket `b`.
  [[nodiscard]] static i64 bucket_floor(std::size_t b) noexcept;
  [[nodiscard]] static i64 bucket_ceil(std::size_t b) noexcept;

  /// Per-bucket sample counts, trimmed after the last non-empty bucket.
  [[nodiscard]] const std::vector<i64>& buckets() const noexcept { return buckets_; }

  /// Smallest value v such that at least `q` (in [0, 1]) of the samples
  /// are <= v, resolved to bucket upper bounds (0 when empty).
  [[nodiscard]] i64 quantile_ceil(double q) const;

  /// Fold `other`'s samples into this histogram (bucket-wise; min/max/
  /// sum/count combine exactly).  The basis of per-worker wall-time
  /// aggregation in parallel campaigns.
  void merge(const Histogram& other);

  /// {"count":N,"sum":S,"min":..,"max":..,"mean":..,
  ///  "buckets":[{"le":ceil,"count":n}, ...]} — empty buckets omitted.
  [[nodiscard]] Json to_json() const;

 private:
  std::vector<i64> buckets_;
  i64 count_ = 0;
  i64 sum_ = 0;
  i64 min_ = 0;
  i64 max_ = 0;
};

/// Insertion-ordered collection of named metrics.  Names are free-form;
/// the convention used by the Collector is dotted paths such as
/// "conflicts.bank" or "port.0.grants".  Re-requesting a name returns the
/// existing metric; requesting an existing name as a different kind
/// throws std::invalid_argument.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Fold `other` into this registry: counters add, gauges take the
  /// other's last value, histograms merge sample-exactly.  Used to
  /// aggregate per-worker partial results after a parallel campaign —
  /// workers each own a private registry (no locking on the hot path)
  /// and the executor merges once at the end.  Throws
  /// std::invalid_argument if a shared name has a different metric kind.
  void merge(const MetricsRegistry& other);

  /// One object member per metric, in registration order.
  [[nodiscard]] Json to_json() const;

 private:
  using Metric = std::variant<Counter, Gauge, Histogram>;
  template <typename T>
  T& get_or_create(std::string_view name);

  // unique_ptr gives metric references stability across registrations.
  std::vector<std::pair<std::string, std::unique_ptr<Metric>>> entries_;
};

}  // namespace vpmem::obs
