// Event-stream collector: attaches to a MemorySystem through the event-
// hook multiplexer and rebuilds per-port, per-bank and per-conflict-kind
// statistics *independently* of the simulator's own counters.  Because
// the two paths never share state, `Collector::port_stats()` equaling
// `MemorySystem::all_stats()` is a real invariant check, exercised by the
// obs test suite on the paper's Fig. 2/3/10 configurations.
//
// The Collector coexists with trace::Timeline on the same run — both use
// MemorySystem::add_event_hook.
#pragma once

#include <cstddef>
#include <vector>

#include "vpmem/obs/metrics.hpp"
#include "vpmem/sim/event.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/util/json.hpp"

namespace vpmem::obs {

/// Aggregates a simulation's event stream into a MetricsRegistry:
///   counters   grants, conflicts.bank / .simultaneous / .section / .fault
///   histograms stall_length (completed delay runs, in clock periods),
///              bank_grants (distribution of per-bank grant counts;
///              filled by finish())
///   gauges     bank_utilization, hottest_bank (filled by finish())
/// plus per-port PortStats and a per-bank grant vector.
///
/// Lifecycle: construct before running (RAII-attaches a hook), step the
/// system, then call finish() — it flushes still-open stall runs, fills
/// the bank-level metrics and detaches.  The destructor calls finish()
/// if it has not run yet.
class Collector {
 public:
  explicit Collector(sim::MemorySystem& mem);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;
  Collector(Collector&&) = delete;
  Collector& operator=(Collector&&) = delete;

  /// Flush open stall runs, record bank-level metrics, detach the hook.
  /// Idempotent; no further events are collected afterwards.
  void finish();

  /// Per-port statistics recounted from events alone.  Matches
  /// MemorySystem::all_stats() field-for-field.
  [[nodiscard]] std::vector<sim::PortStats> port_stats() const;

  /// Grants per bank, recounted from events.
  [[nodiscard]] const std::vector<i64>& bank_grants() const noexcept { return bank_grants_; }

  /// Distribution of completed stall-run lengths, in clock periods.
  [[nodiscard]] const Histogram& stall_lengths() const;

  [[nodiscard]] const MetricsRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] MetricsRegistry& registry() noexcept { return registry_; }

  /// registry().to_json() plus per-port and per-bank breakdowns.
  [[nodiscard]] Json to_json() const;

 private:
  void on_event(const sim::Event& e);

  sim::MemorySystem& mem_;
  std::size_t hook_ = 0;
  bool attached_ = false;
  std::vector<sim::PortStats> ports_;
  std::vector<i64> bank_grants_;
  MetricsRegistry registry_;
  // Hot-path metrics, resolved once at construction (registry references
  // are stable): on_event must not do name lookups per simulated event.
  Counter* grants_ = nullptr;
  Counter* conflict_counters_[sim::kConflictKinds] = {};  ///< by ConflictKind
  Histogram* stall_lengths_ = nullptr;
};

}  // namespace vpmem::obs
