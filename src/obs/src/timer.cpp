#include "vpmem/obs/timer.hpp"

#include <algorithm>
#include <sstream>

namespace vpmem::obs {

void SweepTelemetry::record_point(double wall_seconds, i64 simulated_cycles) {
  const std::scoped_lock lock{mutex_};
  ++points_;
  cycles_ += simulated_cycles;
  total_seconds_ += wall_seconds;
  max_point_seconds_ = std::max(max_point_seconds_, wall_seconds);
}

void SweepTelemetry::add_cycles(i64 simulated_cycles) {
  const std::scoped_lock lock{mutex_};
  cycles_ += simulated_cycles;
}

i64 SweepTelemetry::points() const {
  const std::scoped_lock lock{mutex_};
  return points_;
}

double SweepTelemetry::total_seconds() const {
  const std::scoped_lock lock{mutex_};
  return total_seconds_;
}

i64 SweepTelemetry::simulated_cycles() const {
  const std::scoped_lock lock{mutex_};
  return cycles_;
}

double SweepTelemetry::mean_point_seconds() const {
  const std::scoped_lock lock{mutex_};
  return points_ == 0 ? 0.0 : total_seconds_ / static_cast<double>(points_);
}

double SweepTelemetry::max_point_seconds() const {
  const std::scoped_lock lock{mutex_};
  return max_point_seconds_;
}

double SweepTelemetry::cycles_per_second() const {
  const std::scoped_lock lock{mutex_};
  return total_seconds_ > 0.0 ? static_cast<double>(cycles_) / total_seconds_ : 0.0;
}

Json SweepTelemetry::to_json() const {
  const std::scoped_lock lock{mutex_};
  Json out = Json::object();
  out["points"] = points_;
  out["wall_seconds"] = total_seconds_;
  out["simulated_cycles"] = cycles_;
  out["cycles_per_second"] =
      total_seconds_ > 0.0 ? static_cast<double>(cycles_) / total_seconds_ : 0.0;
  out["mean_point_seconds"] = points_ == 0 ? 0.0 : total_seconds_ / static_cast<double>(points_);
  out["max_point_seconds"] = max_point_seconds_;
  return out;
}

std::string SweepTelemetry::summary() const {
  const std::scoped_lock lock{mutex_};
  std::ostringstream out;
  out << points_ << " points in " << total_seconds_ << " s";
  if (cycles_ > 0 && total_seconds_ > 0.0) {
    out << " (" << static_cast<double>(cycles_) / total_seconds_ << " simulated cycles/s";
    if (points_ > 0) {
      out << ", mean point " << total_seconds_ / static_cast<double>(points_) * 1e3 << " ms";
    }
    out << ")";
  }
  return out.str();
}

}  // namespace vpmem::obs
