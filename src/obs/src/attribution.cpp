#include "vpmem/obs/attribution.hpp"

#include <algorithm>
#include <stdexcept>

namespace vpmem::obs {

namespace {

Json json_of_totals(const sim::ConflictTotals& t) {
  Json out = Json::object();
  out["bank"] = t.bank;
  out["simultaneous"] = t.simultaneous;
  out["section"] = t.section;
  out["fault"] = t.fault;
  out["total"] = t.total();
  return out;
}

}  // namespace

ConflictAttribution::ConflictAttribution(const sim::MemoryConfig& config,
                                         AttributionOptions options)
    : config_{config},
      options_{options},
      gap_{options.episode_gap > 0 ? options.episode_gap : config.bank_cycle} {
  if (options_.window <= 0) throw std::invalid_argument{"ConflictAttribution: window must be > 0"};
}

ConflictAttribution::PortFold& ConflictAttribution::fold_for(std::size_t port) {
  if (port >= ports_.size()) {
    ports_.resize(port + 1);
    for (auto& f : ports_) {
      if (f.by_bank_kind.empty()) {
        f.by_bank_kind.assign(static_cast<std::size_t>(config_.banks) * sim::kConflictKinds, 0);
        f.bank_in_episode.assign(static_cast<std::size_t>(config_.banks), 0);
      }
    }
  }
  return ports_[port];
}

void ConflictAttribution::close_episode(PortFold& fold) {
  if (!fold.episode_open) return;
  fold.episode_open = false;
  fold.open.kinds.bank = fold.open_kinds[0];
  fold.open.kinds.simultaneous = fold.open_kinds[1];
  fold.open.kinds.section = fold.open_kinds[2];
  fold.open.kinds.fault = fold.open_kinds[3];
  std::sort(fold.open.banks.begin(), fold.open.banks.end());
  for (const i64 bank : fold.open.banks) {
    fold.bank_in_episode[static_cast<std::size_t>(bank)] = 0;
  }
  if (episodes_.size() < options_.max_episodes) {
    // Keep the global list in onset order even though ports close
    // episodes independently.
    auto it = std::upper_bound(episodes_.begin(), episodes_.end(), fold.open,
                               [](const BarrierEpisode& a, const BarrierEpisode& b) {
                                 return a.onset < b.onset;
                               });
    episodes_.insert(it, fold.open);
  } else {
    ++episodes_truncated_;
  }
  fold.open = BarrierEpisode{};
}

void ConflictAttribution::observe(const sim::Event& e) {
  if (finalized_) throw std::logic_error{"ConflictAttribution: observe() after finalize()"};
  last_cycle_ = std::max(last_cycle_, e.cycle);

  if (e.type == sim::Event::Type::grant) {
    // Hot path: events arrive in (mostly) non-decreasing cycle order, so
    // the current window is cached and the division only runs when the
    // cycle leaves it.
    if (e.cycle >= window_end_ || e.cycle < window_end_ - options_.window) {
      const auto w = static_cast<std::size_t>(e.cycle / options_.window);
      if (w >= window_grants_.size()) window_grants_.resize(w + 1, 0);
      cur_window_ = w;
      window_end_ = (static_cast<i64>(w) + 1) * options_.window;
    }
    ++window_grants_[cur_window_];
    ++total_grants_;
    return;
  }

  PortFold& fold = fold_for(e.port);
  const auto kind = static_cast<std::size_t>(e.conflict);
  // The (bank, kind) matrix is the only per-kind store on the hot path;
  // by-kind and grand totals are row sums computed at query time.
  ++fold.by_bank_kind[static_cast<std::size_t>(e.bank) * sim::kConflictKinds + kind];
  if (e.blocker >= fold.by_blocker.size()) fold.by_blocker.resize(e.blocker + 1, 0);
  ++fold.by_blocker[e.blocker];

  // Episode tracking: merge stalls separated by at most gap_ periods.
  if (fold.episode_open && e.cycle - fold.open.last > gap_) close_episode(fold);
  if (!fold.episode_open) {
    fold.episode_open = true;
    fold.open.port = e.port;
    fold.open.onset = e.cycle;
    fold.open_kinds = {};
  }
  fold.open.last = e.cycle;
  ++fold.open.lost_cycles;
  ++fold.open_kinds[kind];  // indexed, not switched: the mix is unpredictable
  std::uint8_t& seen = fold.bank_in_episode[static_cast<std::size_t>(e.bank)];
  if (seen == 0) {
    seen = 1;
    fold.open.banks.push_back(e.bank);  // sorted when the episode closes
  }
}

void ConflictAttribution::finalize(i64 end_cycle) {
  if (finalized_) return;
  finalized_ = true;
  end_cycle_ = std::max(end_cycle, last_cycle_ + 1);
  for (auto& fold : ports_) close_episode(fold);

  // Materialize the b_eff(t) series, covering [0, end_cycle) even where
  // no grants landed.
  const i64 windows = (end_cycle_ + options_.window - 1) / options_.window;
  series_.clear();
  series_.reserve(static_cast<std::size_t>(std::max<i64>(windows, 0)));
  for (i64 w = 0; w < windows; ++w) {
    BandwidthSample s;
    s.start = w * options_.window;
    s.cycles = std::min(options_.window, end_cycle_ - s.start);
    s.grants = static_cast<std::size_t>(w) < window_grants_.size()
                   ? window_grants_[static_cast<std::size_t>(w)]
                   : 0;
    series_.push_back(s);
  }
}

i64 ConflictAttribution::lost_cycles(std::size_t port, i64 bank, sim::ConflictKind kind) const {
  if (port >= ports_.size()) return 0;
  if (bank < 0 || bank >= config_.banks) {
    throw std::out_of_range{"ConflictAttribution::lost_cycles: bank out of range"};
  }
  return ports_[port].by_bank_kind[static_cast<std::size_t>(bank) * sim::kConflictKinds +
                                   static_cast<std::size_t>(kind)];
}

i64 ConflictAttribution::lost_cycles(std::size_t port, sim::ConflictKind kind) const {
  if (port >= ports_.size()) return 0;
  const auto& cells = ports_[port].by_bank_kind;
  i64 sum = 0;
  for (std::size_t i = static_cast<std::size_t>(kind); i < cells.size();
       i += sim::kConflictKinds) {
    sum += cells[i];
  }
  return sum;
}

sim::ConflictTotals ConflictAttribution::totals(std::size_t port) const {
  sim::ConflictTotals t;
  t.bank = lost_cycles(port, sim::ConflictKind::bank);
  t.simultaneous = lost_cycles(port, sim::ConflictKind::simultaneous);
  t.section = lost_cycles(port, sim::ConflictKind::section);
  t.fault = lost_cycles(port, sim::ConflictKind::fault);
  return t;
}

i64 ConflictAttribution::blocked_by(std::size_t port, std::size_t blocker) const {
  if (port >= ports_.size()) return 0;
  const auto& by = ports_[port].by_blocker;
  return blocker < by.size() ? by[blocker] : 0;
}

Json ConflictAttribution::to_json() const {
  Json out = Json::object();
  out["schema"] = kAttributionSchema;
  out["window"] = options_.window;
  out["cycles"] = end_cycle_;

  sim::ConflictTotals grand;
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    const sim::ConflictTotals t = totals(p);
    grand.bank += t.bank;
    grand.simultaneous += t.simultaneous;
    grand.section += t.section;
    grand.fault += t.fault;
  }
  out["lost_cycles"] = json_of_totals(grand);
  out["grants"] = total_grants_;

  Json per_port = Json::array();
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    const PortFold& fold = ports_[p];
    Json entry = Json::object();
    entry["port"] = p;
    entry["lost_cycles"] = json_of_totals(totals(p));
    Json by_bank = Json::array();
    for (i64 bank = 0; bank < config_.banks; ++bank) {
      const std::size_t base = static_cast<std::size_t>(bank) * sim::kConflictKinds;
      const i64 b = fold.by_bank_kind[base];
      const i64 s = fold.by_bank_kind[base + 1];
      const i64 sec = fold.by_bank_kind[base + 2];
      const i64 flt = fold.by_bank_kind[base + 3];
      if (b + s + sec + flt == 0) continue;  // sparse: most banks never stall a stream
      Json cell = Json::object();
      cell["bank"] = bank;
      cell["bank_conflicts"] = b;
      cell["simultaneous_conflicts"] = s;
      cell["section_conflicts"] = sec;
      cell["fault_conflicts"] = flt;
      by_bank.push_back(std::move(cell));
    }
    entry["by_bank"] = std::move(by_bank);
    Json blame = Json::array();
    for (std::size_t b = 0; b < fold.by_blocker.size(); ++b) {
      if (fold.by_blocker[b] == 0) continue;
      Json cell = Json::object();
      cell["port"] = b;
      cell["cycles"] = fold.by_blocker[b];
      blame.push_back(std::move(cell));
    }
    entry["blocked_by"] = std::move(blame);
    per_port.push_back(std::move(entry));
  }
  out["per_port"] = std::move(per_port);

  Json episodes = Json::array();
  for (const BarrierEpisode& ep : episodes_) {
    Json entry = Json::object();
    entry["port"] = ep.port;
    entry["onset"] = ep.onset;
    entry["end"] = ep.last;
    entry["length"] = ep.length();
    entry["lost_cycles"] = ep.lost_cycles;
    Json banks = Json::array();
    for (const i64 b : ep.banks) banks.push_back(b);
    entry["banks"] = std::move(banks);
    entry["kinds"] = json_of_totals(ep.kinds);
    episodes.push_back(std::move(entry));
  }
  out["episodes"] = std::move(episodes);
  out["episodes_truncated"] = episodes_truncated_;

  Json series = Json::array();
  for (const BandwidthSample& s : series_) {
    Json sample = Json::object();
    sample["start"] = s.start;
    sample["cycles"] = s.cycles;
    sample["grants"] = s.grants;
    sample["b_eff"] = s.b_eff();
    series.push_back(std::move(sample));
  }
  Json beff = Json::object();
  beff["window"] = options_.window;
  beff["series"] = std::move(series);
  out["b_eff_windowed"] = std::move(beff);
  return out;
}

}  // namespace vpmem::obs
