#include "vpmem/obs/report.hpp"

#include <fstream>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "vpmem/obs/attribution.hpp"
#include "vpmem/obs/collector.hpp"
#include "vpmem/obs/timer.hpp"
#include "vpmem/sim/memory_system.hpp"
#include "vpmem/util/error.hpp"

namespace vpmem::obs {

namespace {

sim::SectionMapping mapping_from_string(const std::string& s) {
  if (s == to_string(sim::SectionMapping::cyclic)) return sim::SectionMapping::cyclic;
  if (s == to_string(sim::SectionMapping::consecutive)) return sim::SectionMapping::consecutive;
  throw std::runtime_error{"RunReport: unknown section mapping '" + s + "'"};
}

sim::PriorityRule priority_from_string(const std::string& s) {
  if (s == to_string(sim::PriorityRule::fixed)) return sim::PriorityRule::fixed;
  if (s == to_string(sim::PriorityRule::cyclic)) return sim::PriorityRule::cyclic;
  throw std::runtime_error{"RunReport: unknown priority rule '" + s + "'"};
}

sim::PortStats port_stats_from_json(const Json& json) {
  sim::PortStats p;
  p.grants = json.at("grants").as_int();
  p.bank_conflicts = json.at("bank_conflicts").as_int();
  p.simultaneous_conflicts = json.at("simultaneous_conflicts").as_int();
  p.section_conflicts = json.at("section_conflicts").as_int();
  // Reports written before the fault model lack the fault counter.
  if (json.contains("fault_conflicts")) p.fault_conflicts = json.at("fault_conflicts").as_int();
  p.first_grant_cycle = json.at("first_grant_cycle").as_int();
  p.last_grant_cycle = json.at("last_grant_cycle").as_int();
  p.longest_stall = json.at("longest_stall").as_int();
  return p;
}

sim::ConflictTotals totals_from_json(const Json& json) {
  sim::ConflictTotals t;
  t.bank = json.at("bank").as_int();
  t.simultaneous = json.at("simultaneous").as_int();
  t.section = json.at("section").as_int();
  if (json.contains("fault")) t.fault = json.at("fault").as_int();
  return t;
}

Rational rational_from_json(const Json& json) {
  return Rational{json.at("num").as_int(), json.at("den").as_int()};
}

}  // namespace

Json json_of(const sim::PortStats& stats) {
  Json out = Json::object();
  out["grants"] = stats.grants;
  out["bank_conflicts"] = stats.bank_conflicts;
  out["simultaneous_conflicts"] = stats.simultaneous_conflicts;
  out["section_conflicts"] = stats.section_conflicts;
  out["fault_conflicts"] = stats.fault_conflicts;
  out["first_grant_cycle"] = stats.first_grant_cycle;
  out["last_grant_cycle"] = stats.last_grant_cycle;
  out["longest_stall"] = stats.longest_stall;
  return out;
}

Json json_of(const sim::ConflictTotals& totals) {
  Json out = Json::object();
  out["bank"] = totals.bank;
  out["simultaneous"] = totals.simultaneous;
  out["section"] = totals.section;
  out["fault"] = totals.fault;
  out["total"] = totals.total();
  return out;
}

Json json_of(const Rational& r) {
  Json out = Json::object();
  out["num"] = r.num();
  out["den"] = r.den();
  out["value"] = r.to_double();
  return out;
}

Json json_of(const sim::MemoryConfig& config) {
  Json out = Json::object();
  out["banks"] = config.banks;
  out["sections"] = config.sections;
  out["bank_cycle"] = config.bank_cycle;
  out["mapping"] = to_string(config.mapping);
  out["priority"] = to_string(config.priority);
  return out;
}

Json json_of(const sim::StreamConfig& stream) {
  Json out = Json::object();
  out["start_bank"] = stream.start_bank;
  out["distance"] = stream.distance;
  out["cpu"] = stream.cpu;
  out["length"] = stream.length == sim::kInfiniteLength ? Json{nullptr} : Json{stream.length};
  out["start_cycle"] = stream.start_cycle;
  Json pattern = Json::array();
  for (const i64 b : stream.bank_pattern) pattern.push_back(b);
  out["bank_pattern"] = std::move(pattern);
  return out;
}

Json RunReport::to_json() const {
  Json out = Json::object();
  out["schema"] = kRunReportSchema;
  out["kind"] = kind;
  out["status"] = status;
  if (!status_detail.empty()) out["status_detail"] = status_detail;
  out["config"] = json_of(config);
  Json stream_list = Json::array();
  for (const auto& s : streams) stream_list.push_back(json_of(s));
  out["streams"] = std::move(stream_list);
  out["fault_plan"] = fault_plan.empty() ? Json{nullptr} : fault_plan.to_json();

  Json window = Json::object();
  window["cycles"] = cycles;
  window["bandwidth"] = window_bandwidth;
  window["conflicts"] = json_of(conflicts);
  window["bank_utilization"] = bank_utilization;
  window["hottest_bank"] = hottest_bank;
  Json grants = Json::array();
  for (const i64 g : bank_grants) grants.push_back(g);
  window["bank_grants"] = std::move(grants);
  out["window"] = std::move(window);

  Json port_list = Json::array();
  for (const auto& p : ports) port_list.push_back(json_of(p));
  out["ports"] = std::move(port_list);

  if (steady_state) {
    Json ss = Json::object();
    ss["b_eff"] = json_of(steady_state->b_eff);
    Json per_port = Json::array();
    for (const auto& r : steady_state->per_port) per_port.push_back(json_of(r));
    ss["per_port"] = std::move(per_port);
    ss["transient_cycles"] = steady_state->transient_cycles;
    ss["period"] = steady_state->period;
    Json gip = Json::array();
    for (const i64 g : steady_state->grants_in_period) gip.push_back(g);
    ss["grants_in_period"] = std::move(gip);
    ss["conflicts_in_period"] = json_of(steady_state->conflicts_in_period);
    out["steady_state"] = std::move(ss);
  } else {
    out["steady_state"] = nullptr;
  }

  out["metrics"] = metrics;
  out["attribution"] = attribution;

  Json perf_json = Json::object();
  perf_json["wall_seconds"] = perf.wall_seconds;
  perf_json["cycles_simulated"] = perf.cycles_simulated;
  perf_json["cycles_per_second"] = perf.cycles_per_second();
  out["perf"] = std::move(perf_json);
  return out;
}

RunReport RunReport::from_json(const Json& json) {
  if (!json.contains("schema") || json.at("schema").as_string() != kRunReportSchema) {
    throw std::runtime_error{"RunReport::from_json: unknown or missing schema"};
  }
  RunReport report;
  report.kind = json.at("kind").as_string();
  // Reports written before the fault model lack status and fault_plan;
  // read them tolerantly (a pre-fault report always ran to completion).
  if (json.contains("status")) report.status = json.at("status").as_string();
  if (json.contains("status_detail")) {
    report.status_detail = json.at("status_detail").as_string();
  }
  if (json.contains("fault_plan") && !json.at("fault_plan").is_null()) {
    report.fault_plan = sim::FaultPlan::from_json(json.at("fault_plan"));
  }

  const Json& cfg = json.at("config");
  report.config.banks = cfg.at("banks").as_int();
  report.config.sections = cfg.at("sections").as_int();
  report.config.bank_cycle = cfg.at("bank_cycle").as_int();
  report.config.mapping = mapping_from_string(cfg.at("mapping").as_string());
  report.config.priority = priority_from_string(cfg.at("priority").as_string());

  for (const Json& s : json.at("streams").as_array()) {
    sim::StreamConfig stream;
    stream.start_bank = s.at("start_bank").as_int();
    stream.distance = s.at("distance").as_int();
    stream.cpu = s.at("cpu").as_int();
    stream.length = s.at("length").is_null() ? sim::kInfiniteLength : s.at("length").as_int();
    stream.start_cycle = s.at("start_cycle").as_int();
    for (const Json& b : s.at("bank_pattern").as_array()) {
      stream.bank_pattern.push_back(b.as_int());
    }
    report.streams.push_back(std::move(stream));
  }

  const Json& window = json.at("window");
  report.cycles = window.at("cycles").as_int();
  report.window_bandwidth = window.at("bandwidth").as_double();
  report.conflicts = totals_from_json(window.at("conflicts"));
  report.bank_utilization = window.at("bank_utilization").as_double();
  report.hottest_bank = window.at("hottest_bank").as_int();
  for (const Json& g : window.at("bank_grants").as_array()) {
    report.bank_grants.push_back(g.as_int());
  }

  for (const Json& p : json.at("ports").as_array()) {
    report.ports.push_back(port_stats_from_json(p));
  }

  if (!json.at("steady_state").is_null()) {
    const Json& ss = json.at("steady_state");
    SteadyStateReport steady;
    steady.b_eff = rational_from_json(ss.at("b_eff"));
    for (const Json& r : ss.at("per_port").as_array()) {
      steady.per_port.push_back(rational_from_json(r));
    }
    steady.transient_cycles = ss.at("transient_cycles").as_int();
    steady.period = ss.at("period").as_int();
    for (const Json& g : ss.at("grants_in_period").as_array()) {
      steady.grants_in_period.push_back(g.as_int());
    }
    steady.conflicts_in_period = totals_from_json(ss.at("conflicts_in_period"));
    report.steady_state = std::move(steady);
  }

  report.metrics = json.at("metrics");
  // Reports written before tracing v2 lack the attribution block; treat it
  // as absent (null) rather than rejecting the document.
  if (json.contains("attribution")) report.attribution = json.at("attribution");

  const Json& perf = json.at("perf");
  report.perf.wall_seconds = perf.at("wall_seconds").as_double();
  report.perf.cycles_simulated = perf.at("cycles_simulated").as_int();
  return report;
}

void RunReport::write_json(std::ostream& os, int indent) const {
  to_json().dump(os, indent);
  os << '\n';
}

void RunReport::append_jsonl(std::ostream& os) const { vpmem::append_jsonl(os, to_json()); }

void RunReport::save(const std::string& path, int indent) const {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"RunReport::save: cannot open '" + path + "'"};
  write_json(out, indent);
}

RunReport report_run(const sim::MemoryConfig& config,
                     const std::vector<sim::StreamConfig>& streams,
                     const ReportOptions& options) {
  std::size_t infinite = 0;
  for (const auto& s : streams) {
    if (s.length == sim::kInfiniteLength) ++infinite;
  }
  if (infinite != 0 && infinite != streams.size()) {
    throw Error{ErrorCode::config_invalid,
                "report_run: streams must be all finite or all infinite (mixed workloads "
                "have no single report kind)"};
  }
  const bool is_steady = infinite != 0;

  RunReport report;
  report.config = config;
  report.streams = streams;
  report.kind = is_steady ? "steady_state" : "finite_run";

  const Stopwatch wall;
  i64 cycles_simulated = 0;

  i64 window = options.cycles;
  if (is_steady) {
    const sim::SteadyState ss = sim::find_steady_state(config, streams, options.max_cycles);
    cycles_simulated += ss.cycles_simulated;
    if (window <= 0) window = ss.transient_cycles + ss.period;
    SteadyStateReport steady;
    steady.b_eff = ss.bandwidth;
    steady.per_port = ss.per_port;
    steady.transient_cycles = ss.transient_cycles;
    steady.period = ss.period;
    steady.grants_in_period = ss.grants_in_period;
    steady.conflicts_in_period = ss.conflicts_in_period;
    report.steady_state = std::move(steady);
  }

  sim::MemorySystem mem{config, streams};
  Collector collector{mem};
  std::unique_ptr<ConflictAttribution> attribution;
  std::size_t attribution_hook = 0;
  if (options.attribution) {
    attribution = std::make_unique<ConflictAttribution>(
        config, AttributionOptions{.window = options.attribution_window});
    attribution_hook = mem.add_event_hook(
        [a = attribution.get()](const sim::Event& e) { a->observe(e); });
  }
  if (is_steady || window > 0) {
    report.cycles = mem.run(window, /*stop_when_finished=*/!is_steady);
  } else {
    report.cycles = mem.run(options.max_cycles, /*stop_when_finished=*/true);
    if (!mem.finished()) {
      throw Error{ErrorCode::deadline_exceeded,
                  "report_run: finite workload did not finish within max_cycles"};
    }
  }
  cycles_simulated += report.cycles;
  collector.finish();
  if (attribution) {
    mem.remove_event_hook(attribution_hook);
    attribution->finalize(report.cycles);
    report.attribution = attribution->to_json();
  }

  report.ports = mem.all_stats();
  report.conflicts = sim::totals(report.ports);
  i64 total_grants = 0;
  for (const auto& p : report.ports) total_grants += p.grants;
  report.window_bandwidth =
      report.cycles == 0
          ? 0.0
          : static_cast<double>(total_grants) / static_cast<double>(report.cycles);
  report.bank_grants = collector.bank_grants();
  report.bank_utilization = mem.bank_utilization();
  report.hottest_bank = mem.hottest_bank();
  report.metrics = collector.to_json();
  report.perf.cycles_simulated = cycles_simulated;
  report.perf.wall_seconds = wall.seconds();
  return report;
}

RunReport report_run_guarded(const sim::MemoryConfig& config,
                             const std::vector<sim::StreamConfig>& streams,
                             const sim::FaultPlan& plan, const ReportOptions& options,
                             const sim::Watchdog& watchdog) {
  std::size_t infinite = 0;
  for (const auto& s : streams) {
    if (s.length == sim::kInfiniteLength) ++infinite;
  }
  if (infinite != 0 && infinite != streams.size()) {
    throw Error{ErrorCode::config_invalid,
                "report_run_guarded: streams must be all finite or all infinite"};
  }
  if (infinite != 0 && options.cycles <= 0) {
    throw Error{ErrorCode::config_invalid,
                "report_run_guarded: infinite streams require an explicit cycles horizon "
                "(steady-state detection is unsound while a fault plan is active)"};
  }

  RunReport report;
  report.kind = "guarded_run";
  report.config = config;
  report.streams = streams;
  report.fault_plan = plan;

  const Stopwatch wall;
  sim::MemorySystem mem{config, streams, plan};
  Collector collector{mem};
  std::unique_ptr<ConflictAttribution> attribution;
  std::size_t attribution_hook = 0;
  if (options.attribution) {
    attribution = std::make_unique<ConflictAttribution>(
        config, AttributionOptions{.window = options.attribution_window});
    attribution_hook = mem.add_event_hook(
        [a = attribution.get()](const sim::Event& e) { a->observe(e); });
  }

  const i64 horizon = options.cycles > 0 ? options.cycles : -1;
  const sim::GuardedRun run = sim::run_guarded_on(mem, watchdog, horizon);

  report.status = to_string(run.status);
  report.status_detail = run.detail;
  report.cycles = run.result.cycles;
  report.ports = run.result.ports;
  report.conflicts = run.result.conflicts;
  report.window_bandwidth = run.result.bandwidth();

  collector.finish();
  if (attribution) {
    mem.remove_event_hook(attribution_hook);
    attribution->finalize(mem.now());
    report.attribution = attribution->to_json();
  }
  report.bank_grants = collector.bank_grants();
  report.bank_utilization = mem.bank_utilization();
  report.hottest_bank = mem.hottest_bank();
  report.metrics = collector.to_json();
  report.perf.cycles_simulated = mem.now();
  report.perf.wall_seconds = wall.seconds();
  return report;
}

}  // namespace vpmem::obs
