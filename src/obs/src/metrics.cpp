#include "vpmem/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace vpmem::obs {

void Histogram::record(i64 value) {
  if (value < 0) value = 0;
  const std::size_t b = bucket_of(value);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

std::size_t Histogram::bucket_of(i64 value) noexcept {
  if (value <= 0) return 0;
  return static_cast<std::size_t>(std::bit_width(static_cast<std::uint64_t>(value)));
}

i64 Histogram::bucket_floor(std::size_t b) noexcept {
  return b == 0 ? 0 : static_cast<i64>(std::uint64_t{1} << (b - 1));
}

i64 Histogram::bucket_ceil(std::size_t b) noexcept {
  return b == 0 ? 0 : static_cast<i64>((std::uint64_t{1} << b) - 1);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t b = 0; b < other.buckets_.size(); ++b) buckets_[b] += other.buckets_[b];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

i64 Histogram::quantile_ceil(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  i64 seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (static_cast<double>(seen) >= target && seen > 0) {
      return std::min(bucket_ceil(b), max());
    }
  }
  return max();
}

Json Histogram::to_json() const {
  Json out = Json::object();
  out["count"] = count_;
  out["sum"] = sum_;
  out["min"] = min();
  out["max"] = max();
  out["mean"] = mean();
  Json buckets = Json::array();
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    Json entry = Json::object();
    entry["le"] = bucket_ceil(b);
    entry["count"] = buckets_[b];
    buckets.push_back(std::move(entry));
  }
  out["buckets"] = std::move(buckets);
  return out;
}

template <typename T>
T& MetricsRegistry::get_or_create(std::string_view name) {
  for (auto& [key, metric] : entries_) {
    if (key != name) continue;
    if (T* existing = std::get_if<T>(metric.get())) return *existing;
    throw std::invalid_argument{"MetricsRegistry: '" + std::string{name} +
                                "' already registered as a different metric kind"};
  }
  entries_.emplace_back(std::string{name}, std::make_unique<Metric>(T{}));
  return std::get<T>(*entries_.back().second);
}

Counter& MetricsRegistry::counter(std::string_view name) { return get_or_create<Counter>(name); }
Gauge& MetricsRegistry::gauge(std::string_view name) { return get_or_create<Gauge>(name); }
Histogram& MetricsRegistry::histogram(std::string_view name) {
  return get_or_create<Histogram>(name);
}

bool MetricsRegistry::contains(std::string_view name) const noexcept {
  for (const auto& [key, metric] : entries_) {
    if (key == name) return true;
  }
  return false;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, metric] : other.entries_) {
    if (const Counter* c = std::get_if<Counter>(metric.get())) {
      counter(key).inc(c->value());
    } else if (const Gauge* g = std::get_if<Gauge>(metric.get())) {
      gauge(key).set(g->value());
    } else if (const Histogram* h = std::get_if<Histogram>(metric.get())) {
      histogram(key).merge(*h);
    }
  }
}

Json MetricsRegistry::to_json() const {
  Json out = Json::object();
  for (const auto& [key, metric] : entries_) {
    out[key] = std::visit([](const auto& m) { return m.to_json(); }, *metric);
  }
  return out;
}

}  // namespace vpmem::obs
