#include "vpmem/obs/tracer.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vpmem::obs {

Tracer::Tracer(sim::MemorySystem& mem, TracerOptions options)
    : mem_{mem},
      options_{options},
      buffer_{std::make_shared<sim::EventBuffer>(options.capacity)} {
  if (options_.attribution) {
    attribution_ = std::make_unique<ConflictAttribution>(
        mem.config(),
        AttributionOptions{.window = options_.window, .episode_gap = options_.episode_gap});
  }
  sim::EventBuffer* buffer = buffer_.get();
  ConflictAttribution* attribution = attribution_.get();
  if (attribution != nullptr) {
    hook_ = mem_.add_event_hook([buffer, attribution](const sim::Event& e) {
      buffer->push(e);
      attribution->observe(e);
    });
  } else {
    hook_ = mem_.add_event_hook([buffer](const sim::Event& e) { buffer->push(e); });
  }
  attached_ = true;
}

Tracer::~Tracer() { finish(); }

void Tracer::finish() {
  if (attached_) {
    mem_.remove_event_hook(hook_);
    attached_ = false;
  }
  if (finished_) return;
  finished_ = true;
  if (attribution_) attribution_->finalize(mem_.now());
}

namespace {

/// Chrome trace-event pids: one synthetic process per track family.
constexpr i64 kBankPid = 1;
constexpr i64 kPortPid = 2;

Json meta_event(i64 pid, i64 tid, const char* what, std::string name) {
  Json e = Json::object();
  e["ph"] = "M";
  e["name"] = what;
  e["pid"] = pid;
  e["tid"] = tid;
  Json args = Json::object();
  args["name"] = std::move(name);
  e["args"] = std::move(args);
  return e;
}

std::string port_label(const sim::MemorySystem& mem, std::size_t p) {
  const sim::StreamConfig& s = mem.stream(p);
  std::ostringstream os;
  os << "port " << (p + 1) << " (cpu " << s.cpu;
  if (s.has_pattern()) {
    os << ", pattern[" << s.bank_pattern.size() << "]";
  } else {
    os << ", b=" << s.start_bank << ", d=" << s.distance;
  }
  os << ")";
  return os.str();
}

}  // namespace

Json Tracer::chrome_trace() {
  finish();
  const sim::MemoryConfig& cfg = mem_.config();
  Json events = Json::array();

  // Track naming: one row per bank (labelled with its section, as in the
  // paper's Figs. 7-9) and one per port.
  events.push_back(meta_event(kBankPid, 0, "process_name", "banks"));
  for (i64 bank = 0; bank < cfg.banks; ++bank) {
    std::ostringstream os;
    os << "bank " << bank;
    if (cfg.sections != cfg.banks) os << " (section " << cfg.section_of(bank) << ")";
    events.push_back(meta_event(kBankPid, bank, "thread_name", os.str()));
  }
  events.push_back(meta_event(kPortPid, 0, "process_name", "ports"));
  for (std::size_t p = 0; p < mem_.port_count(); ++p) {
    events.push_back(
        meta_event(kPortPid, static_cast<i64>(p), "thread_name", port_label(mem_, p)));
  }

  buffer_->for_each([&](const sim::Event& e) {
    if (e.type == sim::Event::Type::grant) {
      // Service slice on the bank track (the bank stays active nc
      // periods) ...
      Json service = Json::object();
      service["ph"] = "X";
      service["name"] = "port " + std::to_string(e.port + 1);
      service["cat"] = "service";
      service["pid"] = kBankPid;
      service["tid"] = e.bank;
      service["ts"] = e.cycle;
      service["dur"] = cfg.bank_cycle;
      Json args = Json::object();
      args["port"] = e.port;
      args["element"] = e.element;
      service["args"] = std::move(args);
      events.push_back(std::move(service));
      // ... and a one-period transfer slice on the port track.
      Json xfer = Json::object();
      xfer["ph"] = "X";
      xfer["name"] = "grant";
      xfer["cat"] = "grant";
      xfer["pid"] = kPortPid;
      xfer["tid"] = static_cast<i64>(e.port);
      xfer["ts"] = e.cycle;
      xfer["dur"] = 1;
      Json xargs = Json::object();
      xargs["bank"] = e.bank;
      xargs["element"] = e.element;
      xfer["args"] = std::move(xargs);
      events.push_back(std::move(xfer));
      return;
    }
    // Conflict instant on the delayed port's track, carrying the full
    // attribution payload.
    Json instant = Json::object();
    instant["ph"] = "i";
    instant["name"] = sim::to_string(e.conflict) + " conflict";
    instant["cat"] = "conflict";
    instant["pid"] = kPortPid;
    instant["tid"] = static_cast<i64>(e.port);
    instant["ts"] = e.cycle;
    instant["s"] = "t";  // thread-scoped marker
    Json args = Json::object();
    args["kind"] = sim::to_string(e.conflict);
    args["bank"] = e.bank;
    args["element"] = e.element;
    args["blocker"] = e.blocker;
    instant["args"] = std::move(args);
    events.push_back(std::move(instant));
  });

  // The live perf trajectory: windowed b_eff as a counter track.
  if (attribution_) {
    for (const BandwidthSample& s : attribution_->bandwidth_series()) {
      Json counter = Json::object();
      counter["ph"] = "C";
      counter["name"] = "b_eff";
      counter["pid"] = kPortPid;
      counter["ts"] = s.start;
      Json args = Json::object();
      args["grants_per_cycle"] = s.b_eff();
      counter["args"] = std::move(args);
      events.push_back(std::move(counter));
    }
  }

  Json doc = Json::object();
  doc["schema"] = kTraceSchema;
  doc["displayTimeUnit"] = "ms";
  doc["traceEvents"] = std::move(events);

  Json other = Json::object();
  Json config = Json::object();
  config["banks"] = cfg.banks;
  config["sections"] = cfg.sections;
  config["bank_cycle"] = cfg.bank_cycle;
  config["mapping"] = to_string(cfg.mapping);
  config["priority"] = to_string(cfg.priority);
  other["config"] = std::move(config);
  other["ports"] = mem_.port_count();
  other["cycles"] = mem_.now();
  other["events_recorded"] = buffer_->recorded();
  other["events_retained"] = buffer_->size();
  other["events_dropped"] = buffer_->dropped();
  other["first_retained_cycle"] = buffer_->first_cycle();
  other["time_unit"] = "1 trace us = 1 clock period";
  other["attribution"] = attribution_ ? attribution_->to_json() : Json{};
  doc["otherData"] = std::move(other);
  return doc;
}

void Tracer::write_chrome_trace(std::ostream& os) {
  chrome_trace().dump(os, 1);
  os << '\n';
}

void Tracer::save_chrome_trace(const std::string& path) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"Tracer::save_chrome_trace: cannot open '" + path + "'"};
  write_chrome_trace(out);
}

}  // namespace vpmem::obs
