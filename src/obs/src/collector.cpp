#include "vpmem/obs/collector.hpp"

#include <algorithm>

namespace vpmem::obs {

Collector::Collector(sim::MemorySystem& mem)
    : mem_{mem}, bank_grants_(static_cast<std::size_t>(mem.config().banks), 0) {
  // Register the fixed metrics up front so they serialize in a stable
  // order even when a run produces no events of some kind, and cache the
  // hot-path pointers (registry references are stable).
  grants_ = &registry_.counter("grants");
  conflict_counters_[static_cast<std::size_t>(sim::ConflictKind::bank)] =
      &registry_.counter("conflicts.bank");
  conflict_counters_[static_cast<std::size_t>(sim::ConflictKind::simultaneous)] =
      &registry_.counter("conflicts.simultaneous");
  conflict_counters_[static_cast<std::size_t>(sim::ConflictKind::section)] =
      &registry_.counter("conflicts.section");
  conflict_counters_[static_cast<std::size_t>(sim::ConflictKind::fault)] =
      &registry_.counter("conflicts.fault");
  stall_lengths_ = &registry_.histogram("stall_length");
  registry_.histogram("bank_grants");
  registry_.gauge("bank_utilization");
  registry_.gauge("hottest_bank");
  hook_ = mem_.add_event_hook([this](const sim::Event& e) { on_event(e); });
  attached_ = true;
}

Collector::~Collector() { finish(); }

void Collector::on_event(const sim::Event& e) {
  if (e.port >= ports_.size()) ports_.resize(e.port + 1);  // ports may appear mid-run
  sim::PortStats& p = ports_[e.port];
  if (e.type == sim::Event::Type::grant) {
    ++p.grants;
    if (p.first_grant_cycle < 0) p.first_grant_cycle = e.cycle;
    p.last_grant_cycle = e.cycle;
    if (p.current_stall > 0) stall_lengths_->record(p.current_stall);
    p.current_stall = 0;
    ++bank_grants_[static_cast<std::size_t>(e.bank)];
    grants_->inc();
    return;
  }
  switch (e.conflict) {
    case sim::ConflictKind::bank: ++p.bank_conflicts; break;
    case sim::ConflictKind::simultaneous: ++p.simultaneous_conflicts; break;
    case sim::ConflictKind::section: ++p.section_conflicts; break;
    case sim::ConflictKind::fault: ++p.fault_conflicts; break;
  }
  conflict_counters_[static_cast<std::size_t>(e.conflict)]->inc();
  p.longest_stall = std::max(p.longest_stall, ++p.current_stall);
}

void Collector::finish() {
  if (!attached_) return;
  mem_.remove_event_hook(hook_);
  attached_ = false;
  // Stall runs still open when the run stopped count as samples too —
  // a port parked behind a barrier would otherwise vanish from the
  // histogram entirely.
  for (const sim::PortStats& p : ports_) {
    if (p.current_stall > 0) stall_lengths_->record(p.current_stall);
  }
  Histogram& grants = registry_.histogram("bank_grants");
  for (const i64 g : bank_grants_) grants.record(g);
  registry_.gauge("bank_utilization").set(mem_.bank_utilization());
  registry_.gauge("hottest_bank").set(static_cast<double>(mem_.hottest_bank()));
}

std::vector<sim::PortStats> Collector::port_stats() const {
  // Pad to the system's port count: a port that never produced an event
  // still exists (all-zero stats), exactly as in all_stats().
  std::vector<sim::PortStats> out = ports_;
  if (out.size() < mem_.port_count()) out.resize(mem_.port_count());
  return out;
}

const Histogram& Collector::stall_lengths() const { return *stall_lengths_; }

Json Collector::to_json() const {
  Json out = registry_.to_json();
  Json ports = Json::array();
  for (const sim::PortStats& p : port_stats()) {
    Json port = Json::object();
    port["grants"] = p.grants;
    port["bank_conflicts"] = p.bank_conflicts;
    port["simultaneous_conflicts"] = p.simultaneous_conflicts;
    port["section_conflicts"] = p.section_conflicts;
    port["fault_conflicts"] = p.fault_conflicts;
    port["first_grant_cycle"] = p.first_grant_cycle;
    port["last_grant_cycle"] = p.last_grant_cycle;
    port["longest_stall"] = p.longest_stall;
    ports.push_back(std::move(port));
  }
  out["ports"] = std::move(ports);
  Json banks = Json::array();
  for (const i64 g : bank_grants_) banks.push_back(g);
  out["bank_grants_by_bank"] = std::move(banks);
  return out;
}

}  // namespace vpmem::obs
