// Skewing demo: why the conclusion recommends skewed storage.
//
// A 64x64 Fortran matrix on a 16-bank memory (Cray X-MP geometry):
// columns stream perfectly, but rows of the unpadded matrix hit one bank
// (distance 64 mod 16 = 0) and collapse to b_eff = 1/nc.  Padding the
// leading dimension fixes rows but diagonals remain workload-dependent;
// a (1, delta)-skew fixes columns, rows and both diagonals at once.
//
//   $ ./skewing_demo [banks] [bank_cycle]
#include <cstdlib>
#include <iostream>

#include "vpmem/vpmem.hpp"

namespace {

using namespace vpmem;

void report(const std::string& title, const skew::StorageScheme& scheme,
            const skew::MatrixLayout& layout, i64 m, i64 nc) {
  std::cout << "--- " << title << " ---\n";
  for (const auto& r : skew::analyze_scheme(scheme, layout, m, nc)) {
    // Cross-check each analytic row against the exact simulator.
    sim::StreamConfig stream;
    stream.bank_pattern = skew::bank_sequence(scheme, layout, r.pattern, m);
    const auto ss = sim::find_steady_state(
        sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}, {stream});
    std::cout << "  " << skew::to_string(r.pattern) << ": distance " << r.distance
              << ", b_eff " << r.bandwidth.str() << " (simulated " << ss.bandwidth.str()
              << ")" << (r.conflict_free ? "" : "  [SELF-CONFLICTING]") << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpmem;

  const i64 m = argc > 1 ? std::atoll(argv[1]) : 16;
  const i64 nc = argc > 2 ? std::atoll(argv[2]) : 4;
  std::cout << "Memory: m = " << m << " banks, nc = " << nc << "\n\n";

  const skew::MatrixLayout unpadded{.rows = 64, .cols = 64, .lda = 64};
  report("Interleaved, REAL A(64,64)", skew::StorageScheme{}, unpadded, m, nc);

  const i64 safe = analytic::safe_leading_dimension(64, m);
  const skew::MatrixLayout padded{.rows = 64, .cols = 64, .lda = safe};
  report("Interleaved, padded REAL A(" + std::to_string(safe) + ",64)", skew::StorageScheme{},
         padded, m, nc);

  if (const auto delta = skew::find_good_skew(m, nc)) {
    report("Skewed storage, delta = " + std::to_string(*delta),
           skew::StorageScheme{.kind = skew::SchemeKind::skewed, .skew = *delta}, unpadded, m,
           nc);
    std::cout << "delta = " << *delta << " keeps columns (d=1), rows (d=" << *delta
              << ") and both diagonals (d=" << *delta + 1 << ", " << mod_norm(1 - *delta, m)
              << ") above the r >= nc threshold simultaneously.\n";
  } else {
    std::cout << "No single skew fixes all four patterns for m = " << m << ", nc = " << nc
              << " (see skew::find_good_skew docs).\n";
  }
  return 0;
}
