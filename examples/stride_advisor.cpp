// Stride advisor: apply the paper's programming guidance (Conclusion) to a
// realistic Fortran kernel — matrix operations on an m-way interleaved
// memory.  Shows why padding a leading dimension that shares a factor with
// the bank count rescues bandwidth.
//
//   $ ./stride_advisor [banks] [bank_cycle]
#include <cstdlib>
#include <iostream>

#include "vpmem/vpmem.hpp"

int main(int argc, char** argv) {
  using namespace vpmem;

  const i64 banks = argc > 1 ? std::atoll(argv[1]) : 16;
  const i64 nc = argc > 2 ? std::atoll(argv[2]) : 4;
  const sim::MemoryConfig memory{.banks = banks, .sections = banks, .bank_cycle = nc};

  std::cout << "Memory: m = " << banks << " banks, bank cycle nc = " << nc << "\n\n";

  // A 512x512 matrix stored column-major (Fortran).  A transpose-like
  // kernel reads columns of A (unit stride) and rows of B (stride = leading
  // dimension).
  std::cout << "--- Unpadded: REAL A(512,512), B(512,512) ---\n";
  const core::AdvisorReport bad = core::advise(
      memory, {core::PlannedAccess{.name = "A(:,j) column", .dims = {512, 512}, .dim_index = 0},
               core::PlannedAccess{.name = "B(i,:) row", .dims = {512, 512}, .dim_index = 1}});
  std::cout << bad.str() << '\n';

  // The paper's fix: a leading dimension relatively prime to m.
  const i64 padded = analytic::safe_leading_dimension(512, banks);
  std::cout << "--- Padded: REAL A(" << padded << ",512), B(" << padded << ",512) ---\n";
  const core::AdvisorReport good = core::advise(
      memory,
      {core::PlannedAccess{.name = "A(:,j) column", .dims = {padded, 512}, .dim_index = 0},
       core::PlannedAccess{.name = "B(i,:) row", .dims = {padded, 512}, .dim_index = 1}});
  std::cout << good.str() << '\n';

  // Cross-check the padded row access with the exact simulator.
  const i64 row_distance = analytic::array_distance(std::vector<i64>{padded, 512}, 1, 1, banks);
  const core::SingleStreamReport check = core::analyze_single(memory, row_distance);
  std::cout << "Simulated b_eff for the padded row access (distance " << row_distance
            << "): " << check.simulated.str() << '\n';
  return 0;
}
