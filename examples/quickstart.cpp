// Quickstart: model a vector-processor memory, ask the analytic layer what
// to expect for a pair of strides, and verify with the exact simulator.
//
//   $ ./quickstart
#include <iostream>

#include "vpmem/vpmem.hpp"

int main() {
  using namespace vpmem;

  // A 16-bank memory with bank cycle time of 4 clock periods (the Cray
  // X-MP geometry), no section bottleneck for this example.
  const sim::MemoryConfig memory{.banks = 16, .sections = 16, .bank_cycle = 4};

  std::cout << "=== One stream ===\n";
  for (i64 d : {1, 2, 6, 8}) {
    const core::SingleStreamReport r = core::analyze_single(memory, d);
    std::cout << "distance " << d << ": return number " << r.return_number
              << ", predicted b_eff " << r.predicted.str() << ", simulated "
              << r.simulated.str() << (r.consistent() ? "  [OK]" : "  [MISMATCH]") << '\n';
  }

  std::cout << "\n=== Two streams ===\n";
  for (auto [d1, d2] : std::vector<std::pair<i64, i64>>{{1, 9}, {2, 6}, {1, 6}, {8, 9}}) {
    const core::PairReport r = core::analyze_pair(memory, d1, d2);
    std::cout << r.summary() << '\n';
  }

  std::cout << "\n=== Watching a barrier-situation form (paper Fig. 3) ===\n";
  const sim::MemoryConfig m13{.banks = 13, .sections = 13, .bank_cycle = 6};
  std::cout << trace::render_run(m13, sim::two_streams(0, 1, 0, 6), 39);
  std::cout << "Stream 2 is pinned behind stream 1: b_eff = 1 + d1/d2 = "
            << analytic::barrier_bandwidth(1, 6).str() << " data per clock period.\n";
  return 0;
}
