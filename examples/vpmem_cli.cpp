// vpmem_cli — command-line front end to the library.
//
//   vpmem_cli single <m> <nc> <d>
//       One-stream analysis: return number, predicted and simulated b_eff.
//   vpmem_cli pair <m> <nc> <d1> <d2> [--same-cpu] [--sections s]
//       Two-stream classification plus the exact offset sweep.
//   vpmem_cli render <m> <nc> <d1> <d2> <b1> <b2> [cycles] [--same-cpu]
//            [--sections s] [--cyclic-priority] [--consecutive]
//       Draw the clock diagram in the paper's notation.
//   vpmem_cli report <m> <nc> <d1> [d2 [b1 b2]] [--length n] [--cycles N]
//            [--same-cpu] [--sections s] [--cyclic-priority] [--consecutive]
//       Run the configuration and emit the full structured RunReport
//       (schema vpmem.run_report/1) as JSON — to stdout, or to the --json
//       file when given.
//   vpmem_cli triad <n> <inc> [--dedicated]
//       Run the Section IV triad on the X-MP model.
//   vpmem_cli idim <m> <nc> <stride> <arrays> <min_elements>
//       Recommend a COMMON array extent (the IDIM question).
//   vpmem_cli diagnose <m> <nc> <d1> <d2> [--same-cpu] [--sections s]
//            [--cyclic-priority] [--consecutive]
//       Conflict-regime map over every relative start position.
//   vpmem_cli kernel <name> <n> <inc> [--dedicated]
//       Run copy/scale/sum/daxpy/triad/gather/scatter on the X-MP model.
//   vpmem_cli fuzz [iterations] [--seed S] [--cycles T] [--fault name]
//            [--fault-plans] [--no-shrink] [--replay LINE] [--jobs N]
//       Differential fuzzing: random configurations cross-checked against
//       the naive reference model and the analytic theorems.  With
//       --fault-plans every case also carries a randomized timed
//       degradation plan (both sides must still agree event-for-event).
//       Failures print one-line repros; --replay re-executes one.  With
//       --jobs N cases are checked on N worker threads; the campaign is
//       pre-sampled from the seed so the summary is byte-identical to the
//       sequential run.  Exits 1 on any disagreement.
//   vpmem_cli sweep <m> <nc> --d1 A:B --d2 A:B [--jobs N] [--journal f]
//            [--resume] [--sandbox] [--retries N] [--out results.json]
//            [--same-cpu] [--sections s] [--cyclic-priority]
//            [--consecutive] [--test-crash ID]
//       Campaign sweep over the (d1, d2) stride grid via the journaled
//       executor (exec::run_campaign).  Every point is one job: steady-
//       state b_eff, period, transient, conflicts — fully deterministic,
//       so --out files from interrupted-then-resumed campaigns are byte-
//       identical to uninterrupted ones.  --journal appends every attempt
//       to an append-only vpmem.journal/1 file; --resume skips jobs the
//       journal already settled (matched by config hash).  --sandbox
//       fork-isolates each point so a crashing job is quarantined with a
//       repro token instead of killing the campaign (--test-crash ID
//       deliberately crashes that job to prove it).  Exits 8 when any
//       job failed or was quarantined.
//   vpmem_cli faults <m> <nc> <d1> [d2 [b1 b2]] (--plan file.json | --inline SPEC)
//            [--policy stall|remap_spare] [--length n] [--cycles N]
//            [--max-cycles N] [--same-cpu] [--sections s]
//            [--cyclic-priority] [--consecutive]
//       Degraded-mode run: apply a timed fault plan (schema
//       vpmem.fault_plan/1 from --plan, or the compact --inline form,
//       e.g. 'stall;boff@40:b3;bon@160:b3') under a watchdog and report
//       the guarded RunReport plus the per-phase bandwidth between fault
//       events.  Exits 5 if the cycle budget expired, 6 on livelock.
//   vpmem_cli trace <m> <nc> <d1> [d2 [b1 b2]] [--out trace.json]
//            [--length n] [--cycles N] [--window N] [--no-attribution]
//            [--same-cpu] [--sections s] [--cyclic-priority] [--consecutive]
//       Run the configuration with the tracer attached and write a Chrome
//       trace-event / Perfetto JSON file (schema vpmem.trace/1) — load it
//       at ui.perfetto.dev.  Infinite streams default to a transient +
//       one-period window; the attribution summary also lands in the
//       --json envelope.
//
// Every subcommand accepts `--json <file>` and then also writes a
// machine-readable record of its result ("-" writes the JSON to stdout
// instead of a file); sweep-shaped subcommands log their perf telemetry
// (simulated cycles/second, per-point latency) to stderr.
//
// The long-running subcommands (fuzz, sweep, faults) install SIGINT/
// SIGTERM handlers: the first signal cancels cooperatively — the run
// stops at the next case/job/poll boundary, flushes its journal and
// still writes a valid --json envelope with "status": "interrupted" —
// and the second restores the default disposition (hard kill).
//
// Exit codes: 0 success, 1 generic failure (including fuzz
// disagreements), 2 usage, and for typed vpmem::Error conditions
// 3 = config_invalid, 4 = fault_plan_invalid, 5 = deadline_exceeded,
// 6 = livelock (the last two also report a guarded run that stopped
// early).  7 = interrupted by SIGINT/SIGTERM (partial results were
// still flushed); 8 = sweep campaign degraded (some jobs failed or
// were quarantined).  With --json, errors still write a vpmem.cli/1
// envelope whose "error" member carries {code, message}.
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "vpmem/vpmem.hpp"

namespace {

using namespace vpmem;

int usage() {
  std::cerr << "usage:\n"
               "  vpmem_cli single <m> <nc> <d>\n"
               "  vpmem_cli pair <m> <nc> <d1> <d2> [--same-cpu] [--sections s]\n"
               "  vpmem_cli render <m> <nc> <d1> <d2> <b1> <b2> [cycles] [--same-cpu]\n"
               "           [--sections s] [--cyclic-priority] [--consecutive]\n"
               "  vpmem_cli report <m> <nc> <d1> [d2 [b1 b2]] [--length n] [--cycles N]\n"
               "           [--same-cpu] [--sections s] [--cyclic-priority] [--consecutive]\n"
               "  vpmem_cli triad <n> <inc> [--dedicated]\n"
               "  vpmem_cli idim <m> <nc> <stride> <arrays> <min_elements>\n"
               "  vpmem_cli diagnose <m> <nc> <d1> <d2> [--same-cpu] [--sections s]\n"
               "  vpmem_cli kernel <name> <n> <inc> [--dedicated]\n"
               "  vpmem_cli fuzz [iterations] [--seed S] [--cycles T] [--fault name]\n"
               "           [--fault-plans] [--no-shrink] [--replay LINE] [--jobs N]\n"
               "  vpmem_cli sweep <m> <nc> --d1 A:B --d2 A:B [--jobs N] [--journal f]\n"
               "           [--resume] [--sandbox] [--retries N] [--out results.json]\n"
               "           [--same-cpu] [--sections s] [--cyclic-priority]\n"
               "           [--consecutive] [--test-crash ID]\n"
               "  vpmem_cli faults <m> <nc> <d1> [d2 [b1 b2]]\n"
               "           (--plan file.json | --inline SPEC) [--policy stall|remap_spare]\n"
               "           [--length n] [--cycles N] [--max-cycles N] [--same-cpu]\n"
               "           [--sections s] [--cyclic-priority] [--consecutive]\n"
               "  vpmem_cli trace <m> <nc> <d1> [d2 [b1 b2]] [--out trace.json]\n"
               "           [--length n] [--cycles N] [--window N] [--no-attribution]\n"
               "           [--same-cpu] [--sections s] [--cyclic-priority] [--consecutive]\n"
               "options accepted by every subcommand:\n"
               "  --json <file>   also write a machine-readable JSON record\n"
               "                  ('-' = stdout); schema: vpmem.run_report/1 for\n"
               "                  report, vpmem.cli/1 envelopes otherwise\n";
  return 2;
}

struct Args {
  std::vector<i64> positional;
  std::string word;  // non-numeric positional (kernel name)
  bool same_cpu = false;
  bool dedicated = false;
  bool cyclic_priority = false;
  bool consecutive = false;
  i64 sections = 0;  // 0 = same as banks
  i64 length = 0;    // 0 = infinite streams (report subcommand)
  i64 cycles = 0;    // 0 = automatic window (report subcommand)
  std::string json_path;  // empty = no JSON output
  // trace subcommand:
  std::string out;           // trace file path (empty = "trace.json")
  i64 window = 0;            // 0 = attribution default (64)
  bool no_attribution = false;
  // fuzz subcommand:
  std::uint64_t seed = 0x0ed1a25;  // matches check::FuzzOptions default
  bool seed_given = false;
  std::string fault;        // reference-model mutation name
  std::string replay_line;  // one-line repro to re-execute
  bool no_shrink = false;
  bool fault_plans = false;  // fuzz: attach randomized fault plans
  // faults subcommand:
  std::string plan_path;    // --plan: vpmem.fault_plan/1 JSON file
  std::string plan_inline;  // --inline: compact FaultPlan::parse() spec
  std::string policy;       // --policy: override the plan's policy
  i64 max_cycles = 0;       // --max-cycles: watchdog budget (0 = default)
  // campaign execution (fuzz --jobs; sweep subcommand):
  int jobs = 1;             // --jobs: worker threads
  std::string journal;      // --journal: vpmem.journal/1 path
  bool resume = false;      // --resume: skip jobs the journal settled
  bool sandbox = false;     // --sandbox: fork-isolate every sweep job
  i64 retries = 0;          // --retries: max attempts per job (0 = default)
  std::string test_crash;   // --test-crash: job id to SIGSEGV on purpose
  std::string d1_range;     // --d1: inclusive "A:B" stride range
  std::string d2_range;     // --d2: inclusive "A:B" stride range
  i64 throttle_ms = 0;      // --throttle-ms: pace each sweep job (tests)
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--same-cpu") {
      args.same_cpu = true;
    } else if (a == "--dedicated") {
      args.dedicated = true;
    } else if (a == "--cyclic-priority") {
      args.cyclic_priority = true;
    } else if (a == "--consecutive") {
      args.consecutive = true;
    } else if (a == "--sections") {
      if (++i >= argc) return false;
      args.sections = std::atoll(argv[i]);
    } else if (a == "--length") {
      if (++i >= argc) return false;
      args.length = std::atoll(argv[i]);
    } else if (a == "--cycles") {
      if (++i >= argc) return false;
      args.cycles = std::atoll(argv[i]);
    } else if (a == "--json") {
      if (++i >= argc) return false;
      args.json_path = argv[i];
    } else if (a == "--out") {
      if (++i >= argc) return false;
      args.out = argv[i];
    } else if (a == "--window") {
      if (++i >= argc) return false;
      args.window = std::atoll(argv[i]);
    } else if (a == "--attribution") {
      args.no_attribution = false;  // the default; accepted for symmetry
    } else if (a == "--no-attribution") {
      args.no_attribution = true;
    } else if (a == "--seed") {
      if (++i >= argc) return false;
      args.seed = std::strtoull(argv[i], nullptr, 0);
      args.seed_given = true;
    } else if (a == "--fault") {
      if (++i >= argc) return false;
      args.fault = argv[i];
    } else if (a == "--replay") {
      if (++i >= argc) return false;
      args.replay_line = argv[i];
    } else if (a == "--no-shrink") {
      args.no_shrink = true;
    } else if (a == "--fault-plans") {
      args.fault_plans = true;
    } else if (a == "--plan") {
      if (++i >= argc) return false;
      args.plan_path = argv[i];
    } else if (a == "--inline") {
      if (++i >= argc) return false;
      args.plan_inline = argv[i];
    } else if (a == "--policy") {
      if (++i >= argc) return false;
      args.policy = argv[i];
    } else if (a == "--max-cycles") {
      if (++i >= argc) return false;
      args.max_cycles = std::atoll(argv[i]);
    } else if (a == "--jobs") {
      if (++i >= argc) return false;
      args.jobs = static_cast<int>(std::atoll(argv[i]));
    } else if (a == "--journal") {
      if (++i >= argc) return false;
      args.journal = argv[i];
    } else if (a == "--resume") {
      args.resume = true;
    } else if (a == "--sandbox") {
      args.sandbox = true;
    } else if (a == "--retries") {
      if (++i >= argc) return false;
      args.retries = std::atoll(argv[i]);
    } else if (a == "--test-crash") {
      if (++i >= argc) return false;
      args.test_crash = argv[i];
    } else if (a == "--d1") {
      if (++i >= argc) return false;
      args.d1_range = argv[i];
    } else if (a == "--d2") {
      if (++i >= argc) return false;
      args.d2_range = argv[i];
    } else if (a == "--throttle-ms") {
      if (++i >= argc) return false;
      args.throttle_ms = std::atoll(argv[i]);
    } else if (!a.empty() && (std::isdigit(static_cast<unsigned char>(a[0])) != 0)) {
      args.positional.push_back(std::atoll(a.c_str()));
    } else if (!a.empty() && a[0] != '-' && args.word.empty()) {
      args.word = a;
    } else {
      return false;
    }
  }
  return true;
}

sim::MemoryConfig config_from(const Args& args, i64 m, i64 nc) {
  return sim::MemoryConfig{
      .banks = m,
      .sections = args.sections > 0 ? args.sections : m,
      .bank_cycle = nc,
      .mapping = args.consecutive ? sim::SectionMapping::consecutive
                                  : sim::SectionMapping::cyclic,
      .priority = args.cyclic_priority ? sim::PriorityRule::cyclic : sim::PriorityRule::fixed};
}

/// Human-readable output stream.  With `--json -` the JSON document owns
/// stdout, so the human summary moves to stderr and stdout stays parseable.
std::ostream& human(const Args& args) {
  return args.json_path == "-" ? std::cerr : std::cout;
}

/// Write `doc` to args.json_path when set ('-' = stdout).  Returns false
/// (and reports) on I/O failure.
bool maybe_write_json(const Args& args, const Json& doc) {
  if (args.json_path.empty()) return true;
  if (args.json_path == "-") {
    doc.dump(std::cout, 2);
    std::cout << '\n';
    return true;
  }
  std::ofstream out{args.json_path};
  if (!out) {
    std::cerr << "error: cannot open '" << args.json_path << "' for writing\n";
    return false;
  }
  doc.dump(out, 2);
  out << '\n';
  return true;
}

/// Envelope shared by the non-`report` subcommands: the command name plus
/// its result payload, under the "vpmem.cli/1" schema.
Json cli_envelope(const std::string& command) {
  Json doc = Json::object();
  doc["schema"] = "vpmem.cli/1";
  doc["command"] = command;
  return doc;
}

Json json_of_ports(const std::vector<sim::PortStats>& ports) {
  Json out = Json::array();
  for (const auto& p : ports) out.push_back(obs::json_of(p));
  return out;
}

Json json_of_triad(const xmp::TriadResult& r, const xmp::TriadSetup& setup, bool dedicated) {
  Json out = Json::object();
  out["n"] = setup.n;
  out["inc"] = setup.inc;
  out["idim"] = setup.idim;
  out["dedicated"] = dedicated;
  out["cycles"] = r.cycles;
  out["cycles_per_element"] = r.cycles_per_element(setup.n);
  out["conflicts"] = obs::json_of(r.conflicts);
  out["background_goodput"] = r.background_goodput();
  out["ports"] = json_of_ports(r.triad_ports);
  out["background_ports"] = json_of_ports(r.background_ports);
  return out;
}

int cmd_single(const Args& args) {
  if (args.positional.size() != 3) return usage();
  const auto [m, nc, d] = std::tuple{args.positional[0], args.positional[1], args.positional[2]};
  const core::SingleStreamReport r = core::analyze_single(config_from(args, m, nc), d);
  human(args) << "m=" << m << " nc=" << nc << " d=" << d << ": return number "
            << r.return_number << ", predicted b_eff " << r.predicted.str() << ", simulated "
            << r.simulated.str() << (r.consistent() ? "" : "  [MISMATCH]") << '\n';
  if (!args.json_path.empty()) {
    Json doc = cli_envelope("single");
    doc["m"] = m;
    doc["nc"] = nc;
    doc["d"] = d;
    doc["return_number"] = r.return_number;
    doc["predicted_b_eff"] = obs::json_of(r.predicted);
    doc["simulated_b_eff"] = obs::json_of(r.simulated);
    doc["consistent"] = r.consistent();
    doc["report"] = obs::report_run(config_from(args, m, nc),
                                    {sim::StreamConfig{.start_bank = 0, .distance = d}})
                        .to_json();
    if (!maybe_write_json(args, doc)) return 1;
  }
  return 0;
}

int cmd_pair(const Args& args) {
  if (args.positional.size() != 4) return usage();
  const auto cfg = config_from(args, args.positional[0], args.positional[1]);
  const core::PairReport r =
      core::analyze_pair(cfg, args.positional[2], args.positional[3], args.same_cpu);
  human(args) << r.summary() << "\nby offset:";
  for (std::size_t b2 = 0; b2 < r.by_offset.size(); ++b2) {
    human(args) << ' ' << b2 << ':' << r.by_offset[b2].str();
  }
  human(args) << '\n';
  // The offset sweep's perf telemetry (purely observational).
  const sim::OffsetSweep sweep =
      sim::sweep_start_offsets(cfg, args.positional[2], args.positional[3], args.same_cpu);
  std::cerr << "sweep telemetry: " << sweep.by_offset.size() << " offsets, "
            << sweep.cycles_simulated << " simulated cycles in " << sweep.wall_seconds
            << " s (" << sweep.cycles_per_second() << " cycles/s)\n";
  if (!args.json_path.empty()) {
    Json doc = cli_envelope("pair");
    doc["m"] = r.m;
    doc["nc"] = r.nc;
    doc["d1"] = r.d1;
    doc["d2"] = r.d2;
    doc["same_cpu"] = args.same_cpu;
    doc["classification"] = analytic::to_string(r.prediction.cls);
    doc["predicted_b_eff"] =
        r.prediction.bandwidth ? obs::json_of(*r.prediction.bandwidth) : Json{nullptr};
    doc["sim_min"] = obs::json_of(r.sim_min);
    doc["sim_max"] = obs::json_of(r.sim_max);
    Json by_offset = Json::array();
    for (const auto& bw : r.by_offset) by_offset.push_back(obs::json_of(bw));
    doc["by_offset"] = std::move(by_offset);
    Json perf = Json::object();
    perf["points"] = sweep.by_offset.size();
    perf["wall_seconds"] = sweep.wall_seconds;
    perf["simulated_cycles"] = sweep.cycles_simulated;
    perf["cycles_per_second"] = sweep.cycles_per_second();
    doc["sweep_perf"] = std::move(perf);
    if (!maybe_write_json(args, doc)) return 1;
  }
  return 0;
}

int cmd_render(const Args& args) {
  if (args.positional.size() < 6) return usage();
  const i64 m = args.positional[0];
  const i64 nc = args.positional[1];
  const i64 cycles = args.positional.size() > 6 ? args.positional[6] : 3 * m;
  const auto streams = sim::two_streams(args.positional[4], args.positional[2],
                                        args.positional[5], args.positional[3], args.same_cpu);
  const auto cfg = config_from(args, m, nc);
  const std::string diagram = trace::render_run(cfg, streams, cycles, cfg.sections != m);
  human(args) << diagram;
  const auto ss = sim::find_steady_state(cfg, streams);
  human(args) << "steady-state b_eff = " << ss.bandwidth.str() << '\n';
  if (!args.json_path.empty()) {
    Json doc = cli_envelope("render");
    doc["diagram"] = diagram;
    doc["report"] = obs::report_run(cfg, streams).to_json();
    if (!maybe_write_json(args, doc)) return 1;
  }
  return 0;
}

/// The report/trace positional convention: <m> <nc> <d1> [d2 [b1 b2]],
/// one stream or two, with --length making the streams finite.
std::vector<sim::StreamConfig> report_streams(const Args& args) {
  std::vector<sim::StreamConfig> streams;
  if (args.positional.size() == 3) {
    streams.push_back(sim::StreamConfig{.start_bank = 0, .distance = args.positional[2]});
  } else {
    const i64 b1 = args.positional.size() == 6 ? args.positional[4] : 0;
    const i64 b2 = args.positional.size() == 6 ? args.positional[5] : 0;
    streams = sim::two_streams(b1, args.positional[2], b2, args.positional[3], args.same_cpu);
  }
  if (args.length > 0) {
    for (auto& s : streams) s.length = args.length;
  }
  return streams;
}

int cmd_report(const Args& args) {
  if (args.positional.size() != 3 && args.positional.size() != 4 &&
      args.positional.size() != 6) {
    return usage();
  }
  const auto cfg = config_from(args, args.positional[0], args.positional[1]);
  const std::vector<sim::StreamConfig> streams = report_streams(args);
  obs::ReportOptions options;
  options.cycles = args.cycles;
  const obs::RunReport report = obs::report_run(cfg, streams, options);
  std::cerr << "report: " << report.kind << ", " << report.perf.cycles_simulated
            << " simulated cycles in " << report.perf.wall_seconds << " s ("
            << report.perf.cycles_per_second() << " cycles/s)\n";
  if (args.json_path.empty()) {
    report.write_json(std::cout);
    return 0;
  }
  return maybe_write_json(args, report.to_json()) ? 0 : 1;
}

int cmd_triad(const Args& args) {
  if (args.positional.size() != 2) return usage();
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = args.positional[0];
  setup.inc = args.positional[1];
  const xmp::TriadResult r = xmp::run_triad(machine, setup, !args.dedicated);
  human(args) << "triad n=" << setup.n << " inc=" << setup.inc
            << (args.dedicated ? " (dedicated)" : " (contended)") << ": " << r.cycles
            << " cycles, conflicts bank=" << r.conflicts.bank
            << " section=" << r.conflicts.section << " simult=" << r.conflicts.simultaneous;
  if (!args.dedicated) human(args) << ", other CPU b_eff " << cell(r.background_goodput(), 3);
  human(args) << '\n';
  if (!args.json_path.empty()) {
    Json doc = cli_envelope("triad");
    doc["result"] = json_of_triad(r, setup, args.dedicated);
    if (!maybe_write_json(args, doc)) return 1;
  }
  return 0;
}

int cmd_diagnose(const Args& args) {
  if (args.positional.size() != 4) return usage();
  const auto cfg = config_from(args, args.positional[0], args.positional[1]);
  obs::SweepTelemetry telemetry;
  const core::RegimeSweep sweep = core::sweep_regimes(cfg, args.positional[2],
                                                      args.positional[3], args.same_cpu,
                                                      &telemetry);
  for (std::size_t b2 = 0; b2 < sweep.by_offset.size(); ++b2) {
    human(args) << "b2=" << b2 << ": " << sweep.by_offset[b2].summary() << '\n';
  }
  std::cerr << "sweep telemetry: " << telemetry.summary() << '\n';
  if (!args.json_path.empty()) {
    Json doc = cli_envelope("diagnose");
    Json by_offset = Json::array();
    for (const auto& d : sweep.by_offset) {
      Json entry = Json::object();
      entry["regime"] = core::to_string(d.regime);
      entry["b_eff"] = obs::json_of(d.bandwidth);
      entry["conflicts_in_period"] = obs::json_of(d.conflicts_in_period);
      entry["period"] = d.period;
      entry["transient_cycles"] = d.transient_cycles;
      by_offset.push_back(std::move(entry));
    }
    doc["by_offset"] = std::move(by_offset);
    doc["sweep_perf"] = telemetry.to_json();
    if (!maybe_write_json(args, doc)) return 1;
  }
  return 0;
}

int cmd_kernel(const Args& args) {
  if (args.positional.size() != 2 || args.word.empty()) return usage();
  const xmp::KernelSpec* spec = nullptr;
  for (const auto& k : xmp::all_kernels()) {
    if (k.name == args.word) spec = &k;
  }
  if (spec == nullptr) {
    std::cerr << "unknown kernel '" << args.word << "'; choose from:";
    for (const auto& k : xmp::all_kernels()) std::cerr << ' ' << k.name;
    std::cerr << '\n';
    return 2;
  }
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = args.positional[0];
  setup.inc = args.positional[1];
  const xmp::TriadResult r = xmp::run_kernel(machine, *spec, setup, !args.dedicated);
  human(args) << spec->name << " n=" << setup.n << " inc=" << setup.inc
            << (args.dedicated ? " (dedicated)" : " (contended)") << ": " << r.cycles
            << " cycles, conflicts bank=" << r.conflicts.bank
            << " section=" << r.conflicts.section << " simult=" << r.conflicts.simultaneous
            << '\n';
  if (!args.json_path.empty()) {
    Json doc = cli_envelope("kernel");
    doc["kernel"] = spec->name;
    doc["result"] = json_of_triad(r, setup, args.dedicated);
    if (!maybe_write_json(args, doc)) return 1;
  }
  return 0;
}

int cmd_idim(const Args& args) {
  if (args.positional.size() != 5) return usage();
  const auto cfg = config_from(args, args.positional[0], args.positional[1]);
  const i64 idim = core::recommend_idim(cfg, args.positional[2], args.positional[3],
                                        args.positional[4], args.same_cpu);
  const auto sweep = core::sweep_array_spacing(cfg, args.positional[2], args.positional[3],
                                               args.same_cpu);
  human(args) << "recommended IDIM " << idim << " (spacing " << mod_norm(idim, cfg.banks)
            << " mod " << cfg.banks << ", group b_eff " << sweep.best_bandwidth.str()
            << "; worst spacing " << sweep.worst_spacing << " -> "
            << sweep.worst_bandwidth.str() << ")\n";
  if (!args.json_path.empty()) {
    Json doc = cli_envelope("idim");
    doc["recommended_idim"] = idim;
    doc["spacing"] = mod_norm(idim, cfg.banks);
    doc["best_b_eff"] = obs::json_of(sweep.best_bandwidth);
    doc["worst_spacing"] = sweep.worst_spacing;
    doc["worst_b_eff"] = obs::json_of(sweep.worst_bandwidth);
    if (!maybe_write_json(args, doc)) return 1;
  }
  return 0;
}

/// Full run context of a failing fuzz case, attached to the JSON record
/// so the repro line comes with the complete RunReport of the offending
/// configuration.  Mixed finite/infinite workloads have no report shape;
/// those carry an "error" member instead.
Json failure_report(const check::FuzzFailure& failure) {
  Json entry = Json::object();
  entry["iteration"] = failure.iteration;
  entry["check"] = failure.check;
  entry["message"] = failure.message;
  entry["repro"] = failure.repro;
  entry["shrunk_repro"] = failure.shrunk_repro;
  try {
    const check::FuzzCase c =
        check::parse_repro(failure.shrunk_repro.empty() ? failure.repro : failure.shrunk_repro);
    entry["report"] = obs::report_run(c.config, c.streams, {.cycles = c.cycles}).to_json();
  } catch (const std::exception& e) {
    entry["report_error"] = std::string{e.what()};
  }
  return entry;
}

int replay_one(const Args& args) {
  const check::FuzzCase c = check::parse_repro(args.replay_line);
  const check::CaseResult result =
      check::check_case(c, {}, /*run_invariants=*/c.fault == check::FaultKind::none);
  human(args) << "replay: " << check::encode_repro(c) << '\n';
  for (const auto& f : result.failures) {
    human(args) << "  FAIL [" << f.check << "] " << f.message << '\n';
  }
  if (result.ok()) {
    human(args) << "  all " << result.checks_run << " checks passed ("
                << result.events_compared << " events compared)\n";
  }
  if (!args.json_path.empty()) {
    Json doc = cli_envelope("fuzz");
    doc["replay"] = args.replay_line;
    doc["ok"] = result.ok();
    doc["checks_run"] = result.checks_run;
    doc["events_compared"] = result.events_compared;
    Json failures = Json::array();
    for (const auto& f : result.failures) {
      Json entry = Json::object();
      entry["check"] = f.check;
      entry["message"] = f.message;
      failures.push_back(std::move(entry));
    }
    doc["failures"] = std::move(failures);
    if (!maybe_write_json(args, doc)) return 1;
  }
  return result.ok() ? 0 : 1;
}

int cmd_fuzz(const Args& args) {
  if (!args.replay_line.empty()) return replay_one(args);
  if (args.positional.size() > 1) return usage();

  check::FuzzOptions options;
  options.seed = args.seed;
  if (!args.positional.empty()) options.iterations = args.positional[0];
  if (args.cycles > 0) options.cycles = args.cycles;
  if (!args.fault.empty()) options.fault = check::fault_from_string(args.fault);
  options.fault_plans = args.fault_plans;
  options.shrink_failures = !args.no_shrink;
  options.jobs = args.jobs;
  exec::install_signal_handlers();
  options.cancel = &exec::process_cancel_token();

  const check::FuzzSummary summary = check::fuzz(options);
  human(args) << "fuzz: " << summary.iterations << " cases, " << summary.checks_run
              << " checks, " << summary.events_compared << " events compared (seed 0x"
              << std::hex << summary.seed << std::dec;
  if (options.fault != check::FaultKind::none) {
    human(args) << ", fault " << check::to_string(options.fault);
  }
  if (options.jobs > 1) human(args) << ", jobs " << options.jobs;
  human(args) << ")\n";
  if (summary.interrupted) {
    human(args) << "interrupted after " << summary.iterations << " of "
                << options.iterations << " cases; partial results follow\n";
  }
  for (const auto& f : summary.failures) {
    human(args) << "FAIL iteration " << f.iteration << " [" << f.check << "] " << f.message
                << "\n  replay:  " << f.repro << '\n';
    if (!f.shrunk_repro.empty()) human(args) << "  shrunk:  " << f.shrunk_repro << '\n';
  }
  if (summary.ok()) {
    human(args) << "no disagreements\n";
  } else {
    human(args) << summary.failures.size() << " failing case(s); re-run one with\n"
                << "  vpmem_cli fuzz --replay '<line>'\n";
  }
  if (!args.json_path.empty()) {
    Json doc = cli_envelope("fuzz");
    doc["status"] = summary.interrupted ? "interrupted"
                    : summary.failures.empty() ? "ok" : "failed";
    doc["summary"] = summary.to_json();
    Json reports = Json::array();
    for (const auto& f : summary.failures) reports.push_back(failure_report(f));
    doc["failure_reports"] = std::move(reports);
    if (!maybe_write_json(args, doc)) return 1;
  }
  if (summary.interrupted) return 7;
  return summary.failures.empty() ? 0 : 1;
}

/// The `faults` plan source: --plan (vpmem.fault_plan/1 JSON file) or
/// --inline (the compact FaultPlan::parse spec); --policy overrides.
sim::FaultPlan load_plan(const Args& args) {
  if (!args.plan_path.empty() && !args.plan_inline.empty()) {
    throw Error{ErrorCode::fault_plan_invalid, "pass either --plan or --inline, not both"};
  }
  sim::FaultPlan plan;
  if (!args.plan_path.empty()) {
    std::ifstream in{args.plan_path};
    if (!in) {
      throw Error{ErrorCode::fault_plan_invalid,
                  "cannot open fault plan '" + args.plan_path + "'"};
    }
    std::ostringstream text;
    text << in.rdbuf();
    plan = sim::FaultPlan::from_json(Json::parse(text.str()));
  } else if (!args.plan_inline.empty()) {
    plan = sim::FaultPlan::parse(args.plan_inline);
  }
  if (!args.policy.empty()) plan.policy = sim::fault_policy_from_string(args.policy);
  return plan;
}

/// One bandwidth phase of a degraded run: the half-open cycle range
/// between consecutive fault events.
struct FaultPhase {
  i64 begin = 0;
  i64 end = 0;
  i64 grants = 0;
  i64 online_banks = 0;  ///< surviving banks while the phase ran
  [[nodiscard]] double bandwidth() const noexcept {
    return end == begin ? 0.0 : static_cast<double>(grants) / static_cast<double>(end - begin);
  }
};

/// Re-simulate the guarded window and split it at fault-event cycles (the
/// aggregate RunReport has no time axis).
std::vector<FaultPhase> fault_phases(const sim::MemoryConfig& cfg,
                                     const std::vector<sim::StreamConfig>& streams,
                                     const sim::FaultPlan& plan, i64 cycles) {
  std::vector<i64> bounds{0};
  for (const auto& e : plan.events) {
    if (e.cycle > 0 && e.cycle < cycles && e.cycle != bounds.back()) bounds.push_back(e.cycle);
  }
  if (cycles > bounds.back()) bounds.push_back(cycles);
  std::vector<FaultPhase> phases;
  if (bounds.size() < 2) return phases;
  sim::MemorySystem mem{cfg, streams, plan};
  i64 prev_grants = 0;
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    FaultPhase phase;
    phase.begin = bounds[i];
    phase.end = bounds[i + 1];
    // Step the first period so the events due at the boundary are applied,
    // then read the surviving-bank count the phase runs with.
    mem.run(1, /*stop_when_finished=*/false);
    phase.online_banks = mem.surviving_banks();
    mem.run(phase.end - phase.begin - 1, /*stop_when_finished=*/false);
    i64 grants = 0;
    for (const auto& p : mem.all_stats()) grants += p.grants;
    phase.grants = grants - prev_grants;
    prev_grants = grants;
    phases.push_back(phase);
  }
  return phases;
}

int cmd_faults(const Args& args) {
  if (args.positional.size() != 3 && args.positional.size() != 4 &&
      args.positional.size() != 6) {
    return usage();
  }
  if (args.plan_path.empty() && args.plan_inline.empty()) return usage();
  const auto cfg = config_from(args, args.positional[0], args.positional[1]);
  const std::vector<sim::StreamConfig> streams = report_streams(args);
  const sim::FaultPlan plan = load_plan(args);
  const bool infinite = streams.front().length == sim::kInfiniteLength;

  obs::ReportOptions options;
  options.cycles = args.cycles;
  if (infinite && options.cycles <= 0) {
    // Automatic horizon: cover every fault event plus a healthy tail so
    // before/during/after phases are all visible.
    const i64 last = plan.events.empty() ? 0 : plan.events.back().cycle;
    options.cycles = last + 8 * cfg.banks * cfg.bank_cycle;
  }
  sim::Watchdog watchdog;
  if (args.max_cycles > 0) watchdog.max_cycles = args.max_cycles;
  exec::install_signal_handlers();
  watchdog.cancel = exec::process_cancel_token().flag();

  const obs::RunReport report = obs::report_run_guarded(cfg, streams, plan, options, watchdog);
  const std::vector<FaultPhase> phases = fault_phases(cfg, streams, plan, report.cycles);

  human(args) << "faults: policy " << sim::to_string(plan.policy) << ", "
              << plan.events.size() << " event(s), status " << report.status;
  if (!report.status_detail.empty()) human(args) << " (" << report.status_detail << ")";
  human(args) << "\nwindow: " << report.cycles << " cycles, b_eff "
              << report.window_bandwidth << ", conflicts bank=" << report.conflicts.bank
              << " simult=" << report.conflicts.simultaneous
              << " section=" << report.conflicts.section
              << " fault=" << report.conflicts.fault << '\n';
  for (const auto& phase : phases) {
    human(args) << "  cycles [" << phase.begin << ", " << phase.end << "): b_eff "
                << phase.bandwidth() << " (" << phase.online_banks << "/" << cfg.banks
                << " banks online)\n";
  }

  if (!args.json_path.empty()) {
    Json doc = cli_envelope("faults");
    doc["plan"] = plan.to_json();
    doc["status"] = report.status;
    Json phase_list = Json::array();
    for (const auto& phase : phases) {
      Json entry = Json::object();
      entry["begin"] = phase.begin;
      entry["end"] = phase.end;
      entry["grants"] = phase.grants;
      entry["online_banks"] = phase.online_banks;
      entry["bandwidth"] = phase.bandwidth();
      phase_list.push_back(std::move(entry));
    }
    doc["phases"] = std::move(phase_list);
    doc["report"] = report.to_json();
    if (!maybe_write_json(args, doc)) return 1;
  }
  if (report.status == "deadline_exceeded") return 5;
  if (report.status == "livelock") return 6;
  if (report.status == "interrupted") return 7;
  return 0;
}

/// Inclusive "A:B" stride range ("A" alone = the single value A).
bool parse_range(const std::string& text, i64& lo, i64& hi) {
  if (text.empty()) return false;
  const std::size_t colon = text.find(':');
  char* end = nullptr;
  lo = std::strtoll(text.c_str(), &end, 10);
  if (colon == std::string::npos) {
    hi = lo;
    return end == text.c_str() + text.size();
  }
  if (end != text.c_str() + colon) return false;
  hi = std::strtoll(text.c_str() + colon + 1, &end, 10);
  return end == text.c_str() + text.size() && lo <= hi;
}

/// The canonical config-hash preimage of one sweep point.  This string —
/// not the hash — is the contract: every field that changes the result
/// appears, in fixed order, so the same point hashes identically across
/// runs, machines and resumes.
std::string sweep_point_key(const sim::MemoryConfig& cfg, bool same_cpu, i64 d1, i64 d2) {
  std::ostringstream key;
  key << "vpmem.sweep/1 m=" << cfg.banks << " nc=" << cfg.bank_cycle << " s=" << cfg.sections
      << " map=" << (cfg.mapping == sim::SectionMapping::consecutive ? "consecutive" : "cyclic")
      << " pri=" << (cfg.priority == sim::PriorityRule::cyclic ? "cyclic" : "fixed")
      << " same_cpu=" << (same_cpu ? 1 : 0) << " d1=" << d1 << " d2=" << d2;
  return key.str();
}

/// Replay token for one sweep point: a complete single-point `sweep`
/// invocation, recorded on crash/quarantine.
std::string sweep_point_repro(const Args& args, i64 m, i64 nc, i64 d1, i64 d2) {
  std::ostringstream r;
  r << "sweep " << m << ' ' << nc << " --d1 " << d1 << ':' << d1 << " --d2 " << d2 << ':'
    << d2;
  if (args.same_cpu) r << " --same-cpu";
  if (args.sections > 0) r << " --sections " << args.sections;
  if (args.cyclic_priority) r << " --cyclic-priority";
  if (args.consecutive) r << " --consecutive";
  return r.str();
}

/// One sweep point: exact steady-state analysis of the (d1, d2) pair.
/// Deliberately free of wall-clock data — the payload must be a pure
/// function of the configuration so resumed campaigns reproduce the
/// uninterrupted results byte for byte (timing lives in the journal and
/// the campaign metrics instead).
Json sweep_point(const sim::MemoryConfig& cfg, bool same_cpu, i64 d1, i64 d2, bool crash,
                 i64 throttle_ms) {
  if (crash) std::raise(SIGSEGV);  // --test-crash: prove sandbox isolation
  if (throttle_ms > 0) {
    // Pacing knob for the kill-and-resume tests: real points finish in
    // microseconds, far too fast to SIGKILL a campaign mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(throttle_ms));
  }
  const auto streams = sim::two_streams(0, d1, 0, d2, same_cpu);
  const sim::SteadyState ss = sim::find_steady_state(cfg, streams);
  Json out = Json::object();
  out["d1"] = d1;
  out["d2"] = d2;
  out["b_eff"] = obs::json_of(ss.bandwidth);
  out["transient_cycles"] = ss.transient_cycles;
  out["period"] = ss.period;
  Json grants = Json::array();
  for (const i64 g : ss.grants_in_period) grants.push_back(g);
  out["grants_in_period"] = std::move(grants);
  out["conflicts_in_period"] = obs::json_of(ss.conflicts_in_period);
  return out;
}

/// The deterministic results document (schema vpmem.sweep_results/1)
/// written to --out: grid parameters plus one entry per point in input
/// order.  Free-text error detail and all timing stay out of it so the
/// kill-and-resume test can compare files byte for byte.
Json sweep_results_doc(const Args& args, const sim::MemoryConfig& cfg,
                       const exec::CampaignSummary& summary) {
  Json doc = Json::object();
  doc["schema"] = "vpmem.sweep_results/1";
  doc["config"] = obs::json_of(cfg);
  doc["same_cpu"] = args.same_cpu;
  Json points = Json::array();
  for (const auto& r : summary.results) {
    Json p = Json::object();
    p["id"] = r.id;
    p["status"] = exec::to_string(r.status);
    if (r.status == exec::JobStatus::ok) {
      p["result"] = r.result;
    } else {
      p["error_code"] = r.error_code;
      if (!r.repro.empty()) p["repro"] = r.repro;
    }
    points.push_back(std::move(p));
  }
  doc["points"] = std::move(points);
  return doc;
}

int cmd_sweep(const Args& args) {
  if (args.positional.size() != 2) return usage();
  i64 d1_lo = 0, d1_hi = 0, d2_lo = 0, d2_hi = 0;
  if (!parse_range(args.d1_range, d1_lo, d1_hi) || !parse_range(args.d2_range, d2_lo, d2_hi)) {
    std::cerr << "sweep: --d1 and --d2 take an inclusive range A:B\n";
    return usage();
  }
  if (args.resume && args.journal.empty()) {
    std::cerr << "sweep: --resume needs --journal\n";
    return usage();
  }
  const auto cfg = config_from(args, args.positional[0], args.positional[1]);
  const i64 m = args.positional[0];
  const i64 nc = args.positional[1];

  std::vector<exec::JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>((d1_hi - d1_lo + 1) * (d2_hi - d2_lo + 1)));
  for (i64 d1 = d1_lo; d1 <= d1_hi; ++d1) {
    for (i64 d2 = d2_lo; d2 <= d2_hi; ++d2) {
      exec::JobSpec job;
      job.id = "d1=" + std::to_string(d1) + "/d2=" + std::to_string(d2);
      job.hash = stable_hash(sweep_point_key(cfg, args.same_cpu, d1, d2));
      job.repro = sweep_point_repro(args, m, nc, d1, d2);
      const bool crash = job.id == args.test_crash;
      const bool same_cpu = args.same_cpu;
      const i64 throttle_ms = args.throttle_ms;
      job.run = [cfg, same_cpu, d1, d2, crash, throttle_ms] {
        return sweep_point(cfg, same_cpu, d1, d2, crash, throttle_ms);
      };
      jobs.push_back(std::move(job));
    }
  }

  exec::install_signal_handlers();
  exec::ExecutorOptions options;
  options.jobs = args.jobs;
  options.sandbox = args.sandbox;
  if (args.retries > 0) options.retry.max_attempts = static_cast<int>(args.retries);
  options.journal_path = args.journal;
  options.resume = args.resume;
  options.cancel = &exec::process_cancel_token();

  const exec::CampaignSummary summary = exec::run_campaign(jobs, options);

  human(args) << "sweep: " << jobs.size() << " points (d1 " << d1_lo << ".." << d1_hi
              << " x d2 " << d2_lo << ".." << d2_hi << ", m=" << m << " nc=" << nc << ")";
  if (args.jobs > 1) human(args) << ", jobs " << args.jobs;
  if (args.sandbox) human(args) << ", sandboxed";
  human(args) << "\n  completed " << summary.completed << " (resumed " << summary.resumed
              << "), failed " << summary.failed << ", quarantined " << summary.quarantined
              << ", cancelled " << summary.cancelled << ", retries " << summary.retries
              << "\n  status " << summary.status
              << (summary.interrupted ? " (interrupted)" : "") << '\n';
  for (const auto& r : summary.results) {
    if (r.status != exec::JobStatus::failed && r.status != exec::JobStatus::quarantined) {
      continue;
    }
    human(args) << "  " << exec::to_string(r.status) << ' ' << r.id << " [" << r.error_code
                << "] " << r.error << "\n    repro: vpmem_cli " << r.repro << '\n';
  }

  if (!args.out.empty()) {
    std::ofstream out{args.out};
    if (!out) {
      std::cerr << "error: cannot open '" << args.out << "' for writing\n";
      return 1;
    }
    sweep_results_doc(args, cfg, summary).dump(out, 2);
    out << '\n';
  }
  if (!args.json_path.empty()) {
    Json doc = cli_envelope("sweep");
    doc["status"] = summary.interrupted ? "interrupted" : summary.status;
    doc["m"] = m;
    doc["nc"] = nc;
    Json grid = Json::object();
    grid["d1_lo"] = d1_lo;
    grid["d1_hi"] = d1_hi;
    grid["d2_lo"] = d2_lo;
    grid["d2_hi"] = d2_hi;
    doc["grid"] = std::move(grid);
    doc["campaign"] = summary.to_json();
    if (!args.journal.empty()) doc["journal"] = args.journal;
    if (!maybe_write_json(args, doc)) return 1;
  }
  if (summary.interrupted) return 7;
  return summary.ok() ? 0 : 8;
}

int cmd_trace(const Args& args) {
  if (args.positional.size() != 3 && args.positional.size() != 4 &&
      args.positional.size() != 6) {
    return usage();
  }
  const auto cfg = config_from(args, args.positional[0], args.positional[1]);
  const std::vector<sim::StreamConfig> streams = report_streams(args);
  const bool infinite = streams.front().length == sim::kInfiniteLength;

  i64 window = args.cycles;
  if (infinite && window <= 0) {
    // Same automatic window as `report`: the transient plus one full
    // steady-state period, so the trace shows startup and the cycle.
    const sim::SteadyState ss = sim::find_steady_state(cfg, streams);
    window = ss.transient_cycles + ss.period;
  }

  sim::MemorySystem mem{cfg, streams};
  obs::TracerOptions options;
  options.attribution = !args.no_attribution;
  if (args.window > 0) options.window = args.window;
  obs::Tracer tracer{mem, options};
  if (window > 0) {
    mem.run(window, /*stop_when_finished=*/!infinite);
  } else {
    mem.run(1'000'000, /*stop_when_finished=*/true);
    if (!mem.finished()) {
      std::cerr << "error: finite workload did not finish within 1000000 cycles; "
                   "pass --cycles\n";
      return 1;
    }
  }
  tracer.finish();

  const std::string path = args.out.empty() ? "trace.json" : args.out;
  tracer.save_chrome_trace(path);

  const sim::EventBuffer& buf = tracer.buffer();
  human(args) << "trace: " << mem.now() << " cycles, " << buf.recorded() << " events ("
              << buf.dropped() << " evicted) -> " << path
              << "\nload it at ui.perfetto.dev or chrome://tracing\n";
  if (const obs::ConflictAttribution* a = tracer.attribution()) {
    sim::ConflictTotals lost;
    for (std::size_t p = 0; p < a->port_count(); ++p) {
      const sim::ConflictTotals t = a->totals(p);
      lost.bank += t.bank;
      lost.simultaneous += t.simultaneous;
      lost.section += t.section;
    }
    human(args) << "attribution: " << a->total_grants() << " grants, lost cycles bank="
                << lost.bank << " simult=" << lost.simultaneous << " section=" << lost.section
                << "; " << a->episodes().size() << " barrier episode(s)";
    if (!a->episodes().empty()) {
      const obs::BarrierEpisode& ep = a->episodes().front();
      human(args) << ", first: port " << (ep.port + 1) << " onset " << ep.onset << " length "
                  << ep.length();
    }
    human(args) << '\n';
  }

  if (!args.json_path.empty()) {
    Json doc = cli_envelope("trace");
    doc["trace_path"] = path;
    doc["trace_schema"] = obs::kTraceSchema;
    doc["cycles"] = mem.now();
    Json ev = Json::object();
    ev["recorded"] = buf.recorded();
    ev["retained"] = buf.size();
    ev["dropped"] = buf.dropped();
    doc["events"] = std::move(ev);
    doc["ports"] = json_of_ports(mem.all_stats());
    doc["attribution"] =
        tracer.attribution() != nullptr ? tracer.attribution()->to_json() : Json{nullptr};
    if (!maybe_write_json(args, doc)) return 1;
  }
  return 0;
}

}  // namespace

namespace {

/// Distinct exit codes for typed failures (documented in usage()).
int exit_code_of(vpmem::ErrorCode code) {
  switch (code) {
    case vpmem::ErrorCode::config_invalid: return 3;
    case vpmem::ErrorCode::fault_plan_invalid: return 4;
    case vpmem::ErrorCode::deadline_exceeded: return 5;
    case vpmem::ErrorCode::livelock: return 6;
  }
  return 1;
}

/// --json error envelope: even failed invocations leave a parseable record.
void write_error_json(const Args& args, const std::string& command, const std::string& code,
                      const std::string& message) {
  if (args.json_path.empty()) return;
  Json doc = cli_envelope(command);
  Json error = Json::object();
  error["code"] = code;
  error["message"] = message;
  doc["error"] = std::move(error);
  (void)maybe_write_json(args, doc);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  if (!parse(argc, argv, args)) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "single") return cmd_single(args);
    if (cmd == "pair") return cmd_pair(args);
    if (cmd == "render") return cmd_render(args);
    if (cmd == "report") return cmd_report(args);
    if (cmd == "triad") return cmd_triad(args);
    if (cmd == "idim") return cmd_idim(args);
    if (cmd == "diagnose") return cmd_diagnose(args);
    if (cmd == "kernel") return cmd_kernel(args);
    if (cmd == "fuzz") return cmd_fuzz(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "faults") return cmd_faults(args);
    if (cmd == "trace") return cmd_trace(args);
  } catch (const vpmem::Error& e) {
    std::cerr << "error (" << to_string(e.code()) << "): " << e.what() << '\n';
    write_error_json(args, cmd, to_string(e.code()), e.what());
    return exit_code_of(e.code());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    write_error_json(args, cmd, "error", e.what());
    return 1;
  }
  return usage();
}
