// vpmem_cli — command-line front end to the library.
//
//   vpmem_cli single <m> <nc> <d>
//       One-stream analysis: return number, predicted and simulated b_eff.
//   vpmem_cli pair <m> <nc> <d1> <d2> [--same-cpu] [--sections s]
//       Two-stream classification plus the exact offset sweep.
//   vpmem_cli render <m> <nc> <d1> <d2> <b1> <b2> [cycles] [--same-cpu]
//            [--sections s] [--cyclic-priority] [--consecutive]
//       Draw the clock diagram in the paper's notation.
//   vpmem_cli triad <n> <inc> [--dedicated]
//       Run the Section IV triad on the X-MP model.
//   vpmem_cli idim <m> <nc> <stride> <arrays> <min_elements>
//       Recommend a COMMON array extent (the IDIM question).
//   vpmem_cli diagnose <m> <nc> <d1> <d2> [--same-cpu] [--sections s]
//            [--cyclic-priority] [--consecutive]
//       Conflict-regime map over every relative start position.
//   vpmem_cli kernel <name> <n> <inc> [--dedicated]
//       Run copy/scale/sum/daxpy/triad/gather/scatter on the X-MP model.
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "vpmem/vpmem.hpp"

namespace {

using namespace vpmem;

int usage() {
  std::cerr << "usage:\n"
               "  vpmem_cli single <m> <nc> <d>\n"
               "  vpmem_cli pair <m> <nc> <d1> <d2> [--same-cpu] [--sections s]\n"
               "  vpmem_cli render <m> <nc> <d1> <d2> <b1> <b2> [cycles] [--same-cpu]\n"
               "           [--sections s] [--cyclic-priority] [--consecutive]\n"
               "  vpmem_cli triad <n> <inc> [--dedicated]\n"
               "  vpmem_cli idim <m> <nc> <stride> <arrays> <min_elements>\n"
               "  vpmem_cli diagnose <m> <nc> <d1> <d2> [--same-cpu] [--sections s]\n"
               "  vpmem_cli kernel <name> <n> <inc> [--dedicated]\n";
  return 2;
}

struct Args {
  std::vector<i64> positional;
  std::string word;  // non-numeric positional (kernel name)
  bool same_cpu = false;
  bool dedicated = false;
  bool cyclic_priority = false;
  bool consecutive = false;
  i64 sections = 0;  // 0 = same as banks
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--same-cpu") {
      args.same_cpu = true;
    } else if (a == "--dedicated") {
      args.dedicated = true;
    } else if (a == "--cyclic-priority") {
      args.cyclic_priority = true;
    } else if (a == "--consecutive") {
      args.consecutive = true;
    } else if (a == "--sections") {
      if (++i >= argc) return false;
      args.sections = std::atoll(argv[i]);
    } else if (!a.empty() && (std::isdigit(static_cast<unsigned char>(a[0])) != 0)) {
      args.positional.push_back(std::atoll(a.c_str()));
    } else if (!a.empty() && a[0] != '-' && args.word.empty()) {
      args.word = a;
    } else {
      return false;
    }
  }
  return true;
}

sim::MemoryConfig config_from(const Args& args, i64 m, i64 nc) {
  return sim::MemoryConfig{
      .banks = m,
      .sections = args.sections > 0 ? args.sections : m,
      .bank_cycle = nc,
      .mapping = args.consecutive ? sim::SectionMapping::consecutive
                                  : sim::SectionMapping::cyclic,
      .priority = args.cyclic_priority ? sim::PriorityRule::cyclic : sim::PriorityRule::fixed};
}

int cmd_single(const Args& args) {
  if (args.positional.size() != 3) return usage();
  const auto [m, nc, d] = std::tuple{args.positional[0], args.positional[1], args.positional[2]};
  const core::SingleStreamReport r = core::analyze_single(config_from(args, m, nc), d);
  std::cout << "m=" << m << " nc=" << nc << " d=" << d << ": return number "
            << r.return_number << ", predicted b_eff " << r.predicted.str() << ", simulated "
            << r.simulated.str() << (r.consistent() ? "" : "  [MISMATCH]") << '\n';
  return 0;
}

int cmd_pair(const Args& args) {
  if (args.positional.size() != 4) return usage();
  const core::PairReport r =
      core::analyze_pair(config_from(args, args.positional[0], args.positional[1]),
                         args.positional[2], args.positional[3], args.same_cpu);
  std::cout << r.summary() << "\nby offset:";
  for (std::size_t b2 = 0; b2 < r.by_offset.size(); ++b2) {
    std::cout << ' ' << b2 << ':' << r.by_offset[b2].str();
  }
  std::cout << '\n';
  return 0;
}

int cmd_render(const Args& args) {
  if (args.positional.size() < 6) return usage();
  const i64 m = args.positional[0];
  const i64 nc = args.positional[1];
  const i64 cycles = args.positional.size() > 6 ? args.positional[6] : 3 * m;
  const auto streams = sim::two_streams(args.positional[4], args.positional[2],
                                        args.positional[5], args.positional[3], args.same_cpu);
  const auto cfg = config_from(args, m, nc);
  std::cout << trace::render_run(cfg, streams, cycles, cfg.sections != m);
  const auto ss = sim::find_steady_state(cfg, streams);
  std::cout << "steady-state b_eff = " << ss.bandwidth.str() << '\n';
  return 0;
}

int cmd_triad(const Args& args) {
  if (args.positional.size() != 2) return usage();
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = args.positional[0];
  setup.inc = args.positional[1];
  const xmp::TriadResult r = xmp::run_triad(machine, setup, !args.dedicated);
  std::cout << "triad n=" << setup.n << " inc=" << setup.inc
            << (args.dedicated ? " (dedicated)" : " (contended)") << ": " << r.cycles
            << " cycles, conflicts bank=" << r.conflicts.bank
            << " section=" << r.conflicts.section << " simult=" << r.conflicts.simultaneous;
  if (!args.dedicated) std::cout << ", other CPU b_eff " << cell(r.background_goodput(), 3);
  std::cout << '\n';
  return 0;
}

int cmd_diagnose(const Args& args) {
  if (args.positional.size() != 4) return usage();
  const auto cfg = config_from(args, args.positional[0], args.positional[1]);
  const core::RegimeSweep sweep =
      core::sweep_regimes(cfg, args.positional[2], args.positional[3], args.same_cpu);
  for (std::size_t b2 = 0; b2 < sweep.by_offset.size(); ++b2) {
    std::cout << "b2=" << b2 << ": " << sweep.by_offset[b2].summary() << '\n';
  }
  return 0;
}

int cmd_kernel(const Args& args) {
  if (args.positional.size() != 2 || args.word.empty()) return usage();
  const xmp::KernelSpec* spec = nullptr;
  for (const auto& k : xmp::all_kernels()) {
    if (k.name == args.word) spec = &k;
  }
  if (spec == nullptr) {
    std::cerr << "unknown kernel '" << args.word << "'; choose from:";
    for (const auto& k : xmp::all_kernels()) std::cerr << ' ' << k.name;
    std::cerr << '\n';
    return 2;
  }
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = args.positional[0];
  setup.inc = args.positional[1];
  const xmp::TriadResult r = xmp::run_kernel(machine, *spec, setup, !args.dedicated);
  std::cout << spec->name << " n=" << setup.n << " inc=" << setup.inc
            << (args.dedicated ? " (dedicated)" : " (contended)") << ": " << r.cycles
            << " cycles, conflicts bank=" << r.conflicts.bank
            << " section=" << r.conflicts.section << " simult=" << r.conflicts.simultaneous
            << '\n';
  return 0;
}

int cmd_idim(const Args& args) {
  if (args.positional.size() != 5) return usage();
  const auto cfg = config_from(args, args.positional[0], args.positional[1]);
  const i64 idim = core::recommend_idim(cfg, args.positional[2], args.positional[3],
                                        args.positional[4], args.same_cpu);
  const auto sweep = core::sweep_array_spacing(cfg, args.positional[2], args.positional[3],
                                               args.same_cpu);
  std::cout << "recommended IDIM " << idim << " (spacing " << mod_norm(idim, cfg.banks)
            << " mod " << cfg.banks << ", group b_eff " << sweep.best_bandwidth.str()
            << "; worst spacing " << sweep.worst_spacing << " -> "
            << sweep.worst_bandwidth.str() << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  if (!parse(argc, argv, args)) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "single") return cmd_single(args);
    if (cmd == "pair") return cmd_pair(args);
    if (cmd == "render") return cmd_render(args);
    if (cmd == "triad") return cmd_triad(args);
    if (cmd == "idim") return cmd_idim(args);
    if (cmd == "diagnose") return cmd_diagnose(args);
    if (cmd == "kernel") return cmd_kernel(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
