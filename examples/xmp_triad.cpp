// The Section IV experiment as an application: run the Fortran triad
//   DO 1 I = 1, N*INC, INC
// 1 A(I) = B(I) + C(I)*D(I)
// on the Cray X-MP model for every stride, with and without a competing
// CPU, and print the Fig. 10 series.
//
//   $ ./xmp_triad [n] [inc_max]
#include <cstdlib>
#include <iostream>

#include "vpmem/vpmem.hpp"

int main(int argc, char** argv) {
  using namespace vpmem;

  core::TriadExperiment experiment;
  experiment.setup.n = argc > 1 ? std::atoll(argv[1]) : 1024;
  experiment.inc_max = argc > 2 ? std::atoll(argv[2]) : 16;

  std::cout << "Cray X-MP model: " << experiment.machine.memory.banks << " banks, "
            << experiment.machine.memory.sections << " sections, nc = "
            << experiment.machine.memory.bank_cycle << ", VL = "
            << experiment.machine.vector_length << ", n = " << experiment.setup.n << "\n"
            << "Arrays A,B,C,D in COMMON with IDIM = " << experiment.setup.idim
            << " (start banks one apart)\n\n";

  const auto rows = core::run_triad_experiment(experiment);
  core::triad_table(rows).print(std::cout);

  // The paper's reading of the curves.
  std::cout << "\nObservations (compare Section IV):\n";
  const auto& base = rows.front();
  for (const auto& r : rows) {
    if (r.inc == 2 || r.inc == 3) {
      std::cout << "  INC=" << r.inc << ": " << cell(100.0 * (static_cast<double>(r.cycles_contended) /
                                                              static_cast<double>(base.cycles_contended) -
                                                          1.0),
                                                     1)
                << "% slower than INC=1 under contention (paper: barrier victim)\n";
    }
    if (r.inc == 6 || r.inc == 11) {
      std::cout << "  INC=" << r.inc
                << ": slowdown factor " << cell(r.interference_factor(), 3)
                << " (paper: triad nearly undisturbed, other CPU delayed)\n";
    }
  }
  return 0;
}
