// Multi-stream saturation: how many vector ports can an interleaved
// memory actually feed?  Reproduces the Section IV observation that six
// active ports saturate 16 banks with nc = 4 (6*nc = 24 > 16), and
// contrasts structured streams with random traffic.
//
//   $ ./multi_stream [banks] [bank_cycle] [max_ports]
#include <cstdlib>
#include <iostream>

#include "vpmem/vpmem.hpp"

int main(int argc, char** argv) {
  using namespace vpmem;

  const i64 m = argc > 1 ? std::atoll(argv[1]) : 16;
  const i64 nc = argc > 2 ? std::atoll(argv[2]) : 4;
  const i64 max_ports = argc > 3 ? std::atoll(argv[3]) : 8;
  const sim::MemoryConfig cfg{.banks = m, .sections = m, .bank_cycle = nc};

  std::cout << "Memory: m = " << m << ", nc = " << nc
            << "; service bound per period = m/nc = " << cell(static_cast<double>(m) / static_cast<double>(nc), 2)
            << "\n\n";

  Table table{{"ports", "stride-1 b_eff (nc-spaced)", "stride-1 b_eff (same bank)",
               "random b_eff", "utilization"},
              "Streams vs ports"};
  for (i64 p = 1; p <= max_ports; ++p) {
    const auto spaced = core::analyze_group(cfg, core::uniform_streams(p, 1, nc, m));
    const auto clumped = core::analyze_group(cfg, core::uniform_streams(p, 1, 0, m));
    const double random_bw = baseline::random_traffic_bandwidth(cfg, p, 1'000, 20'000);
    table.add_row({cell(static_cast<long long>(p)), spaced.bandwidth.str(),
                   clumped.bandwidth.str(), cell(random_bw, 3),
                   cell(100.0 * spaced.utilization(m, nc), 1) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nWith nc-spaced starts, stride-1 streams time-share every bank perfectly\n"
               "until p*nc > m; past that, added ports only redistribute the same m/nc\n"
               "grants per period. Random traffic never reaches the bound.\n";
  return 0;
}
