// Regenerates the paper's clock diagrams (Figs. 2-9) from live
// simulations, in the paper's own notation.
//
//   $ ./figure_gallery
#include <iostream>

#include "vpmem/vpmem.hpp"

namespace {

using namespace vpmem;

void show(const std::string& title, const sim::MemoryConfig& cfg,
          const std::vector<sim::StreamConfig>& streams, i64 cycles, bool sections = false) {
  std::cout << "=== " << title << " ===\n";
  std::cout << trace::render_run(cfg, streams, cycles, sections);
  const auto ss = sim::find_steady_state(cfg, streams);
  std::cout << "steady-state b_eff = " << ss.bandwidth.str() << " (period " << ss.period
            << ", transient " << ss.transient_cycles << ")\n\n";
}

}  // namespace

int main() {
  using namespace vpmem;

  show("Fig. 2 — conflict-free access (m=12, nc=3, d1=1, d2=7)",
       {.banks = 12, .sections = 12, .bank_cycle = 3}, sim::two_streams(0, 1, 3, 7), 36);

  show("Fig. 3 — barrier-situation (m=13, nc=6, d1=1, d2=6)",
       {.banks = 13, .sections = 13, .bank_cycle = 6}, sim::two_streams(0, 1, 0, 6), 39);

  show("Fig. 4 — double conflict: barrier not reached (b2=1)",
       {.banks = 13, .sections = 13, .bank_cycle = 6}, sim::two_streams(0, 1, 1, 6), 39);

  show("Fig. 5 — barrier-situation (m=13, nc=4, d1=1, d2=3, b2=7)",
       {.banks = 13, .sections = 13, .bank_cycle = 4}, sim::two_streams(0, 1, 7, 3), 39);

  show("Fig. 6 — inverted barrier-situation (b2=1)",
       {.banks = 13, .sections = 13, .bank_cycle = 4}, sim::two_streams(0, 1, 1, 3), 39);

  show("Fig. 7 — conflict-free with two sections (m=12, s=2, nc=2, offset 3)",
       {.banks = 12, .sections = 2, .bank_cycle = 2}, sim::two_streams(0, 1, 3, 1, true), 34,
       /*sections=*/true);

  show("Fig. 8(a) — linked conflict, fixed priority (m=12, s=3, nc=3)",
       {.banks = 12, .sections = 3, .bank_cycle = 3}, sim::two_streams(0, 1, 1, 1, true), 34,
       /*sections=*/true);

  show("Fig. 8(b) — linked conflict resolved by cyclic priority",
       {.banks = 12, .sections = 3, .bank_cycle = 3, .priority = sim::PriorityRule::cyclic},
       sim::two_streams(0, 1, 1, 1, true), 34, /*sections=*/true);

  show("Fig. 9 — linked conflict resolved by consecutive-bank sections",
       {.banks = 12, .sections = 3, .bank_cycle = 3,
        .mapping = sim::SectionMapping::consecutive},
       sim::two_streams(0, 1, 1, 1, true), 34, /*sections=*/true);

  return 0;
}
