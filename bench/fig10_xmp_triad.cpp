// Fig. 10: the Section IV Cray X-MP experiment.  The triad
//   A(I) = B(I) + C(I)*D(I),  I = 1, N*INC, INC,  n = 1024
// runs on CPU 0 for INC = 1..16 while CPU 1 saturates its three ports with
// stride-1 streams.  Series printed: (a) execution time contended,
// (b) execution time dedicated, (c) bank conflicts, (d) section conflicts,
// (e) simultaneous conflicts — all from the cycle-level model.
//
// Paper shape to compare against: best at INC in {1, 6, 11}; INC=2 about
// +50% and INC=3 about +100% over INC=1 under contention (barrier
// victims); even strides 4/8/16 slowest (self-conflicts, r < nc).
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_figure() {
  core::TriadExperiment experiment;  // defaults: n = 1024, INC 1..16
  const auto rows = core::run_triad_experiment(experiment);
  core::triad_table(rows).print(std::cout);
  std::cout << '\n';
  // The paper plots these as curves over INC; render the same series.
  BarChart fig_a{"Fig. 10(a) — execution time, other CPU active (clock periods)"};
  BarChart fig_b{"Fig. 10(b) — execution time, dedicated (clock periods)"};
  BarChart fig_c{"Fig. 10(c) — bank conflicts (contended run)"};
  for (const auto& r : rows) {
    const std::string label = "INC=" + std::to_string(r.inc);
    fig_a.add(label, static_cast<double>(r.cycles_contended));
    fig_b.add(label, static_cast<double>(r.cycles_dedicated));
    fig_c.add(label, static_cast<double>(r.conflicts_contended.bank));
  }
  fig_a.print(std::cout);
  std::cout << '\n';
  fig_b.print(std::cout);
  std::cout << '\n';
  fig_c.print(std::cout);
  std::cout << "\nCSV:\n";
  core::triad_table(rows).print_csv(std::cout);
  std::cout << '\n';
}

void bm_triad_dedicated(benchmark::State& state) {
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = 1024;
  setup.inc = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmp::run_triad(machine, setup, /*other_cpu_active=*/false));
  }
}
BENCHMARK(bm_triad_dedicated)->Arg(1)->Arg(2)->Arg(8);

void bm_triad_contended(benchmark::State& state) {
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = 1024;
  setup.inc = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmp::run_triad(machine, setup, /*other_cpu_active=*/true));
  }
}
BENCHMARK(bm_triad_contended)->Arg(1)->Arg(2)->Arg(8);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
