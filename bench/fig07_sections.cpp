// Fig. 7: conflict-free access to a 12-way memory with two sections
// (nc=2, d1=d2=1, same CPU).  Eq. 31 fails (nc*d1 = 2 = s), so the start
// offset must be (nc+1)*d1 = 3 per eq. 32.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

const sim::MemoryConfig kConfig{.banks = 12, .sections = 2, .bank_cycle = 2};
const std::vector<sim::StreamConfig> kStreams = sim::two_streams(0, 1, 3, 1, /*same_cpu=*/true);

void print_figure() {
  bench::print_two_stream_figure(
      "Fig. 7 — conflict-free access, 2 sections (m=12, s=2, nc=2, d1=d2=1, b2=3)", kConfig,
      kStreams, 34, "b_eff = 2 via eq. 32 offset (nc+1)*d1", /*show_sections=*/true);
  i64 offset = -1;
  const bool ok = analytic::conflict_free_with_sections(12, 2, 2, 1, 1, &offset);
  std::cout << "conflict_free_with_sections -> " << ok << ", offset " << offset << "\n";
  // The eq. 31 offset nc*d1 = 2 would alternate section conflicts instead.
  const auto bad = sim::find_steady_state(kConfig, sim::two_streams(0, 1, 2, 1, true));
  std::cout << "with offset nc*d1 = 2 instead: b_eff = " << bad.bandwidth.str()
            << " (section conflicts per period: " << bad.conflicts_in_period.section << ")\n\n";
}

void bm_engine(benchmark::State& state) {
  bench::run_engine_benchmark(state, kConfig, kStreams);
}
BENCHMARK(bm_engine);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
