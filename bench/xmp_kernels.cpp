// Companion experiments ([10]): the classic vector kernels (copy, scale,
// sum, daxpy, triad) across strides on the X-MP model, dedicated and
// contended.  The triad column of this table is Fig. 10 in miniature; the
// other kernels show that the stride story is workload-independent while
// the absolute cost scales with operand count.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_figure() {
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = 1024;
  Table table{{"kernel", "INC", "cycles (dedicated)", "cycles (contended)", "slowdown",
               "bank conflicts"},
              "Vector kernels on the X-MP model (n = 1024)"};
  for (const auto& spec : xmp::all_kernels()) {
    for (i64 inc : {i64{1}, i64{2}, i64{6}, i64{8}}) {
      setup.inc = inc;
      const auto dedicated = xmp::run_kernel(machine, spec, setup, false);
      const auto contended = xmp::run_kernel(machine, spec, setup, true);
      table.add_row({spec.name, cell(static_cast<long long>(inc)),
                     cell(static_cast<long long>(dedicated.cycles)),
                     cell(static_cast<long long>(contended.cycles)),
                     cell(static_cast<double>(contended.cycles) /
                              static_cast<double>(dedicated.cycles),
                          3),
                     cell(static_cast<long long>(contended.conflicts.bank))});
    }
  }
  table.print(std::cout);
  std::cout << '\n';
}

void bm_kernel(benchmark::State& state) {
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = 1024;
  const auto& spec = xmp::all_kernels()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmp::run_kernel(machine, spec, setup, true));
  }
  state.SetLabel(spec.name);
}
BENCHMARK(bm_kernel)->DenseRange(0, 6);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
