// Baseline comparison: random-reference traffic (the model of the paper's
// refs [1]-[5]) vs vector-mode constant-stride streams on the same
// memory.  Quantifies the premise of Section I: vector processors get
// their bandwidth from *structured* access, which the paper's theorems
// characterize; random traffic pays steady conflict tax.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_figure() {
  const i64 m = 16;
  const i64 nc = 4;
  const sim::MemoryConfig cfg{.banks = m, .sections = m, .bank_cycle = nc};
  Table table{{"ports", "bound", "vector best (stride 1)", "random (queued sim)",
               "accept model (nc=1)"},
              "Random-reference baseline vs vector mode (m=16, nc=4)"};
  for (i64 p : {1, 2, 3, 4, 6, 8}) {
    Rational vector_best{0};
    for (i64 stagger = 0; stagger < m; ++stagger) {
      const auto r = core::analyze_group(cfg, core::uniform_streams(p, 1, stagger, m));
      vector_best = std::max(vector_best, r.bandwidth);
    }
    const double random_bw = baseline::random_traffic_bandwidth(cfg, p, 2'000, 50'000);
    table.add_row({cell(static_cast<long long>(p)),
                   cell(baseline::service_bound(m, nc, p), 2), vector_best.str(),
                   cell(random_bw, 3), cell(baseline::acceptance_model(m, p), 3)});
  }
  table.print(std::cout);
  std::cout << "\n(vector mode reaches the service bound with well-placed streams; random\n"
               " traffic loses ~" << cell(100.0 * (1.0 - baseline::random_traffic_bandwidth(
                                                             cfg, 4, 2'000, 50'000) /
                                                             4.0),
                                          0)
            << "% at p = 4.  The nc=1 acceptance model overestimates the\n"
               " queued nc=4 simulation, as documented in random_traffic.hpp.)\n\n";
}

void bm_random_traffic(benchmark::State& state) {
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::random_traffic_bandwidth(cfg, state.range(0), 500, 5000));
  }
}
BENCHMARK(bm_random_traffic)->Arg(2)->Arg(6);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
