// Ablation: effective bandwidth vs number of active ports.  Section IV
// observes that with all six ports streaming, "access conflicts are bound
// to occur since 6*nc = 24 > 16" — the service bound m/nc caps b_eff.
// This sweep measures stride-1 groups against that bound for the best and
// worst start staggers.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

/// One campaign point: the full stagger sweep for one port count.
Json sweep_port_count(const sim::MemoryConfig& cfg, i64 p) {
  Rational best{0};
  Rational worst{static_cast<i64>(p)};
  i64 worst_conflicts = 0;
  for (i64 stagger = 0; stagger < cfg.banks; ++stagger) {
    const auto r = core::analyze_group(cfg, core::uniform_streams(p, 1, stagger, cfg.banks));
    if (r.bandwidth > best) best = r.bandwidth;
    if (r.bandwidth < worst) {
      worst = r.bandwidth;
      worst_conflicts = r.conflicts_in_period.total();
    }
  }
  Json out = Json::object();
  out["ports"] = p;
  out["best"] = best.str();
  out["worst"] = worst.str();
  out["worst_conflicts"] = worst_conflicts;
  return out;
}

void print_figure() {
  const i64 m = 16;
  const i64 nc = 4;
  const sim::MemoryConfig cfg{.banks = m, .sections = m, .bank_cycle = nc};
  Table table{{"ports", "bound min(p, m/nc)", "b_eff best stagger", "b_eff worst stagger",
               "conflicts/period (worst)"},
              "Ablation — port count (m=16, nc=4, stride-1 streams, one port per CPU)"};
  std::vector<bench::BenchPoint> points;
  for (i64 p = 1; p <= 8; ++p) {
    points.push_back({"p=" + std::to_string(p),
                      "ablate_port_count m=16 nc=4 p=" + std::to_string(p),
                      [cfg, p] { return sweep_port_count(cfg, p); }});
  }
  const exec::CampaignSummary summary =
      bench::run_bench_campaign("ablate_port_count", std::move(points));
  for (const auto& r : summary.results) {
    if (r.status != exec::JobStatus::ok) {
      std::cerr << "point " << r.id << " " << exec::to_string(r.status) << ": " << r.error
                << '\n';
      continue;
    }
    const Json& row = r.result;
    const i64 p = row.at("ports").as_int();
    table.add_row({cell(static_cast<long long>(p)),
                   cell(baseline::service_bound(m, nc, p), 2), row.at("best").as_string(),
                   row.at("worst").as_string(),
                   cell(static_cast<long long>(row.at("worst_conflicts").as_int()))});
  }
  table.print(std::cout);
  std::cout << "\n(the bound m/nc = 4 is achieved exactly at p = 4 with nc-spaced starts;\n"
               " beyond that extra ports only add conflicts — the Section IV saturation)\n\n";
}

void bm_group(benchmark::State& state) {
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  const auto streams = core::uniform_streams(state.range(0), 1, 4, 16);
  bench::run_engine_benchmark(state, cfg, streams);
}
BENCHMARK(bm_group)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
