// Ablation: effective bandwidth vs number of active ports.  Section IV
// observes that with all six ports streaming, "access conflicts are bound
// to occur since 6*nc = 24 > 16" — the service bound m/nc caps b_eff.
// This sweep measures stride-1 groups against that bound for the best and
// worst start staggers.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_figure() {
  const i64 m = 16;
  const i64 nc = 4;
  const sim::MemoryConfig cfg{.banks = m, .sections = m, .bank_cycle = nc};
  Table table{{"ports", "bound min(p, m/nc)", "b_eff best stagger", "b_eff worst stagger",
               "conflicts/period (worst)"},
              "Ablation — port count (m=16, nc=4, stride-1 streams, one port per CPU)"};
  for (i64 p = 1; p <= 8; ++p) {
    Rational best{0};
    Rational worst{static_cast<i64>(p)};
    i64 worst_conflicts = 0;
    for (i64 stagger = 0; stagger < m; ++stagger) {
      const auto r = core::analyze_group(cfg, core::uniform_streams(p, 1, stagger, m));
      if (r.bandwidth > best) best = r.bandwidth;
      if (r.bandwidth < worst) {
        worst = r.bandwidth;
        worst_conflicts = r.conflicts_in_period.total();
      }
    }
    table.add_row({cell(static_cast<long long>(p)),
                   cell(baseline::service_bound(m, nc, p), 2), best.str(), worst.str(),
                   cell(static_cast<long long>(worst_conflicts))});
  }
  table.print(std::cout);
  std::cout << "\n(the bound m/nc = 4 is achieved exactly at p = 4 with nc-spaced starts;\n"
               " beyond that extra ports only add conflicts — the Section IV saturation)\n\n";
}

void bm_group(benchmark::State& state) {
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  const auto streams = core::uniform_streams(state.range(0), 1, 4, 16);
  bench::run_engine_benchmark(state, cfg, streams);
}
BENCHMARK(bm_group)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
