// Ablation: cyclic vs consecutive bank->section mapping (the design choice
// behind Fig. 9), swept over strides for two same-CPU streams.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_figure() {
  Table table{{"d1", "d2", "cyclic b_eff (min/max)", "consecutive b_eff (min/max)"},
              "Ablation — section mapping (m=12, s=3, nc=3, same CPU, over all offsets)"};
  for (i64 d1 : {1, 2, 5}) {
    for (i64 d2 : {1, 2, 5, 7}) {
      if (d2 < d1) continue;
      sim::MemoryConfig cyc{.banks = 12, .sections = 3, .bank_cycle = 3};
      sim::MemoryConfig con{.banks = 12,
                            .sections = 3,
                            .bank_cycle = 3,
                            .mapping = sim::SectionMapping::consecutive};
      const auto a = sim::sweep_start_offsets(cyc, d1, d2, /*same_cpu=*/true);
      const auto b = sim::sweep_start_offsets(con, d1, d2, /*same_cpu=*/true);
      table.add_row({cell(static_cast<long long>(d1)), cell(static_cast<long long>(d2)),
                     a.min_bandwidth.str() + " / " + a.max_bandwidth.str(),
                     b.min_bandwidth.str() + " / " + b.max_bandwidth.str()});
    }
  }
  table.print(std::cout);
  std::cout << "(consecutive mapping prevents the d1=d2=1 linked conflict; cyclic mapping\n"
               " serves strided access to one section's banks better)\n\n";
}

void bm_cyclic_mapping(benchmark::State& state) {
  bench::run_engine_benchmark(state, {.banks = 12, .sections = 3, .bank_cycle = 3},
                              sim::two_streams(0, 1, 1, 1, true));
}
BENCHMARK(bm_cyclic_mapping);

void bm_consecutive_mapping(benchmark::State& state) {
  bench::run_engine_benchmark(state,
                              {.banks = 12,
                               .sections = 3,
                               .bank_cycle = 3,
                               .mapping = sim::SectionMapping::consecutive},
                              sim::two_streams(0, 1, 1, 1, true));
}
BENCHMARK(bm_consecutive_mapping);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
