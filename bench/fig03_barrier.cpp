// Fig. 3: barrier-situation (m=13, nc=6, d1=1, d2=6, b2=0).  Stream 1 runs
// conflict-free; stream 2 is delayed at every return: b_eff = 1 + 1/6.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

const sim::MemoryConfig kConfig{.banks = 13, .sections = 13, .bank_cycle = 6};
const std::vector<sim::StreamConfig> kStreams = sim::two_streams(0, 1, 0, 6);

void print_figure() {
  bench::print_two_stream_figure("Fig. 3 — barrier-situation (m=13, nc=6, d1=1, d2=6)",
                                 kConfig, kStreams, 39,
                                 "b_eff = 1 + d1/d2 = 7/6; stream 2 delayed");
  std::cout << "Theorem 4 (eq. 17) predicts a barrier placement exists: "
            << (analytic::barrier_possible(13, 6, 1, 6) ? "yes" : "no") << '\n'
            << "Eq. 29 bandwidth: " << analytic::barrier_bandwidth(1, 6).str() << "\n\n";
}

void bm_engine(benchmark::State& state) {
  bench::run_engine_benchmark(state, kConfig, kStreams);
}
BENCHMARK(bm_engine);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
