// Fig. 4: the same pair as Fig. 3 with b2 = 1 falls into a *double
// conflict* — mutual delays, barrier never reached.  Theorem 5's guard
// (nc-1)(d2+d1) < m fails here (35 >= 13).
#include "bench_common.hpp"

namespace {

using namespace vpmem;

const sim::MemoryConfig kConfig{.banks = 13, .sections = 13, .bank_cycle = 6};
const std::vector<sim::StreamConfig> kStreams = sim::two_streams(0, 1, 1, 6);

void print_figure() {
  bench::print_two_stream_figure(
      "Fig. 4 — double conflict: barrier-situation is not reached (b2=1)", kConfig, kStreams,
      39, "mutual delays, b_eff < 7/6");
  std::cout << "Theorem 5 guard (nc-1)(d2+d1) < m: "
            << (analytic::double_conflict_impossible(13, 6, 1, 6) ? "holds" : "fails (35 >= 13)")
            << "\n\n";
  // Contrast with Fig. 3 across every offset.
  const sim::OffsetSweep sweep = sim::sweep_start_offsets(kConfig, 1, 6);
  Table table{{"b2", "b_eff"}, "Offset sweep: barrier (7/6) vs double-conflict cycles"};
  for (std::size_t b2 = 0; b2 < sweep.by_offset.size(); ++b2) {
    table.add_row({cell(static_cast<long long>(b2)), sweep.by_offset[b2].str()});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void bm_engine(benchmark::State& state) {
  bench::run_engine_benchmark(state, kConfig, kStreams);
}
BENCHMARK(bm_engine);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
