// Engine throughput: cycles/second of the simulator core across port
// counts and memory sizes, plus the cost of steady-state detection and a
// full triad run.  Pure performance benchmark (no figure reproduction).
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_figure() {
  std::cout << "==== Simulator engine throughput (google-benchmark below) ====\n\n";
}

std::vector<sim::StreamConfig> make_streams(i64 ports, i64 m) {
  std::vector<sim::StreamConfig> streams;
  for (i64 p = 0; p < ports; ++p) {
    streams.push_back(sim::StreamConfig{
        .start_bank = (p * 3) % m, .distance = 1 + p % 3, .cpu = p % 2});
  }
  return streams;
}

void bm_step(benchmark::State& state) {
  const i64 ports = state.range(0);
  const i64 m = state.range(1);
  sim::MemorySystem mem{{.banks = m, .sections = m / 4, .bank_cycle = 4},
                        make_streams(ports, m)};
  for (auto _ : state) mem.step();
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * ports);
  state.counters["cycles_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(bm_step)->Args({1, 16})->Args({2, 16})->Args({6, 16})->Args({6, 64})->Args({16, 256});

// The same workloads with the full tracing v2 stack attached (bounded
// event buffer + attribution fold on one hook).  Comparing
// cycles_per_second against the matching bm_step row gives the tracer
// overhead; steady_perf_test asserts the ratio stays under 2x.
void bm_step_traced(benchmark::State& state) {
  const i64 ports = state.range(0);
  const i64 m = state.range(1);
  sim::MemorySystem mem{{.banks = m, .sections = m / 4, .bank_cycle = 4},
                        make_streams(ports, m)};
  obs::Tracer tracer{mem};
  for (auto _ : state) mem.step();
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * ports);
  state.counters["cycles_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(tracer.buffer().recorded()), benchmark::Counter::kIsRate);
}
BENCHMARK(bm_step_traced)->Args({2, 16})->Args({6, 64})->Args({16, 256});

void bm_find_steady_state(benchmark::State& state) {
  const sim::MemoryConfig cfg{.banks = state.range(0), .sections = state.range(0),
                              .bank_cycle = 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::find_steady_state(cfg, sim::two_streams(0, 1, 1, 3)));
  }
}
BENCHMARK(bm_find_steady_state)->Arg(16)->Arg(64)->Arg(256);

void bm_triad_n1024(benchmark::State& state) {
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.inc = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmp::run_triad(machine, setup, /*other_cpu_active=*/true));
  }
}
BENCHMARK(bm_triad_n1024);

void bm_offset_sweep(benchmark::State& state) {
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::sweep_start_offsets(cfg, 1, 6));
  }
}
BENCHMARK(bm_offset_sweep);

}  // namespace

VPMEM_FIGURE_MAIN_JSON(print_figure, "BENCH_perf_sim_engine.json")
