// Fig. 2: conflict-free access of two streams (m=12, nc=3, d1=1, d2=7).
// Paper shows zero conflicts and b_eff = 2 (Theorem 3: gcd(12,6)=6 >= 2*3).
#include "bench_common.hpp"

namespace {

using namespace vpmem;

const sim::MemoryConfig kConfig{.banks = 12, .sections = 12, .bank_cycle = 3};
const std::vector<sim::StreamConfig> kStreams = sim::two_streams(0, 1, 3, 7);

void print_figure() {
  bench::print_two_stream_figure("Fig. 2 — conflict-free access (m=12, nc=3, d1=1, d2=7)",
                                 kConfig, kStreams, 36, "b_eff = 2, no conflicts");
  // Synchronization: every relative start position converges to b_eff = 2.
  const sim::OffsetSweep sweep = sim::sweep_start_offsets(kConfig, 1, 7);
  Table table{{"b2", "b_eff"}, "Offset sweep (synchronization property of Theorem 3)"};
  for (std::size_t b2 = 0; b2 < sweep.by_offset.size(); ++b2) {
    table.add_row({cell(static_cast<long long>(b2)), sweep.by_offset[b2].str()});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void bm_engine(benchmark::State& state) {
  bench::run_engine_benchmark(state, kConfig, kStreams);
}
BENCHMARK(bm_engine);

void bm_steady_state(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::find_steady_state(kConfig, kStreams));
  }
}
BENCHMARK(bm_steady_state);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
