// Ablation: the conclusion's "multitasking option".  Barrier-situations
// are "a problem of the access environment and cannot be alleviated by
// architectural means"; the suggested fix is an environment of *uniform*
// streams — both CPUs cooperating on the same loop.  This bench compares,
// per stride: one CPU against a foreign stride-1 workload (Fig. 10a), one
// CPU dedicated (Fig. 10b), and the loop multitasked across both CPUs.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_figure() {
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = 1024;
  Table table{{"INC", "contended (a)", "dedicated (b)", "multitasked", "speedup vs (b)",
               "vs (a)"},
              "Ablation — multitasking the triad across both CPUs (n = 1024)"};
  for (i64 inc = 1; inc <= 8; ++inc) {
    setup.inc = inc;
    const i64 contended = xmp::run_triad(machine, setup, true).cycles;
    const i64 dedicated = xmp::run_triad(machine, setup, false).cycles;
    const auto multi = xmp::run_kernel_multitasked(machine, xmp::triad_kernel(), setup);
    table.add_row({cell(static_cast<long long>(inc)), cell(static_cast<long long>(contended)),
                   cell(static_cast<long long>(dedicated)),
                   cell(static_cast<long long>(multi.cycles)), cell(multi.speedup(dedicated), 3),
                   cell(multi.speedup(contended), 3)});
  }
  table.print(std::cout);
  std::cout << "\n(uniform cooperating streams dodge the barrier-situations entirely: the\n"
               " multitasked INC=2/3 rows run ~4-6x faster than the hostile environment)\n\n";
}

void bm_multitask(benchmark::State& state) {
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = 1024;
  setup.inc = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmp::run_kernel_multitasked(machine, xmp::triad_kernel(), setup));
  }
}
BENCHMARK(bm_multitask)->Arg(1)->Arg(2);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
