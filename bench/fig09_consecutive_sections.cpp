// Fig. 9: the same linked-conflict workload as Fig. 8(a), but with m/s
// *consecutive* banks per section (Cheung & Smith's proposal): the linked
// conflict disappears under fixed priority, b_eff = 2.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

const sim::MemoryConfig kConfig{.banks = 12,
                                .sections = 3,
                                .bank_cycle = 3,
                                .mapping = sim::SectionMapping::consecutive};
const std::vector<sim::StreamConfig> kStreams = sim::two_streams(0, 1, 1, 1, /*same_cpu=*/true);

void print_figure() {
  bench::print_two_stream_figure(
      "Fig. 9 — linked conflict removed by consecutive-bank sections", kConfig, kStreams, 34,
      "b_eff = 2", /*show_sections=*/true);
}

void bm_engine(benchmark::State& state) {
  bench::run_engine_benchmark(state, kConfig, kStreams);
}
BENCHMARK(bm_engine);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
