// Ablation: relative array placement (IDIM mod m).  Section IV fixes the
// COMMON layout with IDIM = 16*1024 + 1 so A, B, C, D start one bank
// apart.  This bench re-runs the triad for every IDIM residue — including
// the aliasing IDIM = 16*1024 (all arrays in one bank) — and sweeps the
// abstract spacing question with the steady-state group model.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_figure() {
  xmp::XmpConfig machine;
  xmp::TriadSetup setup;
  setup.n = 1024;
  setup.inc = 1;
  Table table{{"IDIM", "IDIM mod 16", "cycles (dedicated)", "cycles (contended)",
               "bank conflicts (contended)"},
              "Ablation — triad vs array spacing (m=16, nc=4, INC=1, n=1024)"};
  for (i64 r = 0; r < 16; ++r) {
    setup.idim = 16 * 1024 + r;
    const auto dedicated = xmp::run_triad(machine, setup, false);
    const auto contended = xmp::run_triad(machine, setup, true);
    table.add_row({cell(static_cast<long long>(setup.idim)), cell(static_cast<long long>(r)),
                   cell(static_cast<long long>(dedicated.cycles)),
                   cell(static_cast<long long>(contended.cycles)),
                   cell(static_cast<long long>(contended.conflicts.bank))});
  }
  table.print(std::cout);

  std::cout << "\nSteady-state group model (4 infinite streams):\n";
  for (i64 d : {i64{1}, i64{2}, i64{4}}) {
    const auto spacing = core::sweep_array_spacing(machine.memory, d, 4);
    std::cout << "  stride " << d << ": best spacing " << spacing.best_spacing << " -> b_eff "
              << spacing.best_bandwidth.str() << "; worst spacing " << spacing.worst_spacing
              << " -> " << spacing.worst_bandwidth.str() << "; recommended IDIM >= 16384: "
              << core::recommend_idim(machine.memory, d, 4, 16 * 1024) << "\n";
  }
  std::cout << "(stride 1 self-organizes from any spacing; even strides confine each\n"
            << " stream to a residue class, so odd spacings that split the arrays across\n"
            << " classes — like the paper's IDIM = 16*1024 + 1 — are required)\n\n";
}

void bm_spacing_sweep(benchmark::State& state) {
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sweep_array_spacing(cfg, 1, 4));
  }
}
BENCHMARK(bm_spacing_sweep);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
