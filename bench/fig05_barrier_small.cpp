// Fig. 5: barrier-situation satisfying both eq. 17 and eq. 22
// (m=13, nc=4, d1=1, d2=3, b1=0, b2=7): b_eff = 1 + 1/3 = 4/3.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

const sim::MemoryConfig kConfig{.banks = 13, .sections = 13, .bank_cycle = 4};
const std::vector<sim::StreamConfig> kStreams = sim::two_streams(0, 1, 7, 3);

void print_figure() {
  bench::print_two_stream_figure(
      "Fig. 5 — barrier-situation (m=13, nc=4, d1=1, d2=3, b2=7)", kConfig, kStreams, 39,
      "b_eff = 4/3; no double conflict (Theorem 5: 12 < 13)");
  std::cout << "eq. 17 barrier possible: " << analytic::barrier_possible(13, 4, 1, 3)
            << ", eq. 22 double conflict impossible: "
            << analytic::double_conflict_impossible(13, 4, 1, 3) << "\n\n";
}

void bm_engine(benchmark::State& state) {
  bench::run_engine_benchmark(state, kConfig, kStreams);
}
BENCHMARK(bm_engine);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
