// Ablation: effective bandwidth vs number of banks for a fixed stride mix.
// The conclusion advises array dimensions relatively prime to m; this
// sweep shows how prime bank counts (m = 13, 17) smooth out the stride
// sensitivity that power-of-two bank counts (m = 8, 16) exhibit.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

/// One campaign point: the full stride/offset sweep for one bank count.
Json sweep_bank_count(i64 m, i64 nc) {
  const sim::MemoryConfig cfg{.banks = m, .sections = m, .bank_cycle = nc};
  Rational worst_single{1};
  for (i64 d = 1; d <= 8; ++d) {
    worst_single = std::min(worst_single, analytic::single_stream_bandwidth(m, d, nc));
  }
  Rational worst_pair{2};
  i64 full = 0;
  i64 count = 0;
  for (i64 d1 = 1; d1 <= 8; ++d1) {
    for (i64 d2 = d1; d2 <= 8; ++d2) {
      const auto sweep = sim::sweep_start_offsets(cfg, d1, d2);
      worst_pair = std::min(worst_pair, sweep.min_bandwidth);
      ++count;
      if (sweep.min_bandwidth == Rational{2}) ++full;
    }
  }
  Json out = Json::object();
  out["m"] = m;
  out["worst_single"] = worst_single.str();
  out["worst_pair"] = worst_pair.str();
  out["full"] = full;
  out["count"] = count;
  return out;
}

void print_figure() {
  const i64 nc = 4;
  Table table{{"m", "worst single-stream b_eff (d=1..8)", "worst pair b_eff (d1,d2 in 1..8)",
               "pairs at full b_eff"},
              "Ablation — bank count (nc = 4, offsets swept, two CPUs)"};
  // Each bank count is one job of a shared campaign, so VPMEM_BENCH_JOBS
  // parallelizes the figure and VPMEM_BENCH_JOURNAL makes it resumable.
  std::vector<bench::BenchPoint> points;
  for (i64 m : {8, 12, 13, 16, 17, 24, 32}) {
    points.push_back({"m=" + std::to_string(m), "ablate_bank_count nc=4 m=" + std::to_string(m),
                      [m, nc] { return sweep_bank_count(m, nc); }});
  }
  const exec::CampaignSummary summary =
      bench::run_bench_campaign("ablate_bank_count", std::move(points));
  for (const auto& r : summary.results) {
    if (r.status != exec::JobStatus::ok) {
      std::cerr << "point " << r.id << " " << exec::to_string(r.status) << ": " << r.error
                << '\n';
      continue;
    }
    const Json& row = r.result;
    table.add_row({cell(static_cast<long long>(row.at("m").as_int())),
                   row.at("worst_single").as_string(), row.at("worst_pair").as_string(),
                   cell(static_cast<long long>(row.at("full").as_int())) + "/" +
                       cell(static_cast<long long>(row.at("count").as_int()))});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void bm_sweep_m16(benchmark::State& state) {
  const sim::MemoryConfig cfg{.banks = 16, .sections = 16, .bank_cycle = 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::sweep_start_offsets(cfg, 1, 3));
  }
}
BENCHMARK(bm_sweep_m16);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
