// Fig. 8: the linked conflict (m=12, s=3, nc=3, d1=d2=1, starts 0 and 1).
// (a) fixed priority: alternating bank and section conflicts, b_eff = 3/2.
// (b) cyclic priority: the conflict resolves, b_eff = 2.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

const sim::MemoryConfig kFixed{.banks = 12, .sections = 3, .bank_cycle = 3};
const sim::MemoryConfig kCyclic{.banks = 12,
                                .sections = 3,
                                .bank_cycle = 3,
                                .priority = sim::PriorityRule::cyclic};
const std::vector<sim::StreamConfig> kStreams = sim::two_streams(0, 1, 1, 1, /*same_cpu=*/true);

void print_figure() {
  bench::print_two_stream_figure("Fig. 8(a) — linked conflict, fixed priority", kFixed,
                                 kStreams, 34, "b_eff = 3/2", /*show_sections=*/true);
  bench::print_two_stream_figure("Fig. 8(b) — linked conflict resolved by cyclic priority",
                                 kCyclic, kStreams, 34, "b_eff = 2", /*show_sections=*/true);
}

void bm_fixed(benchmark::State& state) { bench::run_engine_benchmark(state, kFixed, kStreams); }
BENCHMARK(bm_fixed);

void bm_cyclic(benchmark::State& state) {
  bench::run_engine_benchmark(state, kCyclic, kStreams);
}
BENCHMARK(bm_cyclic);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
