// Fig. 6: the Fig. 5 barrier is not unique — with b2 = 1 it inverts and
// stream 2 delays stream 1 (Theorem 7's uniqueness test fails:
// 5*3 mod 13 = 2 is not < (5-4)*1 = 1).
#include "bench_common.hpp"

namespace {

using namespace vpmem;

const sim::MemoryConfig kConfig{.banks = 13, .sections = 13, .bank_cycle = 4};
const std::vector<sim::StreamConfig> kStreams = sim::two_streams(0, 1, 1, 3);

void print_figure() {
  bench::print_two_stream_figure(
      "Fig. 6 — inverted barrier-situation (m=13, nc=4, d1=1, d2=3, b2=1)", kConfig, kStreams,
      39, "stream 2 runs freely, stream 1 delayed");
  std::cout << "Theorem 7 uniqueness: "
            << (analytic::unique_barrier_thm7(13, 4, 1, 3) ? "unique" : "not unique")
            << " — hence the inversion.\n\n";
}

void bm_engine(benchmark::State& state) {
  bench::run_engine_benchmark(state, kConfig, kStreams);
}
BENCHMARK(bm_engine);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
