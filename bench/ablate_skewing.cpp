// Ablation: storage scheme x access pattern.  The conclusion recommends
// skewing schemes ([1], [4], [11], [12]) when rows or diagonals of
// Fortran arrays must be accessed; this table quantifies the advice for a
// 64x64 matrix on the X-MP geometry (m = 16, nc = 4) and on a prime bank
// count (m = 17), cross-checked against the simulator via explicit bank
// sequences.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_scheme_table(i64 m, i64 nc, const skew::MatrixLayout& layout) {
  std::vector<std::pair<std::string, skew::StorageScheme>> schemes{
      {"interleaved lda=" + std::to_string(layout.lda), skew::StorageScheme{}},
  };
  const skew::MatrixLayout padded{.rows = layout.rows, .cols = layout.cols,
                                  .lda = analytic::safe_leading_dimension(layout.lda, m)};
  schemes.emplace_back("interleaved lda=" + std::to_string(padded.lda), skew::StorageScheme{});
  if (const auto delta = skew::find_good_skew(m, nc)) {
    schemes.emplace_back("skewed delta=" + std::to_string(*delta),
                         skew::StorageScheme{.kind = skew::SchemeKind::skewed, .skew = *delta});
  }

  Table table{{"scheme", "pattern", "distance", "r", "analytic b_eff", "simulated b_eff"},
              "Ablation — storage scheme (m=" + std::to_string(m) +
                  ", nc=" + std::to_string(nc) + ", " + std::to_string(layout.rows) + "x" +
                  std::to_string(layout.cols) + " matrix)"};
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const auto& [name, scheme] = schemes[s];
    const skew::MatrixLayout& use = (s == 1) ? padded : layout;
    for (const auto& r : skew::analyze_scheme(scheme, use, m, nc)) {
      sim::StreamConfig stream;
      stream.bank_pattern = skew::bank_sequence(scheme, use, r.pattern, m);
      const auto ss = sim::find_steady_state(
          sim::MemoryConfig{.banks = m, .sections = m, .bank_cycle = nc}, {stream});
      table.add_row({name, skew::to_string(r.pattern), cell(static_cast<long long>(r.distance)),
                     cell(static_cast<long long>(r.return_number)), r.bandwidth.str(),
                     ss.bandwidth.str()});
    }
  }
  table.print(std::cout);
  std::cout << '\n';
}

void print_figure() {
  const skew::MatrixLayout unpadded{.rows = 64, .cols = 64, .lda = 64};
  print_scheme_table(16, 4, unpadded);
  print_scheme_table(17, 4, unpadded);
}

void bm_skewed_diagonal(benchmark::State& state) {
  const skew::StorageScheme scheme{.kind = skew::SchemeKind::skewed, .skew = 6};
  const skew::MatrixLayout layout{.rows = 64, .cols = 64, .lda = 64};
  sim::StreamConfig stream;
  stream.bank_pattern = skew::bank_sequence(scheme, layout, skew::Pattern::forward_diagonal, 16);
  bench::run_engine_benchmark(state, {.banks = 16, .sections = 16, .bank_cycle = 4}, {stream});
}
BENCHMARK(bm_skewed_diagonal);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
