// Shared scaffolding for the figure-reproduction benches.  Each bench
// binary (one per paper figure/ablation) prints the regenerated figure —
// the same rows/series the paper reports — and then runs google-benchmark
// timings of the underlying simulation kernel.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "vpmem/vpmem.hpp"

namespace vpmem::bench {

/// Console reporter that additionally collects every run into a Json
/// document (schema "vpmem.bench/1") so bench binaries can drop a
/// machine-readable result file next to their human-readable output.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      Json row = Json::object();
      row["name"] = run.benchmark_name();
      row["iterations"] = static_cast<i64>(run.iterations);
      row["real_time"] = run.GetAdjustedRealTime();
      row["cpu_time"] = run.GetAdjustedCPUTime();
      row["time_unit"] = benchmark::GetTimeUnitString(run.time_unit);
      if (!run.counters.empty()) {
        Json counters = Json::object();
        for (const auto& [name, counter] : run.counters) counters[name] = counter.value;
        row["counters"] = std::move(counters);
      }
      runs_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// The collected document: {"schema", "binary", "benchmarks": [...]}.
  [[nodiscard]] Json document(const std::string& binary) const {
    Json doc = Json::object();
    doc["schema"] = "vpmem.bench/1";
    doc["binary"] = binary;
    doc["benchmarks"] = runs_;
    return doc;
  }

 private:
  Json runs_ = Json::array();
};

/// One point of a figure campaign: a stable id (also the config-hash
/// preimage, unless `key` overrides it) and a closure producing the
/// point's Json payload.
struct BenchPoint {
  std::string id;
  std::string key;  ///< hash preimage override (defaults to id)
  std::function<Json()> run;
};

/// Shared campaign driver for the figure benches: route a set of points
/// through exec::run_campaign so long ablation sweeps get the same
/// crash isolation and journaled resume as `vpmem_cli sweep`, without
/// new per-binary flags.  The environment configures the executor:
///
///   VPMEM_BENCH_JOBS=N        worker threads (default 1, sequential)
///   VPMEM_BENCH_JOURNAL=path  append attempts to this vpmem.journal/1
///                             file and resume from whatever it already
///                             settled (a fresh path = a fresh campaign)
///
/// Per-point payloads come back in summary.results, input order, so the
/// printed figure is identical however the campaign was scheduled.
inline exec::CampaignSummary run_bench_campaign(const std::string& campaign,
                                                std::vector<BenchPoint> points) {
  std::vector<exec::JobSpec> jobs;
  jobs.reserve(points.size());
  for (auto& p : points) {
    exec::JobSpec job;
    job.id = p.id;
    job.hash = stable_hash(campaign + " " + (p.key.empty() ? p.id : p.key));
    job.repro = campaign + " " + p.id;
    job.run = std::move(p.run);
    jobs.push_back(std::move(job));
  }
  exec::ExecutorOptions options;
  if (const char* env = std::getenv("VPMEM_BENCH_JOBS")) {
    options.jobs = std::max(1, std::atoi(env));
  }
  if (const char* env = std::getenv("VPMEM_BENCH_JOURNAL")) {
    options.journal_path = env;
    options.resume = true;  // an absent/empty journal is a fresh campaign
  }
  return exec::run_campaign(jobs, options);
}

/// Print the regenerated clock diagram and steady state of a two-stream
/// experiment, with the paper's expected bandwidth alongside.
inline void print_two_stream_figure(const std::string& title, const sim::MemoryConfig& config,
                                    const std::vector<sim::StreamConfig>& streams,
                                    i64 diagram_cycles, const std::string& expected,
                                    bool show_sections = false) {
  std::cout << "==== " << title << " ====\n";
  std::cout << trace::render_run(config, streams, diagram_cycles, show_sections);
  const sim::SteadyState ss = sim::find_steady_state(config, streams);
  std::cout << "measured b_eff = " << ss.bandwidth.str() << "   (paper: " << expected << ")\n";
  std::cout << "per-port:";
  for (const auto& bw : ss.per_port) std::cout << ' ' << bw.str();
  std::cout << "\nconflicts per period: bank=" << ss.conflicts_in_period.bank
            << " simultaneous=" << ss.conflicts_in_period.simultaneous
            << " section=" << ss.conflicts_in_period.section << "\n\n";
}

/// google-benchmark kernel: cost of stepping the engine on this workload.
inline void run_engine_benchmark(benchmark::State& state, const sim::MemoryConfig& config,
                                 const std::vector<sim::StreamConfig>& streams) {
  sim::MemorySystem mem{config, streams};
  i64 cycles = 0;
  for (auto _ : state) {
    mem.step();
    ++cycles;
  }
  state.SetItemsProcessed(cycles);
  state.counters["grants_per_cycle"] = benchmark::Counter(
      static_cast<double>([&] {
        i64 g = 0;
        for (std::size_t i = 0; i < mem.port_count(); ++i) g += mem.port_stats(i).grants;
        return g;
      }()) /
          static_cast<double>(cycles),
      benchmark::Counter::kDefaults);
}

/// Shared main: print the figure, then run the registered benchmarks.
/// When `json_path` is non-null the collected results are also written
/// there as a "vpmem.bench/1" document.
inline int figure_main(int argc, char** argv, void (*print_figure)(),
                       const char* json_path = nullptr) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (json_path != nullptr) {
    std::ofstream out{json_path};
    if (!out) {
      std::cerr << "error: cannot open '" << json_path << "' for writing\n";
      return 1;
    }
    reporter.document(argv[0] != nullptr ? argv[0] : "bench").dump(out, 2);
    out << '\n';
    std::cerr << "bench results written to " << json_path << '\n';
  }
  return 0;
}

}  // namespace vpmem::bench

/// Define main() for a figure bench.
#define VPMEM_FIGURE_MAIN(print_fn)                                        \
  int main(int argc, char** argv) {                                        \
    return ::vpmem::bench::figure_main(argc, argv, &(print_fn));           \
  }

/// Define main() for a figure bench that also writes its google-benchmark
/// results to `json_file` via the vpmem JSON writer.
#define VPMEM_FIGURE_MAIN_JSON(print_fn, json_file)                        \
  int main(int argc, char** argv) {                                        \
    return ::vpmem::bench::figure_main(argc, argv, &(print_fn), json_file); \
  }
