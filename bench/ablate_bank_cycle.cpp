// Ablation: effective bandwidth vs bank cycle time nc.  Theorem 3's
// conflict-free threshold is gcd(m/f, (d2-d1)/f) >= 2*nc, so doubling nc
// halves the set of conflict-free stride pairs; single streams fall off a
// cliff once r < nc.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_figure() {
  const i64 m = 16;
  Table table{{"nc", "b_eff d=1 pair (1,9)", "b_eff pair (1,3) min", "single d=8",
               "conflict-free pairs (d1<d2<=8)"},
              "Ablation — bank cycle time (m = 16, offsets swept)"};
  for (i64 nc : {1, 2, 3, 4, 6, 8}) {
    const sim::MemoryConfig cfg{.banks = m, .sections = m, .bank_cycle = nc};
    const auto pair19 = sim::sweep_start_offsets(cfg, 1, 9);
    const auto pair13 = sim::sweep_start_offsets(cfg, 1, 3);
    const auto single =
        sim::find_steady_state(cfg, {sim::StreamConfig{.distance = 8}}).bandwidth;
    i64 cf = 0;
    i64 count = 0;
    for (i64 d1 = 1; d1 <= 8; ++d1) {
      for (i64 d2 = d1 + 1; d2 <= 8; ++d2) {
        ++count;
        if (analytic::conflict_free_achievable(m, nc, d1, d2)) ++cf;
      }
    }
    table.add_row({cell(static_cast<long long>(nc)), pair19.min_bandwidth.str(),
                   pair13.min_bandwidth.str(), single.str(),
                   cell(static_cast<long long>(cf)) + "/" +
                       cell(static_cast<long long>(count))});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void bm_engine_nc8(benchmark::State& state) {
  bench::run_engine_benchmark(state, {.banks = 16, .sections = 16, .bank_cycle = 8},
                              sim::two_streams(0, 1, 3, 3));
}
BENCHMARK(bm_engine_nc8);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
