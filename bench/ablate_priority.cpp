// Ablation: fixed vs cyclic priority rule on linked-conflict-prone
// workloads.  The paper (Fig. 8) argues cyclic priority resolves linked
// conflicts; this sweep shows where each rule wins across start offsets.
#include "bench_common.hpp"

namespace {

using namespace vpmem;

void print_figure() {
  Table table{{"b2", "fixed b_eff", "cyclic b_eff"},
              "Ablation — priority rule (m=12, s=3, nc=3, d1=d2=1, same CPU)"};
  i64 fixed_wins = 0;
  i64 cyclic_wins = 0;
  for (i64 b2 = 0; b2 < 12; ++b2) {
    sim::MemoryConfig cfg{.banks = 12, .sections = 3, .bank_cycle = 3};
    const auto streams = sim::two_streams(0, 1, b2, 1, /*same_cpu=*/true);
    const auto fixed = sim::find_steady_state(cfg, streams);
    cfg.priority = sim::PriorityRule::cyclic;
    const auto cyclic = sim::find_steady_state(cfg, streams);
    if (fixed.bandwidth > cyclic.bandwidth) ++fixed_wins;
    if (cyclic.bandwidth > fixed.bandwidth) ++cyclic_wins;
    table.add_row({cell(static_cast<long long>(b2)), fixed.bandwidth.str(),
                   cyclic.bandwidth.str()});
  }
  table.print(std::cout);
  std::cout << "fixed wins: " << fixed_wins << ", cyclic wins: " << cyclic_wins
            << " (paper's Fig. 8 start b2=1 is a cyclic win)\n\n";
}

void bm_fixed(benchmark::State& state) {
  bench::run_engine_benchmark(state, {.banks = 12, .sections = 3, .bank_cycle = 3},
                              sim::two_streams(0, 1, 1, 1, true));
}
BENCHMARK(bm_fixed);

void bm_cyclic(benchmark::State& state) {
  bench::run_engine_benchmark(state,
                              {.banks = 12,
                               .sections = 3,
                               .bank_cycle = 3,
                               .priority = sim::PriorityRule::cyclic},
                              sim::two_streams(0, 1, 1, 1, true));
}
BENCHMARK(bm_cyclic);

}  // namespace

VPMEM_FIGURE_MAIN(print_figure)
